#!/usr/bin/env python3
"""Simulator-core benchmark: events/sec and wall-clock for canonical scenarios.

This is the perf baseline for the discrete-event engine and crypto layer —
it measures how fast the *simulator* runs, independent of the protocol
numbers the other benches reproduce.  Scenarios:

- ``steady-n4`` / ``steady-n16`` / ``steady-n64`` / ``steady-n256``: the
  linear fast path under synchrony, up to the scale targets.
- ``fallback-n4`` / ``fallback-n64``: the leader-targeting adversary forces
  the asynchronous fallback every view, exercising the quadratic machinery.
- ``lossy20-n4``: 20% IID loss under reliable channels (retransmission,
  acks and dedup dominate the event count).

Every scenario reports a determinism fingerprint — a digest of the commit
trace plus the protocol counters — so a perf change that perturbs protocol
behaviour is caught by ``--check-determinism`` (two runs, same seed) and by
comparing fingerprints across commits (same seed, same scenario).

Run directly::

    PYTHONPATH=src python benchmarks/bench_simcore.py --scenario steady-n4 \
        --check-determinism

or through :mod:`benchmarks.run_benchmarks`, which runs the canonical set
and records the trajectory in ``BENCH_simcore.json`` at the repo root.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import time
from pathlib import Path
from typing import Optional

# Allow running as a plain script from the repo root without installing.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.crypto.hashing import hash_cache_size
from repro.experiments.scenarios import build_cluster, leader_attack_factory
from repro.net.loss import IIDLoss
from repro.protocols.presets import preset
from repro.runtime.cluster import Cluster, ClusterBuilder


# ----------------------------------------------------------------------
# Scenario definitions
# ----------------------------------------------------------------------
def _build_steady(n: int, seed: int) -> Cluster:
    return build_cluster("fallback-3chain", n, seed=seed)


def _build_fallback(n: int, seed: int) -> Cluster:
    """Leader-targeting adversary: every round times out into the fallback."""
    return build_cluster(
        "fallback-3chain", n, seed=seed, delay_factory=leader_attack_factory()
    )


def _build_lossy(n: int, seed: int, rate: float = 0.2) -> Cluster:
    config = preset("fallback-3chain").config(n)
    return (
        ClusterBuilder(config=config, seed=seed)
        .with_loss_model(IIDLoss(rate))
        .with_preload(10_000)
        .build()
    )


#: name -> (builder, default target commits, default time bound)
SCENARIOS = {
    "steady-n4": (lambda seed: _build_steady(4, seed), 1000, 100_000.0),
    "steady-n16": (lambda seed: _build_steady(16, seed), 400, 100_000.0),
    "steady-n64": (lambda seed: _build_steady(64, seed), 100, 100_000.0),
    "steady-n256": (lambda seed: _build_steady(256, seed), 20, 100_000.0),
    "fallback-n4": (lambda seed: _build_fallback(4, seed), 100, 400_000.0),
    "fallback-n64": (lambda seed: _build_fallback(64, seed), 10, 400_000.0),
    "lossy20-n4": (lambda seed: _build_lossy(4, seed), 400, 100_000.0),
}


# ----------------------------------------------------------------------
# Fingerprinting (determinism checks)
# ----------------------------------------------------------------------
def commit_trace(cluster: Cluster) -> list[tuple]:
    """Event-for-event commit trace: who committed what, when."""
    return [
        (
            event.replica,
            event.position,
            event.round,
            event.view,
            event.fallback_block,
            event.batch_size,
            repr(event.time),
        )
        for event in cluster.metrics.commits
    ]


def protocol_counters(cluster: Cluster) -> dict:
    """The MetricsCollector protocol counters a perf change must not move."""
    metrics = cluster.metrics
    return {
        "decisions": metrics.decisions(),
        "honest_messages": metrics.honest_messages,
        "honest_bytes": metrics.honest_bytes,
        "message_counts": dict(sorted(metrics.message_counts.items())),
        "message_bytes": dict(sorted(metrics.message_bytes.items())),
        "proposals": metrics.proposals,
        "fallbacks": metrics.fallback_count(),
        "timeouts": len(metrics.timeouts),
        "round_entries": len(metrics.round_entries),
        "retransmissions": metrics.retransmissions,
        "acks": metrics.acks,
        "duplicates_suppressed": metrics.duplicates_suppressed,
    }


def fingerprint(cluster: Cluster) -> str:
    """Stable digest of the commit trace + protocol counters."""
    blob = json.dumps(
        {"trace": commit_trace(cluster), "counters": protocol_counters(cluster)},
        sort_keys=True,
    ).encode("utf-8")
    return hashlib.blake2b(blob, digest_size=16).hexdigest()


# ----------------------------------------------------------------------
# Measurement
# ----------------------------------------------------------------------
def run_scenario(
    name: str,
    seed: int = 1,
    target_commits: Optional[int] = None,
    max_events: Optional[int] = None,
    until: Optional[float] = None,
) -> dict:
    """Run one scenario; return timing, throughput and fingerprint."""
    try:
        builder, default_commits, default_until = SCENARIOS[name]
    except KeyError:
        raise SystemExit(
            f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}"
        ) from None
    cluster = builder(seed)
    wall_start = time.perf_counter()
    result = cluster.run_until_commits(
        target_commits if target_commits is not None else default_commits,
        until=until if until is not None else default_until,
        max_events=max_events if max_events is not None else 20_000_000,
    )
    wall = time.perf_counter() - wall_start
    events = cluster.scheduler.events_processed
    return {
        "scenario": name,
        "seed": seed,
        "decisions": result.decisions,
        "sim_time": result.stopped_at,
        "events": events,
        "wall_seconds": round(wall, 4),
        "events_per_sec": round(events / wall, 1) if wall > 0 else None,
        "fingerprint": fingerprint(cluster),
        "counters": protocol_counters(cluster),
        # Cache stats ride outside the fingerprint: they are new keys a
        # perf change may move, while the fingerprint must stay fixed.
        "cert_cache": cluster.metrics.cert_cache_counters(),
        "share_pool": cluster.metrics.share_pool_counters(),
        "hash_cache_entries": hash_cache_size(),
    }


def check_determinism(name: str, seed: int, **kwargs) -> dict:
    """Run a scenario twice with the same seed; identical fingerprints."""
    first = run_scenario(name, seed=seed, **kwargs)
    second = run_scenario(name, seed=seed, **kwargs)
    if first["fingerprint"] != second["fingerprint"]:
        raise SystemExit(
            f"DETERMINISM VIOLATION in {name} seed={seed}: "
            f"{first['fingerprint']} != {second['fingerprint']}"
        )
    if first["counters"] != second["counters"]:
        raise SystemExit(
            f"DETERMINISM VIOLATION in {name} seed={seed}: counters differ"
        )
    first["determinism"] = "ok"
    return first


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scenario",
        action="append",
        choices=sorted(SCENARIOS),
        help="scenario to run (repeatable; default: all)",
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--target-commits", type=int, default=None)
    parser.add_argument("--max-events", type=int, default=None)
    parser.add_argument(
        "--check-determinism",
        action="store_true",
        help="run each scenario twice and require identical fingerprints",
    )
    parser.add_argument("--json", type=Path, default=None, help="write results here")
    args = parser.parse_args(argv)

    names = args.scenario or sorted(SCENARIOS)
    results = []
    for name in names:
        kwargs = dict(
            target_commits=args.target_commits, max_events=args.max_events
        )
        if args.check_determinism:
            entry = check_determinism(name, args.seed, **kwargs)
        else:
            entry = run_scenario(name, seed=args.seed, **kwargs)
        results.append(entry)
        print(
            f"{name:<14} seed={entry['seed']} decisions={entry['decisions']:<5} "
            f"events={entry['events']:<8} wall={entry['wall_seconds']:.3f}s "
            f"events/sec={entry['events_per_sec']:,.0f} "
            f"fp={entry['fingerprint'][:12]}"
            + (" determinism=ok" if entry.get("determinism") else "")
        )
    if args.json is not None:
        args.json.write_text(json.dumps(results, indent=2) + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
