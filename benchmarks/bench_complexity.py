#!/usr/bin/env python3
"""Complexity sweep: messages/bytes per decision vs n, fitted against Table 1.

Theorem 9 (and Table 1) claim O(n) messages per decision on the steady path
(honest leaders under synchrony) and O(n²) in the asynchronous fallback.
This bench sweeps cluster sizes under both regimes, measures per-decision
costs with the same honest-sender accounting the paper uses, and fits the
empirical scaling exponent (log-log least squares):

- ``steady``: synchronous network, honest leaders — one leader proposal
  fan-out plus one vote per replica per round; expect slope ≈ 1.
- ``fallback``: the leader-targeting adversary forces every view into the
  fallback — n concurrent leaderless chains, all-to-all votes; expect
  slope ≈ 2.

Cluster sizes must satisfy n = 3f+1 (the protocol's resilience shape), so
the default sweep is 4, 7, 16, 31, 64 rather than powers of two.

Run directly::

    PYTHONPATH=src python benchmarks/bench_complexity.py --ns 4 7 16 31 64

or through ``run_benchmarks.py --complexity``.  Small sweeps carry visible
constant factors (the "+1" in n+1 messages matters at n=4), so verdicts use
a deliberately loose ±0.5 tolerance — this catches a broken complexity
class, not decimal drift.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Optional

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.analysis.complexity import ScalingFit, fit_sweep, per_decision_costs
from repro.analysis.tables import render_scaling_table, render_table
from repro.experiments.scenarios import build_cluster, leader_attack_factory

#: Default sweep (each n is 3f+1); n=127 is reachable with --ns but not
#: default (the fallback regime at n=127 is ~a minute of wall clock).
DEFAULT_NS = (4, 7, 16, 31, 64)

#: Per-regime (target decisions, sim-time bound).  The fallback needs far
#: fewer decisions for a stable per-decision figure: every decision already
#: aggregates a whole view's quadratic traffic.
REGIMES = {
    "steady": (50, 100_000.0),
    "fallback": (8, 400_000.0),
}


def _build(regime: str, n: int, seed: int):
    if regime == "steady":
        return build_cluster("fallback-3chain", n, seed=seed)
    if regime == "fallback":
        return build_cluster(
            "fallback-3chain", n, seed=seed, delay_factory=leader_attack_factory()
        )
    raise SystemExit(f"unknown regime {regime!r}")


def run_point(regime: str, n: int, seed: int) -> dict:
    """One (regime, n) measurement: per-decision costs + run stats."""
    target, until = REGIMES[regime]
    cluster = _build(regime, n, seed)
    wall_start = time.perf_counter()
    result = cluster.run_until_commits(target, until=until)
    wall = time.perf_counter() - wall_start
    costs = per_decision_costs(cluster.metrics)
    return {
        "regime": regime,
        "n": n,
        "seed": seed,
        "decisions": costs.decisions,
        "messages_per_decision": costs.messages_per_decision,
        "bytes_per_decision": costs.bytes_per_decision,
        "steady_messages": costs.steady_messages,
        "view_change_messages": costs.view_change_messages,
        "events": result.events_processed,
        "wall_seconds": round(wall, 4),
        "events_per_sec": round(result.events_processed / wall, 1)
        if wall > 0
        else None,
    }


def run_sweep(ns, seed: int = 1, regimes=None) -> dict:
    """Full sweep: one point per (regime, n), plus fitted exponents."""
    points = []
    for regime in regimes or sorted(REGIMES):
        for n in ns:
            point = run_point(regime, n, seed)
            points.append(point)
            print(
                f"{regime:<9} n={n:<4} decisions={point['decisions']:<4} "
                f"msgs/dec={point['messages_per_decision']:>9.1f} "
                f"bytes/dec={point['bytes_per_decision']:>11.1f} "
                f"wall={point['wall_seconds']:.2f}s",
                flush=True,
            )
    fits = fit_all(points)
    return {
        "ns": list(ns),
        "seed": seed,
        "points": points,
        "fits": [
            {
                "regime": fit.regime,
                "metric": fit.metric,
                "slope": round(fit.slope, 3),
                "class": fit.label,
                "claimed": fit.claimed,
                "matches_claim": fit.matches_claim(),
            }
            for fit in fits
        ],
    }


def fit_all(points) -> list[ScalingFit]:
    fits = []
    for regime in sorted({point["regime"] for point in points}):
        regime_points = [p for p in points if p["regime"] == regime]
        ns = [p["n"] for p in regime_points]
        for metric, key in (
            ("messages", "messages_per_decision"),
            ("bytes", "bytes_per_decision"),
        ):
            fits.append(fit_sweep(regime, metric, ns, [p[key] for p in regime_points]))
    return fits


def render(sweep: dict) -> str:
    rows = [
        [
            p["regime"],
            p["n"],
            p["decisions"],
            p["messages_per_decision"],
            p["bytes_per_decision"],
            p["wall_seconds"],
        ]
        for p in sweep["points"]
    ]
    table = render_table(
        ["regime", "n", "decisions", "msgs/decision", "bytes/decision", "wall_s"],
        rows,
        title="Per-decision communication cost vs cluster size",
    )
    fits = fit_all(sweep["points"])
    return table + "\n\n" + render_scaling_table(fits)


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--ns",
        type=int,
        nargs="+",
        default=list(DEFAULT_NS),
        help="cluster sizes to sweep (default: %(default)s)",
    )
    parser.add_argument(
        "--regime",
        action="append",
        choices=sorted(REGIMES),
        help="regime to sweep (repeatable; default: both)",
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--json", type=Path, default=None, help="write results here")
    args = parser.parse_args(argv)

    if len(args.ns) < 2:
        raise SystemExit("need at least two cluster sizes to fit a slope")
    bad = [n for n in args.ns if n < 4 or (n - 1) % 3]
    if bad:
        raise SystemExit(f"cluster sizes must be 3f+1 with f >= 1; bad: {bad}")
    sweep = run_sweep(sorted(set(args.ns)), seed=args.seed, regimes=args.regime)
    print()
    print(render(sweep))
    for fit in sweep["fits"]:
        if fit["claimed"] is not None and not fit["matches_claim"]:
            print(
                f"WARNING: {fit['regime']} messages scale as n^{fit['slope']}, "
                f"Table 1 claims n^{fit['claimed']:.0f}",
                file=sys.stderr,
            )
    if args.json is not None:
        args.json.write_text(json.dumps(sweep, indent=2) + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
