"""E3 — Figure 3: anatomy of one asynchronous fallback.

Forces a fallback with the leader-targeting adversary and traces its
structure: n fallback chains growing through heights 1..3, 2f+1 completed
chains triggering the coin, the elected chain's endorsement, and the
steady state resuming from it — the series Figure 3 illustrates.
"""

from repro.experiments.scenarios import build_cluster, leader_attack_factory
from repro.types.blocks import FallbackBlock

N = 4


def run_one_fallback(seed=5):
    cluster = build_cluster(
        "fallback-3chain", N, seed=seed, delay_factory=leader_attack_factory()
    )
    # Run until the first fallback completes everywhere and a block commits,
    # then drain in-flight messages so every replica records its exit.
    result = cluster.run(
        until=50_000,
        stop_when=lambda: cluster.metrics.fallback_count() >= 1
        and len([e for e in cluster.metrics.fallback_events if e.kind == "exited"]) >= N
        and cluster.metrics.decisions() >= 1,
    )
    cluster.run(until=cluster.scheduler.now + 120.0)
    return cluster, result


def test_fallback_anatomy(benchmark, report):
    cluster, run_result = benchmark.pedantic(run_one_fallback, rounds=1, iterations=1)
    report.throughput(f"fallback-n{N}", run_result)
    metrics = cluster.metrics
    # Anatomize the most recent fully-observed fallback view (earlier views'
    # working state is garbage-collected PRUNE_MARGIN views back).
    exited_views = {e.view for e in metrics.fallback_events if e.kind == "exited"}
    entered_views = {e.view for e in metrics.fallback_events if e.kind == "entered"}
    candidates = sorted(exited_views & entered_views)
    assert candidates, "no fallback completed"
    target_view = candidates[-1]
    entered = [e for e in metrics.fallback_events
               if e.kind == "entered" and e.view == target_view]
    exited = [e for e in metrics.fallback_events
              if e.kind == "exited" and e.view == target_view]
    start = min(e.time for e in entered)
    end = max(e.time for e in exited)
    leader = exited[0].leader

    # Chains built: distinct (proposer, height) f-QCs, observed at the
    # best-informed honest replica (the attack's current target lags).
    completed_chains = 0
    for replica in cluster.honest_replicas():
        heights_per_proposer = {}
        for (view, proposer, height) in replica.fallback.fqcs:
            if view == target_view:
                heights_per_proposer.setdefault(proposer, set()).add(height)
        completed_here = sum(1 for heights in heights_per_proposer.values()
                             if heights >= {1, 2, 3})
        completed_chains = max(completed_chains, completed_here)

    table = report.table(
        "fallback",
        headers=["stage", "measured", "paper (Figure 3)"],
        title="Figure 3 — anatomy of one asynchronous fallback",
    )
    table.add_row(f"replicas entered fallback (view {target_view})",
                  len({e.replica for e in entered}), f"all {N}")
    table.add_row("f-chains with height-3 f-QC", completed_chains, f">= 2f+1 = {2 * cluster.config.f + 1}")
    table.add_row("coin-elected leader", leader, "uniform over n")
    table.add_row("fallback duration (s)", f"{end - start:.1f}", "O(1) message delays past the attack")
    first_commit = min((e.time for e in metrics.commits), default=None)
    table.add_row("first committed block", f"t={first_commit:.1f}" if first_commit else "-",
                  "endorsed height-1 f-block w.p. 2/3")
    benchmark.extra_info["fallback_duration"] = end - start
    assert completed_chains >= 2 * cluster.config.f + 1


def test_fallback_message_budget(benchmark, report):
    """Each fallback costs O(n^2): every replica multicasts O(1) messages
    and answers each chain's votes."""
    cluster, _ = benchmark.pedantic(run_one_fallback, rounds=1, iterations=1)
    phases = cluster.metrics.phase_messages()
    fallbacks = cluster.metrics.fallback_count()
    per_fallback = phases["view_change"] / max(fallbacks, 1)
    table = report.table(
        "fallback",
        headers=["stage", "measured", "paper (Figure 3)"],
        title="Figure 3 — anatomy of one asynchronous fallback",
    )
    table.add_row("view-change messages per fallback", f"{per_fallback:.0f}",
                  f"Θ(n²) = Θ({N * N})")
    benchmark.extra_info["messages_per_fallback"] = per_fallback
    assert N * N * 0.5 <= per_fallback <= N * N * 20


def test_endorsed_chain_reaches_ledger(benchmark, report):
    cluster, _ = benchmark.pedantic(run_one_fallback, rounds=1, iterations=1)
    cluster.run(until=cluster.scheduler.now + 500)
    chains = [r.ledger.committed_blocks() for r in cluster.honest_replicas()]
    longest = max(chains, key=len)
    fallback_commits = [b for b in longest if isinstance(b, FallbackBlock)]
    report.note(
        "fallback",
        f"committed fallback blocks in the longest log: {len(fallback_commits)}",
    )
    assert longest, "nothing committed after the fallback"
