"""E11 — the cost of a lossy transport.

The paper assumes reliable authenticated links; this bench quantifies what
buying that assumption back costs when the wire misbehaves.  A loss-rate
sweep (i.i.d. drop 0%..30%, plus a bursty Gilbert–Elliott point) runs the
protocol over the reliable-channel layer and reports goodput (decisions per
simulated second) next to the channel's overhead — retransmissions, ack
bytes, duplicates suppressed — which the metrics layer accounts separately
from protocol traffic.
"""

import pytest

from repro.analysis.safety import check_cluster_safety
from repro.net.loss import BurstLoss, IIDLoss, NoLoss
from repro.runtime.cluster import ClusterBuilder

N = 4
RUN_FOR = 300.0

HEADERS = [
    "loss model",
    "decisions/s",
    "msgs/decision",
    "retransmits",
    "dups suppressed",
    "ack kB",
    "safe",
]
TITLE = f"Goodput and channel overhead on a lossy wire (n={N}, {RUN_FOR:.0f}s)"


def run_lossy(loss, seed=15):
    cluster = (
        ClusterBuilder(n=N, seed=seed)
        .with_preload(10_000)
        .with_loss_model(loss)
        .build()
    )
    cluster.run(until=RUN_FOR)
    return cluster


def add_report_row(report, label, cluster):
    metrics = cluster.metrics
    violations = check_cluster_safety(cluster.honest_replicas())
    messages_per_decision = metrics.messages_per_decision()
    table = report.table("lossy-links", headers=HEADERS, title=TITLE)
    table.add_row(
        label,
        f"{metrics.decisions() / RUN_FOR:.2f}",
        f"{messages_per_decision:.1f}" if messages_per_decision else "-",
        metrics.retransmissions,
        metrics.duplicates_suppressed,
        f"{metrics.ack_bytes / 1024:.1f}",
        "yes" if not violations else "NO",
    )
    return violations


@pytest.mark.parametrize("drop", [0.0, 0.1, 0.2, 0.3])
def test_goodput_vs_iid_loss_rate(benchmark, report, drop):
    loss = IIDLoss(drop=drop, duplicate=0.05) if drop else NoLoss()
    cluster = benchmark.pedantic(lambda: run_lossy(loss), rounds=1, iterations=1)
    label = f"iid drop={drop:.0%} dup=5%" if drop else "no loss"
    violations = add_report_row(report, label, cluster)
    benchmark.extra_info["decisions"] = cluster.metrics.decisions()
    benchmark.extra_info["retransmissions"] = cluster.metrics.retransmissions
    assert cluster.metrics.decisions() > 0
    assert not violations
    assert cluster.network.untyped_messages == 0


def test_goodput_under_bursty_loss(benchmark, report):
    loss = BurstLoss(p_enter_bad=0.05, p_exit_bad=0.25, bad_drop=0.9)
    cluster = benchmark.pedantic(lambda: run_lossy(loss), rounds=1, iterations=1)
    violations = add_report_row(report, "burst (GE, 90% in bad)", cluster)
    assert cluster.metrics.decisions() > 0
    assert not violations


def test_channel_overhead_is_not_billed_as_goodput(benchmark, report):
    """The per-decision message count under loss counts only protocol
    traffic: channel frames never leak into the per-type goodput stats."""
    cluster = benchmark.pedantic(
        lambda: run_lossy(IIDLoss(drop=0.2, duplicate=0.05)), rounds=1, iterations=1
    )
    assert "DataPacket" not in cluster.metrics.message_counts
    assert "AckPacket" not in cluster.metrics.message_counts
    assert cluster.metrics.retransmissions > 0
    report.note(
        "lossy-links",
        "retransmit/ack traffic is accounted in separate counters, never in "
        "msgs/decision",
    )
