"""E1 — Table 1: communication complexity and liveness, all rows.

Reproduces the paper's comparison table empirically: for each protocol row
(HotStuff/DiemBFT, VABA/Dumbo/ACE stand-in, ours 3-chain, ours 2-chain) the
bench measures messages per committed block under (a) synchrony with honest
leaders and (b) a leader-targeting asynchronous adversary, and records
whether the protocol stayed live.

Expected shape (paper): DiemBFT sync O(n) but NOT live under asynchrony;
always-fallback live but O(n²) everywhere; ours O(n) sync, O(n²) async,
always live.
"""

import pytest

from repro.analysis.tables import fmt_cost
from repro.experiments.scenarios import run_async_attack, run_sync
from repro.protocols import PROTOCOLS

N = 7
SEED = 1


@pytest.mark.parametrize("protocol", sorted(PROTOCOLS))
def test_table1_sync_row(benchmark, report, protocol):
    result = benchmark.pedantic(
        lambda: run_sync(protocol, n=N, seed=SEED, target_commits=30),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["messages_per_decision"] = result.messages_per_decision
    benchmark.extra_info["decisions"] = result.decisions
    table = report.table(
        "table1",
        headers=[
            "protocol",
            "network",
            "paper claim",
            f"measured msgs/decision (n={N})",
            "live",
        ],
        title="Table 1 — communication complexity per decision and liveness",
    )
    table.add_row(
        protocol,
        "sync",
        PROTOCOLS[protocol].paper_sync_cost,
        fmt_cost(result.messages_per_decision),
        "yes" if result.live else "NO",
    )
    assert result.live, f"{protocol} must be live under synchrony"
    # Linearity / quadraticity sanity at n=7.
    if PROTOCOLS[protocol].paper_sync_cost == "O(n)":
        assert result.messages_per_decision < 4 * N
    else:
        assert result.messages_per_decision > 3 * N


@pytest.mark.parametrize("protocol", sorted(PROTOCOLS))
def test_table1_async_row(benchmark, report, protocol):
    result = benchmark.pedantic(
        lambda: run_async_attack(protocol, n=N, seed=SEED, target_commits=8,
                                 until=20_000),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["messages_per_decision"] = result.messages_per_decision
    benchmark.extra_info["decisions"] = result.decisions
    table = report.table(
        "table1",
        headers=[
            "protocol",
            "network",
            "paper claim",
            f"measured msgs/decision (n={N})",
            "live",
        ],
        title="Table 1 — communication complexity per decision and liveness",
    )
    paper = "always live" if PROTOCOLS[protocol].paper_async_live else "not live if async"
    table.add_row(
        protocol,
        "async(leader-attack)",
        paper,
        fmt_cost(result.messages_per_decision),
        "yes" if result.live else "NO",
    )
    if PROTOCOLS[protocol].paper_async_live:
        assert result.live, f"{protocol} must stay live under asynchrony"
        assert result.messages_per_decision > N  # superlinear under attack
    else:
        assert not result.live, "DiemBFT must lose liveness under the attack"
