"""E7 — ablation: the paper's "Optimization in Practice" (chain adoption).

With adoption, replicas extend the first certified f-block they learn at
each height instead of waiting for their own chain, so the fallback proceeds
at the speed of the fastest replica instead of the fastest 2f+1.  The
ablation measures fallback completion time and message cost with the
optimization on and off, under an adversary that slows a subset of replicas
(where adoption should shine).
"""

import pytest

from repro.core.config import ProtocolConfig
from repro.net.conditions import DelayModel, SynchronousDelay
from repro.runtime.cluster import ClusterBuilder


class SlowReplicasDelay(DelayModel):
    """Traffic to/from a fixed subset of replicas is slowed by ``factor``."""

    def __init__(self, slow, base=None, extra=12.0):
        self.slow = set(slow)
        self.base = base or SynchronousDelay(delta=1.0)
        self.extra = extra

    def delay(self, sender, receiver, message, now, rng):
        delay = self.base.delay(sender, receiver, message, now, rng)
        if sender in self.slow or receiver in self.slow:
            delay += self.extra
        return delay

    def describe(self):
        return f"slow({sorted(self.slow)})"


def run_fallbacks(adoption: bool, seed: int = 7, n: int = 4):
    """Force fallbacks by slowing the leader's links so rounds time out."""
    config = ProtocolConfig(n=n, fallback_adoption=adoption, round_timeout=5.0)
    cluster = (
        ClusterBuilder(config=config, seed=seed)
        .with_delay_model(SlowReplicasDelay(slow={0}, extra=20.0))
        .build()
    )
    cluster.run_until_commits(8, until=60_000)
    return cluster


def fallback_durations(cluster):
    entered = {}
    durations = []
    for event in cluster.metrics.fallback_events:
        key = (event.replica, event.view)
        if event.kind == "entered":
            entered[key] = event.time
        elif key in entered:
            durations.append(event.time - entered[key])
    return durations


@pytest.mark.parametrize("adoption", [False, True])
def test_adoption_ablation(benchmark, report, adoption):
    cluster = benchmark.pedantic(lambda: run_fallbacks(adoption), rounds=1, iterations=1)
    durations = fallback_durations(cluster)
    mean = sum(durations) / len(durations) if durations else float("nan")
    phases = cluster.metrics.phase_messages()
    per_fallback = phases["view_change"] / max(cluster.metrics.fallback_count(), 1)
    table = report.table(
        "adoption",
        headers=["config", "mean fallback duration (s)", "view-change msgs/fallback", "decisions"],
        title='Ablation — "Optimization in Practice" (fallback chain adoption)',
    )
    table.add_row(
        "adoption ON" if adoption else "adoption OFF",
        f"{mean:.1f}",
        f"{per_fallback:.0f}",
        cluster.metrics.decisions(),
    )
    benchmark.extra_info["mean_fallback_duration"] = mean
    assert cluster.metrics.decisions() >= 8
    assert durations, "no fallbacks happened; the ablation measured nothing"


def test_adoption_speeds_up_fallback_with_slow_replica(benchmark, report):
    """Direct comparison on identical seeds: with a slow replica in the
    quorum path, adoption must not be slower on average."""

    def sweep():
        means = {}
        for adoption in (False, True):
            all_durations = []
            for seed in (7, 8, 9):
                cluster = run_fallbacks(adoption, seed=seed)
                all_durations.extend(fallback_durations(cluster))
            means[adoption] = sum(all_durations) / len(all_durations)
        return means

    means = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report.note(
        "adoption",
        f"3-seed mean fallback duration: OFF {means[False]:.1f}s vs ON {means[True]:.1f}s",
    )
    assert means[True] <= means[False] * 1.25
