"""E2 — Figure 1 behaviour: the steady state under synchrony.

Measures the linear fast path: throughput, per-decision message breakdown
(one proposal multicast + n votes), commit latency in rounds (3-chain = a
block commits two rounds after its own), and end-to-end transaction latency.
"""

from repro.experiments.scenarios import build_cluster
from repro.traffic.slo import percentile

N = 7


def run_steady(n=N, seed=3, commits=60):
    cluster = build_cluster("fallback-3chain", n, seed=seed)
    result = cluster.run_until_commits(commits, until=20_000)
    return cluster, result


def test_steady_state_throughput(benchmark, report):
    cluster, result = benchmark.pedantic(run_steady, rounds=1, iterations=1)
    decisions = result.decisions
    elapsed = result.stopped_at
    table = report.table(
        "steady",
        headers=["metric", "value", "paper expectation"],
        title=f"Figure 1 — steady state under synchrony (n={N})",
    )
    table.add_row("blocks/simulated-second", f"{decisions / elapsed:.2f}", "one per ~2 message delays")
    table.add_row("fallbacks", cluster.metrics.fallback_count(), "0")
    benchmark.extra_info["throughput"] = decisions / elapsed
    benchmark.extra_info["events_per_sec"] = result.events_per_sec
    report.throughput(f"steady-n{N}", result)
    assert cluster.metrics.fallback_count() == 0


def test_message_breakdown_per_decision(benchmark, report):
    cluster, result = benchmark.pedantic(run_steady, rounds=1, iterations=1)
    decisions = result.decisions
    proposals = cluster.metrics.message_counts.get("Proposal", 0) / decisions
    votes = cluster.metrics.message_counts.get("Vote", 0) / decisions
    table = report.table(
        "steady",
        headers=["metric", "value", "paper expectation"],
        title=f"Figure 1 — steady state under synchrony (n={N})",
    )
    table.add_row("proposal sends/decision", f"{proposals:.1f}", f"n-1 = {N - 1}")
    table.add_row("vote sends/decision", f"{votes:.1f}", f"~n = {N}")
    assert proposals <= N
    assert votes <= N + 1


def test_commit_latency_three_rounds(benchmark, report):
    """A round-r block commits when the round-(r+2) QC forms: measure the
    wall (simulated) delay between proposal and commit."""
    cluster, result = benchmark.pedantic(run_steady, rounds=1, iterations=1)
    # Commits carry rounds; measure against the round-entry timeline.
    entries = {}
    for replica, round_number, time in cluster.metrics.round_entries:
        entries.setdefault((replica, round_number), time)
    gaps = []
    for event in cluster.metrics.commits_at(0):
        entry = entries.get((0, event.round))
        if entry is not None:
            gaps.append(event.time - entry)
    assert gaps
    gaps.sort()
    median = gaps[len(gaps) // 2]
    table = report.table(
        "steady",
        headers=["metric", "value", "paper expectation"],
        title=f"Figure 1 — steady state under synchrony (n={N})",
    )
    table.add_row("commit lag after round entry (median, s)", f"{median:.2f}",
                  "≈ 2 rounds of message delays (3-chain)")
    benchmark.extra_info["median_commit_lag"] = median
    # Each round is ~2 message delays of <=1s; 2 extra rounds <= ~6s.
    assert 0.5 <= median <= 8.0


def test_end_to_end_latency(benchmark, report):
    cluster, result = benchmark.pedantic(run_steady, rounds=1, iterations=1)
    latencies = cluster.metrics.commit_latencies()
    p50 = percentile(latencies, 50)
    p99 = percentile(latencies, 99)
    table = report.table(
        "steady",
        headers=["metric", "value", "paper expectation"],
        title=f"Figure 1 — steady state under synchrony (n={N})",
    )
    table.add_row("tx latency p50/p99 (s)", f"{p50:.1f} / {p99:.1f}",
                  "queueing-dominated (deep backlog)")
    benchmark.extra_info["p50"] = p50
    assert p50 > 0
