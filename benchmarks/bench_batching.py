"""E11 — ablation: batch size under bandwidth-limited links.

Block batch size trades per-transaction amortization against serialization
and queueing delay on finite-bandwidth links.  The bench sweeps batch size
on a bandwidth-limited synchronous network and reports transaction
throughput and commit latency.
"""

import pytest

from repro.core.config import ProtocolConfig
from repro.net.bandwidth import BandwidthDelay
from repro.net.conditions import SynchronousDelay
from repro.runtime.cluster import ClusterBuilder
from repro.traffic.slo import percentile

RUN_FOR = 300.0
BATCH_SIZES = [1, 10, 50]


def run_with_batch(batch_size: int, seed: int = 17):
    config = ProtocolConfig(n=4, batch_size=batch_size)
    model = BandwidthDelay(
        bytes_per_second=40_000, latency=SynchronousDelay(delta=0.5, min_delay=0.1)
    )
    cluster = (
        ClusterBuilder(config=config, seed=seed)
        .with_preload(50_000)
        .with_delay_model(model)
        .build()
    )
    cluster.run(until=RUN_FOR)
    return cluster


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_batch_size_sweep(benchmark, report, batch_size):
    cluster = benchmark.pedantic(lambda: run_with_batch(batch_size), rounds=1, iterations=1)
    metrics = cluster.metrics
    committed_txs = sum(
        event.batch_size for event in metrics.commits_at(0)
    )
    tx_throughput = committed_txs / RUN_FOR
    p50 = percentile(metrics.commit_latencies(), 50)
    if p50 is None:
        p50 = float("nan")
    table = report.table(
        "batching",
        headers=["batch size", "tx/s", "blocks", "p50 tx latency (s)", "bytes/tx"],
        title="Ablation — batch size on a 40 kB/s-per-link network",
    )
    bytes_per_tx = metrics.honest_bytes / max(committed_txs, 1)
    table.add_row(
        batch_size,
        f"{tx_throughput:.1f}",
        metrics.decisions(),
        f"{p50:.1f}",
        f"{bytes_per_tx:.0f}",
    )
    benchmark.extra_info["tx_throughput"] = tx_throughput
    assert metrics.decisions() > 0


def test_batching_amortizes_overhead(benchmark, report):
    def pair():
        return run_with_batch(1), run_with_batch(50)

    single, large = benchmark.pedantic(pair, rounds=1, iterations=1)

    def tx_rate(cluster):
        return sum(e.batch_size for e in cluster.metrics.commits_at(0)) / RUN_FOR

    report.note(
        "batching",
        f"tx throughput: batch=1 {tx_rate(single):.1f}/s vs batch=50 "
        f"{tx_rate(large):.1f}/s (batching amortizes header+cert overhead)",
    )
    assert tx_rate(large) > 2 * tx_rate(single)
