"""E12 — client-observed confirmation latency (the SMR contract end to end).

Clients confirm a request once f+1 replicas agree on its commit.  The bench
measures client-side confirmation latency on the fast path and under the
asynchronous adversary — the end-user view of "pay the appropriate cost
depending on the conditions".
"""

import pytest

from repro.analysis.stats import mean_ci
from repro.experiments.scenarios import leader_attack_factory
from repro.runtime.cluster import ClusterBuilder
from repro.traffic.slo import percentile


def run_with_clients(attack: bool, seed: int = 27, confirmations: int = 40):
    builder = (
        ClusterBuilder(n=4, seed=seed)
        .with_preload(0)
        .with_clients(2, outstanding=4, retransmit_interval=60.0)
    )
    if attack:
        builder.with_delay_model_factory(leader_attack_factory())
    cluster = builder.build()
    cluster.run(
        until=200_000,
        stop_when=lambda: cluster.total_confirmations() >= confirmations,
    )
    return cluster


@pytest.mark.parametrize("attack", [False, True], ids=["sync", "async-attack"])
def test_client_confirmation_latency(benchmark, report, attack):
    cluster = benchmark.pedantic(
        lambda: run_with_clients(attack), rounds=1, iterations=1
    )
    latencies = [
        latency
        for client in cluster.clients
        for latency in client.confirmed_latencies()
    ]
    assert len(latencies) >= 40
    p50 = percentile(latencies, 50)
    p95 = percentile(latencies, 95)
    estimate = mean_ci(latencies)
    table = report.table(
        "client",
        headers=["network", "confirmations", "latency p50 (s)", "p95 (s)", "mean ± CI"],
        title="Client-observed confirmation latency (f+1 matching replies, n=4)",
    )
    table.add_row(
        "async (leader-attack)" if attack else "sync",
        len(latencies),
        f"{p50:.1f}",
        f"{p95:.1f}",
        f"{estimate.mean:.1f} [{estimate.low:.1f}, {estimate.high:.1f}]",
    )
    benchmark.extra_info["p50"] = p50
    if not attack:
        # Fast path: ~commit depth rounds of sub-second delays + queueing.
        assert p50 < 30.0
    # Either way the service confirms — the liveness contract end to end.
    assert cluster.total_confirmations() >= 40
