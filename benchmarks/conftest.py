"""Benchmark harness plumbing.

Benches record the table rows they reproduce through the ``report`` fixture;
this conftest prints every recorded table in the terminal summary, so the
output of ``pytest benchmarks/ --benchmark-only`` contains the reproduced
paper artifacts alongside pytest-benchmark's timing table.
"""

from __future__ import annotations

from collections import OrderedDict

import pytest

from repro.analysis.tables import render_table

_REPORTS: "OrderedDict[str, dict]" = OrderedDict()


class ReportRegistry:
    """Collects named tables produced by benchmark runs."""

    def table(self, name: str, headers, title: str = "") -> "TableHandle":
        entry = _REPORTS.setdefault(
            name, {"headers": list(headers), "title": title or name, "rows": []}
        )
        return TableHandle(entry)

    def note(self, name: str, text: str) -> None:
        _REPORTS.setdefault(name, {"headers": None, "title": name, "rows": []})
        _REPORTS[name].setdefault("notes", []).append(text)

    def throughput(self, name: str, run_result) -> None:
        """Record simulator throughput (events/sec) for one measured run.

        ``run_result`` is a :class:`repro.runtime.cluster.RunResult`; the
        numbers land in a shared "simulator throughput" table in the
        terminal summary, next to the protocol tables.
        """
        handle = self.table(
            "simulator-throughput",
            ["run", "events", "wall (s)", "events/sec"],
            title="Simulator throughput",
        )
        handle.add_row(
            name,
            run_result.events_processed,
            f"{run_result.wall_seconds:.3f}",
            f"{run_result.events_per_sec:,.0f}",
        )


class TableHandle:
    def __init__(self, entry: dict) -> None:
        self._entry = entry

    def add_row(self, *cells) -> None:
        self._entry["rows"].append(list(cells))

    def note(self, text: str) -> None:
        self._entry.setdefault("notes", []).append(text)


@pytest.fixture(scope="session")
def report() -> ReportRegistry:
    return ReportRegistry()


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    write = terminalreporter.write_line
    write("")
    write("=" * 78)
    write("REPRODUCED PAPER ARTIFACTS")
    write("=" * 78)
    for entry in _REPORTS.values():
        write("")
        if entry["headers"] is not None and entry["rows"]:
            write(render_table(entry["headers"], entry["rows"], title=entry["title"]))
        else:
            write(entry["title"])
        for note in entry.get("notes", []):
            write(f"  note: {note}")
    _REPORTS.clear()
