"""E10 — throughput under Byzantine faults.

The paper's protocol is designed for n = 3f+1: with up to f arbitrary
faults it must keep committing (via fallbacks when a Byzantine replica's
leader window stalls).  The bench measures decisions per simulated second
and fallback counts as the number of silent faults grows from 0 to f, and
for each Byzantine *behaviour* at full strength.
"""

import pytest

from repro.analysis.safety import check_cluster_safety
from repro.faults import (
    EquivocatingLeader,
    SilentReplica,
    StaleQCLeader,
    WithholdingLeader,
    byzantine,
)
from repro.runtime.cluster import ClusterBuilder

N = 7  # f = 2
RUN_FOR = 400.0


def run_with_faults(count: int, factory=None, seed: int = 15):
    builder = ClusterBuilder(n=N, seed=seed).with_preload(10_000)
    factory = factory or byzantine(SilentReplica)
    for replica_id in range(count):
        builder.with_byzantine(replica_id * 3, factory)  # spread over windows
    cluster = builder.build()
    cluster.run(until=RUN_FOR)
    return cluster


@pytest.mark.parametrize("faults", [0, 1, 2])
def test_throughput_vs_silent_faults(benchmark, report, faults):
    cluster = benchmark.pedantic(lambda: run_with_faults(faults), rounds=1, iterations=1)
    throughput = cluster.metrics.decisions() / RUN_FOR
    table = report.table(
        "faults",
        headers=["faults", "behaviour", "decisions/s", "fallbacks", "safe"],
        title=f"Throughput under Byzantine faults (n={N}, f={(N - 1) // 3})",
    )
    violations = check_cluster_safety(cluster.honest_replicas())
    table.add_row(faults, "silent", f"{throughput:.2f}",
                  cluster.metrics.fallback_count(), "yes" if not violations else "NO")
    benchmark.extra_info["throughput"] = throughput
    assert cluster.metrics.decisions() > 0
    assert not violations


@pytest.mark.parametrize(
    "name,factory",
    [
        ("withholding", byzantine(WithholdingLeader)),
        ("equivocating", byzantine(EquivocatingLeader)),
        ("stale-qc", byzantine(StaleQCLeader)),
    ],
)
def test_throughput_vs_behaviour_at_full_f(benchmark, report, name, factory):
    cluster = benchmark.pedantic(
        lambda: run_with_faults(2, factory=factory), rounds=1, iterations=1
    )
    throughput = cluster.metrics.decisions() / RUN_FOR
    violations = check_cluster_safety(cluster.honest_replicas())
    table = report.table(
        "faults",
        headers=["faults", "behaviour", "decisions/s", "fallbacks", "safe"],
        title=f"Throughput under Byzantine faults (n={N}, f={(N - 1) // 3})",
    )
    table.add_row(2, name, f"{throughput:.2f}", cluster.metrics.fallback_count(),
                  "yes" if not violations else "NO")
    assert cluster.metrics.decisions() > 0
    assert not violations
