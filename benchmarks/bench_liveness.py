"""E4 — Lemma 7 / Theorem 8: liveness and the 2/3 fallback-commit bound.

Runs many independent fallbacks (across seeds) under the asynchronous
adversary and measures the fraction of fallback views whose endorsed chain
committed a new block — the paper proves this happens with probability
≥ 2/3 (the coin must land on one of the ≥ 2f+1 completed chains).  A
DiemBFT control run shows 0 commits under the same adversary.
"""

from repro.experiments.scenarios import build_cluster, leader_attack_factory
from repro.types.blocks import FallbackBlock

SEEDS = range(8)


def measure_fallback_commits():
    committed_views = 0
    exited_views = 0
    for seed in SEEDS:
        cluster = build_cluster(
            "fallback-3chain", 4, seed=seed, delay_factory=leader_attack_factory()
        )
        cluster.run_until_commits(10, until=60_000)
        longest = max(
            (r.ledger.committed_blocks() for r in cluster.honest_replicas()), key=len
        )
        fallback_commit_views = {
            b.view for b in longest if isinstance(b, FallbackBlock)
        }
        views = {
            e.view for e in cluster.metrics.fallback_events if e.kind == "exited"
        }
        exited_views += len(views)
        committed_views += len(fallback_commit_views & views)
    return committed_views, exited_views


def test_lemma7_commit_probability(benchmark, report):
    from repro.analysis.stats import proportion_ci

    committed, total = benchmark.pedantic(measure_fallback_commits, rounds=1, iterations=1)
    estimate = proportion_ci(committed, total)
    table = report.table(
        "liveness",
        headers=["experiment", "measured", "paper claim"],
        title="Lemma 7 / Theorem 8 — liveness under asynchrony",
    )
    table.add_row(
        f"fallback views committing a block ({total} fallbacks)",
        f"{estimate.mean:.2f} (95% CI [{estimate.low:.2f}, {estimate.high:.2f}])",
        ">= 2/3 in expectation",
    )
    benchmark.extra_info["fraction"] = estimate.mean
    benchmark.extra_info["fallbacks"] = total
    assert total >= 20
    # The Wilson upper bound must be compatible with the paper's 2/3 bound.
    assert estimate.high >= 2 / 3
    assert estimate.mean >= 0.45


def test_theorem8_always_live_vs_diembft(benchmark, report):
    def run_pair():
        ours = build_cluster(
            "fallback-3chain", 4, seed=42, delay_factory=leader_attack_factory()
        )
        ours.run(until=2_000)
        baseline = build_cluster(
            "diembft", 4, seed=42, delay_factory=leader_attack_factory()
        )
        baseline.run(until=2_000)
        return ours, baseline

    ours, baseline = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    table = report.table(
        "liveness",
        headers=["experiment", "measured", "paper claim"],
        title="Lemma 7 / Theorem 8 — liveness under asynchrony",
    )
    table.add_row(
        "ours: decisions in 2000s of attack",
        ours.metrics.decisions(),
        "keeps committing (always live)",
    )
    table.add_row(
        "DiemBFT: decisions in 2000s of attack",
        baseline.metrics.decisions(),
        "0 (no liveness under asynchrony)",
    )
    assert ours.metrics.decisions() > 0
    assert baseline.metrics.decisions() == 0


def test_every_entered_fallback_exits(benchmark, report):
    """Lemma 7 first half: fallbacks terminate for every honest replica."""

    def run():
        cluster = build_cluster(
            "fallback-3chain", 7, seed=9, delay_factory=leader_attack_factory()
        )
        cluster.run_until_commits(8, until=60_000)
        cluster.run(until=cluster.scheduler.now + 1_000)
        return cluster

    cluster = benchmark.pedantic(run, rounds=1, iterations=1)
    end_time = cluster.scheduler.now
    entries = {
        (e.replica, e.view): e.time
        for e in cluster.metrics.fallback_events
        if e.kind == "entered"
    }
    exited = {(e.replica, e.view) for e in cluster.metrics.fallback_events
              if e.kind == "exited"}
    # Fallbacks entered near the end of the run are legitimately in flight
    # (the attack delays messages by 60s); anything older must have exited.
    in_flight_horizon = end_time - 300.0
    stuck = {
        key
        for key, entered_at in entries.items()
        if key not in exited and entered_at < in_flight_horizon
    }
    report.note("liveness", f"fallbacks entered {len(entries)}, exited {len(exited)}")
    assert not stuck, f"replicas stuck in old fallbacks: {stuck}"
