"""E9 — ablation: round-timeout choice.

The round timeout is the protocol's only tuning knob: too small and jittery
synchronous networks trigger spurious fallbacks (paying quadratic cost for
nothing — though never losing safety or liveness); large and a genuinely
bad network wastes time before the fallback engages.  The bench sweeps the
timeout against a jittery-but-synchronous network and reports spurious
fallback counts and per-decision cost.
"""

import pytest

from repro.core.config import ProtocolConfig
from repro.net.conditions import SynchronousDelay
from repro.runtime.cluster import ClusterBuilder

#: Jittery synchrony: delays up to 2.0 — a round needs up to ~4s.
JITTERY = SynchronousDelay(delta=2.0, min_delay=0.2)

TIMEOUTS = [2.0, 5.0, 15.0]


def run_with_timeout(timeout: float, seed: int = 8):
    config = ProtocolConfig(n=4, round_timeout=timeout)
    cluster = (
        ClusterBuilder(config=config, seed=seed)
        .with_delay_model(JITTERY)
        .build()
    )
    cluster.run_until_commits(40, until=30_000)
    return cluster


@pytest.mark.parametrize("timeout", TIMEOUTS)
def test_timeout_sweep(benchmark, report, timeout):
    cluster = benchmark.pedantic(lambda: run_with_timeout(timeout), rounds=1, iterations=1)
    metrics = cluster.metrics
    table = report.table(
        "timeout",
        headers=["round timeout (s)", "spurious fallbacks", "msgs/decision", "decisions"],
        title="Ablation — round-timeout sensitivity under jittery synchrony (Δ=2)",
    )
    table.add_row(
        timeout,
        metrics.fallback_count(),
        f"{metrics.messages_per_decision():.1f}",
        metrics.decisions(),
    )
    benchmark.extra_info["fallbacks"] = metrics.fallback_count()
    # Liveness and safety hold at every setting; only cost varies.
    assert metrics.decisions() >= 40
    from repro.analysis.safety import check_cluster_safety

    assert not check_cluster_safety(cluster.honest_replicas())


def test_tight_timeout_costs_more_than_generous(benchmark, report):
    def sweep():
        return {t: run_with_timeout(t) for t in (2.0, 15.0)}

    clusters = benchmark.pedantic(sweep, rounds=1, iterations=1)
    tight = clusters[2.0].metrics
    generous = clusters[15.0].metrics
    report.note(
        "timeout",
        f"tight (2s): {tight.fallback_count()} fallbacks, "
        f"{tight.messages_per_decision():.1f} msgs/dec; "
        f"generous (15s): {generous.fallback_count()} fallbacks, "
        f"{generous.messages_per_decision():.1f} msgs/dec",
    )
    assert generous.fallback_count() == 0
    assert tight.fallback_count() >= 1
    assert tight.messages_per_decision() > generous.messages_per_decision()
