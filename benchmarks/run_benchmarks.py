#!/usr/bin/env python3
"""Benchmark driver: run the canonical simulator scenarios and track the
throughput trajectory in ``BENCH_simcore.json`` at the repo root.

Each invocation appends one entry — ``{label, commit, timestamp, results}``
— so the file accumulates a perf history across commits.  Two extra checks
gate every recorded run:

- **determinism**: each scenario runs twice with the same seed and must
  produce identical fingerprints (see :mod:`benchmarks.bench_simcore`);
- **parallel sweep**: an 8-seed sweep through
  :func:`repro.runtime.parallel.run_seed_sweep` must match the serial loop
  result-for-result.

Usage::

    PYTHONPATH=src python benchmarks/run_benchmarks.py --label "my change"
    PYTHONPATH=src python benchmarks/run_benchmarks.py --quick   # smoke only
    PYTHONPATH=src python benchmarks/run_benchmarks.py --profile # cProfile
    PYTHONPATH=src python benchmarks/run_benchmarks.py --complexity
    PYTHONPATH=src python benchmarks/run_benchmarks.py \
        --import-results old.json --label baseline --commit abc1234
"""

from __future__ import annotations

import argparse
import datetime
import json
import subprocess
import sys
from pathlib import Path
from typing import Optional

_REPO_ROOT = Path(__file__).resolve().parent.parent
_SRC = _REPO_ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

sys.path.insert(0, str(_REPO_ROOT / "benchmarks"))

from bench_simcore import SCENARIOS, check_determinism, run_scenario  # noqa: E402

from repro.experiments.scenarios import sweep_sync  # noqa: E402

RESULTS_PATH = _REPO_ROOT / "BENCH_simcore.json"
LIVE_RESULTS_PATH = _REPO_ROOT / "BENCH_live.json"

SWEEP_SEEDS = list(range(1, 9))


def git_commit() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=_REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
        return out.stdout.strip() or "unknown"
    except OSError:
        return "unknown"


def load_history(path: Path = RESULTS_PATH) -> list[dict]:
    if path.exists():
        return json.loads(path.read_text())
    return []


def append_entry(entry: dict, path: Path = RESULTS_PATH) -> None:
    history = load_history(path)
    history.append(entry)
    path.write_text(json.dumps(history, indent=2) + "\n")


def run_live(args, timestamp: str) -> int:
    """Run the multi-process chaos benchmark into ``BENCH_live.json``.

    Wall-clock figures, not fingerprints: the entry records the host's
    actual throughput/latency/recovery numbers for this commit.
    """
    from bench_live import run_live_chaos

    results = run_live_chaos(
        n=args.live_n,
        kills=args.live_kills,
        target_commits=args.live_commits,
        duration=args.live_duration,
        seed=args.seed,
    )
    swarm = results.get("swarm") or {}
    print(
        f"live chaos: {results['commits']} commits in "
        f"{results['wall_seconds']:.1f}s, {results['kills_executed']} kills, "
        f"max recovery {results['recovery_seconds_max']}, "
        f"swarm p50 {swarm.get('latency_p50')}, "
        f"consistent={results['prefixes_consistent']}"
    )
    if not results["ok"]:
        print("LIVE CHAOS RUN FAILED (inconsistent prefixes, timeout, or "
              "commit target missed); not recording")
        return 2
    entry = {
        "label": args.label or "live",
        "commit": git_commit(),
        "timestamp": timestamp,
        "results": results,
    }
    if args.comment:
        entry["comment"] = args.comment
    append_entry(entry, LIVE_RESULTS_PATH)
    print(f"recorded entry in {LIVE_RESULTS_PATH}")
    return 0


def run_profile(scenario: str, seed: int, top: int = 25) -> int:
    """cProfile one scenario and print the hottest functions.

    Used to find the next hot path: run it before and after an
    optimization and compare the cumulative-time table.
    """
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    entry = run_scenario(scenario, seed=seed)
    profiler.disable()
    print(
        f"{scenario}: {entry['decisions']} decisions, {entry['events']} events "
        f"in {entry['wall_seconds']:.2f}s "
        f"({entry['events_per_sec']:,.0f} events/sec)\n"
    )
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats("cumulative").print_stats(top)
    return 0


def run_complexity(args) -> int:
    """Run the O(n)-vs-O(n²) sweep (see :mod:`benchmarks.bench_complexity`)."""
    from bench_complexity import DEFAULT_NS, render, run_sweep

    sweep = run_sweep(list(DEFAULT_NS), seed=args.seed)
    print()
    print(render(sweep))
    bad = [
        fit
        for fit in sweep["fits"]
        if fit["claimed"] is not None and not fit["matches_claim"]
    ]
    if bad:
        print(f"COMPLEXITY MISMATCH vs Table 1: {bad}")
        return 2
    return 0


def check_parallel_sweep(processes: int = 2) -> dict:
    """Serial vs parallel 8-seed sweep must agree result-for-result."""
    serial = sweep_sync("fallback-3chain", 4, SWEEP_SEEDS, target_commits=20, processes=1)
    parallel = sweep_sync(
        "fallback-3chain", 4, SWEEP_SEEDS, target_commits=20, processes=processes
    )
    if serial != parallel:
        raise SystemExit(
            "PARALLEL SWEEP MISMATCH: parallel seed sweep differs from serial "
            f"(seeds {SWEEP_SEEDS})"
        )
    return {
        "seeds": SWEEP_SEEDS,
        "decisions": [result.decisions for result in serial],
        "parallel_matches_serial": True,
    }


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--label", default="", help="entry label (e.g. the change)")
    parser.add_argument(
        "--comment",
        default=None,
        help="free-form note recorded on the entry (e.g. why a baseline "
             "was re-recorded)",
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="steady-n4 determinism smoke only; nothing is recorded",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="cProfile the hottest scenario and print the top functions "
             "by cumulative time; nothing is recorded",
    )
    parser.add_argument(
        "--profile-scenario",
        default="fallback-n64",
        choices=sorted(SCENARIOS),
        help="scenario to profile (default: %(default)s, the hottest)",
    )
    parser.add_argument(
        "--profile-top",
        type=int,
        default=25,
        help="how many rows of the profile table to print",
    )
    parser.add_argument(
        "--complexity",
        action="store_true",
        help="run the O(n)-vs-O(n²) complexity sweep and check the fitted "
             "exponents against Table 1; nothing is recorded",
    )
    parser.add_argument(
        "--live",
        action="store_true",
        help="run the multi-process SIGKILL-chaos benchmark into "
             "BENCH_live.json instead of the simulator scenarios",
    )
    parser.add_argument(
        "--traffic",
        action="store_true",
        help="run the saturation-knee search into BENCH_traffic.json "
             "(see benchmarks/bench_saturation.py) instead of the "
             "simulator scenarios",
    )
    parser.add_argument("--live-n", type=int, default=4)
    parser.add_argument("--live-kills", type=int, default=2)
    parser.add_argument("--live-commits", type=int, default=20)
    parser.add_argument("--live-duration", type=float, default=90.0)
    parser.add_argument(
        "--skip-sweep-check",
        action="store_true",
        help="skip the parallel-vs-serial sweep verification",
    )
    parser.add_argument(
        "--import-results",
        type=Path,
        default=None,
        help="append a bench_simcore --json results file instead of running",
    )
    parser.add_argument("--commit", default=None, help="commit for --import-results")
    args = parser.parse_args(argv)

    timestamp = datetime.datetime.now(datetime.timezone.utc).isoformat(
        timespec="seconds"
    )

    if args.profile:
        return run_profile(args.profile_scenario, args.seed, args.profile_top)

    if args.complexity:
        return run_complexity(args)

    if args.live:
        return run_live(args, timestamp)

    if args.traffic:
        from bench_saturation import main as traffic_main

        forwarded = ["--seed", str(args.seed)]
        if args.label:
            forwarded += ["--label", args.label]
        return traffic_main(forwarded)

    if args.import_results is not None:
        entry = {
            "label": args.label or "imported",
            "commit": args.commit or "unknown",
            "timestamp": timestamp,
            "results": json.loads(args.import_results.read_text()),
        }
        if args.comment:
            entry["comment"] = args.comment
        append_entry(entry)
        print(f"imported {args.import_results} into {RESULTS_PATH}")
        return 0

    if args.quick:
        entry = check_determinism(
            "steady-n4", args.seed, target_commits=100, max_events=50_000
        )
        print(
            f"quick smoke ok: {entry['events']} events at "
            f"{entry['events_per_sec']:,.0f} events/sec, "
            f"fingerprint {entry['fingerprint']}"
        )
        return 0

    results = []
    for name in sorted(SCENARIOS):
        entry = check_determinism(name, args.seed)
        results.append(entry)
        print(
            f"{name:<14} events={entry['events']:<8} "
            f"wall={entry['wall_seconds']:.3f}s "
            f"events/sec={entry['events_per_sec']:,.0f} "
            f"fp={entry['fingerprint'][:12]} determinism=ok"
        )

    sweep = None
    if not args.skip_sweep_check:
        sweep = check_parallel_sweep()
        print(f"parallel sweep ok over seeds {sweep['seeds']}")

    entry = {
        "label": args.label or "run",
        "commit": git_commit(),
        "timestamp": timestamp,
        "results": results,
        "sweep_check": sweep,
    }
    if args.comment:
        entry["comment"] = args.comment
    append_entry(entry)
    print(f"recorded entry in {RESULTS_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
