#!/usr/bin/env python3
"""E14 — saturation: max sustainable throughput and the latency knee.

Binary-searches the max sustainable offered rate (goodput >= 95% of
offered) for each canonical traffic scenario — steady state at n in
{4, 16, 64}, a 20%-loss network, and the leader-targeting asynchronous
adversary (fallback-heavy) — plus one **live wall-clock** probe ladder over
real localhost TCP, and an adaptive-vs-fixed batching comparison at the
steady-n4 knee.  Results append to ``BENCH_traffic.json`` at the repo root
(one history entry per invocation, like the other BENCH files).

Usage::

    PYTHONPATH=src python benchmarks/bench_saturation.py --label "my change"
    PYTHONPATH=src python benchmarks/bench_saturation.py --quick   # CI smoke
    PYTHONPATH=src python benchmarks/bench_saturation.py --no-live
"""

from __future__ import annotations

import argparse
import datetime
import json
import subprocess
import sys
import time
from pathlib import Path
from typing import Optional

_REPO_ROOT = Path(__file__).resolve().parent.parent
_SRC = _REPO_ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.traffic.saturation import (  # noqa: E402
    compare_batching,
    default_scenarios,
    find_knee,
)

RESULTS_PATH = _REPO_ROOT / "BENCH_traffic.json"

#: Live probe ladder: wall-clock rates tried lowest-first; the knee is the
#: highest sustainable one.  Kept coarse — every probe costs real seconds.
LIVE_RATES = (50.0, 200.0, 800.0)


def git_commit() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=_REPO_ROOT, capture_output=True, text=True, timeout=10,
        )
        return out.stdout.strip() or "unknown"
    except OSError:
        return "unknown"


def run_live_ladder(
    rates=LIVE_RATES,
    duration: float = 4.0,
    drain: float = 8.0,
    seed: int = 1,
) -> dict:
    """Wall-clock open-loop probes over real TCP (n=4, 1s round timeout)."""
    from repro.runtime.live import LiveCluster

    probes = []
    knee_rate = 0.0
    knee: Optional[dict] = None
    for rate in rates:
        cluster = LiveCluster(n=4, seed=seed, round_timeout=1.0, preload=0)
        result = cluster.run_open_loop(
            rate, duration, drain=drain, mempool_capacity=1600, loadgen_seed=seed
        )
        result["sustainable"] = result["goodput_ratio"] >= 0.95
        probes.append(result)
        print(
            f"  live rate={rate:>6g}/s goodput={result['goodput']:.1f} "
            f"ratio={result['goodput_ratio']:.3f} "
            f"p50={result['latency']['p50']} rejects={result['rejected']} "
            f"consistent={result['ledgers_consistent']}"
        )
        if result["sustainable"] and result["ledgers_consistent"]:
            knee_rate, knee = rate, result
    return {
        "scenario": {"name": "live-n4", "n": 4, "network": "tcp-localhost"},
        "max_sustainable_rate": knee_rate,
        "knee": knee,
        "curve": probes,
    }


def run_traffic_bench(
    seed: int = 1,
    duration: float = 120.0,
    drain: float = 60.0,
    include_live: bool = True,
    live_duration: float = 4.0,
    sizes: Optional[list[str]] = None,
) -> dict:
    scenarios = default_scenarios()
    if sizes:
        scenarios = {name: scenarios[name] for name in sizes}
    report: dict = {"scenarios": {}}
    for name, scenario in scenarios.items():
        start = time.perf_counter()
        result = find_knee(scenario, duration=duration, drain=drain, seed=seed)
        report["scenarios"][name] = result.to_json()
        knee = result.knee
        print(
            f"{name:<12} knee={result.knee_rate:>7g}/s "
            f"goodput={knee.goodput if knee else 0:>7.1f} "
            f"p50={knee.latency.p50 if knee else None} "
            f"p99={knee.latency.p99 if knee else None} "
            f"probes={len(result.curve)} "
            f"wall={time.perf_counter() - start:.1f}s"
        )
    if "steady-n4" in report["scenarios"]:
        knee_rate = report["scenarios"]["steady-n4"]["max_sustainable_rate"]
        comparison = compare_batching(
            default_scenarios()["steady-n4"], knee_rate,
            duration=duration, drain=drain, seed=seed,
        )
        report["batching_comparison"] = comparison
        print(
            f"adaptive vs fixed at {knee_rate:g}/s: adaptive committed "
            f"{comparison['adaptive']['committed']}, best fixed "
            f"(batch={comparison['best_fixed_size']}) committed "
            f"{comparison['fixed'][str(comparison['best_fixed_size'])]['committed']}"
            f" -> matches={comparison['adaptive_matches_best_fixed']}"
        )
    if include_live:
        print("live-n4 ladder:")
        report["scenarios"]["live-n4"] = run_live_ladder(
            duration=live_duration, seed=seed
        )
    return report


def load_history(path: Path = RESULTS_PATH) -> list[dict]:
    if path.exists():
        return json.loads(path.read_text())
    return []


def append_entry(entry: dict, path: Path = RESULTS_PATH) -> None:
    history = load_history(path)
    history.append(entry)
    path.write_text(json.dumps(history, indent=2) + "\n")


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--label", default="", help="entry label")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--duration", type=float, default=120.0)
    parser.add_argument("--drain", type=float, default=60.0)
    parser.add_argument("--no-live", action="store_true",
                        help="skip the wall-clock TCP scenario")
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced budget (shorter probes, no n=64): the CI smoke",
    )
    parser.add_argument("--no-record", action="store_true",
                        help="print results without touching BENCH_traffic.json")
    args = parser.parse_args(argv)

    kwargs: dict = {
        "seed": args.seed,
        "duration": args.duration,
        "drain": args.drain,
        "include_live": not args.no_live,
    }
    if args.quick:
        kwargs.update(
            duration=40.0, drain=30.0, live_duration=2.0,
            sizes=["steady-n4", "steady-n16", "lossy20-n4", "fallback-n4"],
        )
    results = run_traffic_bench(**kwargs)

    entry = {
        "label": args.label or ("quick" if args.quick else "run"),
        "commit": git_commit(),
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "quick": args.quick,
        "results": results,
    }
    if args.no_record:
        print("(--no-record: not writing BENCH_traffic.json)")
        return 0
    append_entry(entry)
    print(f"recorded entry in {RESULTS_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
