"""E8 — partial synchrony: behaviour across GST.

The deployment story of the introduction: the network is asynchronous until
some unknown global stabilization time, then synchronous.  The paper's
protocol commits *before* GST (via fallbacks) and snaps back to the linear
fast path after; DiemBFT commits nothing until GST and recovers only then.
"""

import pytest

from repro.experiments.scenarios import build_cluster
from repro.net.conditions import (
    AsynchronousDelay,
    PartialSynchronyDelay,
    SynchronousDelay,
)

GST = 300.0
END = 800.0


def gst_model():
    # Pre-GST delays are far beyond the 5s round timeout (so rounds fail and
    # fallbacks run) but bounded enough that a ~10-hop fallback completes
    # well within the pre-GST window.
    return PartialSynchronyDelay(
        gst=GST,
        before=AsynchronousDelay(base_delay=6.0, tail_scale=10.0, max_delay=35.0),
        after=SynchronousDelay(delta=1.0),
    )


def run_through_gst(protocol, seed=3):
    cluster = build_cluster(protocol, 4, seed=seed, delay_model=gst_model())
    cluster.run(until=END)
    return cluster


@pytest.mark.parametrize("protocol", ["fallback-3chain", "diembft"])
def test_gst_behaviour(benchmark, report, protocol):
    cluster = benchmark.pedantic(lambda: run_through_gst(protocol), rounds=1, iterations=1)
    commits = cluster.metrics.commits_at(cluster.honest_ids[0])
    pre = sum(1 for event in commits if event.time < GST)
    post = [event.time for event in commits if event.time >= GST]
    first_post = min(post) - GST if post else None
    table = report.table(
        "gst",
        headers=["protocol", "commits before GST", "first commit after GST (s)", "paper"],
        title=f"Partial synchrony — commits across GST={GST} (async before, sync after)",
    )
    table.add_row(
        protocol,
        pre,
        f"+{first_post:.1f}" if first_post is not None else "-",
        "live before GST" if protocol.startswith("fallback") else "recovers only after GST",
    )
    benchmark.extra_info["pre_gst_commits"] = pre
    if protocol == "fallback-3chain":
        assert pre > 0, "the fallback protocol must commit before GST"
    assert post, f"{protocol} must commit after GST"


def test_fast_path_resumes_after_gst(benchmark, report):
    cluster = benchmark.pedantic(
        lambda: run_through_gst("fallback-3chain", seed=5), rounds=1, iterations=1
    )
    # After GST settles (allow in-flight tail), no further fallbacks start.
    late_fallbacks = [
        event
        for event in cluster.metrics.fallback_events
        if event.kind == "entered" and event.time > GST + 120.0
    ]
    report.note("gst", f"fallbacks entered after GST+120s: {len(late_fallbacks)}")
    commits = cluster.metrics.commits_at(cluster.honest_ids[0])
    late_rate = sum(1 for e in commits if e.time > GST + 120.0) / (END - GST - 120.0)
    report.note("gst", f"post-GST steady throughput: {late_rate:.2f} blocks/s")
    assert not late_fallbacks
    assert late_rate > 0.1
