#!/usr/bin/env python3
"""Live-cluster chaos benchmark: multi-process, SIGKILL, client swarm.

The acceptance scenario of the multi-process runtime, measured on the
wall clock:

- n replicas, each its own OS process over real localhost TCP,
- a :func:`~repro.runtime.supervisor.kill_schedule` that SIGKILLs and
  restarts replicas while the cluster keeps committing,
- a closed-loop client swarm confirming commits with f+1 matching replies,
- the run passes when every replica reaches the commit target with
  pairwise prefix-consistent ledgers.

Recorded per run: wall-clock throughput, client-observed commit-latency
percentiles (p50/p95/p99), per-kill restart and catch-up ("recovery")
times, and the transport's error-containment counters.  Unlike the
simulator benchmarks these figures are *not* deterministic — they describe
a real host's scheduling — so ``BENCH_live.json`` tracks a trajectory, not
fingerprints.

Usage::

    PYTHONPATH=src python benchmarks/bench_live.py --json
    PYTHONPATH=src python benchmarks/run_benchmarks.py --live --label "..."
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import tempfile
from pathlib import Path
from typing import Optional

_REPO_ROOT = Path(__file__).resolve().parent.parent
_SRC = _REPO_ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.client.swarm import ClientSwarm  # noqa: E402
from repro.runtime.spec import ClusterSpec  # noqa: E402
from repro.runtime.supervisor import Supervisor, kill_schedule  # noqa: E402


def run_live_chaos(
    n: int = 4,
    kills: int = 2,
    target_commits: int = 20,
    duration: float = 90.0,
    swarm_clients: int = 2,
    swarm_outstanding: int = 4,
    preload: int = 0,
    data_dir: Optional[str] = None,
    seed: int = 0,
) -> dict:
    """Run the chaos scenario once; returns the results dict.

    With ``preload=0`` (the default here) all committed transactions come
    from the swarm, so client-side confirmation latency covers the whole
    pipeline; benchmarks that only need commit pressure can preload.
    """
    owned_dir = None
    if data_dir is None:
        owned_dir = tempfile.TemporaryDirectory(prefix="repro-bench-live-")
        data_dir = owned_dir.name
    spec = ClusterSpec.create(n, data_dir, seed=seed, preload=preload)
    schedule = kill_schedule(kills, n) if kills else None

    async def run():
        supervisor = Supervisor(spec, schedule=schedule)
        swarm = (
            ClientSwarm(
                spec,
                clients=swarm_clients,
                mode="closed",
                outstanding=swarm_outstanding,
            )
            if swarm_clients
            else None
        )
        swarm_task = None
        await supervisor.start()
        try:
            if swarm is not None:
                swarm_task = asyncio.get_running_loop().create_task(
                    swarm.run(duration=duration), name="bench-swarm"
                )
            report = await supervisor.wait(
                target_commits=target_commits, duration=duration
            )
        finally:
            if swarm_task is not None:
                swarm_task.cancel()
                await asyncio.gather(swarm_task, return_exceptions=True)
            await supervisor.stop()
        return report, (swarm.report() if swarm is not None else None)

    try:
        report, swarm_report = asyncio.run(run())
    finally:
        if owned_dir is not None:
            owned_dir.cleanup()

    recoveries = [
        record.recovery_seconds
        for record in report.kills
        if record.recovery_seconds is not None
    ]
    results = {
        "scenario": "chaos-kill9",
        "n": n,
        "kills_scheduled": kills,
        "kills_executed": len(report.kills),
        "target_commits": target_commits,
        "commits": report.commits,
        "max_height": report.max_height,
        "prefixes_consistent": report.prefixes_consistent,
        "timed_out": report.timed_out,
        "ok": report.ok and report.commits >= target_commits,
        "wall_seconds": report.wall_seconds,
        "commit_throughput_bps": (
            report.commits / report.wall_seconds if report.wall_seconds > 0 else 0.0
        ),
        "kills": [record.to_json() for record in report.kills],
        "recovery_seconds_max": max(recoveries, default=None),
        "unexpected_restarts": report.restarts,
        "down": report.down,
        "transport_totals": report.transport_totals,
    }
    if swarm_report is not None:
        results["swarm"] = swarm_report.to_json()
    return results


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=4)
    parser.add_argument("--kills", type=int, default=2)
    parser.add_argument("--commits", type=int, default=20)
    parser.add_argument("--duration", type=float, default=90.0)
    parser.add_argument("--swarm", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--data-dir", default=None)
    parser.add_argument("--json", action="store_true")
    args = parser.parse_args(argv)

    results = run_live_chaos(
        n=args.n,
        kills=args.kills,
        target_commits=args.commits,
        duration=args.duration,
        swarm_clients=args.swarm,
        data_dir=args.data_dir,
        seed=args.seed,
    )
    if args.json:
        print(json.dumps(results, indent=2))
    else:
        print(
            f"chaos-kill9 n={results['n']}: {results['commits']} commits "
            f"in {results['wall_seconds']:.1f}s "
            f"({results['commit_throughput_bps']:.2f} blocks/s), "
            f"{results['kills_executed']} kills, "
            f"max recovery {results['recovery_seconds_max']}, "
            f"consistent={results['prefixes_consistent']}"
        )
        swarm = results.get("swarm")
        if swarm:
            print(
                f"swarm: {swarm['confirmed']}/{swarm['submitted']} confirmed "
                f"at {swarm['throughput_tps']:.1f} tx/s, "
                f"p50={swarm['latency_p50']} p95={swarm['latency_p95']} "
                f"p99={swarm['latency_p99']}"
            )
    return 0 if results["ok"] else 2


if __name__ == "__main__":
    raise SystemExit(main())
