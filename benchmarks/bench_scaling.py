"""E5 — Theorem 9: O(n) sync / O(n²) async scaling.

Sweeps cluster sizes, measures messages per decision for the paper's
protocol on both network regimes, and fits the log-log slope.  The paper's
claim reproduces as slope ≈ 1 on the synchronous fast path and slope ≈ 2 on
the asynchronous fallback path.
"""

from repro.analysis.complexity import classify_complexity, fit_loglog_slope
from repro.experiments.scenarios import run_async_attack, run_sync

SIZES = [4, 7, 10, 16, 31]


def sweep_sync():
    return [run_sync("fallback-3chain", n=n, seed=2, target_commits=30) for n in SIZES]


def sweep_async():
    return [
        run_async_attack("fallback-3chain", n=n, seed=2, target_commits=8, until=50_000)
        for n in SIZES
    ]


def test_sync_scaling_is_linear(benchmark, report):
    results = benchmark.pedantic(sweep_sync, rounds=1, iterations=1)
    costs = [result.messages_per_decision for result in results]
    slope = fit_loglog_slope(SIZES, costs)
    benchmark.extra_info["slope"] = slope
    table = report.table(
        "scaling",
        headers=["n", "sync msgs/dec", "async msgs/dec"],
        title="Theorem 9 — per-decision message cost vs cluster size",
    )
    for n, cost in zip(SIZES, costs):
        table.add_row(n, cost, "")
    table.note(f"sync slope {slope:.2f} -> {classify_complexity(slope)} (paper: O(n))")
    assert 0.7 <= slope <= 1.3, f"sync path slope {slope} is not linear"


def test_async_scaling_is_quadratic(benchmark, report):
    results = benchmark.pedantic(sweep_async, rounds=1, iterations=1)
    costs = [result.messages_per_decision for result in results]
    slope = fit_loglog_slope(SIZES, costs)
    benchmark.extra_info["slope"] = slope
    table = report.table(
        "scaling",
        headers=["n", "sync msgs/dec", "async msgs/dec"],
        title="Theorem 9 — per-decision message cost vs cluster size",
    )
    for n, cost in zip(SIZES, costs):
        table.add_row(n, "", cost)
    table.note(f"async slope {slope:.2f} -> {classify_complexity(slope)} (paper: O(n^2))")
    assert all(result.live for result in results), "fallback must stay live at all sizes"
    assert 1.6 <= slope <= 2.4, f"async path slope {slope} is not quadratic"


def test_bytes_scaling_sync(benchmark, report):
    """Same claim in bytes: threshold signatures keep certificates O(1), so
    bytes/decision also scales linearly on the fast path."""
    results = benchmark.pedantic(sweep_sync, rounds=1, iterations=1)
    costs = [result.bytes_per_decision for result in results]
    slope = fit_loglog_slope(SIZES, costs)
    benchmark.extra_info["slope"] = slope
    report.note(
        "scaling",
        f"bytes/decision sync slope {slope:.2f} (threshold sigs keep certs constant-size)",
    )
    assert slope <= 1.4
