"""E6 — Section 4 / Figure 4: 2-chain commit for free.

Compares the 3-chain and 2-chain variants: commit latency in rounds (the
paper: 6 rounds -> 4 rounds counting proposal+vote per round), fallback
chain length (3 heights -> 2), and confirms neither costs extra messages.
"""

from repro.experiments.scenarios import build_cluster, leader_attack_factory


def run_sync_pair(commits=40, seed=4, n=4):
    out = {}
    for name in ("fallback-3chain", "fallback-2chain"):
        cluster = build_cluster(name, n, seed=seed)
        result = cluster.run_until_commits(commits, until=20_000)
        out[name] = (cluster, result)
    return out


def commit_lag_rounds(cluster):
    """Median number of rounds between a block's round and the highest round
    entered when it committed (chain depth at commit time)."""
    entries = {}
    for replica, round_number, time in cluster.metrics.round_entries:
        if replica == 0:
            entries[round_number] = min(entries.get(round_number, time), time)
    lags = []
    for event in cluster.metrics.commits_at(0):
        rounds_after = [r for r, t in entries.items() if t <= event.time]
        if rounds_after:
            lags.append(max(rounds_after) - event.round)
    lags.sort()
    return lags[len(lags) // 2] if lags else None


def test_commit_latency_in_rounds(benchmark, report):
    pairs = benchmark.pedantic(run_sync_pair, rounds=1, iterations=1)
    table = report.table(
        "two-chain",
        headers=["variant", "measured", "paper (Section 4)"],
        title="Section 4 — 2-chain commit strictly improves latency",
    )
    lag3 = commit_lag_rounds(pairs["fallback-3chain"][0])
    lag2 = commit_lag_rounds(pairs["fallback-2chain"][0])
    table.add_row("3-chain: chain depth at commit (rounds)", lag3, "2 extra rounds (3-chain rule)")
    table.add_row("2-chain: chain depth at commit (rounds)", lag2, "1 extra round (2-chain rule)")
    benchmark.extra_info["lag3"] = lag3
    benchmark.extra_info["lag2"] = lag2
    assert lag2 < lag3


def test_commit_latency_in_time(benchmark, report):
    pairs = benchmark.pedantic(run_sync_pair, rounds=1, iterations=1)
    table = report.table(
        "two-chain",
        headers=["variant", "measured", "paper (Section 4)"],
        title="Section 4 — 2-chain commit strictly improves latency",
    )
    times = {}
    for name, (cluster, result) in pairs.items():
        events = cluster.metrics.commits_at(0)
        entries = {}
        for replica, round_number, time in cluster.metrics.round_entries:
            if replica == 0:
                entries.setdefault(round_number, time)
        lags = sorted(
            event.time - entries[event.round]
            for event in events
            if event.round in entries
        )
        times[name] = lags[len(lags) // 2]
        table.add_row(f"{name}: commit lag after round entry (s)", f"{times[name]:.2f}",
                      "4 rounds vs 6 rounds of latency")
    assert times["fallback-2chain"] < times["fallback-3chain"]


def test_fallback_chain_is_shorter(benchmark, report):
    def run_attacked_pair():
        out = {}
        for name in ("fallback-3chain", "fallback-2chain"):
            cluster = build_cluster(
                name, 4, seed=6, delay_factory=leader_attack_factory()
            )
            cluster.run_until_commits(5, until=50_000)
            out[name] = cluster
        return out

    clusters = benchmark.pedantic(run_attacked_pair, rounds=1, iterations=1)
    table = report.table(
        "two-chain",
        headers=["variant", "measured", "paper (Section 4)"],
        title="Section 4 — 2-chain commit strictly improves latency",
    )
    for name, cluster in clusters.items():
        engine = cluster.honest_replicas()[0].fallback
        max_height = max(
            (height for (_view, _proposer, height) in engine.fqcs), default=0
        )
        table.add_row(f"{name}: max f-chain height", max_height,
                      "3 heights vs 2 heights per fallback chain")
        assert max_height == cluster.config.fallback_top_height
        assert cluster.metrics.decisions() >= 5


def test_sync_cost_unchanged(benchmark, report):
    pairs = benchmark.pedantic(run_sync_pair, rounds=1, iterations=1)
    cost3 = pairs["fallback-3chain"][0].metrics.messages_per_decision()
    cost2 = pairs["fallback-2chain"][0].metrics.messages_per_decision()
    report.note(
        "two-chain",
        f"sync msgs/decision: 3-chain {cost3:.1f} vs 2-chain {cost2:.1f} "
        "(latency gain costs nothing)",
    )
    assert abs(cost3 - cost2) / cost3 < 0.25
