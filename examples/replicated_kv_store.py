#!/usr/bin/env python3
"""A replicated key-value store riding on the consensus protocol.

Shows the SMR API a downstream application uses: clients submit commands,
the protocol orders them into blocks, every replica's state machine applies
the same sequence, and reads served from any replica agree on committed
prefixes.  Midway through, an asynchronous burst and a crashed replica show
the service surviving real trouble.

Run:  python examples/replicated_kv_store.py
"""

from repro import ClusterBuilder
from repro.analysis.safety import assert_cluster_safety
from repro.faults import CrashReplica, byzantine
from repro.ledger.ledger import KVStateMachine
from repro.net.conditions import (
    AsynchronousDelay,
    NetworkSchedule,
    SynchronousDelay,
)
from repro.types.transactions import Transaction


def command(index: int, key: str, value: str) -> Transaction:
    return Transaction(
        tx_id=f"client-{index}",
        client=1,
        payload=f"set {key} {value}",
        payload_size=64,
    )


def main() -> None:
    schedule = NetworkSchedule(
        [
            (0.0, SynchronousDelay(delta=1.0)),
            (40.0, AsynchronousDelay(base_delay=8.0, tail_scale=15.0, max_delay=50.0)),
            (120.0, SynchronousDelay(delta=1.0)),
        ]
    )
    cluster = (
        ClusterBuilder(n=4, seed=21)
        .with_state_machine(KVStateMachine)
        .with_preload(0)  # we submit our own commands below
        .with_byzantine(3, byzantine(CrashReplica, crash_at=60.0))
        .with_delay_model(schedule)
        .build()
    )

    # A banking-flavoured command stream: 150 account updates.
    for index in range(150):
        cluster.submit(command(index, key=f"account-{index % 10}", value=str(100 + index)))

    cluster.run(until=400.0)

    print("=== replicated KV store: 4 replicas, async burst + crash at t=60 ===")
    alive = cluster.honest_replicas()
    heights = {replica.process_id: replica.ledger.height for replica in alive}
    print(f"committed log heights       : {heights}")
    committed_cmds = alive[0].ledger.committed_transactions()
    print(f"commands committed          : {len(committed_cmds)} / 150")
    print(f"fallbacks during the burst  : {cluster.metrics.fallback_count()}")

    # Reads: every replica agrees on the final balances it has applied.
    states = [replica.ledger.state_machine.data for replica in alive]
    reference_height = max(heights.values())
    reference = next(
        replica for replica in alive if replica.ledger.height == reference_height
    )
    print(f"account-0 balance (any replica at head): "
          f"{reference.ledger.state_machine.data.get('account-0')}")
    agree = all(
        state == reference.ledger.state_machine.data
        for replica, state in zip(alive, states)
        if replica.ledger.height == reference_height
    )
    print(f"replicas at head agree      : {agree}")
    assert_cluster_safety(alive)
    print("safety                      : OK")


if __name__ == "__main__":
    main()
