#!/usr/bin/env python3
"""The paper's motivating scenario: be prepared when the network goes bad.

A cluster runs under synchrony, the network then degrades to asynchrony for
a while (heavy-tailed adversarial delays far beyond the round timeout), and
finally recovers.  The fallback protocol keeps committing the whole time:
linear fast path while the network is good, quadratic-but-live fallbacks
while it is bad, and a seamless return to the fast path afterwards.

The run prints a timeline of phases, fallbacks and commits — the anatomy of
Figure 3 reproduced as a trace.

Run:  python examples/network_degradation.py
"""

from repro import ClusterBuilder
from repro.analysis.safety import assert_cluster_safety
from repro.net.conditions import (
    AsynchronousDelay,
    NetworkSchedule,
    SynchronousDelay,
)

GOOD = SynchronousDelay(delta=1.0)
BAD = AsynchronousDelay(base_delay=10.0, tail_scale=25.0, max_delay=80.0)

DEGRADE_AT = 60.0
RECOVER_AT = 240.0
END_AT = 500.0


def phase_name(time: float) -> str:
    if time < DEGRADE_AT:
        return "synchrony"
    if time < RECOVER_AT:
        return "ASYNCHRONY"
    return "synchrony (recovered)"


def main() -> None:
    schedule = NetworkSchedule([(0.0, GOOD), (DEGRADE_AT, BAD), (RECOVER_AT, GOOD)])
    cluster = ClusterBuilder(n=4, seed=11).with_delay_model(schedule).build()
    cluster.run(until=END_AT)
    metrics = cluster.metrics

    print("=== network degradation timeline (n=4) ===")
    print(f"phases: good [0,{DEGRADE_AT}) | bad [{DEGRADE_AT},{RECOVER_AT}) "
          f"| good [{RECOVER_AT},{END_AT})\n")

    events: list[tuple[float, str]] = []
    for event in metrics.fallback_events:
        if event.kind == "entered":
            events.append((event.time, f"replica {event.replica} entered fallback view {event.view}"))
        else:
            events.append((
                event.time,
                f"replica {event.replica} exited fallback view {event.view} "
                f"(coin elected replica {event.leader})",
            ))
    seen_positions = set()
    for commit in metrics.commits:
        if commit.position in seen_positions:
            continue
        seen_positions.add(commit.position)
        kind = "f-block" if commit.fallback_block else "block"
        events.append((
            commit.time,
            f"committed {kind} #{commit.position} (round {commit.round}, view {commit.view})",
        ))

    events.sort()
    shown_commits = 0
    for time, text in events:
        if text.startswith("committed"):
            shown_commits += 1
            if shown_commits % 5 != 1 and "f-block" not in text:
                continue  # sample regular commits, show all fallback ones
        print(f"  t={time:7.1f}  [{phase_name(time):22s}] {text}")

    per_phase = {"good-before": 0, "bad": 0, "good-after": 0}
    for commit in metrics.commits:
        if commit.replica != cluster.honest_ids[0]:
            continue
        if commit.time < DEGRADE_AT:
            per_phase["good-before"] += 1
        elif commit.time < RECOVER_AT + 80.0:  # in-flight tail after recovery
            per_phase["bad"] += 1
        else:
            per_phase["good-after"] += 1
    print("\ncommits by phase (replica 0):", per_phase)
    print("fallback views entered      :", metrics.fallback_count())
    assert_cluster_safety(cluster.honest_replicas())
    print("safety                      : OK across the whole timeline")


if __name__ == "__main__":
    main()
