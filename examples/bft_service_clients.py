#!/usr/bin/env python3
"""End-to-end BFT service: external clients with f+1 confirmation.

Runs the full client-facing contract of BFT SMR: closed-loop clients
broadcast requests to the replicas, replicas reply as they commit, and a
client accepts a result only when f+1 replicas agree on the commit position
and block — so even a lying replica cannot fool it.  Midway, one replica
crashes and later recovers from its safety journal, resyncing the chain
from its peers; the service never stops confirming.

Run:  python examples/bft_service_clients.py
"""

from repro import ClusterBuilder
from repro.analysis.safety import assert_cluster_safety
from repro.ledger.ledger import KVStateMachine
from repro.storage import RecoveringReplica


def recovering(*args, **kwargs):
    return RecoveringReplica(*args, crash_at=40.0, recover_at=90.0, **kwargs)


def main() -> None:
    cluster = (
        ClusterBuilder(n=4, seed=37)
        .with_preload(0)  # all load comes from real clients
        .with_state_machine(KVStateMachine)
        .with_clients(3, outstanding=4, retransmit_interval=20.0)
        .with_byzantine(2, recovering)  # the slot hosts a crash/recover replica
        .build()
    )
    cluster.run(
        until=10_000,
        stop_when=lambda: cluster.total_confirmations() >= 120
        and cluster.scheduler.now >= 150.0,  # run past the recovery
    )

    print("=== BFT service: 4 replicas, 3 closed-loop clients, f+1 confirmation ===")
    print("replica 2 crashes at t=40 and recovers from its journal at t=90\n")
    total = 0
    for client in cluster.clients:
        latencies = sorted(client.confirmed_latencies())
        p50 = latencies[len(latencies) // 2]
        p99 = latencies[int(len(latencies) * 0.99)]
        total += len(client.confirmations)
        print(
            f"client {client.process_id}: {len(client.confirmations)} confirmed, "
            f"latency p50 {p50:.1f}s / p99 {p99:.1f}s, "
            f"retransmissions {client.retransmissions}"
        )
    print(f"\ntotal confirmations        : {total}")
    replica2 = cluster.replicas[2]
    print(f"replica 2 recovered        : {replica2.recovered} "
          f"(journal writes: {replica2.journal.writes})")
    print(f"replica 2 rebuilt ledger   : {replica2.ledger.height} blocks")

    # Verify a random confirmation against an honest ledger.
    sample = cluster.clients[0].confirmations[0]
    record = cluster.honest_replicas()[0].ledger.record_at(sample.position)
    print(f"spot check                 : tx {sample.tx_id} at position "
          f"{sample.position} -> block {record.block.id[:8]} "
          f"({'match' if record.block.id == sample.block_id else 'MISMATCH'})")
    assert_cluster_safety(cluster.honest_replicas())
    print("safety                     : OK")


if __name__ == "__main__":
    main()
