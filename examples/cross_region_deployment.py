#!/usr/bin/env python3
"""A geo-distributed deployment: 7 replicas across 3 regions.

Models the realistic permissioned-blockchain setting the paper's
introduction motivates: replicas in US / EU / AP datacenters, fast links
within a region, slow links across.  A skewed (Zipf-like) client workload
writes hot keys.  Mid-run, the EU region's links degrade to adversarial
asynchrony; the protocol rides it out through fallbacks and resumes the
linear fast path once the links recover.

Run:  python examples/cross_region_deployment.py
"""

from repro import ClusterBuilder
from repro.analysis.safety import assert_cluster_safety
from repro.analysis.traces import Timeline
from repro.ledger.ledger import KVStateMachine
from repro.net.conditions import AsynchronousDelay, DelayModel
from repro.net.topology import CrossRegionDelay, evenly_spread_regions
from repro.workloads.bursty import SkewedKeyWorkload

N = 7
DEGRADE_AT, RECOVER_AT, END_AT = 80.0, 220.0, 500.0

REGIONS = evenly_spread_regions(N, ["us", "eu", "ap"])
HEALTHY = CrossRegionDelay(
    region_of=REGIONS,
    intra=(0.02, 0.08),
    inter=(0.4, 1.2),
    pair_bands={("us", "eu"): (0.3, 0.8), ("eu", "ap"): (0.6, 1.4)},
)
STORM = AsynchronousDelay(base_delay=10.0, tail_scale=20.0, max_delay=60.0)


class RegionalDegradation(DelayModel):
    """Healthy topology, except EU traffic goes adversarial for a while."""

    def delay(self, sender, receiver, message, now, rng):
        eu_involved = REGIONS.get(sender) == "eu" or REGIONS.get(receiver) == "eu"
        if eu_involved and DEGRADE_AT <= now < RECOVER_AT:
            return STORM.delay(sender, receiver, message, now, rng)
        return HEALTHY.delay(sender, receiver, message, now, rng)

    def describe(self):
        return "cross-region with EU storm"


def main() -> None:
    cluster = (
        ClusterBuilder(n=N, seed=29)
        .with_state_machine(KVStateMachine)
        .with_workload(lambda pools: SkewedKeyWorkload(pools, count=3000, keys=64, seed=29))
        .with_delay_model(RegionalDegradation())
        .build()
    )
    cluster.run(until=END_AT)

    print(f"=== cross-region deployment: n={N} over {sorted(set(REGIONS.values()))} ===")
    print(f"EU links adversarial during [{DEGRADE_AT}, {RECOVER_AT})\n")

    timeline = Timeline.from_cluster(cluster)
    spans = timeline.fallback_spans()
    print(f"fallbacks: {len({(v) for _, v, _, _ in spans})} view(s); spans "
          f"(replica, view, enter, exit):")
    for replica, view, start, end in spans[:8]:
        end_text = f"{end:.1f}" if end is not None else "in flight"
        print(f"  r{replica} view {view}: {start:.1f} -> {end_text}")

    commits = timeline.filter(kinds=["commit"], replica=cluster.honest_ids[0]).events
    def rate(lo, hi):
        return sum(1 for e in commits if lo <= e.time < hi) / (hi - lo)

    print(f"\nthroughput healthy  [0,{DEGRADE_AT:.0f})       : {rate(0, DEGRADE_AT):.2f} blocks/s")
    print(f"throughput degraded [{DEGRADE_AT:.0f},{RECOVER_AT:.0f})   : {rate(DEGRADE_AT, RECOVER_AT):.2f} blocks/s")
    print(f"throughput recovered[{RECOVER_AT + 60:.0f},{END_AT:.0f})  : {rate(RECOVER_AT + 60, END_AT):.2f} blocks/s")

    replica = cluster.honest_replicas()[0]
    hot = sorted(replica.ledger.state_machine.data.items())[:3]
    print(f"\nreplicated KV sample: {dict(hot)}")
    assert_cluster_safety(cluster.honest_replicas())
    print("safety: OK across regions and the storm")


if __name__ == "__main__":
    main()
