#!/usr/bin/env python3
"""Byzantine leaders: the protocol commits right through them.

Replica 0 (the leader of rounds 1-4, 17-20, ... under the paper's 4-round
rotation) is Byzantine.  Three scenarios run back to back:

1. withholding  — it never proposes, so its rounds time out,
2. equivocating — it proposes two conflicting blocks per round,
3. stale-qc     — it proposes blocks extending genesis forever.

In every case the asynchronous view-change fires on its leader windows, a
random leader's fallback chain takes over, and the steady state resumes with
the next honest rotation.  Safety holds throughout.

Run:  python examples/byzantine_leader.py
"""

from repro import ClusterBuilder
from repro.analysis.safety import assert_cluster_safety
from repro.faults import (
    EquivocatingLeader,
    StaleQCLeader,
    WithholdingLeader,
    byzantine,
)

SCENARIOS = [
    ("withholding leader", byzantine(WithholdingLeader)),
    ("equivocating leader", byzantine(EquivocatingLeader)),
    ("stale-qc leader", byzantine(StaleQCLeader)),
]


def main() -> None:
    print("=== Byzantine leader scenarios (n=4, replica 0 Byzantine) ===\n")
    for name, factory in SCENARIOS:
        cluster = (
            ClusterBuilder(n=4, seed=13)
            .with_byzantine(0, factory)
            .build()
        )
        result = cluster.run_until_commits(20, until=30_000)
        chain = result.committed_chain()
        authors = sorted(
            {getattr(block, "author", getattr(block, "proposer", None)) for block in chain}
        )
        fallback_blocks = sum(
            1 for block in chain if type(block).__name__ == "FallbackBlock"
        )
        assert_cluster_safety(cluster.honest_replicas())
        print(f"--- {name} ---")
        print(f"  blocks committed     : {result.decisions}")
        print(f"  fallbacks triggered  : {cluster.metrics.fallback_count()}")
        print(f"  fallback blocks in log: {fallback_blocks}")
        print(f"  committed authors    : {authors} (0 only via endorsed f-chains, if at all)")
        print(f"  simulated time       : {result.stopped_at:.1f}s")
        print("  safety               : OK\n")


if __name__ == "__main__":
    main()
