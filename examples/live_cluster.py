#!/usr/bin/env python3
"""Live mode: the protocol over real localhost TCP sockets.

Runs the same unchanged replicas the simulator hosts — but on an asyncio
event loop, with wall-clock timers and every message travelling through
the binary wire codec (`repro/wire/`) over real sockets.  Mid-run, a
drop-Proposal filter stalls the fast path: round timers expire for real,
the asynchronous fallback runs over TCP, the common coin elects a leader,
and the cluster commits through the fallback before resuming steady state.

Run:  python examples/live_cluster.py
"""

from repro.analysis.complexity import live_decision_costs
from repro.runtime.live import LiveCluster


def main() -> None:
    cluster = LiveCluster(n=4, seed=7, round_timeout=0.6, preload=1500)
    report = cluster.run(
        target_commits=20,
        timeout=45.0,
        force_fallback=True,       # stall the fast path mid-run
        fallback_after_commits=5,  # ... once 5 blocks have committed
    )

    print("=== live cluster: 4 replicas over localhost TCP ===")
    print(f"blocks committed (everywhere) : {report.min_honest_height}")
    print(f"wall-clock seconds            : {report.wall_seconds:.2f}")
    print(f"fallbacks survived            : {report.fallbacks}")
    print(f"proposals dropped (chaos)     : {report.messages_dropped}")
    print(f"messages over the wire        : {report.messages_sent}")
    print(f"real encoded bytes            : {report.encoded_bytes:,}")
    print(f"transport counters            : {report.transport}")

    costs = live_decision_costs(cluster.metrics)
    print(f"messages per decision         : {costs.messages_per_decision:.1f}")
    print(f"bytes per decision            : {costs.bytes_per_decision:,.0f} (real, not modeled)")

    assert report.ok, "run timed out or ledgers diverged"
    print("safety check                  : OK (all logs prefix-consistent)")


if __name__ == "__main__":
    main()
