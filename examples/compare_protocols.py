#!/usr/bin/env python3
"""Reproduce Table 1 at a glance: four protocols, two network regimes.

For each protocol (ours 3-chain, ours 2-chain, DiemBFT baseline, and the
always-quadratic asynchronous baseline) the script measures messages per
decision under (a) synchrony and (b) a leader-targeting asynchronous
adversary, and reports liveness — the empirical version of the paper's
comparison table.

Run:  python examples/compare_protocols.py  [n]
"""

import sys

from repro.analysis.tables import fmt_cost, render_table
from repro.experiments.scenarios import run_async_attack, run_sync
from repro.protocols import PROTOCOLS


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    rows = []
    for name, spec in PROTOCOLS.items():
        sync = run_sync(name, n=n, seed=1, target_commits=30)
        attack = run_async_attack(name, n=n, seed=1, target_commits=8, until=20_000)
        rows.append(
            [
                name,
                spec.paper_sync_cost,
                fmt_cost(sync.messages_per_decision),
                "live" if spec.paper_async_live else "not live",
                fmt_cost(attack.messages_per_decision),
                "live" if attack.live else "NOT LIVE",
            ]
        )
    print(
        render_table(
            [
                "protocol",
                "paper sync",
                f"measured sync (msgs/dec, n={n})",
                "paper async",
                "measured async (msgs/dec)",
                "measured async liveness",
            ],
            rows,
            title=f"Table 1 reproduced empirically at n={n}",
        )
    )
    print(
        "\nReading: ours matches DiemBFT's linear cost under synchrony, stays "
        "live under the\nleader-targeting asynchronous adversary at quadratic "
        "cost, while DiemBFT stops and the\nalways-fallback baseline pays "
        "quadratic cost even when the network is good."
    )


if __name__ == "__main__":
    main()
