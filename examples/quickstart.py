#!/usr/bin/env python3
"""Quickstart: run the paper's protocol on a 4-replica cluster.

Builds a cluster running DiemBFT + asynchronous fallback on a synchronous
simulated network, replicates a key-value store, and prints what happened.

Run:  python examples/quickstart.py
"""

from repro import ClusterBuilder
from repro.analysis.safety import assert_cluster_safety
from repro.ledger.ledger import KVStateMachine


def main() -> None:
    cluster = (
        ClusterBuilder(n=4, seed=7)
        .with_state_machine(KVStateMachine)
        .build()
    )

    # Run until 25 blocks are committed at every honest replica.
    result = cluster.run_until_commits(25, until=10_000, everywhere=True)

    print("=== quickstart: DiemBFT + asynchronous fallback, n=4, synchrony ===")
    print(f"simulated time elapsed : {result.stopped_at:.1f}s")
    print(f"blocks decided         : {result.decisions}")
    print(f"simulator throughput   : {result.events_processed} events in "
          f"{result.wall_seconds:.3f}s ({result.events_per_sec:,.0f} events/sec)")
    print(f"fallbacks triggered    : {cluster.metrics.fallback_count()} (expected 0)")
    print(f"messages per decision  : {cluster.metrics.messages_per_decision():.1f} "
          f"(linear: ~2n = {2 * cluster.config.n})")

    latencies = cluster.metrics.commit_latencies()
    latencies.sort()
    print(f"tx commit latency p50  : {latencies[len(latencies) // 2]:.2f}s")

    # Every replica applied the same commands in the same order.
    replica = cluster.honest_replicas()[0]
    sample = dict(list(replica.ledger.state_machine.data.items())[:3])
    print(f"replicated KV sample   : {sample}")

    assert_cluster_safety(cluster.honest_replicas())
    print("safety check           : OK (all logs prefix-consistent)")


if __name__ == "__main__":
    main()
