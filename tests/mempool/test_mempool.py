"""Tests for the mempool."""

import pytest

from repro.mempool.mempool import Mempool
from repro.types.transactions import make_transaction


def test_submit_and_len():
    pool = Mempool(batch_size=5)
    pool.submit(make_transaction(0))
    pool.submit(make_transaction(1))
    assert len(pool) == 2
    assert pool.submitted_count == 2


def test_submit_idempotent():
    pool = Mempool()
    tx = make_transaction(0)
    pool.submit(tx)
    pool.submit(tx)
    assert len(pool) == 1
    assert pool.submitted_count == 1


def test_next_batch_respects_size_and_order():
    pool = Mempool(batch_size=2)
    txs = [make_transaction(i) for i in range(5)]
    pool.submit_all(txs)
    batch = pool.next_batch()
    assert [tx.tx_id for tx in batch] == ["tx-0-0", "tx-0-1"]


def test_next_batch_does_not_remove():
    pool = Mempool(batch_size=2)
    pool.submit_all(make_transaction(i) for i in range(3))
    pool.next_batch()
    assert len(pool) == 3  # only commits remove transactions


def test_mark_committed_removes():
    pool = Mempool(batch_size=10)
    txs = [make_transaction(i) for i in range(4)]
    pool.submit_all(txs)
    dropped = pool.mark_committed(txs[:2])
    assert dropped == 2
    assert [tx.tx_id for tx in pool.pending()] == ["tx-0-2", "tx-0-3"]
    # Committing unknown transactions is harmless.
    assert pool.mark_committed([make_transaction(99)]) == 0


def test_recommit_after_failed_proposal():
    """A batch proposed by a failed leader stays available for the next."""
    pool = Mempool(batch_size=2)
    pool.submit_all(make_transaction(i) for i in range(2))
    first = pool.next_batch()
    second = pool.next_batch()
    assert list(first) == list(second)


def test_negative_batch_size_rejected():
    with pytest.raises(ValueError):
        Mempool(batch_size=-1)


def test_empty_pool_batch():
    pool = Mempool()
    assert len(pool.next_batch()) == 0
