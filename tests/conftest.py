"""Repository-wide fixtures: shared dealer setup for protocol tests."""

import pytest

from repro.core.config import ProtocolConfig
from repro.core.context import SharedSetup


@pytest.fixture
def config():
    return ProtocolConfig(n=4)


@pytest.fixture
def setup(config):
    return SharedSetup.deal(config, coin_seed=42)


@pytest.fixture
def contexts(setup):
    return [setup.context_for(i) for i in range(setup.config.n)]
