"""Exactly-once transaction execution.

A transaction legitimately appears in several blocks (it sits in every
replica's mempool until its first commit is observed, and consecutive
leaders batch it independently); the ledger must apply it exactly once.
"""

from repro.ledger.blockstore import BlockStore
from repro.ledger.ledger import Ledger, NullStateMachine
from repro.runtime.cluster import ClusterBuilder
from repro.types.blocks import Block
from repro.types.certificates import genesis_qc
from repro.types.transactions import Batch, make_transaction

from tests.core.conftest import make_real_qc


class CountingStateMachine(NullStateMachine):
    def __init__(self):
        self.applications = {}

    def apply(self, transaction):
        self.applications[transaction.tx_id] = (
            self.applications.get(transaction.tx_id, 0) + 1
        )


def test_duplicate_across_blocks_applies_once(setup):
    store = BlockStore()
    machine = CountingStateMachine()
    ledger = Ledger(store, machine)
    tx = make_transaction(0)
    parent_qc = genesis_qc(store.genesis.id)
    blocks = []
    for round_number in (1, 2, 3):
        block = Block(
            qc=parent_qc, round=round_number, view=0,
            batch=Batch.of([tx]), author=0,
        )
        store.add(block)
        parent_qc = make_real_qc(setup, block)
        blocks.append(block)
    ledger.commit_through(blocks[2], now=1.0)
    assert ledger.height == 3  # three blocks committed...
    assert machine.applications == {tx.tx_id: 1}  # ...one application
    assert [t.tx_id for t in ledger.committed_transactions()] == [tx.tx_id]
    # The location points at the first containing block.
    position, block_id = ledger.commit_location(tx.tx_id)
    assert position == 0
    assert block_id == blocks[0].id


def test_cluster_wide_exactly_once():
    cluster = (
        ClusterBuilder(n=4, seed=131)
        .with_state_machine(CountingStateMachine)
        .build()
    )
    cluster.run_until_commits(30, until=10_000)
    for replica in cluster.honest_replicas():
        counts = replica.ledger.state_machine.applications
        duplicates = {tx: n for tx, n in counts.items() if n != 1}
        assert not duplicates, f"multiply-applied transactions: {duplicates}"


def test_committed_transactions_do_not_exceed_submitted():
    cluster = ClusterBuilder(n=4, seed=133).with_preload(100).build()
    cluster.run(until=300.0)
    for replica in cluster.honest_replicas():
        committed = replica.ledger.committed_transactions()
        assert len(committed) <= 100
        ids = [tx.tx_id for tx in committed]
        assert len(ids) == len(set(ids))
