"""Tests for the block store."""

from repro.ledger.blockstore import BlockStore
from repro.types.blocks import Block
from repro.types.certificates import genesis_qc

from tests.types.test_certificates import make_qc


def chain_of(store, length, view=0):
    """Build a linear chain of certified blocks on top of genesis."""
    blocks = []
    parent_qc = genesis_qc(store.genesis.id)
    for round_number in range(1, length + 1):
        block = Block(qc=parent_qc, round=round_number, view=view, author=0)
        store.add(block)
        blocks.append(block)
        parent_qc = make_qc(round_=round_number, view=view, block_id=block.id)
    return blocks


def test_genesis_present():
    store = BlockStore()
    assert store.genesis.id in store
    assert len(store) == 1


def test_add_and_get():
    store = BlockStore()
    [block] = chain_of(store, 1)
    assert store.get(block.id) is block
    assert store.require(block.id) is block
    assert block.id in store


def test_duplicate_add_is_noop():
    store = BlockStore()
    [block] = chain_of(store, 1)
    assert not store.add(block)
    assert len(store) == 2  # genesis + block


def test_require_missing_raises():
    store = BlockStore()
    try:
        store.require("nope")
        assert False
    except KeyError:
        pass


def test_parent_walk():
    store = BlockStore()
    blocks = chain_of(store, 3)
    assert store.parent(blocks[2]) is blocks[1]
    assert store.parent(blocks[0]) is store.genesis
    assert store.parent(store.genesis) is None


def test_ancestors():
    store = BlockStore()
    blocks = chain_of(store, 3)
    ancestors = list(store.ancestors(blocks[2]))
    assert ancestors == [blocks[1], blocks[0], store.genesis]
    with_self = list(store.ancestors(blocks[2], include_self=True))
    assert with_self[0] is blocks[2]


def test_extends():
    store = BlockStore()
    blocks = chain_of(store, 3)
    assert store.extends(blocks[2], blocks[0].id)
    assert store.extends(blocks[2], blocks[2].id)  # a block extends itself
    assert store.extends(blocks[2], store.genesis.id)
    assert not store.extends(blocks[0], blocks[2].id)


def test_chain_to():
    store = BlockStore()
    blocks = chain_of(store, 3)
    suffix = store.chain_to(blocks[2], store.genesis.id)
    assert suffix == blocks
    partial = store.chain_to(blocks[2], blocks[0].id)
    assert partial == blocks[1:]
    assert store.chain_to(blocks[2], blocks[2].id) == []


def test_chain_to_unrelated_returns_none():
    store = BlockStore()
    blocks = chain_of(store, 2)
    # A block on a different branch not extending blocks[1].
    fork = Block(qc=genesis_qc(store.genesis.id), round=1, view=1, author=1)
    store.add(fork)
    assert store.chain_to(fork, blocks[1].id) is None


def test_missing_parent():
    store = BlockStore()
    dangling_qc = make_qc(round_=5, view=0, block_id="unknown-block")
    orphan = Block(qc=dangling_qc, round=6, view=0, author=0)
    store.add(orphan)
    assert store.missing_parent(orphan) == "unknown-block"
    blocks = chain_of(store, 1)
    assert store.missing_parent(blocks[0]) is None


def test_ancestors_stop_at_gap():
    store = BlockStore()
    dangling_qc = make_qc(round_=5, view=0, block_id="unknown-block")
    orphan = Block(qc=dangling_qc, round=6, view=0, author=0)
    store.add(orphan)
    assert list(store.ancestors(orphan)) == []


def test_all_blocks():
    store = BlockStore()
    chain_of(store, 2)
    assert len(store.all_blocks()) == 3
