"""Tests for the committed ledger and state machines."""

from repro.ledger.blockstore import BlockStore
from repro.ledger.ledger import KVStateMachine, Ledger, NullStateMachine
from repro.types.blocks import Block
from repro.types.certificates import genesis_qc
from repro.types.transactions import Batch, Transaction, make_transaction

from tests.ledger.test_blockstore import chain_of


def make_ledger(state_machine=None):
    store = BlockStore()
    return store, Ledger(store, state_machine or NullStateMachine())


def test_initial_state():
    store, ledger = make_ledger()
    assert ledger.height == 0
    assert ledger.last_committed is store.genesis
    assert ledger.is_committed(store.genesis.id)


def test_commit_through_appends_suffix():
    store, ledger = make_ledger()
    blocks = chain_of(store, 3)
    records = ledger.commit_through(blocks[2], now=10.0)
    assert [record.block for record in records] == blocks
    assert ledger.height == 3
    assert ledger.last_committed is blocks[2]
    assert [record.position for record in records] == [0, 1, 2]
    assert all(record.committed_at == 10.0 for record in records)


def test_incremental_commits():
    store, ledger = make_ledger()
    blocks = chain_of(store, 4)
    ledger.commit_through(blocks[1], now=1.0)
    records = ledger.commit_through(blocks[3], now=2.0)
    assert [record.block for record in records] == blocks[2:]
    assert ledger.committed_blocks() == blocks


def test_recommit_is_noop():
    store, ledger = make_ledger()
    blocks = chain_of(store, 2)
    ledger.commit_through(blocks[1], now=1.0)
    assert ledger.commit_through(blocks[1], now=2.0) == []
    assert ledger.commit_through(blocks[0], now=2.0) == []
    assert ledger.height == 2


def test_commit_with_gap_defers():
    store, ledger = make_ledger()
    blocks = chain_of(store, 3)
    # Simulate a replica missing the middle block: fresh store without it.
    sparse = BlockStore()
    sparse.add(blocks[0])
    sparse.add(blocks[2])  # parent (blocks[1]) missing
    sparse_ledger = Ledger(sparse)
    assert sparse_ledger.commit_through(blocks[2], now=1.0) == []
    sparse.add(blocks[1])
    records = sparse_ledger.commit_through(blocks[2], now=2.0)
    assert len(records) == 3


def test_state_machine_application_order():
    class Recorder(NullStateMachine):
        def __init__(self):
            self.applied = []

        def apply(self, transaction):
            self.applied.append(transaction.tx_id)

    recorder = Recorder()
    store = BlockStore()
    ledger = Ledger(store, recorder)
    qc = genesis_qc(store.genesis.id)
    batch = Batch.of([make_transaction(0), make_transaction(1)])
    block = Block(qc=qc, round=1, view=0, batch=batch, author=0)
    store.add(block)
    ledger.commit_through(block, now=0.0)
    assert recorder.applied == ["tx-0-0", "tx-0-1"]


def test_kv_state_machine():
    kv = KVStateMachine()
    kv.apply(Transaction(tx_id="a", payload="set color blue"))
    kv.apply(Transaction(tx_id="b", payload="set color red"))
    kv.apply(Transaction(tx_id="c", payload="unknown command"))
    assert kv.data == {"color": "red"}


def test_committed_transactions_and_record_at():
    store, ledger = make_ledger()
    qc = genesis_qc(store.genesis.id)
    batch = Batch.of([make_transaction(7)])
    block = Block(qc=qc, round=1, view=0, batch=batch, author=0)
    store.add(block)
    ledger.commit_through(block, now=0.0)
    assert [tx.tx_id for tx in ledger.committed_transactions()] == ["tx-0-7"]
    assert ledger.record_at(0).block is block
    assert ledger.record_at(5) is None
    assert ledger.record_at(-1) is None
