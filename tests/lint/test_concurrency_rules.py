"""Synthetic true/false-positive fixtures for the five concurrency rules."""

from repro.lint.rules.await_atomicity import AwaitAtomicityRule
from repro.lint.rules.blocking_in_async import BlockingInAsyncRule
from repro.lint.rules.cancellation_safety import CancellationSafetyRule
from repro.lint.rules.task_lifecycle import TaskLifecycleRule
from repro.lint.rules.unbounded_queue import UnboundedQueueRule

from tests.lint.conftest import mod, run_rule


# ----------------------------------------------------------------------
# await-atomicity
# ----------------------------------------------------------------------
def test_await_atomicity_flags_stale_write_across_suspension():
    findings = run_rule(AwaitAtomicityRule, mod(
        """
        import asyncio

        class Registry:
            async def replace(self, peer_id):
                stale = self._channels.pop(peer_id, None)
                if stale is not None:
                    await stale.close()
                self._channels[peer_id] = object()
        """,
        "repro.runtime.fx",
    ))
    assert [f.rule for f in findings] == ["await-atomicity"]
    assert "_channels" in findings[0].message


def test_await_atomicity_accepts_reread_after_suspension():
    findings = run_rule(AwaitAtomicityRule, mod(
        """
        import asyncio

        class Counter:
            async def bump(self):
                value = self._count
                await asyncio.sleep(0)
                if self._count == value:
                    self._count = value + 1
        """,
        "repro.runtime.fx",
    ))
    assert findings == []


def test_await_atomicity_accepts_suspension_under_lock():
    findings = run_rule(AwaitAtomicityRule, mod(
        """
        import asyncio

        class Counter:
            async def bump(self):
                async with self._lock:
                    value = self._count
                    await asyncio.sleep(0)
                    self._count = value + 1
        """,
        "repro.runtime.fx",
    ))
    assert findings == []


def test_await_atomicity_accepts_non_suspending_project_await():
    # Awaiting a project coroutine with no suspension points does not
    # yield to the loop, so the read-write pair stays atomic.
    findings = run_rule(AwaitAtomicityRule, mod(
        """
        import asyncio

        class Counter:
            async def noop(self):
                return None

            async def bump(self):
                value = self._count
                await self.noop()
                self._count = value + 1
        """,
        "repro.runtime.fx",
    ))
    assert findings == []


def test_await_atomicity_catches_loop_back_hazard():
    # The value read in iteration N crosses the await at the bottom of
    # the body and is written back at the top of iteration N+1.
    findings = run_rule(AwaitAtomicityRule, mod(
        """
        import asyncio

        class Pump:
            async def run(self):
                value = 0
                while True:
                    self._cursor = value
                    value = self._cursor + 1
                    await asyncio.sleep(0)
        """,
        "repro.runtime.fx",
    ))
    assert [f.rule for f in findings] == ["await-atomicity"]


def test_await_atomicity_accepts_read_modify_write_in_loop():
    # A classic increment re-reads immediately before the write every
    # iteration, so the loop-back await never separates the pair.
    findings = run_rule(AwaitAtomicityRule, mod(
        """
        import asyncio

        class Pump:
            async def run(self):
                while True:
                    self._cursor = self._cursor + 1
                    await asyncio.sleep(0)
        """,
        "repro.runtime.fx",
    ))
    assert findings == []


def test_await_atomicity_ignores_simulator_modules():
    findings = run_rule(AwaitAtomicityRule, mod(
        """
        import asyncio

        class Registry:
            async def replace(self, peer_id):
                stale = self._channels.pop(peer_id, None)
                if stale is not None:
                    await stale.close()
                self._channels[peer_id] = object()
        """,
        "repro.core.fx",
    ))
    assert findings == []


# ----------------------------------------------------------------------
# blocking-in-async
# ----------------------------------------------------------------------
def test_blocking_in_async_flags_transitive_open():
    findings = run_rule(BlockingInAsyncRule, mod(
        """
        import asyncio

        def flush(path):
            handle = open(path, "ab")
            handle.close()

        class Node:
            async def step(self, path):
                flush(path)
                await asyncio.sleep(0)
        """,
        "repro.runtime.fx",
    ))
    assert [f.rule for f in findings] == ["blocking-in-async"]
    assert "open()" in findings[0].message
    assert "repro.runtime.fx.flush" in findings[0].message


def test_blocking_in_async_flags_direct_fsync():
    findings = run_rule(BlockingInAsyncRule, mod(
        """
        import asyncio
        import os

        class Node:
            async def persist(self, fd):
                os.fsync(fd)
        """,
        "repro.runtime.fx",
    ))
    assert [f.rule for f in findings] == ["blocking-in-async"]


def test_blocking_in_async_accepts_sanctioned_journal_path():
    journal = mod(
        """
        import os

        def append(fd):
            os.fsync(fd)
        """,
        "repro.storage.journal",
    )
    runtime = mod(
        """
        import asyncio
        from repro.storage.journal import append

        class Node:
            async def persist(self, fd):
                append(fd)
                await asyncio.sleep(0)
        """,
        "repro.runtime.fx",
    )
    assert run_rule(BlockingInAsyncRule, journal, runtime) == []


def test_blocking_in_async_leaves_sync_only_paths_alone():
    findings = run_rule(BlockingInAsyncRule, mod(
        """
        import asyncio

        def flush(path):
            handle = open(path, "ab")
            handle.close()

        def sync_caller(path):
            flush(path)
        """,
        "repro.runtime.fx",
    ))
    assert findings == []


def test_blocking_in_async_reports_at_closest_async_frame_only():
    findings = run_rule(BlockingInAsyncRule, mod(
        """
        import asyncio
        import os

        class Node:
            async def inner(self, fd):
                os.fsync(fd)

            async def outer(self, fd):
                await self.inner(fd)
        """,
        "repro.runtime.fx",
    ))
    assert len(findings) == 1
    assert "inner" in findings[0].message


# ----------------------------------------------------------------------
# task-lifecycle
# ----------------------------------------------------------------------
def test_task_lifecycle_flags_attribute_never_joined():
    findings = run_rule(TaskLifecycleRule, mod(
        """
        import asyncio

        class Node:
            def start(self):
                self.task = asyncio.create_task(work())
        """,
        "repro.runtime.fx",
    ))
    assert [f.rule for f in findings] == ["task-lifecycle"]
    assert ".task" in findings[0].message


def test_task_lifecycle_accepts_attribute_cancelled_on_shutdown():
    findings = run_rule(TaskLifecycleRule, mod(
        """
        import asyncio

        class Node:
            def start(self):
                self.task = asyncio.create_task(work())

            def stop(self):
                if self.task is not None:
                    self.task.cancel()
        """,
        "repro.runtime.fx",
    ))
    assert findings == []


def test_task_lifecycle_accepts_swap_before_suspend_pattern():
    findings = run_rule(TaskLifecycleRule, mod(
        """
        import asyncio

        class Node:
            def start(self):
                self.task = asyncio.create_task(work())

            async def close(self):
                task, self.task = self.task, None
                if task is not None:
                    task.cancel()
                    await asyncio.gather(task, return_exceptions=True)
        """,
        "repro.runtime.fx",
    ))
    assert findings == []


def test_task_lifecycle_flags_unused_local_handle():
    findings = run_rule(TaskLifecycleRule, mod(
        """
        import asyncio

        async def fire():
            handle = asyncio.create_task(work())
            return None
        """,
        "repro.runtime.fx",
    ))
    assert [f.rule for f in findings] == ["task-lifecycle"]
    assert "handle" in findings[0].message


def test_task_lifecycle_accepts_gathered_comprehension():
    findings = run_rule(TaskLifecycleRule, mod(
        """
        import asyncio

        async def fan_out(loop, jobs):
            tasks = [loop.create_task(job()) for job in jobs]
            await asyncio.gather(*tasks)
        """,
        "repro.runtime.fx",
    ))
    assert findings == []


# ----------------------------------------------------------------------
# cancellation-safety
# ----------------------------------------------------------------------
def test_cancellation_safety_flags_swallowed_cancellation():
    findings = run_rule(CancellationSafetyRule, mod(
        """
        import asyncio

        class Node:
            async def close(self):
                try:
                    await self.task
                except asyncio.CancelledError:
                    pass
        """,
        "repro.runtime.fx",
    ))
    assert [f.rule for f in findings] == ["cancellation-safety"]
    assert "swallows" in findings[0].message


def test_cancellation_safety_flags_bare_except_in_async():
    findings = run_rule(CancellationSafetyRule, mod(
        """
        import asyncio

        class Node:
            async def close(self):
                try:
                    await self.task
                except:
                    return None
        """,
        "repro.runtime.fx",
    ))
    assert [f.rule for f in findings] == ["cancellation-safety"]


def test_cancellation_safety_accepts_reraising_handler():
    findings = run_rule(CancellationSafetyRule, mod(
        """
        import asyncio

        class Node:
            async def close(self):
                try:
                    await self.task
                except asyncio.CancelledError:
                    if not self._closed:
                        raise
        """,
        "repro.runtime.fx",
    ))
    assert findings == []


def test_cancellation_safety_accepts_except_exception():
    # CancelledError derives from BaseException: except Exception does
    # not catch it and must not be flagged.
    findings = run_rule(CancellationSafetyRule, mod(
        """
        import asyncio

        class Node:
            async def close(self):
                try:
                    await self.task
                except Exception:
                    pass
        """,
        "repro.runtime.fx",
    ))
    assert findings == []


def test_cancellation_safety_flags_unshielded_await_in_finally():
    findings = run_rule(CancellationSafetyRule, mod(
        """
        import asyncio

        class Node:
            async def run(self):
                try:
                    await work()
                finally:
                    await self.transport.close()
        """,
        "repro.runtime.fx",
    ))
    assert [f.rule for f in findings] == ["cancellation-safety"]
    assert "finally" in findings[0].message


def test_cancellation_safety_accepts_shielded_await_in_finally():
    findings = run_rule(CancellationSafetyRule, mod(
        """
        import asyncio

        class Node:
            async def run(self):
                try:
                    await work()
                finally:
                    await asyncio.shield(self.transport.close())
        """,
        "repro.runtime.fx",
    ))
    assert findings == []


def test_cancellation_safety_accepts_handled_await_in_finally():
    findings = run_rule(CancellationSafetyRule, mod(
        """
        import asyncio

        class Node:
            async def run(self):
                try:
                    await work()
                finally:
                    try:
                        await self.transport.close()
                    except asyncio.CancelledError:
                        raise
        """,
        "repro.runtime.fx",
    ))
    assert findings == []


# ----------------------------------------------------------------------
# unbounded-queue
# ----------------------------------------------------------------------
def test_unbounded_queue_flags_bare_asyncio_queue():
    findings = run_rule(UnboundedQueueRule, mod(
        """
        import asyncio

        class Channel:
            def __init__(self):
                self.queue = asyncio.Queue()
        """,
        "repro.runtime.fx",
    ))
    assert [f.rule for f in findings] == ["unbounded-queue"]
    assert "maxsize" in findings[0].message


def test_unbounded_queue_accepts_bounded_queue_and_deque():
    findings = run_rule(UnboundedQueueRule, mod(
        """
        import asyncio
        from collections import deque

        class Channel:
            def __init__(self, limit):
                self.queue = asyncio.Queue(maxsize=limit)
                self.window = deque(maxlen=64)
        """,
        "repro.runtime.fx",
    ))
    assert findings == []


def test_unbounded_queue_flags_bare_deque_in_runtime_scope():
    findings = run_rule(UnboundedQueueRule, mod(
        """
        import asyncio
        from collections import deque

        class Channel:
            def __init__(self):
                self.backlog = deque()
        """,
        "repro.runtime.fx",
    ))
    assert [f.rule for f in findings] == ["unbounded-queue"]
    assert "maxlen" in findings[0].message


def test_unbounded_queue_flags_unhandled_put_nowait():
    findings = run_rule(UnboundedQueueRule, mod(
        """
        import asyncio

        class Channel:
            def send(self, payload):
                self.queue.put_nowait(payload)
        """,
        "repro.runtime.fx",
    ))
    assert [f.rule for f in findings] == ["unbounded-queue"]
    assert "QueueFull" in findings[0].message


def test_unbounded_queue_accepts_put_nowait_with_queuefull_handler():
    findings = run_rule(UnboundedQueueRule, mod(
        """
        import asyncio

        class Channel:
            def send(self, payload):
                try:
                    self.queue.put_nowait(payload)
                    return True
                except asyncio.QueueFull:
                    self.dropped += 1
                    return False
        """,
        "repro.runtime.fx",
    ))
    assert findings == []


def test_unbounded_queue_ignores_simulator_scope():
    findings = run_rule(UnboundedQueueRule, mod(
        """
        import asyncio

        class Channel:
            def __init__(self):
                self.queue = asyncio.Queue()
        """,
        "repro.core.fx",
    ))
    assert findings == []


# ----------------------------------------------------------------------
# pragma suppression works for the new family
# ----------------------------------------------------------------------
def test_concurrency_rules_honor_pragmas():
    findings = run_rule(UnboundedQueueRule, mod(
        """
        import asyncio

        class Channel:
            def __init__(self):
                self.queue = asyncio.Queue()  # repro-lint: ignore[unbounded-queue]
        """,
        "repro.runtime.fx",
    ))
    assert findings == []
