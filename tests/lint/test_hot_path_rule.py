"""Hot-path discipline: slotted event classes, frozen value objects."""

from repro.lint.rules.hot_path import HotPathRule

from tests.lint.conftest import mod, run_rule


def test_unslotted_class_in_events_module_is_flagged():
    module = mod(
        """
        class Timer:
            def __init__(self):
                self.deadline = 0.0
        """,
        "repro.sim.events",
    )
    findings = run_rule(HotPathRule, module)
    assert len(findings) == 1
    assert "__slots__" in findings[0].message


def test_slotted_class_in_events_module_is_allowed():
    module = mod(
        """
        class Timer:
            __slots__ = ("deadline",)

            def __init__(self):
                self.deadline = 0.0
        """,
        "repro.sim.events",
    )
    assert run_rule(HotPathRule, module) == []


def test_mutable_dataclass_in_types_is_flagged():
    module = mod(
        """
        from dataclasses import dataclass

        @dataclass
        class Vote:
            round: int
        """,
        "repro.types.ballots",
    )
    findings = run_rule(HotPathRule, module)
    assert len(findings) == 1
    assert "frozen" in findings[0].message


def test_frozen_dataclass_in_types_is_allowed():
    module = mod(
        """
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class Vote:
            round: int
        """,
        "repro.types.ballots",
    )
    assert run_rule(HotPathRule, module) == []


def test_frozen_false_counts_as_mutable():
    module = mod(
        """
        from dataclasses import dataclass

        @dataclass(frozen=False)
        class Vote:
            round: int
        """,
        "repro.types.ballots",
    )
    assert len(run_rule(HotPathRule, module)) == 1


def test_exception_and_protocol_classes_are_exempt():
    module = mod(
        """
        from typing import Protocol

        class CodecError(ValueError):
            pass

        class Sizeable(Protocol):
            def wire_size(self) -> int: ...
        """,
        "repro.types.errors",
    )
    assert run_rule(HotPathRule, module) == []


def test_rule_ignores_modules_outside_its_scope():
    module = mod(
        """
        class Anything:
            pass
        """,
        "repro.analysis.tables",
    )
    assert run_rule(HotPathRule, module) == []
