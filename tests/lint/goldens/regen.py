#!/usr/bin/env python
"""Regenerate every lint golden in this directory.

Usage (from the repo root)::

    PYTHONPATH=src python tests/lint/goldens/regen.py

Rebuilds, with byte-identical formatting to the CLI dumps:

- ``callgraph_core.json`` — the ``repro.core`` slice of the project call
  graph (``repro lint --graph ... --graph-prefix repro.core``)
- ``effects_runtime.json`` — per-function effect summaries for the live
  runtime scopes (``repro lint --effects ...`` with the four
  ``--effects-prefix`` values the concurrency rules cover)
- ``persistence_storage.json`` — per-function persistence summaries for
  the durability scopes (``repro lint --persistence ...`` with the
  ``--persistence-prefix`` values the crash-consistency rules cover)

Run it whenever a golden test fails after an intentional change, then
review the diff like any other code change: a new suspension point or a
widened blocking closure in the diff is the analysis telling you what
your edit did to the runtime's concurrency behavior.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

GOLDENS = Path(__file__).resolve().parent


def _repo_root() -> Path:
    """The repo root: via the importable package, else relative to here."""
    try:
        import repro

        return Path(repro.__file__).resolve().parent.parent.parent
    except ImportError:
        return GOLDENS.parents[2]

#: Module prefixes of the effects golden — the concurrency-rule scopes
#: (mirrors repro.lint.rules.scopes.RUNTIME_SCOPE_PREFIXES).
EFFECTS_PREFIXES = (
    "repro.net.tcp",
    "repro.runtime",
    "repro.client",
    "repro.traffic",
)

#: Module prefixes of the persistence golden — the scopes the
#: crash-consistency rules reason about (journal, durable replicas, the
#: live runtime's status/spec files).
PERSISTENCE_PREFIXES = (
    "repro.storage",
    "repro.runtime",
)


def main() -> int:
    repo_root = _repo_root()
    sys.path.insert(0, str(repo_root / "src"))
    from repro.lint.engine import collect_modules
    from repro.lint.flow import build_call_graph, build_effects, build_persistence

    modules = [
        m
        for m in collect_modules(repo_root / "src", None)
        if not m.is_test and m.module.startswith("repro")
    ]

    graph = build_call_graph(modules)
    graph_dump = (
        json.dumps(graph.to_json("repro.core"), indent=2, sort_keys=True) + "\n"
    )
    (GOLDENS / "callgraph_core.json").write_text(graph_dump, encoding="utf-8")
    print(f"wrote {GOLDENS / 'callgraph_core.json'}")

    index = build_effects(modules)
    effects_dump = (
        json.dumps(index.to_json(EFFECTS_PREFIXES), indent=2, sort_keys=True)
        + "\n"
    )
    (GOLDENS / "effects_runtime.json").write_text(effects_dump, encoding="utf-8")
    print(f"wrote {GOLDENS / 'effects_runtime.json'}")

    persistence = build_persistence(modules)
    persistence_dump = (
        json.dumps(
            persistence.to_json(PERSISTENCE_PREFIXES), indent=2, sort_keys=True
        )
        + "\n"
    )
    (GOLDENS / "persistence_storage.json").write_text(
        persistence_dump, encoding="utf-8"
    )
    print(f"wrote {GOLDENS / 'persistence_storage.json'}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
