"""Dispatch-exhaustive rule: every message type matched on the chain."""

from repro.lint.rules.dispatch_exhaustive import DispatchExhaustiveRule

from tests.lint.conftest import mod, run_rule


MESSAGES = """
    class Message:
        pass

    class Proposal(Message):
        pass

    class Vote(Message):
        pass

    class FallbackTimeout(Message):
        pass
"""


def test_fully_dispatched_tree_is_clean():
    # Matching happens across the chain: on_message itself plus the
    # fallback engine it delegates to through a typed attribute.
    messages = mod(MESSAGES, "repro.types.messages")
    fallback = mod(
        """
        class FallbackEngine:
            def handle(self, sender, message):
                if isinstance(message, FallbackTimeout):
                    return self.handle_timeout(message)
        """,
        "repro.core.fallback",
    )
    replica = mod(
        """
        from repro.core.fallback import FallbackEngine

        class Replica:
            def __init__(self):
                self.fallback = FallbackEngine()

            def on_message(self, sender, message):
                if isinstance(message, Proposal):
                    return self.handle_proposal(message)
                if isinstance(message, Vote):
                    return self.handle_vote(message)
                self.fallback.handle(sender, message)
        """,
        "repro.core.replica",
    )
    assert run_rule(DispatchExhaustiveRule, messages, replica, fallback) == []


def test_unmatched_message_type_is_flagged():
    messages = mod(MESSAGES, "repro.types.messages")
    replica = mod(
        """
        class Replica:
            def on_message(self, sender, message):
                if isinstance(message, (Proposal, Vote)):
                    return self.handle(message)
        """,
        "repro.core.replica",
    )
    findings = run_rule(DispatchExhaustiveRule, messages, replica)
    assert len(findings) == 1
    assert "FallbackTimeout" in findings[0].message
    assert findings[0].path == messages.path


def test_tuple_isinstance_counts_as_matched():
    messages = mod(MESSAGES, "repro.types.messages")
    replica = mod(
        """
        class Replica:
            def on_message(self, sender, message):
                if isinstance(message, (Proposal, Vote, FallbackTimeout)):
                    return self.handle(message)
        """,
        "repro.core.replica",
    )
    assert run_rule(DispatchExhaustiveRule, messages, replica) == []


def test_isinstance_off_the_dispatch_chain_does_not_count():
    messages = mod(MESSAGES, "repro.types.messages")
    replica = mod(
        """
        class Replica:
            def on_message(self, sender, message):
                if isinstance(message, (Proposal, Vote)):
                    return self.handle(message)

        def unreachable_helper(message):
            return isinstance(message, FallbackTimeout)
        """,
        "repro.core.replica",
    )
    findings = run_rule(DispatchExhaustiveRule, messages, replica)
    assert len(findings) == 1
    assert "FallbackTimeout" in findings[0].message


def test_without_messages_module_the_rule_stays_silent():
    replica = mod(
        """
        class Replica:
            def on_message(self, sender, message):
                pass
        """,
        "repro.core.replica",
    )
    assert run_rule(DispatchExhaustiveRule, replica) == []
