"""Swallowed-exception rule: broad handlers that discard the error."""

from repro.lint.rules.swallowed_exception import SwallowedExceptionRule

from tests.lint.conftest import mod, run_rule


def test_bare_except_pass_is_flagged():
    module = mod(
        """
        def decode(data):
            try:
                return parse(data)
            except:
                pass
        """,
        "repro.wire.codec",
    )
    findings = run_rule(SwallowedExceptionRule, module)
    assert len(findings) == 1
    assert "bare except" in findings[0].message
    assert findings[0].severity == "warning"


def test_broad_except_returning_default_is_flagged():
    module = mod(
        """
        def step(replica):
            try:
                replica.tick()
            except Exception:
                return None
        """,
        "repro.sim.engine",
    )
    findings = run_rule(SwallowedExceptionRule, module)
    assert len(findings) == 1
    assert "broad except" in findings[0].message


def test_broad_type_inside_tuple_is_flagged():
    module = mod(
        """
        def step(replica):
            try:
                replica.tick()
            except (ValueError, Exception):
                pass
        """,
        "repro.core.replica",
    )
    assert len(run_rule(SwallowedExceptionRule, module)) == 1


def test_specific_exception_as_protocol_outcome_is_allowed():
    module = mod(
        """
        def verify(share):
            try:
                check(share)
            except SignatureError:
                return False
            return True
        """,
        "repro.core.validation",
    )
    assert run_rule(SwallowedExceptionRule, module) == []


def test_reraise_is_allowed():
    module = mod(
        """
        def decode(data):
            try:
                return parse(data)
            except Exception:
                cleanup()
                raise
        """,
        "repro.wire.codec",
    )
    assert run_rule(SwallowedExceptionRule, module) == []


def test_using_the_bound_error_is_allowed():
    module = mod(
        """
        def decode(data, log):
            try:
                return parse(data)
            except Exception as exc:
                log.append(exc)
                return None
        """,
        "repro.wire.codec",
    )
    assert run_rule(SwallowedExceptionRule, module) == []


def test_outside_core_sim_wire_is_out_of_scope():
    module = mod(
        """
        def send(payload):
            try:
                push(payload)
            except Exception:
                pass
        """,
        "repro.runtime.live",
    )
    assert run_rule(SwallowedExceptionRule, module) == []


def test_pragma_suppresses_the_warning():
    module = mod(
        """
        def step(replica):
            try:
                replica.tick()
            except Exception:  # repro-lint: ignore[swallowed-exception]
                pass
        """,
        "repro.sim.engine",
    )
    assert run_rule(SwallowedExceptionRule, module) == []
