"""Asyncio hygiene: task handles, awaits, blocking sleeps, loop access."""

from repro.lint.rules.asyncio_hygiene import AsyncioHygieneRule

from tests.lint.conftest import mod, run_rule


def test_discarded_create_task_is_flagged():
    module = mod(
        """
        import asyncio

        async def serve(handler):
            asyncio.create_task(handler())
        """,
        "repro.net.tcp",
    )
    findings = run_rule(AsyncioHygieneRule, module)
    assert len(findings) == 1
    assert "create_task" in findings[0].message


def test_tracked_create_task_is_allowed():
    module = mod(
        """
        import asyncio

        async def serve(self, handler):
            self.tasks.append(asyncio.create_task(handler()))
            task = asyncio.create_task(handler())
            return task
        """,
        "repro.net.tcp",
    )
    assert run_rule(AsyncioHygieneRule, module) == []


def test_unawaited_local_coroutine_is_flagged():
    module = mod(
        """
        import asyncio

        async def flush(self):
            pass

        async def close(self):
            self.flush()
        """,
        "repro.runtime.live",
    )
    findings = run_rule(AsyncioHygieneRule, module)
    assert len(findings) == 1
    assert "without await" in findings[0].message


def test_awaited_coroutine_and_foreign_close_are_allowed():
    module = mod(
        """
        import asyncio

        async def flush(self):
            pass

        async def shutdown(self, writer):
            await self.flush()
            writer.close()
        """,
        "repro.net.tcp",
    )
    assert run_rule(AsyncioHygieneRule, module) == []


def test_blocking_sleep_in_async_function_is_flagged():
    module = mod(
        """
        import asyncio
        import time

        async def backoff():
            time.sleep(0.1)
        """,
        "repro.runtime.live",
    )
    findings = run_rule(AsyncioHygieneRule, module)
    assert len(findings) == 1
    assert "time.sleep" in findings[0].message


def test_blocking_sleep_in_sync_helper_is_allowed():
    module = mod(
        """
        import asyncio
        import time

        def wait_for_port():
            time.sleep(0.1)
        """,
        "repro.runtime.live",
    )
    assert run_rule(AsyncioHygieneRule, module) == []


def test_deprecated_get_event_loop_is_flagged():
    module = mod(
        """
        import asyncio

        def loop():
            return asyncio.get_event_loop()
        """,
        "repro.runtime.live",
    )
    assert len(run_rule(AsyncioHygieneRule, module)) == 1


def test_rule_only_applies_to_asyncio_importing_repro_modules():
    sim = mod(
        """
        def create_task(x):
            return x

        def run():
            create_task(1)
        """,
        "repro.sim.scheduler",
    )
    assert run_rule(AsyncioHygieneRule, sim) == []


# ----------------------------------------------------------------------
# Scope: the multi-process runtime and the client swarm are covered too
# ----------------------------------------------------------------------
def test_supervisor_module_discarded_task_is_flagged():
    """True positive in repro.runtime.supervisor: a dropped monitor-task
    handle could never be cancelled at shutdown."""
    module = mod(
        """
        import asyncio

        async def spawn_monitor(handle):
            asyncio.create_task(monitor(handle))

        async def monitor(handle):
            await handle.process.wait()
        """,
        "repro.runtime.supervisor",
    )
    findings = run_rule(AsyncioHygieneRule, module)
    assert len(findings) == 1
    assert "create_task" in findings[0].message


def test_supervisor_module_blocking_restart_backoff_is_flagged():
    """True positive: a blocking backoff sleep would stall the whole chaos
    schedule and every other monitor sharing the loop."""
    module = mod(
        """
        import asyncio
        import time

        async def delayed_restart(handle, delay):
            time.sleep(delay)
            await spawn(handle)

        async def spawn(handle):
            pass
        """,
        "repro.runtime.supervisor",
    )
    findings = run_rule(AsyncioHygieneRule, module)
    assert len(findings) == 1
    assert "time.sleep" in findings[0].message


def test_supervisor_module_tracked_tasks_and_async_sleep_are_clean():
    """False-positive guard: the supervisor's real idioms — stored task
    handles, done-callbacks for self-cleanup, awaited asyncio.sleep — must
    not be flagged."""
    module = mod(
        """
        import asyncio

        async def spawn(self, handle):
            handle.monitor = asyncio.get_running_loop().create_task(
                self.monitor(handle)
            )
            task = asyncio.create_task(self.restart_later(handle, 0.5))
            self.restart_tasks.add(task)
            task.add_done_callback(self.restart_tasks.discard)

        async def monitor(self, handle):
            await handle.process.wait()

        async def restart_later(self, handle, delay):
            await asyncio.sleep(delay)
        """,
        "repro.runtime.supervisor",
    )
    assert run_rule(AsyncioHygieneRule, module) == []


def test_swarm_module_unawaited_close_is_flagged():
    """True positive in repro.client.swarm: forgetting to await close()
    silently leaks every client connection."""
    module = mod(
        """
        import asyncio

        async def close(self):
            pass

        async def run(self):
            self.close()
        """,
        "repro.client.swarm",
    )
    findings = run_rule(AsyncioHygieneRule, module)
    assert len(findings) == 1
    assert "without await" in findings[0].message


def test_swarm_module_wall_clock_reads_are_clean():
    """False-positive guard: the swarm's wall-clock timestamping uses
    time.monotonic() (non-blocking) inside async code — only time.sleep
    is the hazard."""
    module = mod(
        """
        import asyncio
        import time

        async def drive(self, deadline):
            while time.monotonic() < deadline:
                self.submit()
                await asyncio.sleep(0.01)

        def submit(self):
            return time.monotonic()
        """,
        "repro.client.swarm",
    )
    assert run_rule(AsyncioHygieneRule, module) == []
