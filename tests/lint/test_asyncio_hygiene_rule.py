"""Asyncio hygiene: task handles, awaits, blocking sleeps, loop access."""

from repro.lint.rules.asyncio_hygiene import AsyncioHygieneRule

from tests.lint.conftest import mod, run_rule


def test_discarded_create_task_is_flagged():
    module = mod(
        """
        import asyncio

        async def serve(handler):
            asyncio.create_task(handler())
        """,
        "repro.net.tcp",
    )
    findings = run_rule(AsyncioHygieneRule, module)
    assert len(findings) == 1
    assert "create_task" in findings[0].message


def test_tracked_create_task_is_allowed():
    module = mod(
        """
        import asyncio

        async def serve(self, handler):
            self.tasks.append(asyncio.create_task(handler()))
            task = asyncio.create_task(handler())
            return task
        """,
        "repro.net.tcp",
    )
    assert run_rule(AsyncioHygieneRule, module) == []


def test_unawaited_local_coroutine_is_flagged():
    module = mod(
        """
        import asyncio

        async def flush(self):
            pass

        async def close(self):
            self.flush()
        """,
        "repro.runtime.live",
    )
    findings = run_rule(AsyncioHygieneRule, module)
    assert len(findings) == 1
    assert "without await" in findings[0].message


def test_awaited_coroutine_and_foreign_close_are_allowed():
    module = mod(
        """
        import asyncio

        async def flush(self):
            pass

        async def shutdown(self, writer):
            await self.flush()
            writer.close()
        """,
        "repro.net.tcp",
    )
    assert run_rule(AsyncioHygieneRule, module) == []


def test_blocking_sleep_in_async_function_is_flagged():
    module = mod(
        """
        import asyncio
        import time

        async def backoff():
            time.sleep(0.1)
        """,
        "repro.runtime.live",
    )
    findings = run_rule(AsyncioHygieneRule, module)
    assert len(findings) == 1
    assert "time.sleep" in findings[0].message


def test_blocking_sleep_in_sync_helper_is_allowed():
    module = mod(
        """
        import asyncio
        import time

        def wait_for_port():
            time.sleep(0.1)
        """,
        "repro.runtime.live",
    )
    assert run_rule(AsyncioHygieneRule, module) == []


def test_deprecated_get_event_loop_is_flagged():
    module = mod(
        """
        import asyncio

        def loop():
            return asyncio.get_event_loop()
        """,
        "repro.runtime.live",
    )
    assert len(run_rule(AsyncioHygieneRule, module)) == 1


def test_rule_only_applies_to_asyncio_importing_repro_modules():
    sim = mod(
        """
        def create_task(x):
            return x

        def run():
            create_task(1)
        """,
        "repro.sim.scheduler",
    )
    assert run_rule(AsyncioHygieneRule, sim) == []
