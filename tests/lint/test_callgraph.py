"""Call-graph construction: method/alias resolution and serialization."""

import json
from pathlib import Path

import repro
from repro.lint.engine import collect_modules
from repro.lint.flow import build_call_graph

from tests.lint.conftest import mod

REPO_ROOT = Path(repro.__file__).resolve().parent.parent.parent
GOLDEN = Path(__file__).parent / "goldens" / "callgraph_core.json"


def graph_of(*modules):
    return build_call_graph(list(modules))


def test_same_module_bare_calls_resolve():
    g = graph_of(mod(
        """
        def helper():
            pass

        def caller():
            helper()
        """,
        "repro.pkg.a",
    ))
    assert "repro.pkg.a.helper" in g.functions["repro.pkg.a.caller"].calls


def test_self_method_resolves_through_own_class():
    g = graph_of(mod(
        """
        class Replica:
            def step(self):
                self.advance()

            def advance(self):
                pass
        """,
        "repro.pkg.a",
    ))
    node = g.functions["repro.pkg.a.Replica.step"]
    assert "repro.pkg.a.Replica.advance" in node.calls
    assert node.unresolved == set()


def test_self_method_resolves_through_project_base_class():
    base = mod(
        """
        class Process:
            def set_timer(self, delay):
                pass
        """,
        "repro.sim.process",
    )
    child = mod(
        """
        from repro.sim.process import Process

        class Replica(Process):
            def on_start(self):
                self.set_timer(1.0)
        """,
        "repro.core.replica",
    )
    g = graph_of(base, child)
    node = g.functions["repro.core.replica.Replica.on_start"]
    assert "repro.sim.process.Process.set_timer" in node.calls


def test_import_alias_resolution():
    target = mod(
        """
        def verify_qc(qc):
            pass
        """,
        "repro.core.validation",
    )
    user = mod(
        """
        from repro.core.validation import verify_qc as vq
        import repro.core.validation as val

        def a(qc):
            vq(qc)

        def b(qc):
            val.verify_qc(qc)
        """,
        "repro.core.replica",
    )
    g = graph_of(target, user)
    assert "repro.core.validation.verify_qc" in g.functions["repro.core.replica.a"].calls
    assert "repro.core.validation.verify_qc" in g.functions["repro.core.replica.b"].calls


def test_function_local_import_alias_resolution():
    target = mod(
        """
        class FallbackEngine:
            def __init__(self, replica):
                pass
        """,
        "repro.core.fallback",
    )
    user = mod(
        """
        class Replica:
            def __init__(self):
                from repro.core.fallback import FallbackEngine
                self.fallback = FallbackEngine(self)
        """,
        "repro.core.replica",
    )
    g = graph_of(target, user)
    node = g.functions["repro.core.replica.Replica.__init__"]
    assert "repro.core.fallback.FallbackEngine.__init__" in node.calls
    # ...and the attribute type was inferred from the constructor call.
    assert (
        g.classes["repro.core.replica.Replica"].attr_types["fallback"]
        == "repro.core.fallback.FallbackEngine"
    )


def test_typed_attribute_method_call_resolution():
    safety = mod(
        """
        class SafetyRules:
            def update_lock(self, qc):
                pass
        """,
        "repro.core.safety",
    )
    replica = mod(
        """
        from repro.core.safety import SafetyRules

        class Replica:
            def __init__(self):
                self.safety = SafetyRules()

            def process(self, cert):
                self.safety.update_lock(cert)
        """,
        "repro.core.replica",
    )
    g = graph_of(safety, replica)
    node = g.functions["repro.core.replica.Replica.process"]
    assert "repro.core.safety.SafetyRules.update_lock" in node.calls


def test_call_targets_are_recorded_per_site():
    g = graph_of(mod(
        """
        def helper():
            pass

        def caller():
            helper()
        """,
        "repro.pkg.a",
    ))
    node = g.functions["repro.pkg.a.caller"]
    assert list(node.call_targets.values()) == ["repro.pkg.a.helper"]


def test_reachable_from_walks_the_graph():
    g = graph_of(mod(
        """
        def a():
            b()

        def b():
            c()

        def c():
            pass

        def unrelated():
            pass
        """,
        "repro.pkg.a",
    ))
    reach = g.reachable_from(["repro.pkg.a.a"])
    assert reach == {"repro.pkg.a.a", "repro.pkg.a.b", "repro.pkg.a.c"}


def _real_core_dump() -> str:
    modules = [
        m
        for m in collect_modules(REPO_ROOT / "src", None)
        if not m.is_test and m.module.startswith("repro")
    ]
    graph = build_call_graph(modules)
    return json.dumps(graph.to_json("repro.core"), indent=2, sort_keys=True) + "\n"


def test_serialized_graph_is_build_stable():
    # Two independent builds of the same tree serialize byte-identically —
    # the property the per-PR graph-diff artifact depends on.
    assert _real_core_dump() == _real_core_dump()


def test_core_graph_matches_golden_file():
    expected = GOLDEN.read_text(encoding="utf-8")
    actual = _real_core_dump()
    assert actual == expected, (
        "serialized repro.core call graph changed; if the change is "
        "intentional, regenerate with:\n  PYTHONPATH=src python -m repro "
        "lint --graph tests/lint/goldens/callgraph_core.json "
        "--graph-prefix repro.core"
    )
