"""Quorum-literal rule: hand-rolled thresholds vs the config arithmetic."""

from repro.lint.rules.quorum_literal import QuorumLiteralRule

from tests.lint.conftest import mod, run_rule


def test_integer_literal_threshold_is_flagged():
    module = mod(
        """
        def have_quorum(votes):
            return len(votes) >= 3
        """,
        "repro.core.pacemaker",
    )
    findings = run_rule(QuorumLiteralRule, module)
    assert len(findings) == 1
    assert "literal 3" in findings[0].message


def test_hand_rolled_2f_plus_1_is_flagged():
    module = mod(
        """
        def have_quorum(votes, f):
            return len(votes) >= 2 * f + 1
        """,
        "repro.core.fallback",
    )
    findings = run_rule(QuorumLiteralRule, module)
    assert len(findings) == 1
    assert "f/n" in findings[0].message


def test_reversed_operand_order_is_flagged():
    module = mod(
        """
        def have_quorum(votes):
            return 3 <= len(votes)
        """,
        "repro.core.pacemaker",
    )
    assert len(run_rule(QuorumLiteralRule, module)) == 1


def test_quorum_size_route_is_allowed():
    module = mod(
        """
        def have_quorum(votes, config):
            return len(votes) >= config.quorum_size
        """,
        "repro.core.pacemaker",
    )
    assert run_rule(QuorumLiteralRule, module) == []


def test_replica_quorum_and_coin_threshold_are_allowed():
    module = mod(
        """
        def checks(bucket, shares, replica, config):
            a = len(bucket) >= replica.quorum
            b = len(shares) >= config.coin_threshold
            return a and b
        """,
        "repro.core.fallback",
    )
    assert run_rule(QuorumLiteralRule, module) == []


def test_plain_name_comparator_is_allowed():
    module = mod(
        """
        def chunked(blocks, limit):
            return len(blocks) >= limit
        """,
        "repro.core.replica",
    )
    assert run_rule(QuorumLiteralRule, module) == []


def test_small_structural_constants_are_allowed():
    module = mod(
        """
        def shape_checks(payload, parts):
            return len(payload) == 0 or len(parts) == 1
        """,
        "repro.core.replica",
    )
    assert run_rule(QuorumLiteralRule, module) == []


def test_outside_core_is_out_of_scope():
    module = mod(
        """
        def header_ok(buffer):
            return len(buffer) >= 9
        """,
        "repro.wire.framing",
    )
    assert run_rule(QuorumLiteralRule, module) == []
