"""Helpers for lint-rule tests: in-memory modules and single-rule runs."""

import textwrap

from repro.lint.engine import ParsedModule, lint_modules


def mod(source, module, path=None, is_test=False):
    """Build a ParsedModule from an (indented) source snippet."""
    return ParsedModule(
        textwrap.dedent(source),
        module,
        path or module.replace(".", "/") + ".py",
        is_test=is_test,
    )


def run_rule(rule_cls, *modules):
    """Run one rule over the given modules; return the findings."""
    return lint_modules(list(modules), [rule_cls()])
