"""Determinism rules: wall clocks, unseeded randomness, unordered iteration."""

from repro.lint.rules.determinism import (
    UnorderedIterationRule,
    UnseededRandomRule,
    WallClockRule,
    in_deterministic_scope,
)

from tests.lint.conftest import mod, run_rule


# ----------------------------------------------------------------------
# Scope
# ----------------------------------------------------------------------
def test_scope_covers_sim_side_and_excludes_live_side():
    assert in_deterministic_scope(mod("", "repro.sim.scheduler"))
    assert in_deterministic_scope(mod("", "repro.core.replica"))
    assert in_deterministic_scope(mod("", "repro.crypto.coin"))
    assert in_deterministic_scope(mod("", "repro.net.loss"))
    assert not in_deterministic_scope(mod("", "repro.net.tcp"))
    assert not in_deterministic_scope(mod("", "repro.runtime.live"))
    assert not in_deterministic_scope(mod("", "repro.analysis.stats"))


# ----------------------------------------------------------------------
# wall-clock
# ----------------------------------------------------------------------
def test_wall_clock_flags_time_time_in_sim_code():
    module = mod(
        """
        import time

        def stamp():
            return time.time()
        """,
        "repro.sim.scheduler",
    )
    findings = run_rule(WallClockRule, module)
    assert len(findings) == 1
    assert "time.time" in findings[0].message


def test_wall_clock_resolves_aliases_and_from_imports():
    module = mod(
        """
        import time as t
        from datetime import datetime

        def stamps():
            return t.monotonic(), datetime.now()
        """,
        "repro.core.replica",
    )
    findings = run_rule(WallClockRule, module)
    assert len(findings) == 2


def test_wall_clock_allows_live_side_and_analysis_code():
    source = """
        import time

        def stamp():
            return time.time()
        """
    assert run_rule(WallClockRule, mod(source, "repro.net.tcp")) == []
    assert run_rule(WallClockRule, mod(source, "repro.analysis.stats")) == []


def test_wall_clock_allows_simulated_clock_attribute():
    module = mod(
        """
        def now(scheduler):
            return scheduler.time()
        """,
        "repro.sim.scheduler",
    )
    assert run_rule(WallClockRule, module) == []


# ----------------------------------------------------------------------
# unseeded-random
# ----------------------------------------------------------------------
def test_unseeded_random_flags_global_random_and_os_entropy():
    module = mod(
        """
        import os
        import random

        def draw():
            return random.random(), os.urandom(8)
        """,
        "repro.net.loss",
    )
    findings = run_rule(UnseededRandomRule, module)
    assert len(findings) == 2


def test_unseeded_random_flags_seedless_random_instance():
    module = mod(
        """
        import random

        def make_rng():
            return random.Random()
        """,
        "repro.sim.scheduler",
    )
    findings = run_rule(UnseededRandomRule, module)
    assert len(findings) == 1
    assert "without a seed" in findings[0].message


def test_unseeded_random_allows_seeded_random_instance():
    module = mod(
        """
        import random

        def make_rng(seed):
            return random.Random(seed)
        """,
        "repro.sim.scheduler",
    )
    assert run_rule(UnseededRandomRule, module) == []


def test_unseeded_random_allows_child_rng_draws():
    module = mod(
        """
        def sample_delay(self):
            return self.rng.expovariate(1.0)
        """,
        "repro.net.loss",
    )
    assert run_rule(UnseededRandomRule, module) == []


def test_unseeded_random_flags_secrets_module():
    module = mod(
        """
        import secrets

        def token():
            return secrets.token_bytes(32)
        """,
        "repro.crypto.keys",
    )
    assert len(run_rule(UnseededRandomRule, module)) == 1


# ----------------------------------------------------------------------
# unordered-iteration
# ----------------------------------------------------------------------
def test_unordered_iteration_flags_for_over_set_literal():
    module = mod(
        """
        def fanout():
            for peer in {3, 1, 2}:
                send(peer)
        """,
        "repro.core.replica",
    )
    assert len(run_rule(UnorderedIterationRule, module)) == 1


def test_unordered_iteration_flags_set_valued_local():
    module = mod(
        """
        def fanout(peers):
            pending = set(peers)
            for peer in pending:
                send(peer)
        """,
        "repro.core.replica",
    )
    assert len(run_rule(UnorderedIterationRule, module)) == 1


def test_unordered_iteration_flags_self_attribute_set():
    module = mod(
        """
        class Tracker:
            def __init__(self):
                self.pending = set()

            def flush(self):
                return [send(p) for p in self.pending]
        """,
        "repro.core.replica",
    )
    assert len(run_rule(UnorderedIterationRule, module)) == 1


def test_unordered_iteration_allows_sorted_sets():
    module = mod(
        """
        def fanout(peers):
            pending = set(peers)
            for peer in sorted(pending):
                send(peer)
            return sorted({3, 1, 2})
        """,
        "repro.core.replica",
    )
    assert run_rule(UnorderedIterationRule, module) == []


def test_unordered_iteration_allows_membership_and_len():
    module = mod(
        """
        def quorum(voters, n):
            seen = set(voters)
            return len(seen) >= n and 0 in seen
        """,
        "repro.core.replica",
    )
    assert run_rule(UnorderedIterationRule, module) == []


def test_unordered_iteration_flags_popitem_and_list_of_set():
    module = mod(
        """
        def drain(table, items):
            order = list(set(items))
            return table.popitem(), order
        """,
        "repro.sim.scheduler",
    )
    assert len(run_rule(UnorderedIterationRule, module)) == 2


def test_unordered_iteration_rebound_name_is_not_flagged():
    module = mod(
        """
        def fanout(peers):
            pending = set(peers)
            pending = sorted(pending)
            for peer in pending:
                send(peer)
        """,
        "repro.core.replica",
    )
    assert run_rule(UnorderedIterationRule, module) == []


def test_rules_skip_test_modules():
    module = mod(
        """
        import time

        def stamp():
            return time.time()
        """,
        "tests.sim.test_scheduler",
        is_test=True,
    )
    assert run_rule(WallClockRule, module) == []
