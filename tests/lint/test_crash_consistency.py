"""Crash-consistency rules: true-positive and false-positive fixtures."""

from repro.lint.rules.crash_consistency import (
    AtomicReplaceRule,
    JournalCoverageRule,
    MonotonicRestoreRule,
    PersistBeforeSendRule,
)

from tests.lint.conftest import mod, run_rule


# ----------------------------------------------------------------------
# persist-before-send
# ----------------------------------------------------------------------
_BOUNDARY_CLASSES = """
class SafetyJournal:
    def write(self, snapshot):
        pass


class Network:
    def send(self, sender, receiver, message):
        pass

    def multicast(self, sender, message):
        pass
"""


def test_persist_before_send_flags_send_ahead_of_journal():
    findings = run_rule(PersistBeforeSendRule, mod(
        _BOUNDARY_CLASSES + """

class Node:
    def __init__(self, network: Network):
        self.network = network
        self.journal = SafetyJournal()
        self.r_vote = 0

    def deliver(self, sender, message):
        self.r_vote = message
        self.network.send(0, 1, message)
        self.journal.write(self.r_vote)
""",
        "repro.fix.wal",
    ))
    assert [f.rule for f in findings] == ["persist-before-send"]
    assert "r_vote" in findings[0].message
    assert "Node.deliver" in findings[0].message


def test_persist_before_send_accepts_journal_first():
    findings = run_rule(PersistBeforeSendRule, mod(
        _BOUNDARY_CLASSES + """

class Node:
    def __init__(self, network: Network):
        self.network = network
        self.journal = SafetyJournal()
        self.r_vote = 0

    def deliver(self, sender, message):
        self.r_vote = message
        self.journal.write(self.r_vote)
        self.network.send(0, 1, message)
""",
        "repro.fix.wal",
    ))
    assert findings == []


def test_persist_before_send_ignores_unjournaled_classes():
    # A volatile replica (no journal anywhere in its handlers) has no
    # write-ahead obligation: mutate-then-send is its normal operation.
    findings = run_rule(PersistBeforeSendRule, mod(
        _BOUNDARY_CLASSES + """

class VolatileNode:
    def __init__(self, network: Network):
        self.network = network
        self.r_vote = 0

    def deliver(self, sender, message):
        self.r_vote = message
        self.network.send(0, 1, message)
""",
        "repro.fix.wal",
    ))
    assert findings == []


def test_persist_before_send_sees_through_inherited_handlers():
    # The mutation and send live in the base class; only the subclass
    # journals.  The violation belongs to the journaled subclass and the
    # analysis must walk the base handler under the subclass's MRO.
    findings = run_rule(PersistBeforeSendRule, mod(
        _BOUNDARY_CLASSES + """

class Base:
    def __init__(self, network: Network):
        self.network = network
        self.r_vote = 0

    def handle(self, message):
        self.r_vote = message
        self.network.send(0, 1, message)


class Durable(Base):
    def __init__(self, network: Network):
        self.journal = SafetyJournal()

    def deliver(self, sender, message):
        self.handle(message)
        self.journal.write(self.r_vote)
""",
        "repro.fix.wal",
    ))
    assert [f.rule for f in findings] == ["persist-before-send"]


def test_persist_before_send_accepts_outbox_pattern():
    # The real fix shape: sends resolve to a buffering outbox under the
    # durable class; the journal write precedes the flush's real egress.
    findings = run_rule(PersistBeforeSendRule, mod(
        _BOUNDARY_CLASSES + """

class Outbox:
    def __init__(self, inner: Network):
        self.inner = inner
        self.pending = []

    def send(self, sender, receiver, message):
        self.pending.append((sender, receiver, message))

    def flush(self):
        for sender, receiver, message in self.pending:
            self.inner.send(sender, receiver, message)


class Base:
    def __init__(self, network: Network):
        self.network = network
        self.r_vote = 0

    def handle(self, message):
        self.r_vote = message
        self.network.send(0, 1, message)


class Durable(Base):
    def __init__(self, network: Network):
        self.journal = SafetyJournal()
        self.network = Outbox(self.network)

    def deliver(self, sender, message):
        self.handle(message)
        self.journal.write(self.r_vote)
        self.network.flush()
""",
        "repro.fix.wal",
    ))
    assert findings == []


def test_persist_before_send_on_real_tree_is_clean():
    # DurableReplica's persist-then-flush outbox is the on-tree proof
    # obligation this rule exists for.
    from pathlib import Path

    import repro
    from repro.lint.engine import collect_modules, lint_modules

    src = Path(repro.__file__).resolve().parent.parent
    modules = collect_modules(src, None)
    findings = lint_modules(modules, [PersistBeforeSendRule()])
    assert findings == []


# ----------------------------------------------------------------------
# journal-coverage
# ----------------------------------------------------------------------
_COVERED_SNAPSHOT = """
class SafetySnapshot:
    r_vote: int
    rank_lock: int
    fallback_view: int
    fallback_r_vote: dict
    fallback_h_vote: dict


def snapshot_to_dict(snapshot):
    return {
        "r_vote": snapshot.r_vote,
        "rank_lock": snapshot.rank_lock,
        "fallback_view": snapshot.fallback_view,
        "fallback_r_vote": snapshot.fallback_r_vote,
        "fallback_h_vote": snapshot.fallback_h_vote,
    }


def snapshot_from_dict(data):
    return SafetySnapshot(
        r_vote=data["r_vote"],
        rank_lock=data["rank_lock"],
        fallback_view=data["fallback_view"],
        fallback_r_vote=data["fallback_r_vote"],
        fallback_h_vote=data["fallback_h_vote"],
    )


class Node:
    def _persist(self):
        snapshot = SafetySnapshot(
            r_vote=self.safety.r_vote,
            rank_lock=self.safety.rank_lock,
            fallback_view=0,
            fallback_r_vote={},
            fallback_h_vote={},
        )
        self.journal.write(snapshot)

    def _restore(self, snapshot):
        self.safety.r_vote = max(self.safety.r_vote, snapshot.r_vote)
        self.safety.rank_lock = max(self.safety.rank_lock, snapshot.rank_lock)
        self.view = snapshot.fallback_view
        self.rv = dict(snapshot.fallback_r_vote)
        self.hv = dict(snapshot.fallback_h_vote)
"""


def test_journal_coverage_clean_when_all_layers_agree():
    findings = run_rule(
        JournalCoverageRule, mod(_COVERED_SNAPSHOT, "repro.fix.cov")
    )
    assert findings == []


def test_journal_coverage_flags_field_never_restored():
    # Drop the r_vote read from _restore: the persisted value is silently
    # forgotten on recovery — both the symmetric diff and the ownership
    # check fire.
    broken = _COVERED_SNAPSHOT.replace(
        "self.safety.r_vote = max(self.safety.r_vote, snapshot.r_vote)\n        ",
        "",
    )
    findings = run_rule(JournalCoverageRule, mod(broken, "repro.fix.cov"))
    assert all(f.rule == "journal-coverage" for f in findings)
    assert any("never restores" in f.message and "r_vote" in f.message
               for f in findings)
    assert any("ownership map" in f.message for f in findings)


def test_journal_coverage_flags_codec_asymmetry():
    # snapshot_to_dict drops rank_lock: serialization loses a declared
    # snapshot field.
    broken = _COVERED_SNAPSHOT.replace(
        '        "rank_lock": snapshot.rank_lock,\n', ""
    )
    findings = run_rule(JournalCoverageRule, mod(broken, "repro.fix.cov"))
    assert any(
        "snapshot_to_dict" in f.message and "rank_lock" in f.message
        for f in findings
    )


def test_journal_coverage_flags_undeclared_field():
    broken = _COVERED_SNAPSHOT.replace(
        'return {\n        "r_vote": snapshot.r_vote,',
        'return {\n        "ghost": snapshot.r_vote,\n        "r_vote": snapshot.r_vote,',
    )
    findings = run_rule(JournalCoverageRule, mod(broken, "repro.fix.cov"))
    assert any("ghost" in f.message and "does not declare" in f.message
               for f in findings)


def test_journal_coverage_inert_without_snapshot_class():
    findings = run_rule(JournalCoverageRule, mod(
        """
        def snapshot_to_dict(snapshot):
            return {"anything": snapshot.anything}
        """,
        "repro.fix.cov",
    ))
    assert findings == []


# ----------------------------------------------------------------------
# atomic-replace
# ----------------------------------------------------------------------
def test_atomic_replace_flags_plain_write():
    findings = run_rule(AtomicReplaceRule, mod(
        """
        def save(path, text):
            path.write_text(text)
        """,
        "repro.storage.bad",
    ))
    assert [f.rule for f in findings] == ["atomic-replace"]
    assert "non-atomic" in findings[0].message


def test_atomic_replace_flags_tmp_write_without_fsync():
    findings = run_rule(AtomicReplaceRule, mod(
        """
        import os

        def publish(path, text):
            tmp = path.with_suffix(".tmp")
            tmp.write_text(text)
            os.replace(tmp, path)
        """,
        "repro.runtime.bad",
    ))
    assert [f.rule for f in findings] == ["atomic-replace"]
    assert "fsync" in findings[0].message


def test_atomic_replace_accepts_full_idiom_and_append_logs():
    findings = run_rule(AtomicReplaceRule, mod(
        """
        import os

        def publish(path, text):
            tmp = path.with_suffix(".tmp")
            with open(tmp, "w") as handle:
                handle.write(text)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)

        def append_record(path, line):
            with open(path, "a") as handle:
                handle.write(line)
        """,
        "repro.storage.good",
    ))
    assert findings == []


def test_atomic_replace_scoped_to_storage_and_runtime():
    findings = run_rule(AtomicReplaceRule, mod(
        """
        def save(path, text):
            path.write_text(text)
        """,
        "repro.experiments.report",
    ))
    assert findings == []


# ----------------------------------------------------------------------
# monotonic-restore
# ----------------------------------------------------------------------
def test_monotonic_restore_flags_plain_assignment():
    findings = run_rule(MonotonicRestoreRule, mod(
        """
        class Node:
            def _restore(self, snapshot):
                self.safety.r_vote = snapshot.r_vote
        """,
        "repro.storage.reg",
    ))
    assert [f.rule for f in findings] == ["monotonic-restore"]
    assert "r_vote" in findings[0].message


def test_monotonic_restore_accepts_max_merge():
    findings = run_rule(MonotonicRestoreRule, mod(
        """
        class Node:
            def _restore(self, snapshot):
                self.safety.r_vote = max(self.safety.r_vote, snapshot.r_vote)
                self.fallback_mode = snapshot.fallback_mode
                self.rv = dict(snapshot.fallback_r_vote)
        """,
        "repro.storage.reg",
    ))
    assert findings == []


def test_monotonic_restore_matches_annotated_snapshot_params():
    findings = run_rule(MonotonicRestoreRule, mod(
        """
        class Node:
            def adopt(self, snap: "SafetySnapshot"):
                self.v_cur = snap.v_cur
        """,
        "repro.storage.reg",
    ))
    assert [f.rule for f in findings] == ["monotonic-restore"]


def test_monotonic_restore_ignores_non_monotone_and_other_scopes():
    findings = run_rule(MonotonicRestoreRule, mod(
        """
        class Node:
            def _restore(self, snapshot):
                self.safety.r_vote = snapshot.r_vote
        """,
        "repro.core.reg",
    ))
    assert findings == []
