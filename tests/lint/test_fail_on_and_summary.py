"""Exit-code policy (--fail-on) and the JSON severity summary."""

import json
import textwrap

import pytest

from repro.cli import main
from repro.lint.engine import (
    Finding,
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    should_fail,
    summarize,
)


def _finding(severity, rule="wall-clock"):
    return Finding(
        path="src/repro/x.py", line=1, col=1, rule=rule,
        message="m", severity=severity,
    )


def test_should_fail_default_ignores_warnings():
    warnings_only = [_finding(SEVERITY_WARNING)]
    assert not should_fail(warnings_only)
    assert should_fail(warnings_only, "warning")
    assert should_fail([_finding(SEVERITY_ERROR)])
    assert not should_fail([], "warning")


def test_summarize_counts_by_severity_and_rule():
    findings = [
        _finding(SEVERITY_ERROR, rule="wall-clock"),
        _finding(SEVERITY_ERROR, rule="wall-clock"),
        _finding(SEVERITY_WARNING, rule="swallowed-exception"),
    ]
    summary = summarize(findings)
    assert summary == {
        "total": 3,
        "errors": 2,
        "warnings": 1,
        "by_rule": {"swallowed-exception": 1, "wall-clock": 2},
    }


@pytest.fixture
def warning_tree(tmp_path):
    """A minimal source tree whose only finding is a warning."""
    pkg = tmp_path / "src" / "repro" / "core"
    pkg.mkdir(parents=True)
    (tmp_path / "src" / "repro" / "__init__.py").write_text("")
    (pkg / "__init__.py").write_text("")
    (pkg / "engine.py").write_text(textwrap.dedent(
        """
        def step(replica):
            try:
                replica.tick()
            except Exception:
                pass
        """
    ))
    return tmp_path / "src"


def test_cli_warning_passes_by_default(warning_tree, capsys):
    code = main([
        "lint", "--src", str(warning_tree), "--no-tests",
        "--rule", "swallowed-exception",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "1 finding(s) (0 error(s), 1 warning(s))" in out


def test_cli_fail_on_warning_turns_warnings_fatal(warning_tree, capsys):
    code = main([
        "lint", "--src", str(warning_tree), "--no-tests",
        "--rule", "swallowed-exception", "--fail-on", "warning",
    ])
    capsys.readouterr()
    assert code == 1


def test_cli_json_summary_reports_severity_counts(warning_tree, capsys):
    code = main([
        "lint", "--src", str(warning_tree), "--no-tests",
        "--rule", "swallowed-exception", "--format", "json",
    ])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["warnings"] == 1 and payload["errors"] == 0
    assert payload["summary"]["total"] == 1
    assert payload["summary"]["by_rule"] == {"swallowed-exception": 1}


def test_cli_graph_dump_writes_stable_json(tmp_path, capsys):
    out_path = tmp_path / "graph.json"
    assert main(["lint", "--graph", str(out_path)]) == 0
    capsys.readouterr()
    first = out_path.read_text(encoding="utf-8")
    payload = json.loads(first)
    assert payload["version"] == 1
    assert "repro.core.replica.Replica.on_message" in payload["functions"]
    assert main(["lint", "--graph", str(out_path)]) == 0
    capsys.readouterr()
    assert out_path.read_text(encoding="utf-8") == first


def test_cli_graph_prefix_restricts_the_dump(tmp_path, capsys):
    out_path = tmp_path / "core.json"
    assert main([
        "lint", "--graph", str(out_path), "--graph-prefix", "repro.core",
    ]) == 0
    capsys.readouterr()
    payload = json.loads(out_path.read_text(encoding="utf-8"))
    assert payload["functions"]
    assert all(
        node["module"].startswith("repro.core")
        for node in payload["functions"].values()
    )
