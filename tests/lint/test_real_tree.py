"""The real repository passes its own lint suite, via API and CLI."""

import json
from pathlib import Path

import pytest

import repro
from repro.cli import main
from repro.lint import all_rule_ids, lint_tree

REPO_ROOT = Path(repro.__file__).resolve().parent.parent.parent
SRC_ROOT = REPO_ROOT / "src"
TESTS_ROOT = REPO_ROOT / "tests"


def test_lint_tree_is_clean_on_the_real_repo():
    findings = lint_tree(SRC_ROOT, TESTS_ROOT)
    assert findings == [], "\n".join(finding.render() for finding in findings)


def test_wire_coverage_engages_without_tests_root():
    # Dropping the tests root removes the round-trip evidence, so every
    # registered message type must be reported — proof the cross-module
    # rule actually runs against the real tree.
    findings = lint_tree(SRC_ROOT, None, rule_ids=["wire-coverage"])
    assert findings, "wire-coverage rule never engaged"
    assert all(finding.rule == "wire-coverage" for finding in findings)


def test_cli_lint_exits_zero_and_reports_clean(capsys):
    assert main(["lint"]) == 0
    assert "clean" in capsys.readouterr().out


def test_cli_lint_json_output(capsys):
    assert main(["lint", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["findings"] == []
    assert payload["errors"] == 0


def test_cli_lint_rule_subset(capsys):
    assert main(["lint", "--rule", "wall-clock", "--rule", "hot-path"]) == 0
    capsys.readouterr()


def test_cli_lint_unknown_rule_is_an_error():
    with pytest.raises(SystemExit, match="unknown rule"):
        main(["lint", "--rule", "definitely-not-a-rule"])


def test_cli_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in all_rule_ids():
        assert rule_id in out
