"""Byzantine-taint dataflow: unverified message data vs safety state."""

from repro.lint.rules.byzantine_taint import ByzantineTaintRule

from tests.lint.conftest import mod, run_rule


def test_direct_unverified_write_to_qc_high_is_flagged():
    module = mod(
        """
        class Replica:
            def handle_timeout(self, message):
                self.qc_high = message.qc_high
        """,
        "repro.core.replica",
    )
    findings = run_rule(ByzantineTaintRule, module)
    assert len(findings) == 1
    assert "message.qc_high" in findings[0].message
    assert ".qc_high" in findings[0].message


def test_interprocedural_flow_through_helper_is_flagged_at_handler():
    module = mod(
        """
        class Safety:
            def update_lock(self, qc):
                pass

        class Replica:
            def __init__(self):
                self.safety = Safety()

            def handle_proposal(self, message):
                self.process_certificate(message.block.qc)

            def process_certificate(self, cert):
                self.qc_high = cert
                self.safety.update_lock(cert)
        """,
        "repro.core.replica",
    )
    findings = run_rule(ByzantineTaintRule, module)
    assert len(findings) == 2  # the field write and the update_lock call
    assert all("handle_proposal" in f.message for f in findings)
    assert any("process_certificate" in f.message for f in findings)


def test_verify_gate_sanitizes_the_flow():
    module = mod(
        """
        from repro.core.validation import verify_qc

        class Replica:
            def handle_vote(self, message):
                if not verify_qc(message.qc):
                    return
                self.process_certificate(message.qc)

            def process_certificate(self, cert):
                self.qc_high = cert
        """,
        "repro.core.replica",
    )
    assert run_rule(ByzantineTaintRule, module) == []


def test_may_vote_guard_sanitizes_the_vote_path():
    module = mod(
        """
        class Safety:
            def may_vote_regular(self, block):
                return True

            def record_regular_vote(self, block):
                pass

        class Replica:
            def __init__(self):
                self.safety = Safety()

            def handle_proposal(self, message):
                if self.safety.may_vote_regular(message.block):
                    self.safety.record_regular_vote(message.block)
        """,
        "repro.core.replica",
    )
    assert run_rule(ByzantineTaintRule, module) == []


def test_unguarded_sink_method_call_is_flagged():
    module = mod(
        """
        class Replica:
            def handle_proposal(self, message):
                self.safety.record_regular_vote(message.block)
        """,
        "repro.core.replica",
    )
    findings = run_rule(ByzantineTaintRule, module)
    assert len(findings) == 1
    assert "record_regular_vote" in findings[0].message


def test_value_assembled_from_verified_fields_is_clean():
    # The real handle_vote pattern: verify_share vouches for the payload
    # tuple's fields, and a certificate assembled from them is clean.
    module = mod(
        """
        class Replica:
            def handle_vote(self, message):
                payload = (message.block_id, message.round)
                if not self.crypto.verify_share(message.share, payload):
                    return
                qc = QC(message.block_id, message.round)
                self.process_certificate(qc)

            def process_certificate(self, cert):
                self.qc_high = cert
        """,
        "repro.core.replica",
    )
    assert run_rule(ByzantineTaintRule, module) == []


def test_sanitizing_a_prefix_covers_nested_fields():
    module = mod(
        """
        class Replica:
            def handle_proposal(self, message):
                if not verify_block(message.block):
                    return
                self.qc_high = message.block.qc
        """,
        "repro.core.replica",
    )
    assert run_rule(ByzantineTaintRule, module) == []


def test_sanitizing_one_field_does_not_cover_siblings():
    module = mod(
        """
        class Replica:
            def handle_proposal(self, message):
                if not verify_qc(message.block.qc):
                    return
                self.qc_high = message.tc
        """,
        "repro.core.replica",
    )
    findings = run_rule(ByzantineTaintRule, module)
    assert len(findings) == 1
    assert "message.tc" in findings[0].message


def test_handlers_outside_core_are_not_sources():
    module = mod(
        """
        class Codec:
            def handle_frame(self, message):
                self.qc_high = message.qc
        """,
        "repro.wire.codec",
    )
    assert run_rule(ByzantineTaintRule, module) == []


def test_pragma_suppresses_the_finding():
    module = mod(
        """
        class Replica:
            def handle_timeout(self, message):
                self.qc_high = message.qc_high  # repro-lint: ignore[byzantine-taint]
        """,
        "repro.core.replica",
    )
    assert run_rule(ByzantineTaintRule, module) == []
