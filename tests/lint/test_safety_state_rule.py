"""Safety-state discipline: lock/vote/high-QC fields have one owner."""

from repro.lint.rules.safety_state import SAFETY_FIELDS, SafetyStateRule

from tests.lint.conftest import mod, run_rule


def test_r_vote_write_outside_owner_is_flagged():
    module = mod(
        """
        def hack(replica):
            replica.safety.r_vote = 0
        """,
        "repro.core.fallback",
    )
    findings = run_rule(SafetyStateRule, module)
    assert len(findings) == 1
    assert ".r_vote" in findings[0].message


def test_owner_modules_may_write_their_fields():
    safety = mod(
        """
        class SafetyRules:
            def record(self, block):
                self.r_vote = block.round
                self.rank_lock = block.rank
        """,
        "repro.core.safety",
    )
    replica = mod(
        """
        class Replica:
            def process(self, cert):
                self.qc_high = max_cert(self.qc_high, cert)
        """,
        "repro.core.replica",
    )
    assert run_rule(SafetyStateRule, safety, replica) == []


def test_durable_restore_path_is_whitelisted():
    module = mod(
        """
        def restore(safety, record):
            safety.r_vote = record.r_vote
            safety.rank_lock = record.rank_lock
        """,
        "repro.storage.durable",
    )
    assert run_rule(SafetyStateRule, module) == []


def test_qc_high_write_outside_replica_is_flagged():
    module = mod(
        """
        def adopt(replica, cert):
            replica.qc_high = cert
        """,
        "repro.core.fallback",
    )
    assert len(run_rule(SafetyStateRule, module)) == 1


def test_augmented_and_annotated_assignments_are_caught():
    module = mod(
        """
        def bump(safety):
            safety.r_vote += 1

        def annotate(replica, cert):
            replica.qc_high: object = cert
        """,
        "repro.net.network",
    )
    assert len(run_rule(SafetyStateRule, module)) == 2


def test_reads_and_local_variables_are_not_flagged():
    module = mod(
        """
        def inspect(safety):
            r_vote = safety.r_vote
            return r_vote, safety.rank_lock
        """,
        "repro.core.commit",
    )
    assert run_rule(SafetyStateRule, module) == []


def test_reserved_aliases_are_guarded_everywhere_else():
    module = mod(
        """
        def smuggle(state, qc):
            state.locked_round = 7
            state.highest_qc = qc
        """,
        "repro.core.pacemaker",
    )
    assert len(run_rule(SafetyStateRule, module)) == 2


def test_every_safety_field_names_at_least_one_owner():
    for field, owners in SAFETY_FIELDS.items():
        assert owners, field
