"""CLI ``--changed``: restrict findings to files changed vs git HEAD."""

import json
import subprocess
import textwrap

import pytest

from repro.cli import main

#: Same violation in every fixture file: an unbounded asyncio queue in a
#: runtime-scoped module — a deterministic single-rule, single-module
#: finding, so scoping (not rule behavior) is the only variable.
_VIOLATION = textwrap.dedent(
    """
    import asyncio


    class Channel:
        def __init__(self):
            self.queue = asyncio.Queue()
    """
).lstrip()


def _git(repo, *argv):
    result = subprocess.run(
        ["git", "-C", str(repo), *argv], capture_output=True, text=True
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


@pytest.fixture
def git_tree(tmp_path):
    """A committed src/repro tree with a violation in two runtime files."""
    repo = tmp_path / "proj"
    pkg = repo / "src" / "repro"
    (pkg / "runtime").mkdir(parents=True)
    (pkg / "__init__.py").write_text("", encoding="utf-8")
    (pkg / "runtime" / "__init__.py").write_text("", encoding="utf-8")
    (pkg / "runtime" / "alpha.py").write_text(_VIOLATION, encoding="utf-8")
    (pkg / "runtime" / "beta.py").write_text(_VIOLATION, encoding="utf-8")
    _git(repo, "init", "--quiet")
    _git(repo, "add", "-A")
    _git(
        repo,
        "-c", "user.name=t",
        "-c", "user.email=t@t",
        "commit", "--quiet", "-m", "seed",
    )
    return repo


def _lint_changed(repo, capsys):
    code = main(
        [
            "lint",
            "--src", str(repo / "src"),
            "--no-tests",
            "--changed",
            "--format", "json",
            "--fail-on", "warning",
        ]
    )
    return code, capsys.readouterr().out


def test_changed_scopes_findings_to_modified_file(git_tree, capsys):
    # Touch alpha only; beta's identical violation must not be reported.
    alpha = git_tree / "src" / "repro" / "runtime" / "alpha.py"
    alpha.write_text(_VIOLATION + "\n# touched\n", encoding="utf-8")
    code, out = _lint_changed(git_tree, capsys)
    payload = json.loads(out)
    paths = {finding["path"] for finding in payload["findings"]}
    assert paths == {"src/repro/runtime/alpha.py"}
    assert code == 1


def test_changed_includes_untracked_files(git_tree, capsys):
    fresh = git_tree / "src" / "repro" / "runtime" / "gamma.py"
    fresh.write_text(_VIOLATION, encoding="utf-8")
    code, out = _lint_changed(git_tree, capsys)
    payload = json.loads(out)
    paths = {finding["path"] for finding in payload["findings"]}
    assert paths == {"src/repro/runtime/gamma.py"}
    assert code == 1


def test_changed_with_clean_tree_exits_zero(git_tree, capsys):
    code, out = _lint_changed(git_tree, capsys)
    assert code == 0
    assert "no changed python files" in out


def test_changed_expands_to_call_graph_neighborhood(git_tree, capsys):
    # alpha calls a helper in delta; touching only delta must re-lint
    # alpha too (interprocedural findings would otherwise be skipped),
    # while beta — unconnected to delta — stays out of scope.
    delta = git_tree / "src" / "repro" / "runtime" / "delta.py"
    delta.write_text("def helper():\n    return 1\n", encoding="utf-8")
    alpha = git_tree / "src" / "repro" / "runtime" / "alpha.py"
    alpha.write_text(
        _VIOLATION
        + textwrap.dedent(
            """
            from repro.runtime.delta import helper


            def use():
                return helper()
            """
        ),
        encoding="utf-8",
    )
    _git(git_tree, "add", "-A")
    _git(
        git_tree,
        "-c", "user.name=t",
        "-c", "user.email=t@t",
        "commit", "--quiet", "-m", "wire alpha to delta",
    )
    delta.write_text("def helper():\n    return 2\n", encoding="utf-8")
    code, out = _lint_changed(git_tree, capsys)
    payload = json.loads(out)
    paths = {finding["path"] for finding in payload["findings"]}
    assert paths == {"src/repro/runtime/alpha.py"}
    assert code == 1


def test_changed_outside_git_checkout_fails_loudly(tmp_path, capsys):
    pkg = tmp_path / "plain" / "src" / "repro"
    pkg.mkdir(parents=True)
    (pkg / "__init__.py").write_text("", encoding="utf-8")
    with pytest.raises(SystemExit, match="needs a git checkout"):
        main(
            [
                "lint",
                "--src", str(tmp_path / "plain" / "src"),
                "--no-tests",
                "--changed",
            ]
        )
