"""Persistence summaries: event streams, dyn-class linearization, golden."""

import json
from pathlib import Path

import repro
from repro.cli import main
from repro.lint.engine import collect_modules
from repro.lint.flow import build_persistence

from tests.lint.conftest import mod

REPO_ROOT = Path(repro.__file__).resolve().parent.parent.parent
GOLDEN = Path(__file__).parent / "goldens" / "persistence_storage.json"

#: The crash-consistency scopes (mirrors goldens/regen.py).
STORAGE_PREFIXES = ("repro.storage", "repro.runtime")


def persistence_of(*modules):
    return build_persistence(list(modules))


def kinds(stream):
    return [event.kind for event in stream]


# ----------------------------------------------------------------------
# Direct streams: mutations, calls, file idioms in evaluation order
# ----------------------------------------------------------------------
def test_safety_mutations_and_journal_sends_in_order():
    index = persistence_of(mod(
        """
        class SafetyJournal:
            def write(self, snapshot):
                pass

        class Network:
            def send(self, sender, receiver, message):
                pass

        class Node:
            def __init__(self, network: Network):
                self.network = network
                self.journal = SafetyJournal()
                self.r_vote = 0

            def deliver(self, sender, message):
                self.r_vote = message
                self.journal.write(self.r_vote)
                self.network.send(0, 1, message)
        """,
        "repro.fix.node",
    ))
    stream = index.linearize("repro.fix.node.Node.deliver")
    assert kinds(stream) == ["mutate", "journal", "send"]
    assert stream[0].detail == "r_vote"
    assert stream[1].detail == "repro.fix.node.SafetyJournal.write"
    assert stream[2].detail == "repro.fix.node.Network.send"


def test_mutator_method_on_tracked_container_is_a_mutation():
    index = persistence_of(mod(
        """
        class Node:
            def __init__(self):
                self._proposed = set()
                self.cache = set()

            def mark(self, key):
                self._proposed.add(key)
                self.cache.add(key)
        """,
        "repro.fix.mut",
    ))
    stream = index.linearize("repro.fix.mut.Node.mark")
    mutations = [e for e in stream if e.kind == "mutate"]
    assert [e.detail for e in mutations] == ["_proposed"]


def test_file_write_idioms_classified():
    index = persistence_of(mod(
        """
        import os

        def publish(path, text):
            tmp = path.with_suffix(".tmp")
            with open(tmp, "w") as handle:
                handle.write(text)
                os.fsync(handle.fileno())
            os.replace(tmp, path)

        def torn(path, text):
            path.write_text(text)

        def log_append(path, line):
            with open(path, "a") as handle:
                handle.write(line)
        """,
        "repro.fix.files",
    ))
    publish = index.persistence("repro.fix.files.publish").stream
    assert [e.kind for e in publish if e.kind != "call"] == [
        "open_write", "fsync", "replace",
    ]
    assert next(e for e in publish if e.kind == "open_write").detail == "w@tmp"
    torn = index.persistence("repro.fix.files.torn").stream
    assert [e.detail for e in torn if e.kind == "open_write"] == [
        "write_text@plain"
    ]
    appender = index.persistence("repro.fix.files.log_append").stream
    assert [e.detail for e in appender if e.kind == "open_write"] == ["a@plain"]


def test_loop_bodies_emit_twice_for_loopback_visibility():
    index = persistence_of(mod(
        """
        class Node:
            def __init__(self):
                self.r_vote = 0

            def spin(self, items):
                for item in items:
                    self.r_vote = item
        """,
        "repro.fix.loop",
    ))
    stream = index.linearize("repro.fix.loop.Node.spin")
    assert kinds(stream) == ["mutate", "mutate"]


# ----------------------------------------------------------------------
# Dynamic-class-aware linearization: the SendOutbox property
# ----------------------------------------------------------------------
OUTBOX_TREE = """
class Network:
    def send(self, sender, receiver, message):
        pass


class Outbox:
    def __init__(self, inner: Network):
        self.inner = inner
        self.pending = []

    def send(self, sender, receiver, message):
        self.pending.append((sender, receiver, message))

    def flush(self):
        for sender, receiver, message in self.pending:
            self.inner.send(sender, receiver, message)


class Journal:
    def write(self, snapshot):
        pass


class Base:
    def __init__(self, network: Network):
        self.network = network
        self.r_vote = 0

    def handle(self, message):
        self.r_vote = message
        self.network.send(0, 1, message)


class Durable(Base):
    def __init__(self, network: Network):
        self.journal = Journal()
        self.network = Outbox(self.network)

    def deliver(self, message):
        super().handle(message)
        self.journal.write(self.r_vote)
        self.network.flush()
"""


def test_attr_hops_resolve_through_dynamic_class():
    index = persistence_of(mod(OUTBOX_TREE, "repro.fix.outbox"))
    # As a Base, self.network is the raw Network: mutate then egress.
    base = index.linearize("repro.fix.outbox.Base.handle")
    assert kinds(base) == ["mutate", "send"]
    # As a Durable, the same body resolves self.network to the Outbox:
    # the send is buffered (no egress) until flush hits the inner network.
    durable = index.linearize(
        "repro.fix.outbox.Base.handle", dyn_class="repro.fix.outbox.Durable"
    )
    assert "send" not in kinds(durable)


def test_super_dispatch_keeps_dynamic_class_and_orders_egress():
    index = persistence_of(mod(OUTBOX_TREE, "repro.fix.outbox"))
    stream = index.linearize(
        "repro.fix.outbox.Durable.deliver",
        dyn_class="repro.fix.outbox.Durable",
    )
    interesting = [e.kind for e in stream if e.kind in ("mutate", "journal", "send")]
    # super().handle mutates through the outbox (buffered), journal write
    # lands, then flush releases the send: the write-ahead order.
    assert interesting[0] == "mutate"
    assert "journal" in interesting
    assert interesting.index("journal") < interesting.index("send")
    send = next(e for e in stream if e.kind == "send")
    assert send.detail == "repro.fix.outbox.Network.send"


def test_constructed_with_self_back_refs_adopt_dynamic_class():
    index = persistence_of(mod(
        OUTBOX_TREE + """

class Engine:
    def __init__(self, node: Base):
        self.node = node

    def fire(self, message):
        self.node.network.send(0, 1, message)


class EngineDurable(Durable):
    def __init__(self, network: Network):
        self.engine = Engine(self)

    def kick(self, message):
        self.engine.fire(message)
""",
        "repro.fix.outbox",
    ))
    # Called from the durable subclass, the engine's back-reference
    # carries the dynamic class: node.network resolves to the Outbox, so
    # nothing reaches the wire inside fire().
    durable = index.linearize(
        "repro.fix.outbox.EngineDurable.kick",
        dyn_class="repro.fix.outbox.EngineDurable",
    )
    assert "send" not in kinds(durable)
    # Linearized as a plain Engine (no constructor back-ref), the same
    # body is raw egress.
    plain = index.linearize("repro.fix.outbox.Engine.fire")
    assert kinds(plain) == ["send"]


def test_self_alias_locals_resolve_like_self():
    index = persistence_of(mod(
        OUTBOX_TREE + """

class Alias(Durable):
    def poke(self, message):
        network = self.network
        network.send(0, 1, message)
""",
        "repro.fix.outbox",
    ))
    stream = index.linearize(
        "repro.fix.outbox.Alias.poke", dyn_class="repro.fix.outbox.Alias"
    )
    # `network = self.network` resolves through the dynamic class to the
    # Outbox: buffered, not egress.
    assert "send" not in kinds(stream)


def test_unresolved_network_chain_is_heuristic_egress():
    index = persistence_of(mod(
        """
        class Node:
            def __init__(self, transport):
                self.transport = transport

            def emit(self, message):
                self.transport.send(0, 1, message)
        """,
        "repro.fix.heur",
    ))
    stream = index.linearize("repro.fix.heur.Node.emit")
    assert kinds(stream) == ["send"]


def test_recursion_terminates():
    index = persistence_of(mod(
        """
        class Node:
            def __init__(self):
                self.r_vote = 0

            def ping(self, n):
                self.r_vote = n
                self.pong(n)

            def pong(self, n):
                self.ping(n)
        """,
        "repro.fix.rec",
    ))
    stream = index.linearize("repro.fix.rec.Node.ping")
    assert kinds(stream).count("mutate") >= 1


# ----------------------------------------------------------------------
# Serialization: byte-stable and matching the golden
# ----------------------------------------------------------------------
def _storage_dump() -> str:
    modules = [
        m
        for m in collect_modules(REPO_ROOT / "src", None)
        if not m.is_test and m.module.startswith("repro")
    ]
    index = build_persistence(modules)
    return (
        json.dumps(index.to_json(STORAGE_PREFIXES), indent=2, sort_keys=True) + "\n"
    )


def test_serialized_persistence_is_build_stable():
    assert _storage_dump() == _storage_dump()


def test_storage_persistence_matches_golden_file():
    expected = GOLDEN.read_text(encoding="utf-8")
    actual = _storage_dump()
    assert actual == expected, (
        "serialized persistence summaries changed; if the change is "
        "intentional, regenerate with:\n  PYTHONPATH=src python "
        "tests/lint/goldens/regen.py\nand review the diff"
    )


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_persistence_dump_stdout(capsys):
    assert main(
        ["lint", "--persistence", "--persistence-prefix", "repro.storage"]
    ) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == 1
    assert all(
        entry["module"].startswith("repro.storage")
        for entry in payload["functions"].values()
    )
    persist = payload["functions"]["repro.storage.durable.DurableReplica._persist"]
    assert any(event["kind"] == "call" for event in persist["events"])


def test_cli_persistence_dump_to_file(tmp_path, capsys):
    out = tmp_path / "persistence.json"
    assert main(
        ["lint", "--persistence", str(out), "--persistence-prefix", "repro.storage"]
    ) == 0
    payload = json.loads(out.read_text(encoding="utf-8"))
    assert payload["version"] == 1
    assert "written to" in capsys.readouterr().out
