"""Engine mechanics: parsing, pragmas, registry, reporters, tree collection."""

import ast
import json

import pytest

from repro.lint.engine import (
    Finding,
    LintError,
    ParsedModule,
    Rule,
    collect_modules,
    get_rules,
    has_errors,
    lint_modules,
    register_rule,
    render_json,
    render_text,
)
from repro.lint import all_rule_ids, rule_catalogue

from tests.lint.conftest import mod


class EveryCallRule(Rule):
    """Toy rule used to exercise engine plumbing: flags every call."""

    id = "every-call"
    description = "flags every function call (test helper)"

    def applies_to(self, module):
        return True

    def check(self, module):
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield self.finding(module, node, "a call")


def test_parsed_module_basics():
    module = mod("x = 1\n", "repro.demo")
    assert module.module == "repro.demo"
    assert module.path == "repro/demo.py"
    assert not module.is_test and not module.skipped
    assert isinstance(module.tree, ast.Module)


def test_syntax_error_raises_lint_error():
    with pytest.raises(LintError, match="cannot parse"):
        mod("def broken(:\n", "repro.bad")


def test_line_pragma_suppresses_one_rule():
    module = mod(
        """
        f()  # repro-lint: ignore[every-call]
        g()
        """,
        "repro.demo",
    )
    findings = lint_modules([module], [EveryCallRule()])
    assert [finding.line for finding in findings] == [3]


def test_bare_pragma_suppresses_all_rules():
    module = mod("f()  # repro-lint: ignore\n", "repro.demo")
    assert lint_modules([module], [EveryCallRule()]) == []


def test_pragma_with_other_rule_id_does_not_suppress():
    module = mod("f()  # repro-lint: ignore[some-other-rule]\n", "repro.demo")
    findings = lint_modules([module], [EveryCallRule()])
    assert len(findings) == 1


def test_skip_file_pragma_exempts_whole_module():
    module = mod(
        """
        # repro-lint: skip-file
        f()
        g()
        """,
        "repro.demo",
    )
    assert module.skipped
    assert lint_modules([module], [EveryCallRule()]) == []


def test_skip_file_pragma_only_honored_near_top():
    source = "\n" * 10 + "# repro-lint: skip-file\nf()\n"
    module = ParsedModule(source, "repro.demo", "repro/demo.py")
    assert not module.skipped


def test_register_rule_rejects_duplicate_and_missing_id():
    with pytest.raises(LintError, match="duplicate"):

        @register_rule
        class Duplicate(Rule):  # noqa: F811 - registration is the point
            id = "wall-clock"

    with pytest.raises(LintError, match="no id"):

        @register_rule
        class Anonymous(Rule):
            pass


def test_get_rules_unknown_id():
    with pytest.raises(LintError, match="unknown rule"):
        get_rules(["not-a-rule"])


def test_get_rules_selects_subset():
    rules = get_rules(["wall-clock", "safety-state"])
    assert sorted(rule.id for rule in rules) == ["safety-state", "wall-clock"]


def test_registry_has_the_documented_suite():
    expected = {
        "wall-clock",
        "unseeded-random",
        "unordered-iteration",
        "wire-coverage",
        "safety-state",
        "asyncio-hygiene",
        "hot-path",
    }
    assert expected <= set(all_rule_ids())
    for rule in rule_catalogue():
        assert rule.description, rule.id
        assert rule.rationale, rule.id


def test_render_text_and_json():
    finding = Finding(
        path="src/x.py", line=3, col=1, rule="demo", message="broken"
    )
    text = render_text([finding])
    assert "src/x.py:3:1" in text and "[demo]" in text
    payload = json.loads(render_json([finding]))
    assert payload["errors"] == 1 and payload["warnings"] == 0
    assert payload["findings"][0]["rule"] == "demo"
    assert render_text([]) == "repro lint: clean (0 findings)"
    assert has_errors([finding]) and not has_errors([])


def test_collect_modules_names_and_paths(tmp_path):
    src = tmp_path / "src"
    (src / "pkg" / "sub").mkdir(parents=True)
    (src / "pkg" / "__init__.py").write_text("")
    (src / "pkg" / "sub" / "mod.py").write_text("x = 1\n")
    tests = tmp_path / "tests"
    tests.mkdir()
    (tests / "test_mod.py").write_text("y = 2\n")
    modules = collect_modules(src, tests)
    by_name = {module.module: module for module in modules}
    assert "pkg.sub.mod" in by_name
    assert by_name["pkg.sub.mod"].path == "src/pkg/sub/mod.py"
    assert not by_name["pkg.sub.mod"].is_test
    assert "tests.test_mod" in by_name
    assert by_name["tests.test_mod"].is_test
