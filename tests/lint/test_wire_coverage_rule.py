"""Wire coverage: message types need codec tags and round-trip tests."""

from repro.lint.rules.wire_coverage import WireCoverageRule

from tests.lint.conftest import mod, run_rule

MESSAGES = """
    from dataclasses import dataclass

    class Message:
        __slots__ = ()

    @dataclass(frozen=True)
    class Ping(Message):
        nonce: int

    @dataclass(frozen=True)
    class Pong(Message):
        nonce: int
"""

CODEC_BOTH = """
    _CORE_MESSAGES = (
        (Ping, 1, encode_ping, decode_ping),
        (Pong, 2, encode_pong, decode_pong),
    )
"""

CODEC_PING_ONLY = """
    _CORE_MESSAGES = (
        (Ping, 1, encode_ping, decode_ping),
    )
"""

ROUNDTRIP_BOTH = """
    def test_ping_roundtrip():
        assert decode(encode(Ping(nonce=1))) == Ping(nonce=1)

    def test_pong_roundtrip():
        assert decode(encode(Pong(nonce=2))) == Pong(nonce=2)
"""


def _messages():
    return mod(MESSAGES, "repro.types.messages")


def _tests(source=ROUNDTRIP_BOTH):
    return mod(source, "tests.wire.test_roundtrip", is_test=True)


def test_fully_covered_tree_is_clean():
    findings = run_rule(
        WireCoverageRule,
        _messages(),
        mod(CODEC_BOTH, "repro.wire.codec"),
        _tests(),
    )
    assert findings == []


def test_unregistered_message_is_flagged():
    findings = run_rule(
        WireCoverageRule,
        _messages(),
        mod(CODEC_PING_ONLY, "repro.wire.codec"),
        _tests(),
    )
    assert len(findings) == 1
    assert "Pong" in findings[0].message
    assert "codec tag" in findings[0].message


def test_untested_message_is_flagged():
    findings = run_rule(
        WireCoverageRule,
        _messages(),
        mod(CODEC_BOTH, "repro.wire.codec"),
        _tests("def test_ping_roundtrip():\n    assert Ping\n"),
    )
    assert len(findings) == 1
    assert "Pong" in findings[0].message
    assert "round-trip" in findings[0].message


def test_register_message_extension_calls_count():
    codec = mod(
        """
        _CORE_MESSAGES = (
            (Ping, 1, encode_ping, decode_ping),
        )
        register_message(Pong, 130, encode_pong, decode_pong)
        """,
        "repro.wire.codec",
    )
    findings = run_rule(WireCoverageRule, _messages(), codec, _tests())
    assert findings == []


def test_partial_tree_without_codec_module_is_silent():
    assert run_rule(WireCoverageRule, _messages(), _tests()) == []


def test_tests_outside_wire_package_do_not_count():
    findings = run_rule(
        WireCoverageRule,
        _messages(),
        mod(CODEC_BOTH, "repro.wire.codec"),
        mod(ROUNDTRIP_BOTH, "tests.types.test_messages", is_test=True),
    )
    assert len(findings) == 2  # Ping and Pong both lack tests.wire coverage
    assert all("round-trip" in finding.message for finding in findings)
