"""Effect summaries: direct facts, transitive closure, golden stability."""

import json
from pathlib import Path

import repro
from repro.cli import main
from repro.lint.engine import collect_modules
from repro.lint.flow import build_effects

from tests.lint.conftest import mod

REPO_ROOT = Path(repro.__file__).resolve().parent.parent.parent
GOLDEN = Path(__file__).parent / "goldens" / "effects_runtime.json"

#: The concurrency-rule scopes (mirrors goldens/regen.py).
RUNTIME_PREFIXES = (
    "repro.net.tcp",
    "repro.runtime",
    "repro.client",
    "repro.traffic",
)


def effects_of(*modules):
    return build_effects(list(modules))


# ----------------------------------------------------------------------
# Suspension points: resolved through the call graph
# ----------------------------------------------------------------------
def test_await_of_external_call_suspends():
    fx = effects_of(mod(
        """
        import asyncio

        async def tick():
            await asyncio.sleep(0)
        """,
        "repro.runtime.fx",
    ))
    assert fx.may_suspend("repro.runtime.fx.tick")
    assert fx.suspension_lines("repro.runtime.fx.tick") == [5]


def test_await_of_non_suspending_project_coroutine_does_not_suspend():
    # Awaiting a coroutine with no suspension points never yields to the
    # loop — the precision the await-atomicity rule depends on.
    fx = effects_of(mod(
        """
        import asyncio

        async def noop():
            return None

        async def caller():
            await noop()
        """,
        "repro.runtime.fx",
    ))
    assert not fx.may_suspend("repro.runtime.fx.noop")
    assert not fx.may_suspend("repro.runtime.fx.caller")
    assert fx.suspension_lines("repro.runtime.fx.caller") == []


def test_may_suspend_propagates_transitively():
    fx = effects_of(mod(
        """
        import asyncio

        async def leaf():
            await asyncio.sleep(0)

        async def middle():
            await leaf()

        async def top():
            await middle()
        """,
        "repro.runtime.fx",
    ))
    assert fx.may_suspend("repro.runtime.fx.top")
    assert fx.suspension_lines("repro.runtime.fx.top") == [11]


def test_async_for_and_async_with_always_suspend():
    fx = effects_of(mod(
        """
        async def pump(source, lock):
            async with lock:
                pass
            async for item in source:
                pass
        """,
        "repro.runtime.fx",
    ))
    assert fx.may_suspend("repro.runtime.fx.pump")
    assert fx.suspension_lines("repro.runtime.fx.pump") == [3, 5]


def test_recursive_async_functions_terminate():
    fx = effects_of(mod(
        """
        async def ping():
            await pong()

        async def pong():
            await ping()
        """,
        "repro.runtime.fx",
    ))
    # Pure cycle with no real suspension point: least fixed point is False.
    assert not fx.may_suspend("repro.runtime.fx.ping")
    assert not fx.may_suspend("repro.runtime.fx.pong")


# ----------------------------------------------------------------------
# Self-attribute reads/writes
# ----------------------------------------------------------------------
def test_self_read_write_classification():
    fx = effects_of(mod(
        """
        class Node:
            def step(self):
                self.height += 1
                self.view = self.height
                self.peers[3] = "x"
                self.buffer.append("y")
                del self.stale
        """,
        "repro.runtime.fx",
    ))
    node = fx.effects("repro.runtime.fx.Node.step")
    # AugAssign reads and writes; subscript store writes without a read
    # of the mapping state; a mutating method call is a read (in-place
    # mutation is atomic on a single-threaded loop); del is a write.
    assert node.self_reads == {"height", "buffer"}
    assert node.self_writes == {"height", "view", "peers", "stale"}


def test_self_method_call_effects_inline_at_call_site():
    fx = effects_of(mod(
        """
        class Node:
            def bump(self):
                self.count += 1

            def step(self):
                self.bump()
        """,
        "repro.runtime.fx",
    ))
    assert fx.self_writes_closure("repro.runtime.fx.Node.step") == {"count"}
    assert fx.self_reads_closure("repro.runtime.fx.Node.step") == {"count"}


# ----------------------------------------------------------------------
# Blocking closure
# ----------------------------------------------------------------------
def test_blocking_calls_resolve_through_imports_and_propagate():
    fx = effects_of(mod(
        """
        import os

        def fsync_file(fd):
            os.fsync(fd)

        def persist(fd):
            fsync_file(fd)

        async def handler(fd):
            persist(fd)
        """,
        "repro.runtime.fx",
    ))
    assert fx.may_block("repro.runtime.fx.handler")
    assert fx.blocking_reached("repro.runtime.fx.handler") == {
        ("repro.runtime.fx.fsync_file", "os.fsync")
    }


def test_path_write_text_is_blocking():
    fx = effects_of(mod(
        """
        def snapshot(path, data):
            path.write_text(data)
        """,
        "repro.runtime.fx",
    ))
    node = fx.effects("repro.runtime.fx.snapshot")
    assert [name for _line, name in node.blocking_calls] == ["write_text"]


# ----------------------------------------------------------------------
# Tasks and locks
# ----------------------------------------------------------------------
def test_task_retention_targets():
    fx = effects_of(mod(
        """
        import asyncio

        class Node:
            def start(self, loop):
                self.task = loop.create_task(work())
                local = asyncio.create_task(work())
                self._tasks.add(asyncio.create_task(work()))
        """,
        "repro.runtime.fx",
    ))
    node = fx.effects("repro.runtime.fx.Node.start")
    assert [(line, target) for line, target in node.tasks] == [
        (6, "self.task"),
        (7, "local"),
        (8, "self._tasks.add"),
    ]


def test_lock_shaped_context_managers_detected():
    fx = effects_of(mod(
        """
        class Node:
            async def step(self):
                async with self._lock:
                    pass
        """,
        "repro.runtime.fx",
    ))
    node = fx.effects("repro.runtime.fx.Node.step")
    assert node.locks == {"self._lock"}


# ----------------------------------------------------------------------
# Serialization: byte-stable and matching the golden
# ----------------------------------------------------------------------
def _runtime_dump() -> str:
    modules = [
        m
        for m in collect_modules(REPO_ROOT / "src", None)
        if not m.is_test and m.module.startswith("repro")
    ]
    index = build_effects(modules)
    return json.dumps(index.to_json(RUNTIME_PREFIXES), indent=2, sort_keys=True) + "\n"


def test_serialized_effects_are_build_stable():
    # Two independent builds serialize byte-identically — the property
    # the per-PR effects-diff artifact depends on.
    assert _runtime_dump() == _runtime_dump()


def test_runtime_effects_match_golden_file():
    expected = GOLDEN.read_text(encoding="utf-8")
    actual = _runtime_dump()
    assert actual == expected, (
        "serialized runtime effect summaries changed; if the change is "
        "intentional, regenerate with:\n  PYTHONPATH=src python "
        "tests/lint/goldens/regen.py\nand review the diff"
    )


def test_regen_script_reproduces_both_goldens(tmp_path):
    # A copy of regen.py run from a scratch directory must reproduce both
    # checked-in goldens byte-for-byte (it writes next to itself; the real
    # source tree is located through the importable repro package).
    import os
    import shutil
    import subprocess
    import sys

    goldens = Path(__file__).parent / "goldens"
    staged = tmp_path / "goldens"
    staged.mkdir()
    shutil.copy(goldens / "regen.py", staged / "regen.py")
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    result = subprocess.run(
        [sys.executable, str(staged / "regen.py")],
        capture_output=True,
        text=True,
        env=env,
    )
    assert result.returncode == 0, result.stderr
    for name in (
        "callgraph_core.json",
        "effects_runtime.json",
        "persistence_storage.json",
    ):
        assert (staged / name).read_bytes() == (goldens / name).read_bytes(), name


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_effects_dump_stdout(capsys):
    assert main(["lint", "--effects", "--effects-prefix", "repro.net.tcp"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == 1
    assert all(
        entry["module"] == "repro.net.tcp"
        for entry in payload["functions"].values()
    )
    assert payload["functions"]["repro.net.tcp._PeerChannel._run"]["may_suspend"]


def test_cli_effects_dump_to_file(tmp_path, capsys):
    out = tmp_path / "effects.json"
    assert main(
        ["lint", "--effects", str(out), "--effects-prefix", "repro.client"]
    ) == 0
    assert "written to" in capsys.readouterr().out
    payload = json.loads(out.read_text(encoding="utf-8"))
    assert payload["functions"]
