"""Section 4 specifics: the 2-chain variant's fallback under a 1-chain lock.

The paper: "with 2-chain commit and 1-chain lock, only one honest replica
may have the highest QC among all honest replicas when entering the
asynchronous fallback.  Then only the fallback-chain proposed by h will get
2f+1 votes...  A straightforward solution is to allow replicas to adopt
f-chains from other replicas."  These tests construct that exact situation
deterministically and verify that adoption restores liveness.
"""

from repro.core.config import ProtocolConfig, ProtocolVariant
from repro.runtime.cluster import ClusterBuilder

from tests.core.conftest import build_certified_chain


def build_cluster(adoption: bool, seed=151):
    config = ProtocolConfig(
        n=4,
        variant=ProtocolVariant.FALLBACK_2CHAIN,
        fallback_adoption=adoption,
    )
    return ClusterBuilder(config=config, seed=seed).with_preload(50).build()


def lopsided_locks(cluster):
    """Give replica 0 a QC one round higher than everyone else sees.

    Under the 1-chain lock, replica 0 locks at round 2 while replicas 1-3
    lock at round 1 — the Section 4 scenario where only chains built on
    replica 0's qc_high can gather votes from replica 0.
    """
    blocks, qcs = build_certified_chain(cluster.setup, cluster.replicas[0].store, 2)
    for replica in cluster.replicas:
        for block in blocks:
            replica.store.add(block)
    # Everyone sees the round-1 QC...
    for replica in cluster.replicas:
        replica.process_certificate(qcs[0])
    # ...but only replica 0 sees the round-2 QC.
    cluster.replicas[0].process_certificate(qcs[1])
    assert cluster.replicas[0].safety.rank_lock.round == 2
    assert all(
        cluster.replicas[i].safety.rank_lock.round == 1 for i in (1, 2, 3)
    )
    return qcs


def enter_all(cluster):
    """Time out every replica and drain until the fallback resolves."""
    for replica in cluster.replicas:
        replica.fallback.on_local_timeout()
    cluster.scheduler.drain(limit=500_000)


def test_without_adoption_the_one_chain_lock_deadlocks():
    """The Section 4 hazard, reproduced deterministically.

    Timeout messages carry replica 0's high QC; under the **1-chain lock**
    every recipient immediately locks on it, so height-1 f-blocks proposed
    (a beat earlier) on the stale QC can never gather votes.  Here only the
    chains of the replicas that saw the high QC *before* proposing (0 and
    one lucky other) complete — fewer than 2f+1 — so the election never
    triggers and the fallback never ends.  This is exactly why the paper
    says adoption is needed for the 2-chain variant, and why
    ``ProtocolConfig.adoption_enabled`` defaults to True for it.
    """
    cluster = build_cluster(adoption=False)
    lopsided_locks(cluster)
    enter_all(cluster)
    stuck = [replica for replica in cluster.replicas if replica.fallback_mode]
    assert stuck, "expected the documented Section 4 deadlock"
    completed_chains = {
        proposer
        for replica in cluster.replicas
        for (_view, proposer, height) in replica.fallback.fqcs
        if height == 2
    }
    assert len(completed_chains) < cluster.config.quorum_size
    # Safety is never in question — only progress.
    from repro.analysis.safety import assert_cluster_safety

    assert_cluster_safety(cluster.honest_replicas())


def test_fallback_completes_with_adoption():
    cluster = build_cluster(adoption=True)
    lopsided_locks(cluster)
    enter_all(cluster)
    for replica in cluster.replicas:
        assert not replica.fallback_mode
        assert replica.v_cur == 1
    # Progress: someone committed the endorsed 2-chain (probability 1 here
    # if all chains completed; at least the protocol moved on).
    from repro.analysis.safety import assert_cluster_safety

    assert_cluster_safety(cluster.honest_replicas())


def test_two_chain_fallback_chains_have_two_heights():
    cluster = build_cluster(adoption=True)
    lopsided_locks(cluster)
    enter_all(cluster)
    heights = {
        height
        for replica in cluster.replicas
        for (_view, _proposer, height) in replica.fallback.fqcs
    }
    assert heights <= {1, 2}
    assert 2 in heights


def test_endorsed_two_chain_commits_at_exit():
    """When the elected leader's 2-height chain is fully known, exiting
    commits its height-1 block (the 2-chain commit rule)."""
    commits_seen = 0
    for seed in range(6):
        cluster = build_cluster(adoption=True, seed=160 + seed)
        lopsided_locks(cluster)
        enter_all(cluster)
        if cluster.metrics.decisions() > 0:
            commits_seen += 1
    # Per Lemma 7's logic the per-fallback commit probability is ~2f+1/n;
    # over 6 independent fallbacks, at least one commit is overwhelming.
    assert commits_seen >= 1
