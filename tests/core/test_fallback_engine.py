"""Unit tests for the fallback engine, driven message by message."""

import pytest

from repro.core.config import ProtocolConfig
from repro.runtime.cluster import ClusterBuilder
from repro.types.blocks import FallbackBlock
from repro.types.certificates import FallbackTC
from repro.types.messages import (
    CoinQCMessage,
    CoinShareMessage,
    FallbackProposal,
    FallbackQCMessage,
    FallbackTimeout,
)

from tests.core.conftest import build_fallback_chain, make_real_fqc


@pytest.fixture
def cluster():
    return ClusterBuilder(n=4, seed=2).with_preload(20).build()


def make_ftc(cluster, view=0):
    scheme = cluster.setup.quorum_scheme
    payload = ("ftimeout", view)
    shares = [scheme.sign_share(cluster.setup.registry.key_pair(i), payload)
              for i in range(3)]
    return FallbackTC(view=view, signature=scheme.combine(shares, payload))


def timeout_from(cluster, sender, view=0):
    scheme = cluster.setup.quorum_scheme
    share = scheme.sign_share(cluster.setup.registry.key_pair(sender), ("ftimeout", view))
    qc_high = cluster.replicas[sender].qc_high
    return FallbackTimeout(view=view, share=share, qc_high=qc_high)


def test_local_timeout_sets_fallback_mode_and_multicasts(cluster):
    replica = cluster.replicas[0]
    replica.fallback.on_local_timeout()
    assert replica.fallback_mode
    sent = cluster.metrics.message_counts.get("FallbackTimeout", 0)
    assert sent == 3  # n-1 network sends (self-delivery free)


def test_timeout_is_sent_once_per_view(cluster):
    replica = cluster.replicas[0]
    replica.fallback.on_local_timeout()
    replica.fallback.on_local_timeout()
    assert cluster.metrics.message_counts["FallbackTimeout"] == 3


def test_quorum_of_timeouts_enters_fallback(cluster):
    replica = cluster.replicas[0]
    for sender in (1, 2):
        replica.deliver(sender, timeout_from(cluster, sender))
    assert replica.fallback.entered_view == -1
    replica.deliver(3, timeout_from(cluster, 3))
    assert replica.fallback.entered_view == 0
    assert replica.fallback_mode
    assert replica.v_cur == 0
    # Entering proposed the height-1 f-block.
    assert (0, 1) in replica.fallback._own_blocks


def test_ftc_alone_enters_fallback(cluster):
    replica = cluster.replicas[1]
    ftc = make_ftc(cluster)
    replica.fallback.maybe_enter_fallback(ftc)
    assert replica.fallback.entered_view == 0
    # Re-entry for the same view must be a no-op (vote maps not reset).
    state = replica.safety.fallback_votes
    replica.fallback.maybe_enter_fallback(ftc)
    assert replica.safety.fallback_votes is state


def test_stale_ftc_ignored(cluster):
    replica = cluster.replicas[1]
    replica.v_cur = 2
    replica.fallback.maybe_enter_fallback(make_ftc(cluster, view=1))
    assert replica.fallback.entered_view == -1
    assert not replica.fallback_mode


def test_height1_proposal_gets_vote(cluster):
    proposer, voter = cluster.replicas[0], cluster.replicas[1]
    ftc = make_ftc(cluster)
    voter.fallback.maybe_enter_fallback(ftc)
    fblock = FallbackBlock(
        qc=proposer.qc_high, round=1, view=0, height=1, proposer=0,
    )
    voter.deliver(0, FallbackProposal(fblock=fblock, ftc=ftc))
    votes = voter.safety.fallback_votes
    assert votes.voted_height(0) == 1
    assert votes.voted_round(0) == 1


def test_height1_without_ftc_rejected(cluster):
    voter = cluster.replicas[1]
    voter.fallback.maybe_enter_fallback(make_ftc(cluster))
    fblock = FallbackBlock(qc=voter.qc_high, round=1, view=0, height=1, proposer=0)
    voter.deliver(0, FallbackProposal(fblock=fblock, ftc=None))
    assert voter.safety.fallback_votes.voted_height(0) == 0


def test_proposer_field_must_match_sender(cluster):
    voter = cluster.replicas[1]
    ftc = make_ftc(cluster)
    voter.fallback.maybe_enter_fallback(ftc)
    fblock = FallbackBlock(qc=voter.qc_high, round=1, view=0, height=1, proposer=0)
    voter.deliver(2, FallbackProposal(fblock=fblock, ftc=ftc))  # sent by 2
    assert voter.safety.fallback_votes.voted_height(0) == 0


def test_full_fallback_round_trip_commits(cluster):
    """Drive all four replicas through a complete fallback by scheduler."""
    for replica in cluster.replicas:
        replica.fallback.on_local_timeout()
    cluster.scheduler.drain(limit=500_000)
    # Everyone exited into view 1 and someone committed the endorsed chain
    # (probability over the coin is 1 here because all four chains complete).
    for replica in cluster.replicas:
        assert not replica.fallback_mode
        assert replica.v_cur == 1
    assert cluster.metrics.decisions() >= 1
    assert cluster.metrics.fallback_count() == 1


def test_top_height_fqc_broadcast_counts_completions(cluster):
    replica = cluster.replicas[0]
    replica.fallback.maybe_enter_fallback(make_ftc(cluster))
    base = replica.qc_high
    completions = 0
    for proposer in range(1, 4):
        fblocks, fqcs = build_fallback_chain(
            cluster.setup, replica.store, view=0, proposer=proposer, base_qc=base
        )
        replica.deliver(proposer, FallbackQCMessage(fqc=fqcs[2]))
        completions += 1
        if completions < 3:
            assert 0 not in replica.fallback._coin_share_sent
    assert 0 in replica.fallback._coin_share_sent


def test_non_top_fqc_message_ignored_for_completion(cluster):
    replica = cluster.replicas[0]
    replica.fallback.maybe_enter_fallback(make_ftc(cluster))
    fblocks, fqcs = build_fallback_chain(
        cluster.setup, replica.store, view=0, proposer=1, base_qc=replica.qc_high
    )
    replica.deliver(1, FallbackQCMessage(fqc=fqcs[0]))  # height 1
    assert replica.fallback._completed.get(0, set()) == set()


def test_coin_shares_reveal_and_exit(cluster):
    replica = cluster.replicas[0]
    replica.fallback.maybe_enter_fallback(make_ftc(cluster))
    for sender in (1, 2):
        share = cluster.setup.coin.share(cluster.setup.registry.key_pair(sender), 0)
        replica.deliver(sender, CoinShareMessage(share=share))
    assert not replica.fallback_mode
    assert replica.v_cur == 1
    assert 0 in replica.fallback.coin_qcs


def test_coin_qc_message_exits_fallback(cluster):
    replica = cluster.replicas[0]
    replica.fallback.maybe_enter_fallback(make_ftc(cluster))
    coin = cluster.setup.coin
    view = 0
    coin_qc_value = coin._value(view)
    from repro.types.certificates import CoinQC

    coin_qc = CoinQC(view=view, leader=coin_qc_value,
                     proof_tag=coin.leader_proof_tag(view))
    replica.deliver(2, CoinQCMessage(coin_qc=coin_qc))
    assert not replica.fallback_mode
    assert replica.v_cur == 1
    # Duplicate coin-QC delivery is idempotent.
    replica.deliver(3, CoinQCMessage(coin_qc=coin_qc))
    assert replica.v_cur == 1


def test_forged_coin_qc_rejected(cluster):
    replica = cluster.replicas[0]
    replica.fallback.maybe_enter_fallback(make_ftc(cluster))
    from repro.types.certificates import CoinQC

    fake = CoinQC(view=0, leader=1, proof_tag="not-the-real-proof")
    replica.deliver(2, CoinQCMessage(coin_qc=fake))
    assert replica.fallback_mode  # still inside


def test_endorsed_chain_commit_on_exit(cluster):
    """If the elected leader's full chain is known at exit, it commits."""
    replica = cluster.replicas[0]
    replica.fallback.maybe_enter_fallback(make_ftc(cluster))
    coin = cluster.setup.coin
    leader = coin._value(0)
    base = replica.qc_high
    fblocks, fqcs = build_fallback_chain(
        cluster.setup, replica.store, view=0, proposer=leader, base_qc=base
    )
    for fqc in fqcs:
        replica.fallback.record_fqc(fqc)
    from repro.types.certificates import CoinQC

    coin_qc = CoinQC(view=0, leader=leader, proof_tag=coin.leader_proof_tag(0))
    replica.fallback.exit_fallback(coin_qc)
    assert replica.ledger.height >= 1
    committed = replica.ledger.committed_blocks()
    assert committed[0].id == fblocks[0].id
    # qc_high is the endorsed top f-QC; r_vote adopted from the leader map.
    assert replica.qc_high.rank.endorsed
    assert replica.qc_high.round == fblocks[2].round


def test_adoption_extends_foreign_chain():
    config = ProtocolConfig(n=4, fallback_adoption=True)
    cluster = ClusterBuilder(config=config, seed=3).with_preload(20).build()
    replica = cluster.replicas[0]
    scheme = cluster.setup.quorum_scheme
    payload = ("ftimeout", 0)
    shares = [scheme.sign_share(cluster.setup.registry.key_pair(i), payload)
              for i in range(3)]
    ftc = FallbackTC(view=0, signature=scheme.combine(shares, payload))
    replica.fallback.maybe_enter_fallback(ftc)
    # A foreign certified height-1 f-block appears before our own certifies.
    foreign = FallbackBlock(qc=replica.qc_high, round=1, view=0, height=1, proposer=2)
    replica.store.add(foreign)
    fqc = make_real_fqc(cluster.setup, foreign)
    replica.fallback.record_fqc(fqc)
    own_h2 = replica.fallback._own_blocks.get((0, 2))
    assert own_h2 is not None
    assert own_h2.parent_id == foreign.id  # adopted, not waiting for our h1
