"""Tests for the leader rotation schedule."""

import pytest
from hypothesis import given, strategies as st

from repro.core.leader import LeaderSchedule


def test_paper_rotation_every_four_rounds():
    schedule = LeaderSchedule(n=4, rotation_interval=4)
    # L_{4k+1} .. L_{4k+4} are the same replica.
    assert [schedule.leader(r) for r in range(1, 5)] == [0, 0, 0, 0]
    assert [schedule.leader(r) for r in range(5, 9)] == [1, 1, 1, 1]
    assert schedule.leader(16) == 3
    assert schedule.leader(17) == 0  # wraps around


def test_rounds_are_one_indexed():
    schedule = LeaderSchedule(n=4)
    with pytest.raises(ValueError):
        schedule.leader(0)


def test_is_leader():
    schedule = LeaderSchedule(n=4, rotation_interval=4)
    assert schedule.is_leader(0, 1)
    assert not schedule.is_leader(1, 1)


def test_rounds_led_by():
    schedule = LeaderSchedule(n=4, rotation_interval=2)
    assert schedule.rounds_led_by(1, 1, 8) == [3, 4]


def test_next_rotation():
    schedule = LeaderSchedule(n=4, rotation_interval=4)
    assert schedule.next_rotation(1) == 5
    assert schedule.next_rotation(4) == 5
    assert schedule.next_rotation(5) == 9


def test_validation():
    with pytest.raises(ValueError):
        LeaderSchedule(n=0)
    with pytest.raises(ValueError):
        LeaderSchedule(n=4, rotation_interval=0)


@given(
    n=st.integers(1, 50),
    interval=st.integers(1, 8),
    round_number=st.integers(1, 10_000),
)
def test_property_every_round_has_a_valid_leader(n, interval, round_number):
    schedule = LeaderSchedule(n=n, rotation_interval=interval)
    leader = schedule.leader(round_number)
    assert 0 <= leader < n
    # Stability within a rotation window.
    window_start = ((round_number - 1) // interval) * interval + 1
    assert schedule.leader(window_start) == leader


@given(n=st.integers(2, 20), interval=st.integers(1, 6))
def test_property_rotation_is_fair(n, interval):
    """Over n windows every replica leads exactly one window."""
    schedule = LeaderSchedule(n=n, rotation_interval=interval)
    leaders = [schedule.leader(1 + k * interval) for k in range(n)]
    assert sorted(leaders) == list(range(n))
