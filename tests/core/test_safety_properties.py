"""Property-based tests of the safety rules' state-machine invariants.

Hypothesis drives random sequences of lock updates, votes and fallback
resets against a :class:`SafetyRules` instance and checks the monotonicity
properties the paper's proofs rely on.
"""

from hypothesis import given, strategies as st

from repro.core.config import ProtocolConfig, ProtocolVariant
from repro.core.safety import SafetyRules
from repro.ledger.blockstore import BlockStore
from repro.types.blocks import Block, FallbackBlock
from repro.types.certificates import Rank, genesis_qc

from tests.types.test_certificates import make_fqc, make_qc


ranks = st.builds(
    Rank,
    view=st.integers(0, 5),
    endorsed=st.booleans(),
    round=st.integers(0, 50),
)


@given(updates=st.lists(st.tuples(ranks, st.one_of(st.none(), ranks)), max_size=30))
def test_rank_lock_is_monotone(updates):
    rules = SafetyRules(ProtocolConfig(n=4))
    previous = rules.rank_lock
    for qc_rank, parent_rank in updates:
        rules.update_lock(qc_rank, parent_rank)
        assert rules.rank_lock >= previous
        previous = rules.rank_lock


@given(updates=st.lists(st.tuples(ranks, st.one_of(st.none(), ranks)), max_size=30))
def test_one_chain_lock_dominates_two_chain_lock(updates):
    """Section 4's 1-chain lock is always at least as high as the 2-chain
    lock for the same update sequence (it locks the QC itself)."""
    one = SafetyRules(ProtocolConfig(n=4, variant=ProtocolVariant.FALLBACK_2CHAIN))
    two = SafetyRules(ProtocolConfig(n=4))
    for qc_rank, parent_rank in updates:
        # In the protocol the parent always ranks below its QC; enforce that
        # relationship in generated data for a meaningful comparison.
        if parent_rank is not None and parent_rank > qc_rank:
            qc_rank, parent_rank = parent_rank, qc_rank
        one.update_lock(qc_rank, parent_rank)
        two.update_lock(qc_rank, parent_rank)
        assert one.rank_lock >= two.rank_lock


@given(rounds=st.lists(st.integers(1, 100), min_size=1, max_size=40))
def test_r_vote_never_decreases_within_a_view(rounds):
    rules = SafetyRules(ProtocolConfig(n=4, variant=ProtocolVariant.DIEMBFT))
    store = BlockStore()
    qc = genesis_qc(store.genesis.id)
    previous = rules.r_vote
    for round_number in rounds:
        block = Block(qc=qc, round=round_number, view=0, author=0)
        if rules.may_vote_regular(block, r_cur=round_number, v_cur=0,
                                  fallback_mode=False, parent_rank=Rank.zero()):
            rules.record_regular_vote(block)
        assert rules.r_vote >= previous
        previous = rules.r_vote


@given(rounds=st.lists(st.integers(1, 100), min_size=2, max_size=40))
def test_never_votes_same_round_twice(rounds):
    rules = SafetyRules(ProtocolConfig(n=4, variant=ProtocolVariant.DIEMBFT))
    store = BlockStore()
    qc = genesis_qc(store.genesis.id)
    voted = []
    for round_number in rounds:
        block = Block(qc=qc, round=round_number, view=0, author=round_number % 4)
        if rules.may_vote_regular(block, r_cur=round_number, v_cur=0,
                                  fallback_mode=False, parent_rank=Rank.zero()):
            rules.record_regular_vote(block)
            voted.append(round_number)
    assert len(voted) == len(set(voted))
    assert voted == sorted(voted)


@given(
    proposals=st.lists(
        st.tuples(st.integers(0, 3), st.integers(1, 3), st.integers(1, 30)),
        max_size=40,
    )
)
def test_fallback_votes_strictly_increase_per_proposer(proposals):
    """For each proposer j: voted heights strictly increase, and so do the
    voted rounds — the exact invariants behind Lemmas 1 and 3."""
    rules = SafetyRules(ProtocolConfig(n=4))
    rules.reset_fallback_votes(1)
    history: dict[int, list[tuple[int, int]]] = {}
    for proposer, height, round_number in proposals:
        if height == 1:
            qc = make_qc(round_=round_number - 1, view=0)
            parent_rank, parent_height = Rank(0, False, round_number - 1), None
        else:
            qc = make_fqc(round_=round_number - 1, view=1, height=height - 1,
                          proposer=proposer)
            parent_rank, parent_height = Rank(1, False, round_number - 1), height - 1
        fblock = FallbackBlock(qc=qc, round=round_number, view=1, height=height,
                               proposer=proposer)
        if rules.may_vote_fallback(fblock, v_cur=1, fallback_mode=True,
                                   parent_rank=parent_rank,
                                   parent_height=parent_height):
            rules.record_fallback_vote(fblock)
            history.setdefault(proposer, []).append((height, round_number))
    for votes in history.values():
        heights = [height for height, _ in votes]
        assert heights == sorted(set(heights))  # strictly increasing
        rounds_voted = [round_number for _, round_number in votes]
        assert rounds_voted == sorted(set(rounds_voted))
