"""Shared helpers for core-protocol tests.

The ``config`` / ``setup`` / ``contexts`` fixtures live in the repository
root conftest; this module holds the block/certificate builders.
"""

from repro.types.blocks import Block, FallbackBlock
from repro.types.certificates import FallbackQC, QC, genesis_qc


def make_real_qc(setup, block, signers=None):
    """A properly signed QC for a block, using the shared setup."""
    payload = ("vote", block.id, block.round, block.view)
    signers = signers if signers is not None else range(setup.config.quorum_size)
    shares = [
        setup.quorum_scheme.sign_share(setup.registry.key_pair(i), payload)
        for i in signers
    ]
    return QC(
        block_id=block.id,
        round=block.round,
        view=block.view,
        signature=setup.quorum_scheme.combine(shares, payload),
    )


def make_real_fqc(setup, fblock, signers=None):
    payload = (
        "fvote",
        fblock.id,
        fblock.round,
        fblock.view,
        fblock.height,
        fblock.proposer,
    )
    signers = signers if signers is not None else range(setup.config.quorum_size)
    shares = [
        setup.quorum_scheme.sign_share(setup.registry.key_pair(i), payload)
        for i in signers
    ]
    return FallbackQC(
        block_id=fblock.id,
        round=fblock.round,
        view=fblock.view,
        height=fblock.height,
        proposer=fblock.proposer,
        signature=setup.quorum_scheme.combine(shares, payload),
    )


def build_certified_chain(setup, store, length, view=0, start_round=1):
    """Linear certified chain on genesis; returns (blocks, qcs)."""
    blocks, qcs = [], []
    parent_qc = genesis_qc(store.genesis.id)
    for offset in range(length):
        block = Block(
            qc=parent_qc, round=start_round + offset, view=view, author=0
        )
        store.add(block)
        qc = make_real_qc(setup, block)
        blocks.append(block)
        qcs.append(qc)
        parent_qc = qc
    return blocks, qcs


def build_fallback_chain(setup, store, view, proposer, base_qc, heights=3):
    """A fallback chain of f-blocks extending ``base_qc``; returns
    (fblocks, fqcs)."""
    fblocks, fqcs = [], []
    parent = base_qc
    round_number = base_qc.round
    for height in range(1, heights + 1):
        round_number += 1
        fblock = FallbackBlock(
            qc=parent,
            round=round_number,
            view=view,
            height=height,
            proposer=proposer,
        )
        store.add(fblock)
        fqc = make_real_fqc(setup, fblock)
        fblocks.append(fblock)
        fqcs.append(fqc)
        parent = fqc
    return fblocks, fqcs
