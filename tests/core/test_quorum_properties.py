"""Property tests: incremental quorum trackers vs a naive re-scan oracle,
and pooled share verification vs direct verification.

The refactor in :mod:`repro.core.quorum` replaced ``dict[signer, share]``
buckets (re-scanned with ``len()`` on every arrival) with dense trackers.
These tests drive arbitrary interleavings — duplicates, equivocating
double-sends, out-of-range signers — against the old-style oracle and
require identical observable behaviour at every step, including the exact
step at which the quorum threshold first trips.

The share-pool tests require that pooled verification (one real check per
(signer, payload) cluster-wide) accepts and rejects *exactly* the shares
the underlying scheme's ``verify_share`` does, in any query order.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import ProtocolConfig
from repro.core.context import SharedSetup
from repro.core.quorum import FallbackViewState, ShareQuorumTracker, SignerSet
from repro.crypto.coin import CoinShare
from repro.crypto.threshold import ThresholdSignatureShare, _share_tag

N = 7
THRESHOLD = 5

# (signer, share-id) arrivals: signers straddle the valid range, share ids
# repeat so one signer can "send" both duplicates and equivocations.
arrivals = st.lists(
    st.tuples(st.integers(min_value=-2, max_value=N + 2), st.integers(0, 5)),
    max_size=60,
)


class _DictOracle:
    """The old per-engine bucket: dict keyed by signer, keep-first."""

    def __init__(self, n: int, threshold: int) -> None:
        self.n = n
        self.threshold = threshold
        self.bucket: dict[int, int] = {}

    def add(self, signer: int, share: int) -> bool:
        if not 0 <= signer < self.n or signer in self.bucket:
            return False
        self.bucket[signer] = share
        return True

    @property
    def reached(self) -> bool:
        return len(self.bucket) >= self.threshold


@given(arrivals)
def test_tracker_matches_dict_oracle(ops):
    tracker: ShareQuorumTracker[int] = ShareQuorumTracker(N, THRESHOLD)
    oracle = _DictOracle(N, THRESHOLD)
    for signer, share in ops:
        assert tracker.add(signer, share) == oracle.add(signer, share)
        # Every observable agrees after every step, so the threshold trips
        # at exactly the same arrival in both implementations.
        assert len(tracker) == len(oracle.bucket)
        assert tracker.reached == oracle.reached
        assert (signer in tracker) == (signer in oracle.bucket)
    assert tracker.signers() == sorted(oracle.bucket)
    assert tracker.shares() == [oracle.bucket[s] for s in sorted(oracle.bucket)]


@given(arrivals, st.sets(st.integers(0, 5)))
def test_tracker_evict_matches_filtered_oracle(ops, invalid_ids):
    """evict_invalid leaves exactly what re-filtering the dict would."""
    tracker: ShareQuorumTracker[int] = ShareQuorumTracker(N, THRESHOLD)
    oracle = _DictOracle(N, THRESHOLD)
    for signer, share in ops:
        tracker.add(signer, share)
        oracle.add(signer, share)
    evicted = tracker.evict_invalid(lambda share: share not in invalid_ids)
    survivors = {
        signer: share
        for signer, share in oracle.bucket.items()
        if share not in invalid_ids
    }
    assert evicted == len(oracle.bucket) - len(survivors)
    assert len(tracker) == len(survivors)
    assert tracker.signers() == sorted(survivors)
    assert tracker.reached == (len(survivors) >= THRESHOLD)


@given(st.lists(st.integers(min_value=-2, max_value=300), max_size=60))
def test_signer_set_matches_set_oracle(ops):
    signer_set = SignerSet()
    oracle: set[int] = set()
    for signer in ops:
        expected_new = signer >= 0 and signer not in oracle
        assert signer_set.add(signer) == expected_new
        if signer >= 0:
            oracle.add(signer)
        assert len(signer_set) == len(oracle)
        assert (signer in signer_set) == (signer in oracle)
    assert signer_set.members() == sorted(oracle)


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=-1, max_value=N),  # proposer (incl. bad)
            st.integers(min_value=-1, max_value=5),  # height (incl. bad)
            st.integers(0, 3),  # fqc id
        ),
        max_size=40,
    )
)
def test_fqc_storage_matches_dict_oracle(ops):
    """Dense + overflow f-QC storage equals the old (proposer, height) dict,
    including Byzantine keys outside the dense range."""
    state = FallbackViewState(n=N, quorum=THRESHOLD, coin_threshold=3, top_height=3)
    oracle: dict[tuple[int, int], int] = {}
    for proposer, height, fqc in ops:
        key = (proposer, height)
        inserted = key not in oracle
        assert state.fqc_set(proposer, height, fqc) == inserted
        oracle.setdefault(key, fqc)
        assert state.fqc_get(proposer, height) == oracle[key]
    assert dict(state.fqc_items()) == oracle
    assert state.fqc_count() == len(oracle)


# ----------------------------------------------------------------------
# Pooled verification == direct verification
# ----------------------------------------------------------------------
_CONFIG = ProtocolConfig(n=4)
_PAYLOADS = [("timeout", r) for r in range(3)] + [("vote", "b", 1, v) for v in range(2)]


def _share_corpus():
    """Valid, cross-payload and forged-signer shares for one dealt setup."""
    setup = SharedSetup.deal(_CONFIG, coin_seed=9)
    shares = []
    for signer in range(_CONFIG.n):
        context = setup.context_for(signer)
        for payload in _PAYLOADS:
            shares.append(context.share(payload))
    # Forgeries: a share claiming signer j but carrying signer i's tag.
    forged = ThresholdSignatureShare(
        signer=1, epoch=shares[0].epoch, tag=_share_tag(0, shares[0].epoch, _PAYLOADS[0])
    )
    unknown = ThresholdSignatureShare(
        signer=_CONFIG.n + 3,
        epoch=shares[0].epoch,
        tag=_share_tag(_CONFIG.n + 3, shares[0].epoch, _PAYLOADS[0]),
    )
    shares.extend([forged, unknown])
    return setup, shares


@given(
    st.lists(
        st.tuples(st.integers(0, 4 * len(_PAYLOADS) + 1), st.integers(0, len(_PAYLOADS) - 1)),
        min_size=1,
        max_size=80,
    )
)
@settings(max_examples=50)
def test_pooled_share_verification_matches_direct(queries):
    """ctx.verify_share (pooled) agrees with scheme.verify_share (direct)
    on every (share, payload) query, in any order with any repetition."""
    setup, shares = _share_corpus()
    context = setup.context_for(0)
    for share_index, payload_index in queries:
        share = shares[share_index]
        payload = _PAYLOADS[payload_index]
        assert context.verify_share(share, payload) == setup.quorum_scheme.verify_share(
            share, payload
        )
    pool = setup.share_pool
    assert pool is not None
    counters = pool.counters()
    # Repeat queries must be pool hits, never silent re-verification.
    assert counters["hits"] + counters["misses"] == len(queries)


@given(st.lists(st.tuples(st.integers(0, 5), st.booleans()), min_size=1, max_size=40))
@settings(max_examples=50)
def test_pooled_coin_verification_matches_direct(queries):
    setup = SharedSetup.deal(_CONFIG, coin_seed=11)
    context = setup.context_for(1)
    corpus = []
    for view in range(3):
        good = context.coin_share(view)
        # Tampered: the tag of view v pasted onto view v+1.
        corpus.append(good)
        corpus.append(
            CoinShare(signer=good.signer, view=view + 1, epoch=good.epoch, tag=good.tag)
        )
    for index, _ in queries:
        share = corpus[index]
        assert context.verify_coin_share(share) == setup.coin.verify_share(share)


def test_deferred_combine_recovers_after_eviction():
    """The deferred-verify path: junk shares poison the tracker, combine
    raises, evict_invalid clears them, honest arrivals re-reach quorum."""
    from repro.crypto.signatures import SignatureError

    setup, _ = _share_corpus()
    payload = ("timeout", 7)
    tracker: ShareQuorumTracker[ThresholdSignatureShare] = ShareQuorumTracker(4, 3)
    junk = ThresholdSignatureShare(
        signer=2, epoch=0, tag=_share_tag(2, 0, ("timeout", 999))
    )
    tracker.add(2, junk)
    for signer in (0, 1):
        tracker.add(signer, setup.context_for(signer).share(payload))
    assert tracker.reached
    context = setup.context_for(0)
    try:
        context.combine(tracker.shares(), payload)
        raise AssertionError("combine accepted an invalid share")
    except SignatureError:
        evicted = tracker.evict_invalid(
            lambda share: context.verify_share(share, payload)
        )
    assert evicted == 1
    assert not tracker.reached
    tracker.add(3, setup.context_for(3).share(payload))
    assert tracker.reached
    signature = context.combine(tracker.shares(), payload)
    assert context.verify_combined(signature, payload)
