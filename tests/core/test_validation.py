"""Tests for certificate validation and effective ranks."""

from repro.core.validation import (
    effective_rank,
    endorse_if_elected,
    verify_embedded_cert,
    verify_endorsed,
    verify_fallback_qc,
    verify_fallback_tc,
    verify_parent_cert,
    verify_qc,
    verify_timeout_cert,
)
from repro.ledger.blockstore import BlockStore
from repro.types.blocks import Block, FallbackBlock
from repro.types.certificates import (
    CoinQC,
    EndorsedFallbackQC,
    FallbackTC,
    QC,
    Rank,
    TimeoutCertificate,
    genesis_qc,
)
from repro.crypto.threshold import ThresholdSignature

from tests.core.conftest import make_real_fqc, make_real_qc


def test_genesis_qc_always_valid(contexts):
    store = BlockStore()
    qc = genesis_qc(store.genesis.id)
    assert verify_qc(contexts[0], qc)


def test_real_qc_verifies(setup, contexts):
    store = BlockStore()
    block = Block(qc=genesis_qc(store.genesis.id), round=1, view=0, author=0)
    qc = make_real_qc(setup, block)
    assert verify_qc(contexts[1], qc)
    assert verify_parent_cert(contexts[1], qc)


def test_forged_qc_rejected(setup, contexts):
    store = BlockStore()
    block = Block(qc=genesis_qc(store.genesis.id), round=1, view=0, author=0)
    real = make_real_qc(setup, block)
    forged = QC(
        block_id=block.id,
        round=2,  # claims a different round than was signed
        view=0,
        signature=real.signature,
    )
    assert not verify_qc(contexts[0], forged)


def test_undersigned_qc_rejected(setup, contexts):
    store = BlockStore()
    block = Block(qc=genesis_qc(store.genesis.id), round=1, view=0, author=0)
    qc = make_real_qc(setup, block)
    thin = QC(
        block_id=qc.block_id,
        round=qc.round,
        view=qc.view,
        signature=ThresholdSignature(
            epoch=qc.signature.epoch,
            tag=qc.signature.tag,
            signers=frozenset([0]),  # below quorum
        ),
    )
    assert not verify_qc(contexts[0], thin)


def test_fqc_verification(setup, contexts):
    store = BlockStore()
    fblock = FallbackBlock(
        qc=genesis_qc(store.genesis.id), round=1, view=0, height=1, proposer=2
    )
    fqc = make_real_fqc(setup, fblock)
    assert verify_fallback_qc(contexts[0], fqc)
    assert verify_embedded_cert(contexts[0], fqc)
    # Raw f-QCs are not acceptable parent certs for regular blocks.
    assert not verify_parent_cert(contexts[0], fqc)


def test_endorsed_verification(setup, contexts):
    store = BlockStore()
    coin = setup.coin
    view = 0
    leader = coin._value(view)
    fblock = FallbackBlock(
        qc=genesis_qc(store.genesis.id), round=1, view=view, height=1, proposer=leader
    )
    fqc = make_real_fqc(setup, fblock)
    coin_qc = CoinQC(view=view, leader=leader, proof_tag=coin.leader_proof_tag(view))
    endorsed = EndorsedFallbackQC(fqc=fqc, coin_qc=coin_qc)
    assert verify_endorsed(contexts[0], endorsed)
    assert verify_parent_cert(contexts[0], endorsed)
    bogus = EndorsedFallbackQC(
        fqc=fqc, coin_qc=CoinQC(view=view, leader=leader, proof_tag="fake")
    )
    assert not verify_endorsed(contexts[0], bogus)


def test_tc_and_ftc_verification(setup, contexts):
    scheme = setup.quorum_scheme
    payload = ("ftimeout", 3)
    shares = [scheme.sign_share(setup.registry.key_pair(i), payload) for i in range(3)]
    ftc = FallbackTC(view=3, signature=scheme.combine(shares, payload))
    assert verify_fallback_tc(contexts[0], ftc)
    wrong_view = FallbackTC(view=4, signature=ftc.signature)
    assert not verify_fallback_tc(contexts[0], wrong_view)

    tc_payload = ("timeout", 7)
    tc_shares = [
        scheme.sign_share(setup.registry.key_pair(i), tc_payload) for i in range(3)
    ]
    tc = TimeoutCertificate(round=7, signature=scheme.combine(tc_shares, tc_payload))
    assert verify_timeout_cert(contexts[0], tc)


def test_effective_rank_with_and_without_coin(setup):
    store = BlockStore()
    fblock = FallbackBlock(
        qc=genesis_qc(store.genesis.id), round=5, view=2, height=1, proposer=1
    )
    fqc = make_real_fqc(setup, fblock)
    # No coin: unendorsed rank.
    assert effective_rank(fqc, {}) == Rank(2, False, 5)
    # Coin elected the proposer: endorsed rank.
    coin_qcs = {2: CoinQC(view=2, leader=1, proof_tag="t")}
    assert effective_rank(fqc, coin_qcs) == Rank(2, True, 5)
    # Coin elected someone else: unendorsed.
    other = {2: CoinQC(view=2, leader=3, proof_tag="t")}
    assert effective_rank(fqc, other) == Rank(2, False, 5)


def test_endorse_if_elected(setup):
    store = BlockStore()
    genesis = genesis_qc(store.genesis.id)
    fblock = FallbackBlock(qc=genesis, round=5, view=2, height=1, proposer=1)
    fqc = make_real_fqc(setup, fblock)
    assert endorse_if_elected(fqc, {}) is None
    coin_qcs = {2: CoinQC(view=2, leader=1, proof_tag="t")}
    wrapped = endorse_if_elected(fqc, coin_qcs)
    assert isinstance(wrapped, EndorsedFallbackQC)
    assert wrapped.fqc is fqc
    # Regular QCs pass through.
    assert endorse_if_elected(genesis, {}) is genesis
