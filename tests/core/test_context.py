"""Tests for the shared crypto setup / per-replica contexts."""

import pytest

from repro.core.config import ProtocolConfig
from repro.core.context import SharedSetup
from repro.crypto.signatures import SignatureError


@pytest.fixture
def setup():
    return SharedSetup.deal(ProtocolConfig(n=7), coin_seed=5)


def test_deal_thresholds(setup):
    assert setup.quorum_scheme.threshold == 5  # 2f+1 with f=2
    assert setup.coin.threshold == 3  # f+1
    assert setup.registry.n == 7


def test_context_binding(setup):
    context = setup.context_for(3)
    assert context.replica == 3
    assert context.scheme is setup.quorum_scheme
    assert context.coin is setup.coin


def test_share_and_combine_through_context(setup):
    payload = ("vote", "id", 1, 0)
    shares = [setup.context_for(i).share(payload) for i in range(5)]
    combined = setup.context_for(0).combine(shares, payload)
    assert setup.context_for(6).verify_combined(combined, payload)
    assert setup.context_for(6).verify_share(shares[0], payload)
    assert not setup.context_for(6).verify_share(shares[0], ("other",))


def test_coin_through_context(setup):
    shares = [setup.context_for(i).coin_share(4) for i in range(3)]
    coin_qc = setup.context_for(0).reveal_coin(shares, 4)
    assert 0 <= coin_qc.leader < 7
    assert setup.context_for(1).verify_coin_qc(coin_qc)
    for share in shares:
        assert setup.context_for(5).verify_coin_share(share)


def test_coin_reveal_needs_enough_shares(setup):
    shares = [setup.context_for(i).coin_share(4) for i in range(2)]
    with pytest.raises(SignatureError):
        setup.context_for(0).reveal_coin(shares, 4)


def test_same_seed_same_coin_schedule():
    config = ProtocolConfig(n=4)
    a = SharedSetup.deal(config, coin_seed=9)
    b = SharedSetup.deal(config, coin_seed=9)
    shares_a = [a.context_for(i).coin_share(0) for i in range(2)]
    shares_b = [b.context_for(i).coin_share(0) for i in range(2)]
    assert (
        a.context_for(0).reveal_coin(shares_a, 0).leader
        == b.context_for(0).reveal_coin(shares_b, 0).leader
    )
