"""Unit-level tests driving single replicas through handcrafted messages."""

import pytest

from repro.core.config import ProtocolConfig
from repro.runtime.cluster import ClusterBuilder
from repro.types.blocks import Block
from repro.types.certificates import genesis_qc
from repro.types.messages import (
    BlockRequest,
    BlockResponse,
    FallbackTimeout,
    Proposal,
    Vote,
)

from tests.core.conftest import build_certified_chain


@pytest.fixture
def cluster():
    built = ClusterBuilder(n=4, seed=1).with_preload(50).build()
    # Do not start: tests drive replicas by hand.
    return built


def replica(cluster, i=0):
    return cluster.replicas[i]


def test_proposal_with_wrong_author_ignored(cluster):
    target = replica(cluster, 1)
    block = Block(qc=genesis_qc(target.store.genesis.id), round=1, view=0, author=0)
    # Claimed author 0 but sent by 2 (authenticated channel exposes this).
    target.deliver(2, Proposal(block))
    assert target.safety.r_vote == 0
    assert block.id not in target.store


def test_proposal_from_non_leader_ignored(cluster):
    target = replica(cluster, 1)
    # Replica 2 is not the leader of round 1 (leader(1..4) = 0).
    block = Block(qc=genesis_qc(target.store.genesis.id), round=1, view=0, author=2)
    target.deliver(2, Proposal(block))
    assert target.safety.r_vote == 0


def test_valid_proposal_triggers_vote_to_next_leader(cluster):
    target = replica(cluster, 1)
    leader_round_2 = target.schedule.leader(2)
    block = Block(qc=genesis_qc(target.store.genesis.id), round=1, view=0, author=0)
    target.deliver(0, Proposal(block))
    cluster.scheduler.drain()
    assert target.safety.r_vote == 1
    # The vote landed at the next leader's accumulator.
    next_leader = replica(cluster, leader_round_2)
    key = ("vote", block.id, 1, 0)
    assert key in next_leader._vote_shares or key in next_leader._formed_qcs


def test_duplicate_proposal_voted_once(cluster):
    target = replica(cluster, 1)
    block = Block(qc=genesis_qc(target.store.genesis.id), round=1, view=0, author=0)
    target.deliver(0, Proposal(block))
    votes_before = target.safety.r_vote
    target.deliver(0, Proposal(block))
    assert target.safety.r_vote == votes_before == 1


def test_vote_share_sender_mismatch_rejected(cluster):
    leader = replica(cluster, 0)
    block = Block(qc=genesis_qc(leader.store.genesis.id), round=4, view=0, author=0)
    leader.store.add(block)
    share = cluster.setup.quorum_scheme.sign_share(
        cluster.setup.registry.key_pair(1), ("vote", block.id, 4, 0)
    )
    vote = Vote(block_id=block.id, round=4, view=0, share=share)
    leader.deliver(2, vote)  # share signed by 1, delivered by 2
    assert ("vote", block.id, 4, 0) not in leader._vote_shares


def test_quorum_of_votes_forms_qc_and_advances(cluster):
    leader = replica(cluster, 0)
    block = Block(qc=genesis_qc(leader.store.genesis.id), round=1, view=0, author=0)
    leader.store.add(block)
    for voter in range(3):
        share = cluster.setup.quorum_scheme.sign_share(
            cluster.setup.registry.key_pair(voter), ("vote", block.id, 1, 0)
        )
        leader.deliver(voter, Vote(block_id=block.id, round=1, view=0, share=share))
    assert leader.r_cur == 2
    assert leader.qc_high.round == 1
    assert leader.qc_high.block_id == block.id


def test_two_votes_do_not_form_qc(cluster):
    leader = replica(cluster, 0)
    block = Block(qc=genesis_qc(leader.store.genesis.id), round=1, view=0, author=0)
    leader.store.add(block)
    for voter in range(2):
        share = cluster.setup.quorum_scheme.sign_share(
            cluster.setup.registry.key_pair(voter), ("vote", block.id, 1, 0)
        )
        leader.deliver(voter, Vote(block_id=block.id, round=1, view=0, share=share))
    assert leader.r_cur == 1
    assert leader.qc_high.round == 0


def test_missing_block_triggers_sync_request(cluster):
    target = replica(cluster, 1)
    source = replica(cluster, 0)
    blocks, qcs = build_certified_chain(cluster.setup, source.store, 3)
    # Target learns the head QC via a timeout message without the blocks.
    share = cluster.setup.quorum_scheme.sign_share(
        cluster.setup.registry.key_pair(0), ("ftimeout", 0)
    )
    target.deliver(0, FallbackTimeout(view=0, share=share, qc_high=qcs[2]))
    assert target.qc_high.round == 3
    assert blocks[2].id in target._requested_blocks
    cluster.scheduler.drain()
    # Replica 0 (the chain author / likely holder) answered; commits flowed.
    assert target.ledger.height >= 1


def test_block_request_answered_only_if_known(cluster):
    holder = replica(cluster, 0)
    asker = replica(cluster, 1)
    blocks, _ = build_certified_chain(cluster.setup, holder.store, 1)
    holder.deliver(1, BlockRequest(block_id=blocks[0].id))
    holder.deliver(1, BlockRequest(block_id="unknown"))
    cluster.scheduler.drain()
    assert blocks[0].id in asker.store
    assert "unknown" not in asker.store


def test_block_response_with_invalid_qc_rejected(cluster):
    target = replica(cluster, 1)
    from repro.types.certificates import QC
    from repro.crypto.threshold import ThresholdSignature

    bogus_qc = QC(block_id="x", round=3, view=0,
                  signature=ThresholdSignature(epoch=0, tag="bad", signers=frozenset()))
    bogus_block = Block(qc=bogus_qc, round=4, view=0, author=0)
    target.deliver(0, BlockResponse(block=bogus_block))
    assert bogus_block.id not in target.store


def test_crypto_context_ownership_enforced(cluster):
    config = ProtocolConfig(n=4)
    with pytest.raises(ValueError):
        from repro.core.replica import Replica

        Replica(
            0,
            config,
            cluster.setup.context_for(1),  # wrong key
            cluster.network,
            cluster.scheduler,
        )


def test_observer_defaults_are_noops():
    from repro.core.replica import ReplicaObserver

    observer = ReplicaObserver()
    observer.on_commit(0, None, 0.0)
    observer.on_round_entered(0, 1, 0.0)
    observer.on_timeout(0, 0, 1, 0.0)
    observer.on_fallback_entered(0, 0, 0.0)
    observer.on_fallback_exited(0, 0, 1, 0.0)
    observer.on_proposal(0, None, 0.0)
