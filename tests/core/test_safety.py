"""Tests for the safety rules (vote/lock state machine)."""

import pytest

from repro.core.config import ProtocolConfig, ProtocolVariant
from repro.core.safety import SafetyRules
from repro.types.blocks import Block, FallbackBlock
from repro.types.certificates import Rank, genesis_qc

from tests.types.test_certificates import make_qc


@pytest.fixture
def rules():
    return SafetyRules(ProtocolConfig(n=4))


def block_at(round_, view=0, qc=None):
    qc = qc if qc is not None else make_qc(round_=round_ - 1, view=view)
    return Block(qc=qc, round=round_, view=view, author=0)


GENESIS_RANK = Rank(0, False, 0)


class TestRegularVoting:
    def test_votes_for_valid_proposal(self, rules):
        block = block_at(1, qc=genesis_qc("g"))
        assert rules.may_vote_regular(block, r_cur=1, v_cur=0, fallback_mode=False,
                                      parent_rank=GENESIS_RANK)

    def test_rejects_wrong_round(self, rules):
        block = block_at(2)
        assert not rules.may_vote_regular(block, r_cur=3, v_cur=0,
                                          fallback_mode=False,
                                          parent_rank=Rank(0, False, 1))

    def test_rejects_wrong_view(self, rules):
        block = block_at(2)
        assert not rules.may_vote_regular(block, r_cur=2, v_cur=1,
                                          fallback_mode=False,
                                          parent_rank=Rank(0, False, 1))

    def test_rejects_already_voted_round(self, rules):
        block = block_at(2)
        rules.record_regular_vote(block)
        assert rules.r_vote == 2
        again = block_at(2)
        assert not rules.may_vote_regular(again, r_cur=2, v_cur=0,
                                          fallback_mode=False,
                                          parent_rank=Rank(0, False, 1))

    def test_rejects_parent_below_lock(self, rules):
        rules.rank_lock = Rank(0, False, 5)
        block = block_at(7, qc=make_qc(round_=6))
        # Parent rank 4 < lock 5.
        assert not rules.may_vote_regular(block, r_cur=7, v_cur=0,
                                          fallback_mode=False,
                                          parent_rank=Rank(0, False, 4))

    def test_rejects_in_fallback_mode(self, rules):
        block = block_at(2)
        assert not rules.may_vote_regular(block, r_cur=2, v_cur=0,
                                          fallback_mode=True,
                                          parent_rank=Rank(0, False, 1))

    def test_rejects_round_gap_in_fallback_variant(self, rules):
        # Fallback variants require r == qc.r + 1.
        block = Block(qc=make_qc(round_=3), round=5, view=0, author=0)
        assert not rules.may_vote_regular(block, r_cur=5, v_cur=0,
                                          fallback_mode=False,
                                          parent_rank=Rank(0, False, 3))

    def test_baseline_allows_round_gap(self):
        rules = SafetyRules(ProtocolConfig(n=4, variant=ProtocolVariant.DIEMBFT))
        block = Block(qc=make_qc(round_=3), round=5, view=0, author=0)
        assert rules.may_vote_regular(block, r_cur=5, v_cur=0,
                                      fallback_mode=False,
                                      parent_rank=Rank(0, False, 3))

    def test_stop_voting(self, rules):
        rules.stop_voting_for(4)
        assert rules.r_vote == 4
        rules.stop_voting_below(3)  # must never lower r_vote
        assert rules.r_vote == 4
        rules.stop_voting_below(10)
        assert rules.r_vote == 9


class TestLocking:
    def test_two_chain_lock_uses_parent(self, rules):
        rules.update_lock(Rank(0, False, 5), Rank(0, False, 4))
        assert rules.rank_lock == Rank(0, False, 4)

    def test_lock_is_monotone(self, rules):
        rules.update_lock(Rank(0, False, 5), Rank(0, False, 4))
        rules.update_lock(Rank(0, False, 3), Rank(0, False, 2))
        assert rules.rank_lock == Rank(0, False, 4)

    def test_two_chain_lock_skips_unknown_parent(self, rules):
        rules.update_lock(Rank(0, False, 5), None)
        assert rules.rank_lock == Rank.zero()

    def test_one_chain_lock_uses_qc_itself(self):
        rules = SafetyRules(ProtocolConfig(n=4, variant=ProtocolVariant.FALLBACK_2CHAIN))
        rules.update_lock(Rank(0, False, 5), Rank(0, False, 4))
        assert rules.rank_lock == Rank(0, False, 5)
        rules.update_lock(Rank(0, False, 6), None)
        assert rules.rank_lock == Rank(0, False, 6)

    def test_endorsed_rank_locks_above_regular(self, rules):
        rules.update_lock(Rank(1, False, 9), Rank(1, True, 3))
        assert rules.rank_lock == Rank(1, True, 3)
        assert rules.rank_lock > Rank(1, False, 100)


class TestFallbackVoting:
    def fblock(self, height, proposer, round_, view=1, qc=None):
        qc = qc if qc is not None else make_qc(round_=round_ - 1, view=view)
        return FallbackBlock(qc=qc, round=round_, view=view, height=height,
                             proposer=proposer)

    def test_requires_fallback_mode_and_reset(self, rules):
        block = self.fblock(1, proposer=2, round_=3)
        assert not rules.may_vote_fallback(block, v_cur=1, fallback_mode=True,
                                           parent_rank=Rank(0, False, 2),
                                           parent_height=None)
        rules.reset_fallback_votes(1)
        assert not rules.may_vote_fallback(block, v_cur=1, fallback_mode=False,
                                           parent_rank=Rank(0, False, 2),
                                           parent_height=None)
        assert rules.may_vote_fallback(block, v_cur=1, fallback_mode=True,
                                       parent_rank=Rank(0, False, 2),
                                       parent_height=None)

    def test_height_must_increase_per_proposer(self, rules):
        rules.reset_fallback_votes(1)
        height1 = self.fblock(1, proposer=2, round_=3)
        assert rules.may_vote_fallback(height1, 1, True, Rank(0, False, 2), None)
        rules.record_fallback_vote(height1)
        # Same height again: rejected.
        twin = self.fblock(1, proposer=2, round_=4)
        assert not rules.may_vote_fallback(twin, 1, True, Rank(0, False, 3), None)
        # But height 1 from a different proposer is fine.
        other = self.fblock(1, proposer=3, round_=3)
        assert rules.may_vote_fallback(other, 1, True, Rank(0, False, 2), None)

    def test_height1_lock_check(self, rules):
        rules.rank_lock = Rank(1, False, 9)
        rules.reset_fallback_votes(1)
        low = self.fblock(1, proposer=2, round_=3)
        assert not rules.may_vote_fallback(low, 1, True, Rank(0, False, 2), None)
        high = self.fblock(1, proposer=2, round_=11)
        assert rules.may_vote_fallback(high, 1, True, Rank(1, False, 10), None)

    def test_height1_round_chain_check(self, rules):
        rules.reset_fallback_votes(1)
        gap = self.fblock(1, proposer=2, round_=5)
        # Parent round 2 but block round 5: r != qc.r + 1.
        assert not rules.may_vote_fallback(gap, 1, True, Rank(0, False, 2), None)

    def test_height2_rules(self, rules):
        rules.reset_fallback_votes(1)
        h2 = self.fblock(2, proposer=2, round_=4)
        assert rules.may_vote_fallback(h2, 1, True, Rank(1, False, 3), parent_height=1)
        # Wrong parent height.
        assert not rules.may_vote_fallback(h2, 1, True, Rank(1, False, 3), parent_height=2)
        # Round must extend parent.
        assert not rules.may_vote_fallback(h2, 1, True, Rank(1, False, 1), parent_height=1)
        # Height 2+ must embed an f-QC, not a regular cert.
        assert not rules.may_vote_fallback(h2, 1, True, Rank(1, False, 3), parent_height=None)

    def test_rounds_strictly_increase_per_proposer(self, rules):
        rules.reset_fallback_votes(1)
        h2 = self.fblock(2, proposer=2, round_=4)
        rules.record_fallback_vote(h2)
        # A height-3 block at a round <= the recorded one is rejected.
        h3_low = self.fblock(3, proposer=2, round_=4)
        assert not rules.may_vote_fallback(h3_low, 1, True, Rank(1, False, 3), parent_height=2)
        h3 = self.fblock(3, proposer=2, round_=5)
        assert rules.may_vote_fallback(h3, 1, True, Rank(1, False, 4), parent_height=2)

    def test_view_mismatch_rejected(self, rules):
        rules.reset_fallback_votes(1)
        stale = self.fblock(1, proposer=2, round_=3, view=0)
        assert not rules.may_vote_fallback(stale, 1, True, Rank(0, False, 2), None)

    def test_adopt_leader_votes(self, rules):
        rules.reset_fallback_votes(1)
        h1 = self.fblock(1, proposer=2, round_=7)
        rules.record_fallback_vote(h1)
        rules.r_vote = 3
        rules.adopt_leader_votes(2)
        assert rules.r_vote == 7
        rules.adopt_leader_votes(3)  # never voted for 3 -> r_vote = 0
        assert rules.r_vote == 0

    def test_record_outside_fallback_raises(self, rules):
        with pytest.raises(RuntimeError):
            rules.record_fallback_vote(self.fblock(1, proposer=2, round_=3))
