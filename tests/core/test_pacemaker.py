"""Unit tests for the baseline DiemBFT pacemaker."""

import pytest

from repro.core.config import ProtocolConfig, ProtocolVariant
from repro.runtime.cluster import ClusterBuilder
from repro.types.certificates import TimeoutCertificate
from repro.types.messages import PacemakerTCMessage, PacemakerTimeout


@pytest.fixture
def cluster():
    config = ProtocolConfig(n=4, variant=ProtocolVariant.DIEMBFT)
    return ClusterBuilder(config=config, seed=2).with_preload(20).build()


def timeout_from(cluster, sender, round_number):
    scheme = cluster.setup.quorum_scheme
    share = scheme.sign_share(
        cluster.setup.registry.key_pair(sender), ("timeout", round_number)
    )
    return PacemakerTimeout(
        round=round_number, share=share, qc_high=cluster.replicas[sender].qc_high
    )


def make_tc(cluster, round_number):
    scheme = cluster.setup.quorum_scheme
    payload = ("timeout", round_number)
    shares = [
        scheme.sign_share(cluster.setup.registry.key_pair(i), payload)
        for i in range(3)
    ]
    return TimeoutCertificate(round=round_number, signature=scheme.combine(shares, payload))


def test_local_timeout_multicasts_share(cluster):
    replica = cluster.replicas[0]
    replica.pacemaker.on_local_timeout()
    assert cluster.metrics.message_counts["PacemakerTimeout"] == 3
    # And stops voting for the timed-out round.
    assert replica.safety.r_vote >= 1


def test_timeout_not_resent_for_same_round(cluster):
    replica = cluster.replicas[0]
    replica.pacemaker.on_local_timeout()
    replica.pacemaker.on_local_timeout()
    assert cluster.metrics.message_counts["PacemakerTimeout"] == 3


def test_quorum_of_timeouts_forms_tc_and_advances(cluster):
    replica = cluster.replicas[0]
    for sender in (1, 2, 3):
        replica.deliver(sender, timeout_from(cluster, sender, 1))
    assert replica.r_cur == 2
    assert 1 in replica.pacemaker._tcs


def test_timeout_join_rule(cluster):
    """Receiving a timeout for a round >= ours triggers our own share."""
    replica = cluster.replicas[0]
    replica.deliver(1, timeout_from(cluster, 1, 5))
    # Joined: multicast own share for round 5 (3 network sends).
    assert cluster.metrics.message_counts["PacemakerTimeout"] == 3
    assert 5 in replica.pacemaker._timeout_sent_rounds


def test_very_stale_timeouts_ignored(cluster):
    replica = cluster.replicas[0]
    replica.r_cur = 10
    replica.deliver(1, timeout_from(cluster, 1, 2))
    assert 2 not in replica.pacemaker._timeout_shares


def test_tc_message_advances_round(cluster):
    replica = cluster.replicas[1]
    tc = make_tc(cluster, 4)
    replica.deliver(0, PacemakerTCMessage(tc=tc, qc_high=replica.qc_high))
    assert replica.r_cur == 5


def test_forged_tc_rejected(cluster):
    replica = cluster.replicas[1]
    good = make_tc(cluster, 4)
    forged = TimeoutCertificate(round=9, signature=good.signature)
    replica.deliver(0, PacemakerTCMessage(tc=forged, qc_high=replica.qc_high))
    assert replica.r_cur == 1


def test_entering_round_by_tc_forwards_to_leader(cluster):
    # Replica 1 forms a TC for round 4; leader of round 5 is replica 1
    # itself, so use round 8 whose next leader (round 9) is replica 2.
    replica = cluster.replicas[1]
    for sender in (0, 2, 3):
        replica.deliver(sender, timeout_from(cluster, sender, 8))
    assert replica.r_cur == 9
    assert cluster.metrics.message_counts.get("PacemakerTCMessage", 0) >= 1


def test_baseline_liveness_after_round_desync():
    """After rounds drift apart, the join rule re-synchronizes timeouts."""
    config = ProtocolConfig(n=4, variant=ProtocolVariant.DIEMBFT, round_timeout=3.0)
    cluster = ClusterBuilder(config=config, seed=5).with_preload(100).build()
    # Desynchronize: replica 3 believes it is far ahead.
    cluster.replicas[3].r_cur = 9
    result = cluster.run_until_commits(10, until=10_000)
    assert result.decisions >= 10
