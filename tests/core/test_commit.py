"""Tests for the commit rules (3-chain and 2-chain, mixed chains)."""

from repro.core.commit import cert_counts_for_commit, find_commit_target, parent_rank_of
from repro.ledger.blockstore import BlockStore
from repro.types.blocks import Block, FallbackBlock
from repro.types.certificates import CoinQC, Rank, genesis_qc

from tests.core.conftest import (
    build_certified_chain,
    build_fallback_chain,
    make_real_fqc,
    make_real_qc,
)


def test_three_chain_commits_head(setup):
    store = BlockStore()
    blocks, qcs = build_certified_chain(setup, store, 3)
    target = find_commit_target(store, qcs[2], {}, depth=3)
    assert target is blocks[0]


def test_two_chain_rule(setup):
    store = BlockStore()
    blocks, qcs = build_certified_chain(setup, store, 2)
    assert find_commit_target(store, qcs[1], {}, depth=2) is blocks[0]
    # The 3-chain rule does not fire on a 2-chain above genesis... it walks
    # to genesis which breaks the consecutive-round requirement only if
    # rounds differ; genesis is round 0 and blocks start at 1, so rounds
    # 0,1,2 ARE consecutive and genesis commits (a no-op commit).
    target = find_commit_target(store, qcs[1], {}, depth=3)
    assert target is store.genesis


def test_round_gap_blocks_commit(setup):
    store = BlockStore()
    blocks, qcs = build_certified_chain(setup, store, 2)
    # A block skipping a round (possible only in the DiemBFT baseline).
    gap_block = Block(qc=qcs[1], round=5, view=0, author=0)
    store.add(gap_block)
    gap_qc = make_real_qc(setup, gap_block)
    assert find_commit_target(store, gap_qc, {}, depth=3) is None


def test_view_mismatch_blocks_commit(setup):
    store = BlockStore()
    blocks, qcs = build_certified_chain(setup, store, 2)
    next_view = Block(qc=qcs[1], round=3, view=1, author=0)
    store.add(next_view)
    qc = make_real_qc(setup, next_view)
    # Rounds 1,2,3 consecutive but views 0,0,1 differ -> no commit.
    assert find_commit_target(store, qc, {}, depth=3) is None


def test_missing_block_defers_commit(setup):
    store = BlockStore()
    blocks, qcs = build_certified_chain(setup, store, 3)
    sparse = BlockStore()
    sparse.add(blocks[0])
    sparse.add(blocks[2])  # middle block missing
    assert find_commit_target(sparse, qcs[2], {}, depth=3) is None
    sparse.add(blocks[1])
    assert find_commit_target(sparse, qcs[2], {}, depth=3) is blocks[0]


def test_endorsed_fallback_chain_commits(setup):
    store = BlockStore()
    view = 0
    leader = setup.coin._value(view)
    base = genesis_qc(store.genesis.id)
    fblocks, fqcs = build_fallback_chain(setup, store, view, leader, base, heights=3)
    coin_qcs = {view: CoinQC(view=view, leader=leader,
                             proof_tag=setup.coin.leader_proof_tag(view))}
    target = find_commit_target(store, fqcs[2], coin_qcs, depth=3)
    assert target is fblocks[0]


def test_unendorsed_fallback_chain_does_not_commit(setup):
    store = BlockStore()
    view = 0
    loser = (setup.coin._value(view) + 1) % setup.config.n
    base = genesis_qc(store.genesis.id)
    _, fqcs = build_fallback_chain(setup, store, view, loser, base, heights=3)
    coin_qcs = {view: CoinQC(view=view, leader=setup.coin._value(view),
                             proof_tag=setup.coin.leader_proof_tag(view))}
    assert find_commit_target(store, fqcs[2], coin_qcs, depth=3) is None
    # Without any coin at all, same story.
    assert find_commit_target(store, fqcs[2], {}, depth=3) is None


def test_mixed_chain_regular_after_endorsed(setup):
    """Steady-state blocks extending an endorsed f-chain commit together
    once the new view assembles its own chain (same-view requirement)."""
    store = BlockStore()
    view = 0
    leader = setup.coin._value(view)
    base = genesis_qc(store.genesis.id)
    fblocks, fqcs = build_fallback_chain(setup, store, view, leader, base, heights=3)
    coin_qc = CoinQC(view=view, leader=leader,
                     proof_tag=setup.coin.leader_proof_tag(view))
    coin_qcs = {view: coin_qc}
    from repro.types.certificates import EndorsedFallbackQC

    endorsed_top = EndorsedFallbackQC(fqc=fqcs[2], coin_qc=coin_qc)
    # New view: three regular blocks extending the endorsed chain.
    parent = endorsed_top
    new_blocks = []
    for offset in range(3):
        block = Block(qc=parent, round=fblocks[2].round + 1 + offset, view=1, author=1)
        store.add(block)
        qc = make_real_qc(setup, block)
        new_blocks.append((block, qc))
        parent = qc
    target = find_commit_target(store, new_blocks[2][1], coin_qcs, depth=3)
    assert target is new_blocks[0][0]
    # The chain across the view boundary does NOT commit (views differ).
    assert find_commit_target(store, new_blocks[1][1], coin_qcs, depth=3) is None


def test_cert_counts_for_commit(setup):
    store = BlockStore()
    base = genesis_qc(store.genesis.id)
    assert cert_counts_for_commit(base, {})
    view, proposer = 0, 1
    fblock = FallbackBlock(qc=base, round=1, view=view, height=1, proposer=proposer)
    store.add(fblock)
    fqc = make_real_fqc(setup, fblock)
    assert not cert_counts_for_commit(fqc, {})
    assert cert_counts_for_commit(
        fqc, {view: CoinQC(view=view, leader=proposer, proof_tag="t")}
    )
    assert not cert_counts_for_commit(
        fqc, {view: CoinQC(view=view, leader=proposer + 1, proof_tag="t")}
    )


def test_parent_rank_of(setup):
    store = BlockStore()
    blocks, qcs = build_certified_chain(setup, store, 2)
    assert parent_rank_of(store.genesis, {}) is None
    assert parent_rank_of(blocks[0], {}) == Rank(0, False, 0)
    assert parent_rank_of(blocks[1], {}) == Rank(0, False, 1)


def test_depth_validation(setup):
    store = BlockStore()
    base = genesis_qc(store.genesis.id)
    try:
        find_commit_target(store, base, {}, depth=0)
        assert False
    except ValueError:
        pass
