"""Tests for fallback-state garbage collection across views."""

from repro.experiments.scenarios import build_cluster, leader_attack_factory


def long_attack_run(seed=63, min_views=5):
    cluster = build_cluster(
        "fallback-3chain", 4, seed=seed, delay_factory=leader_attack_factory()
    )
    cluster.run(
        until=200_000,
        stop_when=lambda: max(r.v_cur for r in cluster.honest_replicas()) >= min_views,
    )
    return cluster


def test_old_view_state_is_pruned():
    cluster = long_attack_run()
    for replica in cluster.honest_replicas():
        engine = replica.fallback
        horizon = replica.v_cur - engine.PRUNE_MARGIN
        if horizon <= 0:
            continue
        assert all(view >= horizon for view in engine._timeout_shares)
        assert all(view >= horizon for view in engine._coin_shares)
        assert all(view >= horizon for view in engine._completed)
        assert all(key[0] >= horizon for key in engine._own_blocks)
        assert all(key[0] >= horizon for key in engine.fqcs)


def test_coin_qcs_are_kept_forever():
    """Historical coin-QCs are needed to judge endorsement of old blocks."""
    cluster = long_attack_run()
    replica = cluster.honest_replicas()[0]
    exited = {
        e.view for e in cluster.metrics.fallback_events
        if e.kind == "exited" and e.replica == replica.process_id
    }
    assert exited <= set(replica.fallback.coin_qcs)


def test_pruning_does_not_hurt_progress():
    cluster = long_attack_run(min_views=6)
    assert cluster.metrics.decisions() >= 5
    from repro.analysis.safety import assert_cluster_safety

    assert_cluster_safety(cluster.honest_replicas())


def test_vote_share_accumulators_follow_blocks():
    cluster = long_attack_run()
    for replica in cluster.honest_replicas():
        engine = replica.fallback
        own_ids = {block.id for block in engine._own_blocks.values()}
        assert set(engine._own_vote_shares) <= own_ids
