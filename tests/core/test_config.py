"""Tests for protocol configuration."""

import pytest

from repro.core.config import ProtocolConfig, ProtocolVariant


def test_defaults():
    config = ProtocolConfig()
    assert config.n == 4
    assert config.f == 1
    assert config.quorum_size == 3
    assert config.coin_threshold == 2
    assert config.variant == ProtocolVariant.FALLBACK_3CHAIN


@pytest.mark.parametrize("n,f", [(4, 1), (7, 2), (10, 3), (31, 10), (100, 33)])
def test_fault_budget(n, f):
    config = ProtocolConfig(n=n)
    assert config.f == f
    assert config.quorum_size == 2 * f + 1
    assert config.n - config.f == config.quorum_size


@pytest.mark.parametrize("n", [0, 1, 3, 5, 6, 9])
def test_invalid_n_rejected(n):
    with pytest.raises(ValueError):
        ProtocolConfig(n=n)


def test_validation_of_other_fields():
    with pytest.raises(ValueError):
        ProtocolConfig(round_timeout=0.0)
    with pytest.raises(ValueError):
        ProtocolConfig(timeout_multiplier=0.5)
    with pytest.raises(ValueError):
        ProtocolConfig(leader_rotation_interval=0)


def test_variant_derived_parameters():
    three = ProtocolConfig(variant=ProtocolVariant.FALLBACK_3CHAIN)
    assert three.commit_depth == 3
    assert three.fallback_top_height == 3
    assert not three.one_chain_lock
    assert not three.adoption_enabled
    assert three.uses_fallback
    assert three.strict_round_chaining

    two = ProtocolConfig(variant=ProtocolVariant.FALLBACK_2CHAIN)
    assert two.commit_depth == 2
    assert two.fallback_top_height == 2
    assert two.one_chain_lock
    assert two.adoption_enabled  # Section 4 needs adoption for liveness

    baseline = ProtocolConfig(variant=ProtocolVariant.DIEMBFT)
    assert not baseline.uses_fallback
    assert not baseline.strict_round_chaining
    assert baseline.commit_depth == 3

    quadratic = ProtocolConfig(variant=ProtocolVariant.ALWAYS_FALLBACK)
    assert quadratic.uses_fallback


def test_adoption_override():
    config = ProtocolConfig(fallback_adoption=True)
    assert config.adoption_enabled
    config = ProtocolConfig(
        variant=ProtocolVariant.FALLBACK_2CHAIN, fallback_adoption=False
    )
    assert not config.adoption_enabled


def test_timeout_backoff():
    config = ProtocolConfig(round_timeout=2.0, timeout_multiplier=2.0)
    assert config.timeout_for_view(0) == 2.0
    assert config.timeout_for_view(2) == 8.0
    flat = ProtocolConfig(round_timeout=2.0)
    assert flat.timeout_for_view(5) == 2.0
