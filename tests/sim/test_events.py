"""Unit tests for the event queue."""

from repro.sim.events import EventQueue, describe_event

import pytest


def test_events_pop_in_time_order():
    queue = EventQueue()
    fired = []
    queue.push(3.0, lambda: fired.append("c"))
    queue.push(1.0, lambda: fired.append("a"))
    queue.push(2.0, lambda: fired.append("b"))
    while (event := queue.pop()) is not None:
        event.fire()
    assert fired == ["a", "b", "c"]


def test_ties_break_by_insertion_order():
    queue = EventQueue()
    fired = []
    for name in ["first", "second", "third"]:
        queue.push(5.0, lambda name=name: fired.append(name))
    while (event := queue.pop()) is not None:
        event.fire()
    assert fired == ["first", "second", "third"]


def test_cancelled_events_are_skipped():
    queue = EventQueue()
    fired = []
    keep = queue.push(1.0, lambda: fired.append("keep"))
    drop = queue.push(0.5, lambda: fired.append("drop"))
    drop.cancel()
    event = queue.pop()
    assert event is keep
    event.fire()
    assert fired == ["keep"]
    assert queue.pop() is None


def test_len_ignores_cancelled():
    queue = EventQueue()
    first = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    assert len(queue) == 2
    first.cancel()
    assert len(queue) == 1


def test_peek_time_skips_cancelled():
    queue = EventQueue()
    early = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    assert queue.peek_time() == 1.0
    early.cancel()
    assert queue.peek_time() == 2.0


def test_negative_time_rejected():
    queue = EventQueue()
    with pytest.raises(ValueError):
        queue.push(-1.0, lambda: None)


def test_clear_empties_queue():
    queue = EventQueue()
    queue.push(1.0, lambda: None)
    queue.clear()
    assert queue.pop() is None


def test_describe_event_fields():
    queue = EventQueue()
    event = queue.push(4.0, lambda: None, label="hello")
    description = describe_event(event)
    assert description == {"time": 4.0, "seq": 0, "label": "hello"}


def test_cancelled_event_does_not_fire():
    queue = EventQueue()
    fired = []
    event = queue.push(1.0, lambda: fired.append(1))
    event.cancel()
    event.fire()
    assert fired == []


def test_len_is_live_counter_not_a_scan():
    """len() reads a counter; it must stay exact through push/cancel/pop/clear."""
    queue = EventQueue()
    events = [queue.push(float(i), lambda: None) for i in range(10)]
    assert len(queue) == 10
    events[3].cancel()
    events[3].cancel()  # double-cancel must not double-decrement
    assert len(queue) == 9
    assert queue.pop() is events[0]
    assert len(queue) == 8
    queue.clear()
    assert len(queue) == 0
    # Cancelling an already-cleared event must not drive the counter negative.
    events[5].cancel()
    queue.push(1.0, lambda: None)
    assert len(queue) == 1


def test_cancel_after_pop_does_not_corrupt_len():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    assert queue.pop() is event
    event.cancel()  # already off the heap; len counts only the remaining one
    assert len(queue) == 1


def test_fired_flag_set_by_fire():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    assert not event.fired
    event.fire()
    assert event.fired


def test_fired_flag_set_even_when_cancelled():
    """fire() marks the event spent whether or not the action ran."""
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    event.cancel()
    event.fire()
    assert event.fired
