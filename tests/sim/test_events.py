"""Unit tests for the event queue."""

from repro.sim.events import EventQueue, describe_event

import pytest


def test_events_pop_in_time_order():
    queue = EventQueue()
    fired = []
    queue.push(3.0, lambda: fired.append("c"))
    queue.push(1.0, lambda: fired.append("a"))
    queue.push(2.0, lambda: fired.append("b"))
    while (event := queue.pop()) is not None:
        event.fire()
    assert fired == ["a", "b", "c"]


def test_ties_break_by_insertion_order():
    queue = EventQueue()
    fired = []
    for name in ["first", "second", "third"]:
        queue.push(5.0, lambda name=name: fired.append(name))
    while (event := queue.pop()) is not None:
        event.fire()
    assert fired == ["first", "second", "third"]


def test_cancelled_events_are_skipped():
    queue = EventQueue()
    fired = []
    keep = queue.push(1.0, lambda: fired.append("keep"))
    drop = queue.push(0.5, lambda: fired.append("drop"))
    drop.cancel()
    event = queue.pop()
    assert event is keep
    event.fire()
    assert fired == ["keep"]
    assert queue.pop() is None


def test_len_ignores_cancelled():
    queue = EventQueue()
    first = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    assert len(queue) == 2
    first.cancel()
    assert len(queue) == 1


def test_peek_time_skips_cancelled():
    queue = EventQueue()
    early = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    assert queue.peek_time() == 1.0
    early.cancel()
    assert queue.peek_time() == 2.0


def test_negative_time_rejected():
    queue = EventQueue()
    with pytest.raises(ValueError):
        queue.push(-1.0, lambda: None)


def test_clear_empties_queue():
    queue = EventQueue()
    queue.push(1.0, lambda: None)
    queue.clear()
    assert queue.pop() is None


def test_describe_event_fields():
    queue = EventQueue()
    event = queue.push(4.0, lambda: None, label="hello")
    description = describe_event(event)
    assert description == {"time": 4.0, "seq": 0, "label": "hello"}


def test_cancelled_event_does_not_fire():
    queue = EventQueue()
    fired = []
    event = queue.push(1.0, lambda: fired.append(1))
    event.cancel()
    event.fire()
    assert fired == []
