"""Unit tests for the Process actor base class."""

from repro.sim.process import NullProcess, Process, process_name
from repro.sim.scheduler import Scheduler


class Recorder(Process):
    def __init__(self, process_id, scheduler):
        super().__init__(process_id, scheduler)
        self.messages = []
        self.timers = []

    def on_message(self, sender, message):
        self.messages.append((sender, message))

    def on_timer(self, name):
        self.timers.append((name, self.now))


def test_deliver_invokes_on_message():
    scheduler = Scheduler(seed=1)
    proc = Recorder(0, scheduler)
    proc.deliver(3, "hello")
    assert proc.messages == [(3, "hello")]


def test_crashed_process_ignores_messages_and_timers():
    scheduler = Scheduler(seed=1)
    proc = Recorder(0, scheduler)
    proc.set_timer("tick", 1.0)
    proc.crash()
    proc.deliver(1, "x")
    scheduler.run()
    assert proc.messages == []
    assert proc.timers == []


def test_named_timer_fires_once():
    scheduler = Scheduler(seed=1)
    proc = Recorder(0, scheduler)
    proc.set_timer("round", 2.0)
    scheduler.run()
    assert proc.timers == [("round", 2.0)]
    assert not proc.timer_active("round")


def test_rearming_timer_replaces_previous():
    scheduler = Scheduler(seed=1)
    proc = Recorder(0, scheduler)
    proc.set_timer("round", 2.0)
    proc.set_timer("round", 5.0)  # re-arm: old timer must not fire
    scheduler.run()
    assert proc.timers == [("round", 5.0)]


def test_cancel_timer():
    scheduler = Scheduler(seed=1)
    proc = Recorder(0, scheduler)
    proc.set_timer("round", 2.0)
    proc.cancel_timer("round")
    scheduler.run()
    assert proc.timers == []


def test_cancel_all_timers():
    scheduler = Scheduler(seed=1)
    proc = Recorder(0, scheduler)
    proc.set_timer("a", 1.0)
    proc.set_timer("b", 2.0)
    proc.cancel_all_timers()
    scheduler.run()
    assert proc.timers == []


def test_independent_timer_slots():
    scheduler = Scheduler(seed=1)
    proc = Recorder(0, scheduler)
    proc.set_timer("a", 1.0)
    proc.set_timer("b", 2.0)
    scheduler.run()
    assert proc.timers == [("a", 1.0), ("b", 2.0)]


def test_null_process_ignores_everything():
    scheduler = Scheduler(seed=1)
    proc = NullProcess(9, scheduler)
    proc.deliver(0, "ignored")  # must not raise


def test_process_name():
    scheduler = Scheduler(seed=1)
    assert process_name(NullProcess(4, scheduler)) == "nullprocess-4"
    assert process_name(None) == "<none>"
