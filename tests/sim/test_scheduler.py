"""Unit tests for the scheduler: clock, timers, determinism, run loop."""

import pytest

from repro.sim.scheduler import Scheduler, SimulationError


def test_clock_advances_to_event_times():
    scheduler = Scheduler(seed=1)
    times = []
    scheduler.call_at(2.5, lambda: times.append(scheduler.now))
    scheduler.call_at(1.5, lambda: times.append(scheduler.now))
    scheduler.run()
    assert times == [1.5, 2.5]
    assert scheduler.now == 2.5


def test_call_after_is_relative():
    scheduler = Scheduler(seed=1)
    seen = []
    scheduler.call_at(10.0, lambda: scheduler.call_after(5.0, lambda: seen.append(scheduler.now)))
    scheduler.run()
    assert seen == [15.0]


def test_cannot_schedule_in_the_past():
    scheduler = Scheduler(seed=1)
    scheduler.call_at(10.0, lambda: None)
    scheduler.run()
    with pytest.raises(SimulationError):
        scheduler.call_at(5.0, lambda: None)


def test_negative_delay_rejected():
    scheduler = Scheduler(seed=1)
    with pytest.raises(SimulationError):
        scheduler.call_after(-1.0, lambda: None)


def test_run_until_bound_stops_clock_at_bound():
    scheduler = Scheduler(seed=1)
    fired = []
    scheduler.call_at(1.0, lambda: fired.append(1))
    scheduler.call_at(100.0, lambda: fired.append(2))
    end = scheduler.run(until=10.0)
    assert fired == [1]
    assert end == 10.0
    assert scheduler.pending_events == 1


def test_run_max_events():
    scheduler = Scheduler(seed=1)
    fired = []
    for i in range(10):
        scheduler.call_at(float(i + 1), lambda i=i: fired.append(i))
    scheduler.run(max_events=3)
    assert fired == [0, 1, 2]


def test_stop_when_predicate():
    scheduler = Scheduler(seed=1)
    fired = []
    for i in range(200):
        scheduler.call_at(float(i + 1), lambda i=i: fired.append(i))
    scheduler.run(stop_when=lambda: len(fired) >= 64, check_every=64)
    assert len(fired) == 64


def test_timer_cancellation():
    scheduler = Scheduler(seed=1)
    fired = []
    timer = scheduler.set_timer(5.0, lambda: fired.append("t"))
    assert timer.active
    timer.cancel()
    scheduler.run()
    assert fired == []
    assert not timer.active


def test_stop_requested_inside_event():
    scheduler = Scheduler(seed=1)
    fired = []
    scheduler.call_at(1.0, lambda: (fired.append(1), scheduler.stop()))
    scheduler.call_at(2.0, lambda: fired.append(2))
    scheduler.run()
    assert fired == [1]


def test_determinism_same_seed_same_draws():
    draws_a = Scheduler(seed=42).rng.random()
    draws_b = Scheduler(seed=42).rng.random()
    assert draws_a == draws_b


def test_child_rng_independent_and_deterministic():
    scheduler_a = Scheduler(seed=42)
    scheduler_b = Scheduler(seed=42)
    assert scheduler_a.child_rng("net").random() == scheduler_b.child_rng("net").random()
    assert scheduler_a.child_rng("net").random() != scheduler_a.child_rng("coin").random()


def test_events_processed_counter():
    scheduler = Scheduler(seed=1)
    for i in range(5):
        scheduler.call_at(float(i), lambda: None)
    scheduler.run()
    assert scheduler.events_processed == 5


def test_drain_returns_count():
    scheduler = Scheduler(seed=1)
    for i in range(7):
        scheduler.call_at(float(i), lambda: None)
    assert scheduler.drain() == 7


def test_timer_inactive_after_firing():
    """Regression: a fired timer must not report active=True."""
    scheduler = Scheduler(seed=1)
    fired = []
    timer = scheduler.set_timer(5.0, lambda: fired.append("t"))
    assert timer.active
    scheduler.run()
    assert fired == ["t"]
    assert not timer.active


def test_timer_active_until_deadline():
    scheduler = Scheduler(seed=1)
    states = []
    timer = scheduler.set_timer(5.0, lambda: None)
    scheduler.call_at(2.0, lambda: states.append(timer.active))
    scheduler.call_at(6.0, lambda: states.append(timer.active))
    scheduler.run()
    assert states == [True, False]
