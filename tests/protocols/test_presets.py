"""Tests for protocol presets and experiment scenarios."""

import pytest

from repro.core.config import ProtocolVariant
from repro.experiments.scenarios import run_async_attack, run_sync, table1_cell
from repro.protocols import PROTOCOLS, preset


def test_all_four_presets_exist():
    assert set(PROTOCOLS) == {
        "fallback-3chain",
        "fallback-2chain",
        "diembft",
        "always-fallback",
    }


def test_preset_configs():
    assert preset("fallback-3chain").config(7).variant == ProtocolVariant.FALLBACK_3CHAIN
    assert preset("fallback-2chain").config(7).variant == ProtocolVariant.FALLBACK_2CHAIN
    assert preset("diembft").config(7).variant == ProtocolVariant.DIEMBFT
    assert preset("always-fallback").config(7).variant == ProtocolVariant.ALWAYS_FALLBACK


def test_preset_config_overrides():
    config = preset("fallback-3chain").config(7, round_timeout=9.0)
    assert config.round_timeout == 9.0
    assert config.n == 7


def test_unknown_preset():
    with pytest.raises(KeyError):
        preset("pbft")


def test_run_sync_scenario():
    result = run_sync("fallback-3chain", n=4, seed=1, target_commits=10)
    assert result.live
    assert result.network == "sync"
    assert result.fallbacks == 0
    assert result.messages_per_decision is not None


def test_run_async_attack_scenario():
    result = run_async_attack("fallback-3chain", n=4, seed=1, target_commits=4,
                              until=30_000)
    assert result.live
    assert result.fallbacks >= 1


def test_diembft_async_cell_reports_not_live():
    result = run_async_attack("diembft", n=4, seed=1, target_commits=4, until=1_500)
    assert not result.live
    assert result.messages_per_decision is None


def test_table1_cell_dispatch():
    sync = table1_cell("fallback-3chain", 4, "sync", seed=2)
    assert sync.network == "sync"
    with pytest.raises(ValueError):
        table1_cell("fallback-3chain", 4, "weird")
