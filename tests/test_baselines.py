"""Tests for the baselines package."""

from repro.baselines import AlwaysFallbackReplica, always_fallback_cluster
from repro.core.config import ProtocolConfig, ProtocolVariant
from repro.net.conditions import AsynchronousDelay


def test_always_fallback_cluster_builds_and_runs():
    cluster = always_fallback_cluster(n=4, seed=3)
    result = cluster.run_until_commits(6, until=30_000)
    assert result.decisions >= 6
    assert cluster.metrics.fallback_count() >= 3  # one fallback per decision wave
    assert cluster.metrics.phase_messages()["steady"] == 0  # no fast path


def test_always_fallback_replica_forces_variant():
    from repro.core.context import SharedSetup
    from repro.net.network import Network
    from repro.sim.scheduler import Scheduler

    config = ProtocolConfig(n=4)  # deliberately the wrong variant
    scheduler = Scheduler(seed=1)
    network = Network(scheduler)
    setup = SharedSetup.deal(config)
    replica = AlwaysFallbackReplica(
        0, config, setup.context_for(0), network, scheduler
    )
    assert replica.config.variant == ProtocolVariant.ALWAYS_FALLBACK
    assert replica.fallback is not None


def test_always_fallback_live_under_asynchrony():
    cluster = always_fallback_cluster(
        n=4, seed=5,
        delay_model=AsynchronousDelay(base_delay=1.0, tail_scale=4.0, max_delay=40.0),
    )
    result = cluster.run_until_commits(5, until=60_000)
    assert result.decisions >= 5


def test_config_overrides_pass_through():
    cluster = always_fallback_cluster(n=7, seed=1, batch_size=3)
    assert cluster.config.batch_size == 3
    assert cluster.config.n == 7
