"""Tests for bursty and skewed workloads."""

import pytest

from repro.mempool.mempool import Mempool
from repro.sim.scheduler import Scheduler
from repro.workloads.bursty import BurstyWorkload, SkewedKeyWorkload


def pools(n=2):
    return [Mempool(batch_size=10) for _ in range(n)]


def test_bursts_arrive_on_schedule():
    scheduler = Scheduler(seed=1)
    workload = BurstyWorkload(pools(), burst_size=5, period=10.0, bursts=3)
    workload.start(scheduler)
    assert len(workload.submitted) == 5  # first burst at t=0
    scheduler.run(until=10.5)
    assert len(workload.submitted) == 10
    scheduler.run(until=100.0)
    assert len(workload.submitted) == 15  # capped at `bursts`


def test_burst_timestamps_cluster():
    scheduler = Scheduler(seed=1)
    workload = BurstyWorkload(pools(), burst_size=4, period=7.0, bursts=2)
    workload.start(scheduler)
    scheduler.run(until=20.0)
    times = sorted({tx.submitted_at for tx in workload.submitted})
    assert times == [0.0, 7.0]


def test_burst_timing_is_deterministic():
    """Two identical runs produce identical ids AND identical timestamps."""

    def run():
        scheduler = Scheduler(seed=5)
        workload = BurstyWorkload(pools(), burst_size=6, period=3.5, bursts=4)
        workload.start(scheduler)
        scheduler.run(until=50.0)
        return [(tx.tx_id, tx.submitted_at) for tx in workload.submitted]

    assert run() == run()


def test_bursty_validation():
    with pytest.raises(ValueError):
        BurstyWorkload(pools(), burst_size=0)
    with pytest.raises(ValueError):
        BurstyWorkload(pools(), period=0.0)
    with pytest.raises(ValueError):
        BurstyWorkload(pools(), bursts=0)


def test_skewed_keys_are_skewed():
    workload = SkewedKeyWorkload(pools(), count=2000, keys=32, seed=3)
    workload.start(Scheduler(seed=1))
    counts = {}
    for tx in workload.submitted:
        key = tx.payload.split()[1]
        counts[key] = counts.get(key, 0) + 1
    ranked = sorted(counts.values(), reverse=True)
    # Head keys dominate tail keys by a wide margin (Zipf-ish).
    assert ranked[0] > 4 * ranked[-1]
    assert len(counts) > 10  # but the tail is still exercised


def test_skewed_workload_is_deterministic():
    workload_a = SkewedKeyWorkload(pools(), count=50, seed=9)
    workload_a.start(Scheduler(seed=1))
    workload_b = SkewedKeyWorkload(pools(), count=50, seed=9)
    workload_b.start(Scheduler(seed=1))
    assert [tx.payload for tx in workload_a.submitted] == [
        tx.payload for tx in workload_b.submitted
    ]


def test_skewed_payloads_are_kv_commands():
    workload = SkewedKeyWorkload(pools(), count=5, seed=1)
    workload.start(Scheduler(seed=1))
    assert all(tx.payload.startswith("set key-") for tx in workload.submitted)
