"""Tests for workload generators."""

import pytest

from repro.mempool.mempool import Mempool
from repro.sim.scheduler import Scheduler
from repro.workloads.generator import ClosedLoopWorkload, OpenLoopWorkload, Workload


def pools(n=3, batch=10):
    return [Mempool(batch_size=batch) for _ in range(n)]


def test_preload_workload_fills_all_mempools():
    mempools = pools()
    workload = Workload(mempools, count=10)
    workload.start(Scheduler(seed=1))
    for pool in mempools:
        assert len(pool) == 10
    assert len(workload.submitted) == 10


def test_payloads_are_kv_commands_by_default():
    mempools = pools()
    workload = Workload(mempools, count=1)
    workload.start(Scheduler(seed=1))
    assert workload.submitted[0].payload.startswith("set key-")


def test_custom_payload_fn():
    mempools = pools()
    workload = Workload(mempools, count=2, payload_fn=lambda c, i: f"op {c} {i}")
    workload.start(Scheduler(seed=1))
    assert workload.submitted[1].payload == "op 0 1"


def test_open_loop_injects_at_rate():
    mempools = pools()
    scheduler = Scheduler(seed=1)
    workload = OpenLoopWorkload(mempools, rate=10.0)  # one every 0.1s
    workload.start(scheduler)
    scheduler.run(until=1.0)
    # ~11 injections in [0, 1.0] at 10/s starting at t=0.
    assert 9 <= len(workload.submitted) <= 12
    assert all(tx.submitted_at <= 1.0 for tx in workload.submitted)


def test_open_loop_max_count():
    mempools = pools()
    scheduler = Scheduler(seed=1)
    workload = OpenLoopWorkload(mempools, rate=1000.0, max_count=5)
    workload.start(scheduler)
    scheduler.run(until=10.0)
    assert len(workload.submitted) == 5


def test_open_loop_rejects_bad_rate():
    with pytest.raises(ValueError):
        OpenLoopWorkload(pools(), rate=0.0)


def test_closed_loop_replenishes_on_commit():
    mempools = pools()
    scheduler = Scheduler(seed=1)
    workload = ClosedLoopWorkload(mempools, outstanding=3)
    workload.start(scheduler)
    assert len(workload.submitted) == 3
    workload.notify_committed(workload.submitted[0])
    assert len(workload.submitted) == 4
    # Commits from other clients are ignored.
    other = workload.submitted[0]
    foreign = type(other)(tx_id="x", client=99, payload="", payload_size=1)
    workload.notify_committed(foreign)
    assert len(workload.submitted) == 4
