"""Crash-chaos regression: SIGKILL between a vote send and its journal write.

The scenario the write-ahead discipline exists for: a replica decides to
vote, and the process dies before the journal records that decision.  If
the vote had already reached the wire (the pre-outbox bug), the restarted
replica — whose journal still says ``r_vote == 1`` — would happily vote for
a *different* round-2 block, and peers would hold two contradictory round-2
votes from the same replica: equivocation, QC forgery material.

The victim process (:mod:`tests.storage._chaos_victim`) runs replica 1
with a journal that SIGKILLs the process immediately before the write
covering its round-2 vote, and fsyncs every vote that actually reaches the
wire to an egress log.  This test then restarts the replica on the same
journal file, drives it to vote for a conflicting round-2 block, and
asserts that across both incarnations no round ever saw two distinct
voted block ids.
"""

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import repro
from repro.runtime.cluster import ClusterBuilder
from repro.storage import DurableReplica, FileSafetyJournal
from repro.storage.durable import SendOutbox
from repro.types.blocks import Block
from repro.types.certificates import genesis_qc
from repro.types.messages import Proposal, Vote
from repro.types.transactions import Batch, Transaction

from tests.core.conftest import make_real_qc

REPO_ROOT = Path(repro.__file__).resolve().parent.parent.parent
VICTIM = Path(__file__).parent / "_chaos_victim.py"


def _run_victim(journal_path, egress_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (
            str(REPO_ROOT / "src"),
            str(REPO_ROOT),
            env.get("PYTHONPATH", ""),
        ) if p
    )
    return subprocess.run(
        [sys.executable, str(VICTIM), str(journal_path), str(egress_path)],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(REPO_ROOT),
        timeout=120,
    )


def _read_egress(egress_path):
    votes_by_round = {}
    for line in egress_path.read_text(encoding="utf-8").splitlines():
        record = json.loads(line)
        votes_by_round.setdefault(record["round"], set()).add(record["block_id"])
    return votes_by_round


def test_kill_between_vote_and_journal_write_cannot_equivocate(tmp_path):
    journal_path = tmp_path / "replica1.journal"
    egress_path = tmp_path / "egress.log"

    # ------------------------------------------------------------------
    # Incarnation 1: killed in the window between the round-2 vote
    # decision and its journal write.
    # ------------------------------------------------------------------
    result = _run_victim(journal_path, egress_path)
    assert result.returncode == -signal.SIGKILL, (
        result.returncode,
        result.stdout,
        result.stderr,
    )
    assert "UNREACHABLE" not in result.stdout

    # The wire saw the round-1 vote and *nothing* for round 2: the outbox
    # held the round-2 vote back until the journal write that never landed.
    egressed = _read_egress(egress_path)
    assert set(egressed) == {1}, egressed

    # The journal's last intact record agrees with the wire: r_vote == 1.
    journal = FileSafetyJournal(journal_path)
    snapshot = journal.read()
    journal.close()
    assert snapshot is not None and snapshot.r_vote == 1

    # ------------------------------------------------------------------
    # Incarnation 2: restart on the same journal, vote for a *different*
    # round-2 block.  Legal — the replica never promised a2 to anyone.
    # ------------------------------------------------------------------
    def replica_one(*args, **kwargs):
        return DurableReplica(
            *args, journal=FileSafetyJournal(journal_path, fsync=True), **kwargs
        )

    builder = ClusterBuilder(n=4, seed=1).with_preload(50)
    builder.with_byzantine(1, replica_one)
    cluster = builder.build()  # not started: messages are hand-delivered
    target = cluster.replicas[1]
    assert target.safety.r_vote == 1  # restored, not reset

    restart_votes = {}

    def watch(sender, receiver, message, time, delay):
        if sender == 1 and isinstance(message, Vote):
            restart_votes.setdefault(message.round, set()).add(message.block_id)

    cluster.network.add_send_hook(watch)

    # Re-deliver the round-1 proposal: restocks the volatile block store,
    # but the restored r_vote forbids a second round-1 vote.  (No drain:
    # the outbox flushes — and the hook fires — synchronously inside
    # deliver, and draining would run the round-timer cascade forever.)
    a1 = Block(qc=genesis_qc(target.store.genesis.id), round=1, view=0, author=0)
    target.deliver(0, Proposal(a1))
    assert 1 not in restart_votes

    # A conflicting round-2 proposal (same parent QC, different batch, so a
    # different content-hash id than the a2 the first incarnation saw).
    leader2 = cluster.schedule.leader(2)
    qc1 = make_real_qc(cluster.setup, a1)
    a2 = Block(qc=qc1, round=2, view=0, author=leader2)
    b2 = Block(
        qc=qc1,
        round=2,
        view=0,
        author=leader2,
        batch=Batch.of([Transaction(tx_id="rival-tx")]),
    )
    assert b2.id != a2.id
    target.deliver(leader2, Proposal(b2))
    assert restart_votes.get(2) == {b2.id}

    # ------------------------------------------------------------------
    # The invariant: across both incarnations, every round has at most one
    # distinct voted block id.  Pre-fix, the a2 vote escaped before the
    # kill and this union would hold {a2.id, b2.id} at round 2.
    # ------------------------------------------------------------------
    combined = dict(egressed)
    for round_number, ids in restart_votes.items():
        combined.setdefault(round_number, set()).update(ids)
    for round_number, ids in combined.items():
        assert len(ids) == 1, f"equivocation at round {round_number}: {ids}"
    assert a2.id not in combined[2]


# ----------------------------------------------------------------------
# SendOutbox unit behaviour
# ----------------------------------------------------------------------
class _RecordingNetwork:
    def __init__(self):
        self.calls = []
        self.n = 4

    def send(self, sender, receiver, message):
        self.calls.append(("send", sender, receiver, message))

    def multicast(self, sender, message, include_self=True):
        self.calls.append(("multicast", sender, message, include_self))


def test_outbox_buffers_until_flush_and_preserves_order():
    inner = _RecordingNetwork()
    outbox = SendOutbox(inner)
    outbox.send(1, 0, "vote")
    outbox.multicast(1, "timeout", include_self=False)
    outbox.send(1, 2, "ack")
    assert inner.calls == []
    assert len(outbox) == 3
    outbox.flush()
    assert inner.calls == [
        ("send", 1, 0, "vote"),
        ("multicast", 1, "timeout", False),
        ("send", 1, 2, "ack"),
    ]
    assert len(outbox) == 0
    outbox.flush()  # idempotent on empty
    assert len(inner.calls) == 3


def test_outbox_discard_drops_pending_egress():
    inner = _RecordingNetwork()
    outbox = SendOutbox(inner)
    outbox.send(1, 0, "vote")
    outbox.discard()
    outbox.flush()
    assert inner.calls == []


def test_outbox_passes_through_non_send_attributes():
    inner = _RecordingNetwork()
    outbox = SendOutbox(inner)
    assert outbox.n == 4
