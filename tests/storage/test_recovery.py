"""Tests for the safety journal and crash recovery."""

import pytest

from repro.analysis.safety import assert_cluster_safety
from repro.runtime.cluster import ClusterBuilder
from repro.storage import (
    DurableReplica,
    RecoveringReplica,
    SafetyJournal,
    SafetySnapshot,
)
from repro.types.certificates import Rank

# ----------------------------------------------------------------------
# Journal unit tests
# ----------------------------------------------------------------------
def test_journal_roundtrip():
    journal = SafetyJournal()
    assert journal.empty
    assert journal.read() is None
    snapshot = SafetySnapshot(r_vote=5, rank_lock=Rank(0, False, 3), v_cur=1)
    journal.write(snapshot)
    assert not journal.empty
    restored = journal.read()
    assert restored.r_vote == 5
    assert restored.rank_lock == Rank(0, False, 3)
    assert journal.writes == 1


def test_journal_snapshots_are_isolated():
    journal = SafetyJournal()
    snapshot = SafetySnapshot(proposed={(0, 1)})
    journal.write(snapshot)
    snapshot.proposed.add((0, 2))  # mutating the original must not leak in
    assert journal.read().proposed == {(0, 1)}
    restored = journal.read()
    restored.proposed.add((0, 9))  # nor mutating a read copy
    assert journal.read().proposed == {(0, 1)}


# ----------------------------------------------------------------------
# Durable replica
# ----------------------------------------------------------------------
def durable_factory(**extra):
    def factory(*args, **kwargs):
        return DurableReplica(*args, **kwargs, **extra)

    return factory


def recovering_factory(**extra):
    def factory(*args, **kwargs):
        return RecoveringReplica(*args, **kwargs, **extra)

    return factory


def build(replica0_factory, n=4, seed=81, **builder_kwargs):
    builder = ClusterBuilder(n=n, seed=seed)
    builder.with_byzantine(0, replica0_factory)  # reuse the slot mechanism
    return builder.build()


def test_durable_replica_journals_votes():
    cluster = build(durable_factory())
    cluster.run_until_commits(10, until=5_000)
    replica = cluster.replicas[0]
    snapshot = replica.journal.read()
    assert snapshot.r_vote == replica.safety.r_vote
    assert snapshot.rank_lock == replica.safety.rank_lock
    assert replica.journal.writes > 10


def test_recovering_replica_rejoins_and_catches_up():
    cluster = build(recovering_factory(crash_at=30.0, recover_at=60.0))
    cluster.run(until=300.0)
    replica = cluster.replicas[0]
    assert replica.recovered
    assert not replica.crashed
    # It rebuilt the committed chain from peers and kept committing.
    assert replica.ledger.height >= 10
    others = [cluster.replicas[i] for i in (1, 2, 3)]
    assert_cluster_safety(others + [replica])


def test_recovered_replica_does_not_double_vote():
    """After recovery, r_vote/rank_lock come from the journal, so the
    replica never votes for a round it voted for before the crash."""
    cluster = build(recovering_factory(crash_at=30.0, recover_at=31.0))
    cluster.run(until=200.0)
    replica = cluster.replicas[0]
    # The run finished; verify monotone behaviour via the journal.
    final = replica.journal.read()
    assert final.r_vote == replica.safety.r_vote
    assert_cluster_safety([cluster.replicas[i] for i in range(4)])


def test_recovered_replica_does_not_equivocate_proposals():
    """Replica 0 leads rounds 1-4 and 17-20; crash/recover in between must
    not produce two different proposals for any (view, round)."""
    proposals = {}

    cluster = build(recovering_factory(crash_at=3.0, recover_at=8.0))

    def watch(sender, receiver, message, time, delay):
        if sender == 0 and type(message).__name__ == "Proposal":
            block = message.block
            key = (block.view, block.round)
            proposals.setdefault(key, set()).add(block.id)

    cluster.network.add_send_hook(watch)
    cluster.run(until=200.0)
    assert cluster.replicas[0].recovered
    for key, ids in proposals.items():
        assert len(ids) == 1, f"equivocation at {key}"


def test_recovery_during_fallback_restores_vote_maps():
    from repro.experiments.scenarios import leader_attack_factory

    builder = (
        ClusterBuilder(n=4, seed=83)
        .with_byzantine(2, recovering_factory(crash_at=40.0, recover_at=90.0))
        .with_delay_model_factory(leader_attack_factory())
    )
    cluster = builder.build()
    cluster.run(until=2_000.0)
    replica = cluster.replicas[2]
    assert replica.recovered
    others = [cluster.replicas[i] for i in (0, 1, 3)]
    assert_cluster_safety(others + [replica])
    assert cluster.metrics.decisions() > 0


def test_recover_at_validation():
    with pytest.raises(ValueError):
        build(recovering_factory(crash_at=50.0, recover_at=10.0))


def test_state_machine_replays_to_same_state():
    from repro.ledger.ledger import KVStateMachine

    builder = (
        ClusterBuilder(n=4, seed=85)
        .with_state_machine(KVStateMachine)
        .with_byzantine(1, recovering_factory(crash_at=20.0, recover_at=50.0))
    )
    cluster = builder.build()
    cluster.run(until=300.0)
    recovered = cluster.replicas[1]
    reference = cluster.replicas[0]
    shared_height = min(recovered.ledger.height, reference.ledger.height)
    assert shared_height > 5
    # Replayed KV state agrees on the shared committed prefix: compare via
    # replaying reference's prefix.
    replay = KVStateMachine()
    for record in reference.ledger.records[:shared_height]:
        for tx in record.block.batch:
            replay.apply(tx)
    mine = KVStateMachine()
    for record in recovered.ledger.records[:shared_height]:
        for tx in record.block.batch:
            mine.apply(tx)
    assert mine.data == replay.data
