"""Victim process for the crash-chaos regression test.

Runs replica 1 as a :class:`DurableReplica` whose journal SIGKILLs the
process *immediately before* the write that would cover its round-2 vote —
the exact window between a vote decision and its journal record.  Every
vote that actually reaches the wire is appended (fsynced) to an egress log
so the parent test can compare what peers saw against what the journal
remembers.

Usage: ``python _chaos_victim.py <journal-path> <egress-log-path>``
(with ``src`` and the repo root on ``PYTHONPATH``).  Exits via SIGKILL if
the write-ahead discipline holds; exits 3 if it survives the kill window.
"""

import json
import os
import signal
import sys

from repro.runtime.cluster import ClusterBuilder
from repro.storage import DurableReplica, FileSafetyJournal
from repro.types.blocks import Block
from repro.types.certificates import genesis_qc
from repro.types.messages import Proposal

from tests.core.conftest import make_real_qc

JOURNAL_PATH, EGRESS_PATH = sys.argv[1], sys.argv[2]


class KillerJournal(FileSafetyJournal):
    """SIGKILLs the process just before the record covering round 2."""

    def write(self, snapshot):
        if snapshot.r_vote >= 2:
            os.kill(os.getpid(), signal.SIGKILL)
        super().write(snapshot)


def replica_one(*args, **kwargs):
    journal = KillerJournal(JOURNAL_PATH, fsync=True)
    return DurableReplica(*args, journal=journal, **kwargs)


builder = ClusterBuilder(n=4, seed=1).with_preload(50)
builder.with_byzantine(1, replica_one)  # reuse the slot mechanism
cluster = builder.build()  # not started: messages are hand-delivered

egress = open(EGRESS_PATH, "a", encoding="utf-8")


def watch(sender, receiver, message, time, delay):
    if sender == 1 and type(message).__name__ == "Vote":
        record = {"round": message.round, "block_id": message.block_id}
        egress.write(json.dumps(record) + "\n")
        egress.flush()
        os.fsync(egress.fileno())


cluster.network.add_send_hook(watch)

target = cluster.replicas[1]
a1 = Block(qc=genesis_qc(target.store.genesis.id), round=1, view=0, author=0)
target.deliver(0, Proposal(a1))
assert target.safety.r_vote == 1, "round-1 vote did not happen"

leader2 = cluster.schedule.leader(2)
a2 = Block(qc=make_real_qc(cluster.setup, a1), round=2, view=0, author=leader2)
# The handler votes for a2 (buffered), then _persist hits the killer
# journal: SIGKILL lands before the write — and, under the write-ahead
# outbox, before the vote could reach the wire.
target.deliver(leader2, Proposal(a2))

print("UNREACHABLE: survived the kill window", flush=True)
sys.exit(3)
