"""FileSafetyJournal: crash-safe persistence for the multi-process runtime.

The file journal must survive ``kill -9`` at any instant — including mid-
append.  These tests exercise the CRC framing, corrupt/truncated-tail
fallback, atomic compaction, and the restore-on-construct path of
:class:`~repro.storage.durable.DurableReplica`.
"""

import json
import zlib

import pytest

from repro.runtime.cluster import ClusterBuilder
from repro.storage import DurableReplica, FileSafetyJournal, SafetyJournal
from repro.storage.journal import (
    SafetySnapshot,
    snapshot_from_dict,
    snapshot_to_dict,
)
from repro.types.certificates import Rank


def _snapshot(r_vote=5, v_cur=2):
    return SafetySnapshot(
        r_vote=r_vote,
        rank_lock=Rank(1, True, 3),
        v_cur=v_cur,
        fallback_mode=True,
        entered_view=2,
        fallbacks_entered=2,
        fallback_view=2,
        fallback_r_vote={0: 1, 3: 2},
        fallback_h_vote={1: 4},
        proposed={(0, 1), (2, 7)},
        fallback_proposed={2: 3},
    )


def test_snapshot_dict_roundtrip_preserves_every_field():
    original = _snapshot()
    restored = snapshot_from_dict(json.loads(json.dumps(snapshot_to_dict(original))))
    assert restored == original


def test_file_journal_roundtrip_across_reopen(tmp_path):
    path = tmp_path / "journal.log"
    journal = FileSafetyJournal(path)
    assert journal.empty and journal.read() is None
    journal.write(_snapshot(r_vote=5))
    journal.write(_snapshot(r_vote=9, v_cur=3))
    journal.close()

    reopened = FileSafetyJournal(path)
    assert not reopened.empty
    restored = reopened.read()
    assert restored.r_vote == 9 and restored.v_cur == 3
    assert restored == _snapshot(r_vote=9, v_cur=3)
    assert not reopened.recovered_from_corruption
    reopened.close()


def test_file_journal_snapshots_are_isolated(tmp_path):
    journal = FileSafetyJournal(tmp_path / "journal.log")
    snapshot = SafetySnapshot(proposed={(0, 1)})
    journal.write(snapshot)
    snapshot.proposed.add((0, 2))  # mutating the original must not leak in
    assert journal.read().proposed == {(0, 1)}
    journal.read().proposed.add((0, 9))  # nor mutating a read copy
    assert journal.read().proposed == {(0, 1)}
    journal.close()


def test_truncated_tail_falls_back_to_last_good_record(tmp_path):
    """kill -9 mid-append leaves a partial last line; recovery must land on
    the previous intact record, not raise."""
    path = tmp_path / "journal.log"
    journal = FileSafetyJournal(path)
    journal.write(_snapshot(r_vote=4))
    journal.write(_snapshot(r_vote=8))
    journal.close()

    raw = path.read_bytes()
    path.write_bytes(raw[: len(raw) - 17])  # chop into the final record

    recovered = FileSafetyJournal(path)
    assert recovered.read().r_vote == 4
    assert recovered.recovered_from_corruption
    assert recovered.corrupt_records_dropped == 1
    recovered.close()


def test_corrupted_tail_bytes_detected_by_crc(tmp_path):
    """Garbled (not just truncated) tail: the CRC catches bit rot that is
    still valid JSON length-wise."""
    path = tmp_path / "journal.log"
    journal = FileSafetyJournal(path)
    journal.write(_snapshot(r_vote=4))
    journal.write(_snapshot(r_vote=8))
    journal.close()

    lines = path.read_bytes().splitlines(keepends=True)
    crc, body = lines[-1].split(b" ", 1)
    lines[-1] = crc + b" " + body.replace(b'"r_vote":8', b'"r_vote":9')
    path.write_bytes(b"".join(lines))

    recovered = FileSafetyJournal(path)
    assert recovered.read().r_vote == 4  # the forged 9 failed its CRC
    assert recovered.recovered_from_corruption
    recovered.close()


def test_entirely_corrupt_journal_loads_empty_not_raises(tmp_path):
    path = tmp_path / "journal.log"
    path.write_bytes(b"\x00\xff garbage\nnot a record either\n")
    journal = FileSafetyJournal(path)
    assert journal.empty and journal.read() is None
    assert journal.corrupt_records_dropped == 2
    # Nothing good to fall back to: this is a fresh start, not a recovery.
    assert not journal.recovered_from_corruption
    # And the journal is still writable.
    journal.write(_snapshot(r_vote=1))
    assert journal.read().r_vote == 1
    journal.close()


def test_valid_record_with_bad_schema_is_dropped(tmp_path):
    """A CRC-clean record whose JSON is missing fields counts as corrupt."""
    path = tmp_path / "journal.log"
    body = b'{"not": "a snapshot"}'
    path.write_bytes(f"{zlib.crc32(body):08x} ".encode() + body + b"\n")
    journal = FileSafetyJournal(path)
    assert journal.empty
    assert journal.corrupt_records_dropped == 1
    journal.close()


def test_compaction_bounds_file_and_preserves_state(tmp_path):
    path = tmp_path / "journal.log"
    journal = FileSafetyJournal(path, compact_every=10)
    for r_vote in range(1, 26):
        journal.write(_snapshot(r_vote=r_vote))
    journal.close()

    lines = [line for line in path.read_bytes().split(b"\n") if line]
    assert len(lines) <= 10  # compacted at writes 10 and 20
    assert not (path.parent / "journal.log.tmp").exists()  # atomic swap

    reopened = FileSafetyJournal(path)
    assert reopened.read().r_vote == 25
    reopened.close()


def test_compact_every_validation(tmp_path):
    with pytest.raises(ValueError):
        FileSafetyJournal(tmp_path / "j.log", compact_every=0)


# ----------------------------------------------------------------------
# DurableReplica restore-on-construct (the process-restart path)
# ----------------------------------------------------------------------
def _build_with_journal(journal):
    def factory(*args, **kwargs):
        return DurableReplica(*args, **kwargs, journal=journal)

    builder = ClusterBuilder(n=4, seed=81)
    builder.with_byzantine(0, factory)  # reuse the slot mechanism
    return builder.build()


def test_durable_replica_restores_prepopulated_journal_on_construct():
    """A non-empty journal means process restart: the new incarnation must
    adopt the persisted safety state before its first write."""
    journal = SafetyJournal()
    journal.write(_snapshot(r_vote=7, v_cur=2))
    cluster = _build_with_journal(journal)
    replica = cluster.replicas[0]
    assert replica.safety.r_vote == 7
    assert replica.safety.rank_lock == Rank(1, True, 3)
    assert replica.v_cur == 2
    assert replica.fallbacks_entered == 2
    # The restore itself was re-persisted (write-ahead from the start).
    assert journal.read().r_vote == 7


def test_durable_replica_fresh_journal_unchanged_behavior():
    journal = SafetyJournal()
    cluster = _build_with_journal(journal)
    replica = cluster.replicas[0]
    assert replica.safety.r_vote == 0 and replica.v_cur == 0
    cluster.run_until_commits(5, until=5_000)
    assert journal.read().r_vote == replica.safety.r_vote


def test_durable_replica_over_file_journal_restart_cycle(tmp_path):
    """Full cycle: run with a file journal, 'kill' the incarnation (drop
    it), restart against the same file, observe the restored vote floor."""
    path = tmp_path / "journal.log"
    first = FileSafetyJournal(path)
    cluster = _build_with_journal(first)
    cluster.run_until_commits(8, until=5_000)
    pre_crash = cluster.replicas[0].safety.r_vote
    assert pre_crash > 0
    first.close()

    second = FileSafetyJournal(path)
    assert not second.empty
    fresh_cluster = _build_with_journal(second)
    assert fresh_cluster.replicas[0].safety.r_vote == pre_crash
    second.close()
