"""Property-based codec tests: round-trip law and byte-level fuzzing.

The two invariants the transport depends on:

1. ``decode_message(encode_message(s, m)) == (s, m)`` for every encodable
   message (including optional-field shapes like :class:`FallbackProposal`
   with and without its f-TC).
2. Decoding arbitrary or corrupted bytes either succeeds or raises
   :class:`DecodeError` — never any other exception — so a Byzantine peer
   cannot crash the transport with crafted payloads.
"""

from hypothesis import given, settings, strategies as st

import pytest

from repro.client.client import ClientReply, ClientRequest
from repro.crypto.coin import CoinShare
from repro.crypto.hashing import hash_fields
from repro.crypto.threshold import ThresholdSignature, ThresholdSignatureShare
from repro.types.blocks import Block, FallbackBlock
from repro.types.certificates import CoinQC, FallbackQC, FallbackTC, QC
from repro.types.messages import (
    BlockRequest,
    BlockResponse,
    ChainRequest,
    CoinShareMessage,
    FallbackProposal,
    FallbackTCMessage,
    FallbackVote,
    PacemakerTimeout,
    Proposal,
    Vote,
)
from repro.types.transactions import Batch, Transaction
from repro.wire.codec import DecodeError, decode_message, encode_message

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
I64 = st.integers(min_value=-(2**63), max_value=2**63 - 1)
small_ints = st.integers(min_value=0, max_value=2**31)
digests = st.integers(min_value=0, max_value=2**32).map(
    lambda i: hash_fields("prop", i)
)
senders = st.integers(min_value=-(2**15), max_value=2**15 - 1)

tsigs = st.builds(
    ThresholdSignature,
    epoch=small_ints,
    tag=digests,
    signers=st.frozensets(st.integers(0, 500), max_size=7),
)
shares = st.builds(
    ThresholdSignatureShare, signer=small_ints, epoch=small_ints, tag=digests
)
coin_shares = st.builds(
    CoinShare, signer=small_ints, view=small_ints, epoch=small_ints, tag=digests
)
qcs = st.builds(QC, block_id=digests, round=small_ints, view=small_ints, signature=tsigs)
fqcs = st.builds(
    FallbackQC,
    block_id=digests,
    round=small_ints,
    view=small_ints,
    height=st.integers(1, 3),
    proposer=st.integers(0, 100),
    signature=tsigs,
)
ftcs = st.builds(FallbackTC, view=small_ints, signature=tsigs)
coin_qcs = st.builds(
    CoinQC, view=small_ints, leader=st.integers(0, 100), proof_tag=digests
)

transactions = st.builds(
    Transaction,
    tx_id=st.text(max_size=40),
    client=small_ints,
    payload=st.text(max_size=60),
    payload_size=st.integers(0, 500),
    submitted_at=st.floats(allow_nan=False, allow_infinity=False, width=64),
)
batches = st.builds(Batch, transactions=st.tuples() | st.tuples(transactions) | st.tuples(transactions, transactions))

blocks = st.builds(
    Block,
    qc=qcs,
    round=small_ints,
    view=small_ints,
    batch=batches,
    author=st.integers(0, 100),
)
fblocks = st.builds(
    FallbackBlock,
    qc=st.one_of(qcs, fqcs),
    round=small_ints,
    view=small_ints,
    height=st.integers(1, 3),
    proposer=st.integers(0, 100),
    batch=batches,
)

messages = st.one_of(
    st.builds(Vote, block_id=digests, round=small_ints, view=small_ints, share=shares),
    st.builds(
        FallbackVote,
        block_id=digests,
        round=small_ints,
        view=small_ints,
        height=st.integers(1, 3),
        proposer=st.integers(0, 100),
        share=shares,
    ),
    st.builds(BlockRequest, block_id=digests),
    st.builds(ChainRequest, block_id=digests, max_blocks=st.integers(1, 4096)),
    st.builds(CoinShareMessage, share=coin_shares),
    st.builds(PacemakerTimeout, round=small_ints, share=shares, qc_high=qcs),
    st.builds(FallbackTCMessage, ftc=ftcs),
    st.builds(Proposal, block=blocks),
    st.builds(BlockResponse, block=st.one_of(blocks, fblocks)),
    # Optional-field coverage: FallbackProposal with and without the f-TC.
    st.builds(FallbackProposal, fblock=fblocks, ftc=st.none() | ftcs),
    st.builds(ClientRequest, transaction=transactions),
    st.builds(
        ClientReply,
        tx_id=st.text(max_size=40),
        position=small_ints,
        block_id=digests,
        replica=st.integers(0, 100),
    ),
)


# ----------------------------------------------------------------------
# Round-trip law
# ----------------------------------------------------------------------
@settings(max_examples=200, deadline=None)
@given(sender=senders, message=messages)
def test_decode_encode_is_identity(sender, message):
    assert decode_message(encode_message(sender, message)) == (sender, message)


@settings(max_examples=100, deadline=None)
@given(sender=senders, message=messages)
def test_strict_prefixes_raise_decode_error(sender, message):
    data = encode_message(sender, message)
    # Sampling every prefix would be quadratic; cover the structural
    # boundaries plus a stride through the body.
    cuts = {0, 1, 2, 7, 23, len(data) - 1} | set(range(0, len(data), 17))
    for cut in cuts:
        if 0 <= cut < len(data):
            with pytest.raises(DecodeError):
                decode_message(data[:cut])


# ----------------------------------------------------------------------
# Fuzz: hostile bytes never escape DecodeError
# ----------------------------------------------------------------------
@settings(max_examples=300, deadline=None)
@given(data=st.binary(max_size=300))
def test_garbage_bytes_never_crash(data):
    try:
        decode_message(data)
    except DecodeError:
        pass  # the only acceptable failure mode


@settings(max_examples=200, deadline=None)
@given(
    message=messages,
    offset=st.integers(min_value=0, max_value=10_000),
    flip=st.integers(min_value=1, max_value=255),
)
def test_single_byte_corruption_never_crashes(message, offset, flip):
    data = bytearray(encode_message(3, message))
    data[offset % len(data)] ^= flip
    try:
        decode_message(bytes(data))
    except DecodeError:
        pass  # corrupted frames are rejected, not crashed on
