"""Parity between modeled ``wire_size()`` and real codec byte counts.

The simulator bills the modeled estimate; live mode bills the encoded
bytes.  Cost analyses only transfer between the two modes if the estimates
track reality, so every message type must stay within the documented
tolerance: ``max(16 bytes, 10%)`` of the modeled size.
"""

import dataclasses

from repro.net.network import Network, _wire_size
from repro.sim.scheduler import Scheduler
from repro.wire.codec import (
    encoded_size,
    register_message,
    unregister_message,
)


def _tolerance(modeled: int) -> float:
    return max(16.0, 0.10 * modeled)


def test_encoded_size_tracks_modeled_wire_size(samples):
    for message in samples["messages"]:
        wire_size = getattr(message, "wire_size", None)
        if not callable(wire_size):
            continue  # client messages carry no modeled estimate
        modeled = wire_size()
        actual = encoded_size(message)
        assert abs(actual - modeled) <= _tolerance(modeled), (
            f"{type(message).__name__}: modeled {modeled} vs encoded {actual}"
        )


def test_all_core_message_shapes_have_modeled_sizes(samples):
    # Guard against the parity test silently skipping everything.
    modeled = [m for m in samples["messages"] if callable(getattr(m, "wire_size", None))]
    assert len(modeled) >= 15


# ----------------------------------------------------------------------
# Network fallback chain: modeled -> codec-derived -> 64-byte default
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class _Probe:
    value: int


def _enc_probe(w, m):
    w.i64(m.value)


def _dec_probe(r):
    return _Probe(value=r.i64())


def test_network_uses_codec_size_for_registered_extensions():
    net = Network(Scheduler(seed=1))
    register_message(_Probe, 0xE0, _enc_probe, _dec_probe)
    try:
        probe = _Probe(value=7)
        assert net._wire_size_of(probe) == encoded_size(probe)
        assert net.untyped_messages == 0
        assert _wire_size(probe) == encoded_size(probe)
    finally:
        unregister_message(_Probe)


def test_network_falls_back_to_default_for_unknown_types():
    net = Network(Scheduler(seed=1))

    class Opaque:
        pass

    assert net._wire_size_of(Opaque()) == 64
    assert net.untyped_messages == 1
    assert _wire_size(Opaque()) == 64


def test_network_prefers_modeled_size(samples):
    net = Network(Scheduler(seed=1))
    vote = samples["messages"][2]
    assert net._wire_size_of(vote) == vote.wire_size()
    assert net.untyped_messages == 0
