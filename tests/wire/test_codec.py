"""Codec round-trips, hardening against malformed bytes, and the registry."""

import dataclasses

import pytest

from repro.types.messages import MESSAGE_OVERHEAD, Vote
from repro.wire.codec import (
    DecodeError,
    EncodeError,
    EXTENSION_TAG_BASE,
    WIRE_VERSION,
    decode_message,
    encode_message,
    encoded_size,
    has_codec_entry,
    register_message,
    try_encoded_size,
    unregister_message,
)


# ----------------------------------------------------------------------
# Round trips
# ----------------------------------------------------------------------
def test_every_message_type_round_trips(samples):
    for message in samples["messages"]:
        data = encode_message(7, message)
        sender, decoded = decode_message(data)
        assert sender == 7, type(message).__name__
        assert decoded == message, type(message).__name__
        assert type(decoded) is type(message)


def test_encoding_is_deterministic(samples):
    for message in samples["messages"]:
        assert encode_message(3, message) == encode_message(3, message)


def test_encoded_size_matches_actual_bytes(samples):
    for message in samples["messages"]:
        assert encoded_size(message, sender=2) == len(encode_message(2, message))


def test_envelope_equals_modeled_overhead(samples):
    # The codec envelope is exactly the modeled MESSAGE_OVERHEAD bytes.
    vote = next(m for m in samples["messages"] if isinstance(m, Vote))
    body = len(encode_message(0, vote)) - MESSAGE_OVERHEAD
    assert body > 0
    data = encode_message(0, vote)
    assert data[0] == WIRE_VERSION
    # sender occupies bytes 2..3 (i16 big-endian)
    assert int.from_bytes(data[2:4], "big", signed=True) == 0


def test_sender_range_round_trips(samples):
    vote = next(m for m in samples["messages"] if isinstance(m, Vote))
    for sender in (0, 1, 127, 32767, -1):
        assert decode_message(encode_message(sender, vote))[0] == sender


def test_decoded_blocks_preserve_content_hash(samples):
    from repro.types.messages import BlockResponse

    data = encode_message(1, BlockResponse(block=samples["block"]))
    _, decoded = decode_message(data)
    assert decoded.block.id == samples["block"].id


# ----------------------------------------------------------------------
# Hardening: every malformation raises DecodeError, nothing else
# ----------------------------------------------------------------------
def test_unknown_type_tag_rejected(samples):
    data = bytearray(encode_message(0, samples["messages"][0]))
    data[1] = 0xFE  # unregistered extension tag
    with pytest.raises(DecodeError, match="unknown message type tag"):
        decode_message(bytes(data))


def test_wrong_version_rejected(samples):
    data = bytearray(encode_message(0, samples["messages"][0]))
    data[0] = WIRE_VERSION + 1
    with pytest.raises(DecodeError, match="version"):
        decode_message(bytes(data))


def test_empty_and_tiny_inputs_rejected():
    for data in (b"", b"\x01", b"\x01\x02\x00"):
        with pytest.raises(DecodeError):
            decode_message(data)


def test_trailing_bytes_rejected(samples):
    data = encode_message(0, samples["messages"][0])
    with pytest.raises(DecodeError, match="trailing"):
        decode_message(data + b"\x00")


def test_nonzero_reserved_padding_rejected(samples):
    data = bytearray(encode_message(0, samples["messages"][0]))
    data[5] = 0xAA  # inside the 4-byte reserved envelope slot
    with pytest.raises(DecodeError):
        decode_message(bytes(data))


def test_every_strict_prefix_rejected(samples):
    """Truncation anywhere raises DecodeError (never a wrong object)."""
    vote = next(m for m in samples["messages"] if isinstance(m, Vote))
    data = encode_message(0, vote)
    for cut in range(len(data)):
        with pytest.raises(DecodeError):
            decode_message(data[:cut])


def test_block_id_tamper_rejected(samples):
    from repro.types.messages import BlockResponse

    data = bytearray(encode_message(0, BlockResponse(block=samples["block"])))
    # The shipped block id starts right after the envelope + block tag.
    data[MESSAGE_OVERHEAD + 1] ^= 0xFF
    with pytest.raises(DecodeError, match="block id"):
        decode_message(bytes(data))


def test_constructor_validation_surfaces_as_decode_error(samples):
    """An endorsement whose inner views disagree is a wire-format error."""
    from repro.types.messages import PacemakerTimeout

    message = next(
        m
        for m in samples["messages"]
        if isinstance(m, PacemakerTimeout) and type(m.qc_high).__name__ != "QC"
    )
    data = bytearray(encode_message(0, message))
    # Corrupting bytes inside the endorsed certificate (view numbers) must
    # yield DecodeError, never a bare ValueError from __post_init__.
    for offset in range(MESSAGE_OVERHEAD, len(data)):
        mutated = bytearray(data)
        mutated[offset] ^= 0x01
        try:
            decode_message(bytes(mutated))
        except DecodeError:
            pass  # expected for most offsets
        except Exception as exc:  # pragma: no cover - the failure we guard
            pytest.fail(f"offset {offset} raised {type(exc).__name__}: {exc}")


def test_unencodable_message_raises_encode_error():
    class Mystery:
        pass

    with pytest.raises(EncodeError, match="no codec entry"):
        encode_message(0, Mystery())


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class _Ping:
    nonce: int


def _enc_ping(w, m):
    w.i64(m.nonce)


def _dec_ping(r):
    return _Ping(nonce=r.i64())


def test_extension_registration_round_trips():
    register_message(_Ping, 0xF0, _enc_ping, _dec_ping)
    try:
        assert has_codec_entry(_Ping)
        sender, decoded = decode_message(encode_message(5, _Ping(nonce=99)))
        assert (sender, decoded) == (5, _Ping(nonce=99))
    finally:
        unregister_message(_Ping)
    assert not has_codec_entry(_Ping)


def test_extension_tags_must_be_above_core_range():
    with pytest.raises(ValueError, match="reserved for core"):
        register_message(_Ping, EXTENSION_TAG_BASE - 1, _enc_ping, _dec_ping)


def test_duplicate_tag_and_type_rejected():
    register_message(_Ping, 0xF1, _enc_ping, _dec_ping)
    try:
        with pytest.raises(ValueError, match="already registered"):
            register_message(_Ping, 0xF2, _enc_ping, _dec_ping)

        @dataclasses.dataclass(frozen=True)
        class Other:
            pass

        with pytest.raises(ValueError, match="already registered"):
            register_message(Other, 0xF1, lambda w, m: None, lambda r: Other())
    finally:
        unregister_message(_Ping)


def test_core_registrations_cannot_be_removed():
    with pytest.raises(ValueError, match="core"):
        unregister_message(Vote)
    assert has_codec_entry(Vote)


def test_try_encoded_size(samples):
    assert try_encoded_size(samples["messages"][0]) is not None

    class Unknown:
        pass

    assert try_encoded_size(Unknown()) is None
