"""Shared sample objects for the wire tests: one instance per message shape."""

import pytest

from repro.client.client import ClientReply, ClientRequest
from repro.crypto.coin import CoinShare
from repro.crypto.hashing import hash_fields
from repro.crypto.threshold import ThresholdSignature, ThresholdSignatureShare
from repro.types.blocks import Block, FallbackBlock, genesis_block
from repro.types.certificates import (
    CoinQC,
    EndorsedFallbackQC,
    FallbackQC,
    FallbackTC,
    QC,
    TimeoutCertificate,
)
from repro.types.messages import (
    BlockRequest,
    BlockResponse,
    ChainRequest,
    ChainResponse,
    CoinQCMessage,
    CoinShareMessage,
    FallbackProposal,
    FallbackQCMessage,
    FallbackTCMessage,
    FallbackTimeout,
    FallbackVote,
    PacemakerTCMessage,
    PacemakerTimeout,
    Proposal,
    Vote,
)
from repro.types.transactions import Batch, make_transaction


@pytest.fixture(scope="module")
def samples():
    tag = hash_fields("wire-test")
    tsig = ThresholdSignature(epoch=3, tag=tag, signers=frozenset({0, 1, 2}))
    share = ThresholdSignatureShare(signer=1, epoch=3, tag=tag)
    qc = QC(block_id=hash_fields("b"), round=5, view=1, signature=tsig)
    fqc = FallbackQC(
        block_id=hash_fields("fb"), round=6, view=2, height=2, proposer=3,
        signature=tsig,
    )
    coin_qc = CoinQC(view=2, leader=3, proof_tag=tag)
    endorsed = EndorsedFallbackQC(fqc=fqc, coin_qc=coin_qc)
    tc = TimeoutCertificate(round=7, signature=tsig)
    ftc = FallbackTC(view=2, signature=tsig)
    batch = Batch.of(
        [make_transaction(i, client=9, submitted_at=1.5) for i in range(3)]
    )
    block = Block(qc=qc, round=6, view=1, batch=batch, author=2)
    fblock = FallbackBlock(
        qc=fqc, round=7, view=2, height=3, proposer=3, batch=batch
    )
    messages = [
        Proposal(block=block),
        Proposal(block=Block(qc=endorsed, round=8, view=2, batch=batch, author=0)),
        Vote(block_id=block.id, round=6, view=1, share=share),
        PacemakerTimeout(round=6, share=share, qc_high=qc),
        PacemakerTimeout(round=6, share=share, qc_high=endorsed),
        PacemakerTCMessage(tc=tc, qc_high=qc),
        FallbackTimeout(view=2, share=share, qc_high=endorsed),
        FallbackTCMessage(ftc=ftc),
        FallbackProposal(fblock=fblock),  # optional ftc absent
        FallbackProposal(
            fblock=FallbackBlock(
                qc=qc, round=7, view=2, height=1, proposer=3, batch=batch
            ),
            ftc=ftc,  # optional ftc present (height-1 entry proposal)
        ),
        FallbackVote(
            block_id=fblock.id, round=7, view=2, height=3, proposer=3, share=share
        ),
        FallbackQCMessage(fqc=fqc),
        CoinShareMessage(share=CoinShare(signer=2, view=4, epoch=3, tag=tag)),
        CoinQCMessage(coin_qc=coin_qc),
        BlockRequest(block_id=block.id),
        BlockResponse(block=block),
        BlockResponse(block=fblock),
        BlockResponse(block=genesis_block()),
        ChainRequest(block_id=block.id),
        ChainRequest(block_id=block.id, max_blocks=7),
        ChainResponse(blocks=(block, fblock, genesis_block())),
        ChainResponse(blocks=()),
        ClientRequest(transaction=make_transaction(0, client=8, submitted_at=0.25)),
        ClientReply(tx_id="tx-8-0", position=12, block_id=block.id, replica=1),
    ]
    return {
        "messages": messages,
        "block": block,
        "fblock": fblock,
        "qc": qc,
        "fqc": fqc,
        "coin_qc": coin_qc,
        "tsig": tsig,
        "batch": batch,
    }
