"""Length-prefixed framing: round trips, chunking, hostile headers."""

import asyncio
import struct

import pytest

from repro.wire.framing import (
    FRAME_HEADER_SIZE,
    MAX_FRAME_SIZE,
    FrameDecoder,
    FrameError,
    encode_frame,
    read_frame,
)


def test_encode_frame_layout():
    frame = encode_frame(b"abc")
    assert frame == struct.pack(">I", 3) + b"abc"
    assert FRAME_HEADER_SIZE == 4


def test_decoder_round_trips_multiple_frames():
    payloads = [b"a", b"bb" * 100, b"\x00" * 7]
    stream = b"".join(encode_frame(p) for p in payloads)
    decoder = FrameDecoder()
    assert list(decoder.feed(stream)) == payloads
    assert decoder.buffered == 0


def test_decoder_handles_arbitrary_chunk_boundaries():
    payloads = [bytes([i]) * (i + 1) for i in range(20)]
    stream = b"".join(encode_frame(p) for p in payloads)
    for chunk_size in (1, 2, 3, 5, 7, 64):
        decoder = FrameDecoder()
        out = []
        for start in range(0, len(stream), chunk_size):
            out.extend(decoder.feed(stream[start:start + chunk_size]))
        assert out == payloads, f"chunk_size={chunk_size}"


def test_partial_frame_stays_buffered():
    decoder = FrameDecoder()
    frame = encode_frame(b"hello")
    assert list(decoder.feed(frame[:-1])) == []
    assert decoder.buffered == len(frame) - 1
    assert list(decoder.feed(frame[-1:])) == [b"hello"]


def test_zero_length_frame_rejected():
    with pytest.raises(FrameError, match="zero-length"):
        list(FrameDecoder().feed(struct.pack(">I", 0)))
    with pytest.raises(FrameError):
        encode_frame(b"")


def test_oversized_frame_rejected_before_buffering():
    header = struct.pack(">I", MAX_FRAME_SIZE + 1)
    with pytest.raises(FrameError, match="exceeds maximum"):
        list(FrameDecoder().feed(header))
    with pytest.raises(FrameError):
        encode_frame(b"x" * (MAX_FRAME_SIZE + 1))


def test_garbage_header_rejected():
    # 0xFFFFFFFF length: far beyond the cap, must fail fast.
    with pytest.raises(FrameError):
        list(FrameDecoder().feed(b"\xff\xff\xff\xff"))


def _read_all(data: bytes):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        frames = []
        while True:
            try:
                frames.append(await read_frame(reader))
            except asyncio.IncompleteReadError:
                return frames

    return asyncio.run(go())


def test_read_frame_from_stream():
    payloads = [b"one", b"two" * 50]
    assert _read_all(b"".join(encode_frame(p) for p in payloads)) == payloads


def test_read_frame_rejects_bad_length():
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(struct.pack(">I", MAX_FRAME_SIZE + 1))
        reader.feed_eof()
        await read_frame(reader)

    with pytest.raises(FrameError):
        asyncio.run(go())


def test_read_frame_truncated_mid_payload():
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(encode_frame(b"hello")[:-2])
        reader.feed_eof()
        await read_frame(reader)

    with pytest.raises(asyncio.IncompleteReadError):
        asyncio.run(go())
