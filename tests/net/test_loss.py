"""Tests for the loss-model hierarchy and its Network integration."""

import random

import pytest

from repro.net.conditions import SynchronousDelay
from repro.net.loss import (
    BurstLoss,
    IIDLoss,
    NoLoss,
    PartitionLoss,
    ScheduledLoss,
    TargetedLoss,
)
from repro.net.network import Network
from repro.sim.process import Process
from repro.sim.scheduler import Scheduler


class Sink(Process):
    def __init__(self, process_id, scheduler):
        super().__init__(process_id, scheduler)
        self.received = []

    def on_message(self, sender, message):
        self.received.append((sender, message))


def build(n=3, seed=1, loss=None):
    scheduler = Scheduler(seed=seed)
    network = Network(
        scheduler, SynchronousDelay(delta=1.0, min_delay=0.1), loss_model=loss
    )
    sinks = [Sink(i, scheduler) for i in range(n)]
    for sink in sinks:
        network.register(sink)
    return scheduler, network, sinks


# ----------------------------------------------------------------------
# Model unit tests (driven with a local RNG, no network)
# ----------------------------------------------------------------------
def test_no_loss_consumes_no_randomness():
    rng = random.Random(0)
    state = rng.getstate()
    assert NoLoss().copies(0, 1, "m", 0.0, rng) == 1
    assert rng.getstate() == state


def test_iid_loss_rates_are_roughly_honored():
    model = IIDLoss(drop=0.3, duplicate=0.2)
    rng = random.Random(42)
    counts = [model.copies(0, 1, "m", 0.0, rng) for _ in range(20_000)]
    drop_rate = counts.count(0) / len(counts)
    assert 0.27 < drop_rate < 0.33
    survivors = [c for c in counts if c > 0]
    dup_rate = sum(1 for c in survivors if c > 1) / len(survivors)
    assert 0.17 < dup_rate < 0.23
    assert max(counts) <= 3  # max_copies cap


def test_iid_loss_validates_probabilities():
    with pytest.raises(ValueError):
        IIDLoss(drop=1.0)
    with pytest.raises(ValueError):
        IIDLoss(duplicate=-0.1)
    with pytest.raises(ValueError):
        IIDLoss(max_copies=0)


def test_burst_loss_produces_consecutive_drops():
    model = BurstLoss(p_enter_bad=0.05, p_exit_bad=0.2, good_drop=0.0, bad_drop=1.0)
    rng = random.Random(7)
    outcomes = [model.copies(0, 1, "m", 0.0, rng) for _ in range(5_000)]
    # Compute run lengths of drops: burstiness means mean run length > 1.
    runs, current = [], 0
    for outcome in outcomes:
        if outcome == 0:
            current += 1
        elif current:
            runs.append(current)
            current = 0
    assert runs, "bad state never entered"
    assert sum(runs) / len(runs) > 2.0  # mean burst ~ 1/p_exit = 5


def test_burst_loss_state_is_per_link():
    model = BurstLoss(p_enter_bad=1.0, p_exit_bad=0.01, bad_drop=1.0)
    rng = random.Random(1)
    model.copies(0, 1, "m", 0.0, rng)  # link (0,1) enters bad
    assert (0, 1) in model._bad_links
    assert (1, 0) not in model._bad_links


def test_burst_loss_requires_bursts_to_end():
    with pytest.raises(ValueError):
        BurstLoss(p_exit_bad=0.0)


def test_targeted_loss_is_per_direction():
    model = TargetedLoss(IIDLoss(drop=1.0 - 1e-12), links=[(0, 1)])
    rng = random.Random(3)
    assert model.copies(0, 1, "m", 0.0, rng) == 0  # targeted direction
    assert model.copies(1, 0, "m", 0.0, rng) == 1  # reverse untouched
    assert model.copies(0, 2, "m", 0.0, rng) == 1


def test_targeted_loss_by_sender_receiver_and_predicate():
    lossy = IIDLoss(drop=1.0 - 1e-12)
    rng = random.Random(3)
    by_sender = TargetedLoss(lossy, senders=[2])
    assert by_sender.copies(2, 0, "m", 0.0, rng) == 0
    assert by_sender.copies(0, 2, "m", 0.0, rng) == 1
    by_receiver = TargetedLoss(lossy, receivers=[2])
    assert by_receiver.copies(0, 2, "m", 0.0, rng) == 0
    by_predicate = TargetedLoss(lossy, predicate=lambda s, r: s + r == 5)
    assert by_predicate.copies(2, 3, "m", 0.0, rng) == 0
    assert by_predicate.copies(2, 2, "m", 0.0, rng) == 1


def test_targeted_loss_requires_a_selector():
    with pytest.raises(ValueError):
        TargetedLoss(IIDLoss(drop=0.5))


def test_partition_loss_drops_cross_group_only():
    model = PartitionLoss([[0, 1], [2, 3]])
    rng = random.Random(5)
    assert model.copies(0, 1, "m", 0.0, rng) == 1
    assert model.copies(0, 2, "m", 0.0, rng) == 0
    assert model.copies(3, 2, "m", 0.0, rng) == 1


def test_partition_loss_composes_with_base():
    model = PartitionLoss([[0, 1], [2, 3]], base=IIDLoss(drop=1.0 - 1e-12))
    rng = random.Random(5)
    assert model.copies(0, 1, "m", 0.0, rng) == 0  # base loss inside the group


def test_partition_loss_rejects_overlapping_groups():
    with pytest.raises(ValueError):
        PartitionLoss([[0, 1], [1, 2]])


def test_scheduled_loss_switches_phases():
    model = ScheduledLoss([(0.0, NoLoss()), (10.0, IIDLoss(drop=1.0 - 1e-12))])
    rng = random.Random(9)
    assert model.copies(0, 1, "m", 5.0, rng) == 1
    assert model.copies(0, 1, "m", 15.0, rng) == 0


def test_scheduled_loss_must_start_at_zero():
    with pytest.raises(ValueError):
        ScheduledLoss([(5.0, NoLoss())])
    with pytest.raises(ValueError):
        ScheduledLoss([])


# ----------------------------------------------------------------------
# Network integration
# ----------------------------------------------------------------------
def test_network_drops_messages_and_counts_them():
    scheduler, network, sinks = build(loss=IIDLoss(drop=1.0 - 1e-12))
    for _ in range(10):
        network.send(0, 1, "x")
    scheduler.run()
    assert sinks[1].received == []
    assert network.messages_dropped == 10
    assert network.messages_sent == 10  # billed even when dropped


def test_network_duplicates_messages_and_counts_them():
    scheduler, network, sinks = build(
        loss=IIDLoss(duplicate=1.0 - 1e-12, max_copies=2)
    )
    network.send(0, 1, "x")
    scheduler.run()
    assert len(sinks[1].received) == 2
    assert network.duplicates_injected == 1
    assert network.messages_sent == 1  # one send, two deliveries


def test_duplicate_copies_get_independent_delays():
    received_times = []

    class TimedSink(Sink):
        def on_message(self, sender, message):
            received_times.append(self.now)

    scheduler = Scheduler(seed=4)
    network = Network(
        scheduler,
        SynchronousDelay(delta=10.0, min_delay=0.1),
        loss_model=IIDLoss(duplicate=1.0 - 1e-12, max_copies=3),
    )
    for i in range(2):
        network.register(TimedSink(i, scheduler))
    network.send(0, 1, "x")
    scheduler.run()
    assert len(received_times) == 3
    assert len(set(received_times)) == 3  # independently drawn delays


def test_self_delivery_is_never_lossy():
    scheduler, network, sinks = build(loss=IIDLoss(drop=1.0 - 1e-12))
    network.send(1, 1, "self")
    scheduler.run()
    assert sinks[1].received == [(1, "self")]
    assert network.messages_dropped == 0


def test_loss_draws_do_not_perturb_delay_draws():
    """The loss model uses its own RNG stream, so enabling total loss must
    not change the delays drawn for other (non-lossy) traffic."""

    def probe_arrival(loss):
        arrivals = []

        class TimedSink(Sink):
            def on_message(self, sender, message):
                arrivals.append((message, self.now))

        scheduler = Scheduler(seed=11)
        network = Network(
            scheduler,
            SynchronousDelay(delta=1.0, min_delay=0.1),
            loss_model=TargetedLoss(loss, links=[(0, 2)]) if loss else None,
        )
        for i in range(3):
            network.register(TimedSink(i, scheduler))
        network.send(0, 2, "victim")  # lossy link (or not)
        network.send(0, 1, "probe")
        scheduler.run()
        return [(m, t) for m, t in arrivals if m == "probe"]

    assert probe_arrival(None) == probe_arrival(IIDLoss(drop=1.0 - 1e-12))


def test_untyped_message_counter():
    class Sized:
        def wire_size(self):
            return 10

    scheduler, network, _ = build()
    network.send(0, 1, Sized())
    assert network.untyped_messages == 0
    network.send(0, 1, "untyped")
    network.send(0, 1, b"also untyped")
    assert network.untyped_messages == 2


def test_set_loss_model_mid_run():
    scheduler, network, sinks = build()
    network.send(0, 1, "clean")
    scheduler.run()
    network.set_loss_model(IIDLoss(drop=1.0 - 1e-12))
    network.send(0, 1, "lost")
    scheduler.run()
    assert [m for _, m in sinks[1].received] == ["clean"]
