"""Tests for the cross-region delay model."""

import random

import pytest

from repro.net.topology import CrossRegionDelay, evenly_spread_regions
from repro.runtime.cluster import ClusterBuilder


@pytest.fixture
def rng():
    return random.Random(0)


def model_4():
    return CrossRegionDelay(
        region_of={0: "us", 1: "us", 2: "eu", 3: "eu"},
        intra=(0.01, 0.05),
        inter=(0.5, 1.0),
    )


def test_intra_region_is_fast(rng):
    model = model_4()
    for _ in range(100):
        assert model.delay(0, 1, None, 0.0, rng) <= 0.05
        assert model.delay(2, 3, None, 0.0, rng) <= 0.05


def test_inter_region_is_slow(rng):
    model = model_4()
    for _ in range(100):
        assert 0.5 <= model.delay(0, 2, None, 0.0, rng) <= 1.0


def test_pair_bands_override_default(rng):
    model = CrossRegionDelay(
        region_of={0: "us", 1: "eu", 2: "ap"},
        intra=(0.01, 0.02),
        inter=(0.5, 1.0),
        pair_bands={("us", "eu"): (0.08, 0.1)},
    )
    assert model.delay(0, 1, None, 0.0, rng) <= 0.1  # us<->eu special band
    assert model.delay(1, 0, None, 0.0, rng) <= 0.1  # symmetric
    assert model.delay(0, 2, None, 0.0, rng) >= 0.5  # default band


def test_unknown_replica_uses_inter_band(rng):
    model = model_4()
    assert model.delay(0, 9, None, 0.0, rng) >= 0.5


def test_delta_is_worst_band():
    model = CrossRegionDelay(
        region_of={0: "us", 1: "eu"},
        intra=(0.01, 0.05),
        inter=(0.5, 1.0),
        pair_bands={("us", "eu"): (1.0, 2.0)},
    )
    assert model.delta == 2.0


def test_validation():
    with pytest.raises(ValueError):
        CrossRegionDelay(region_of={})
    with pytest.raises(ValueError):
        CrossRegionDelay(region_of={0: "us"}, intra=(0.0, 1.0))


def test_evenly_spread_regions():
    assignment = evenly_spread_regions(7, ["us", "eu", "ap"])
    assert assignment[0] == "us"
    assert assignment[1] == "eu"
    assert assignment[2] == "ap"
    assert assignment[3] == "us"
    assert len(assignment) == 7
    with pytest.raises(ValueError):
        evenly_spread_regions(4, [])


def test_protocol_runs_on_cross_region_topology():
    model = CrossRegionDelay(
        region_of=evenly_spread_regions(4, ["us", "eu"]),
        intra=(0.01, 0.05),
        inter=(0.3, 0.9),
    )
    cluster = ClusterBuilder(n=4, seed=61).with_delay_model(model).build()
    result = cluster.run_until_commits(15, until=10_000)
    assert result.decisions >= 15
    assert cluster.metrics.fallback_count() == 0  # still synchronous


def test_describe():
    assert "us" in model_4().describe()
