"""Tests for the bandwidth-limited delay model."""

import random

import pytest

from repro.net.bandwidth import BandwidthDelay
from repro.net.conditions import SynchronousDelay
from repro.runtime.cluster import ClusterBuilder


class Sized:
    def __init__(self, size):
        self._size = size

    def wire_size(self):
        return self._size


@pytest.fixture
def rng():
    return random.Random(0)


def flat_latency():
    return SynchronousDelay(delta=0.1000001, min_delay=0.1)


def test_serialization_scales_with_size(rng):
    model = BandwidthDelay(bytes_per_second=1000, latency=flat_latency())
    small = model.delay(0, 1, Sized(100), 0.0, rng)
    model_big = BandwidthDelay(bytes_per_second=1000, latency=flat_latency())
    big = model_big.delay(0, 1, Sized(1000), 0.0, rng)
    assert big - small == pytest.approx(0.9, abs=1e-6)


def test_queueing_on_busy_link(rng):
    model = BandwidthDelay(bytes_per_second=1000, latency=flat_latency())
    first = model.delay(0, 1, Sized(1000), 0.0, rng)  # occupies link for 1s
    second = model.delay(0, 1, Sized(1000), 0.0, rng)  # must queue behind it
    assert second == pytest.approx(first + 1.0, abs=1e-6)


def test_independent_links_do_not_queue(rng):
    model = BandwidthDelay(bytes_per_second=1000, latency=flat_latency())
    model.delay(0, 1, Sized(1000), 0.0, rng)
    other = model.delay(0, 2, Sized(1000), 0.0, rng)  # different link
    assert other == pytest.approx(1.0 + 0.1, abs=1e-3)


def test_uplink_mode_shares_sender_capacity(rng):
    model = BandwidthDelay(bytes_per_second=1000, latency=flat_latency(), per_link=False)
    model.delay(0, 1, Sized(1000), 0.0, rng)
    queued = model.delay(0, 2, Sized(1000), 0.0, rng)  # same sender uplink
    assert queued >= 2.0


def test_link_frees_over_time(rng):
    model = BandwidthDelay(bytes_per_second=1000, latency=flat_latency())
    model.delay(0, 1, Sized(1000), 0.0, rng)
    later = model.delay(0, 1, Sized(1000), now=5.0, rng=rng)
    assert later == pytest.approx(1.0 + 0.1, abs=1e-3)  # no queueing at t=5


def test_validation():
    with pytest.raises(ValueError):
        BandwidthDelay(bytes_per_second=0)


def test_protocol_runs_under_bandwidth_limits():
    model = BandwidthDelay(bytes_per_second=50_000, latency=SynchronousDelay(delta=0.5))
    cluster = ClusterBuilder(n=4, seed=91).with_delay_model(model).build()
    result = cluster.run_until_commits(10, until=20_000)
    assert result.decisions >= 10
    from repro.analysis.safety import assert_cluster_safety

    assert_cluster_safety(cluster.honest_replicas())


def test_describe():
    assert "B/s" in BandwidthDelay(1000).describe()
