"""TcpTransport: handshake auth, error containment, backpressure, shutdown.

pytest-asyncio is not available in this environment, so each test drives
its own event loop via ``asyncio.run``.
"""

import asyncio
import struct

import pytest

from repro.crypto.hashing import hash_fields
from repro.net.tcp import _HELLO, _MAGIC, TcpTransport
from repro.types.messages import BlockRequest
from repro.wire.codec import WIRE_VERSION, encode_message
from repro.wire.framing import encode_frame


async def _wait_for(predicate, timeout=5.0, interval=0.01):
    """Poll ``predicate`` until true or fail the test after ``timeout``."""
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        if asyncio.get_running_loop().time() > deadline:
            pytest.fail("condition not reached before timeout")
        await asyncio.sleep(interval)


def _sample_message(n=0):
    return BlockRequest(block_id=hash_fields("tcp-test", n))


async def _start_pair(queue_limit=1024):
    """Two transports wired into a full mesh; returns (a, b, inbox_a, inbox_b)."""
    inboxes = {0: [], 1: []}
    a = TcpTransport(0, lambda p, m: inboxes[0].append((p, m)), queue_limit=queue_limit)
    b = TcpTransport(1, lambda p, m: inboxes[1].append((p, m)), queue_limit=queue_limit)
    host_a, port_a = await a.start()
    host_b, port_b = await b.start()
    a.add_peer(1, host_b, port_b)
    b.add_peer(0, host_a, port_a)
    return a, b, inboxes[0], inboxes[1]


def test_mesh_round_trip():
    async def go():
        a, b, inbox_a, inbox_b = await _start_pair()
        try:
            sent = [_sample_message(i) for i in range(5)]
            for m in sent:
                assert a.send(1, encode_message(0, m))
            b.send(0, encode_message(1, _sample_message(99)))
            await _wait_for(lambda: len(inbox_b) == 5 and len(inbox_a) == 1)
            assert [m for _, m in inbox_b] == sent
            assert all(peer == 0 for peer, _ in inbox_b)
            assert inbox_a == [(1, _sample_message(99))]
            assert a.frames_sent == 5 and b.frames_received == 5
        finally:
            await a.close()
            await b.close()

    asyncio.run(go())


def test_envelope_sender_must_match_handshake():
    async def go():
        a, b, _, inbox_b = await _start_pair()
        try:
            # Node 0 claims to be node 1 inside the envelope: discarded.
            assert a.send(1, encode_message(1, _sample_message()))
            a.send(1, encode_message(0, _sample_message(1)))
            await _wait_for(lambda: len(inbox_b) == 1)
            assert b.auth_failures == 1
            assert inbox_b == [(0, _sample_message(1))]
        finally:
            await a.close()
            await b.close()

    asyncio.run(go())


def test_decode_error_counted_and_connection_survives():
    async def go():
        a, b, _, inbox_b = await _start_pair()
        try:
            a.send(1, b"\xde\xad\xbe\xef")  # undecodable payload
            a.send(1, encode_message(0, _sample_message(2)))
            await _wait_for(lambda: len(inbox_b) == 1)
            assert b.decode_errors == 1
            assert b.frames_received == 2  # garbage arrived, was contained
            assert inbox_b == [(0, _sample_message(2))]
        finally:
            await a.close()
            await b.close()

    asyncio.run(go())


def test_frame_violation_drops_connection():
    async def go():
        inbox = []
        t = TcpTransport(0, lambda p, m: inbox.append((p, m)))
        host, port = await t.start()
        try:
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(encode_frame(_HELLO.pack(_MAGIC, WIRE_VERSION, 5)))
            # Length far beyond MAX_FRAME_SIZE: stream sync is unrecoverable.
            writer.write(struct.pack(">I", 0xFFFFFFFF))
            await writer.drain()
            await _wait_for(lambda: t.frame_errors == 1)
            # The server closed its side of the stream.
            assert await reader.read() == b""
            writer.close()
            await writer.wait_closed()
            assert inbox == []
        finally:
            await t.close()

    asyncio.run(go())


def test_bad_handshake_rejected():
    async def go():
        t = TcpTransport(0, lambda p, m: None)
        host, port = await t.start()
        try:
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(encode_frame(_HELLO.pack(b"NOPE", WIRE_VERSION, 5)))
            await writer.drain()
            await _wait_for(lambda: t.auth_failures == 1)
            assert await reader.read() == b""
            writer.close()
            await writer.wait_closed()
        finally:
            await t.close()

    asyncio.run(go())


def test_backpressure_drops_newest():
    async def go():
        t = TcpTransport(0, lambda p, m: None, queue_limit=2)
        await t.start()
        try:
            # Peer 9 is never reachable: sends pile up in the queue.
            t.add_peer(9, "127.0.0.1", 1)  # port 1: connection refused
            payload = encode_message(0, _sample_message())
            assert t.send(9, payload)
            assert t.send(9, payload)
            assert not t.send(9, payload)  # queue full -> dropped, reported
            assert t.dropped_backpressure == 1
        finally:
            await t.close()

    asyncio.run(go())


def test_unknown_peer_counted_not_raised():
    """Sending to a peer with no channel is refused and counted, never an
    exception: a replica answering a long-gone client must not have its
    handler poisoned by a KeyError."""

    async def go():
        t = TcpTransport(0, lambda p, m: None)
        await t.start()
        try:
            assert t.send(42, b"payload") is False
            assert t.send(42, b"payload") is False
            assert t.no_route == 2
            assert t.counters()["no_route"] == 2
        finally:
            await t.close()

    asyncio.run(go())


def test_backoff_is_jittered_exponential_with_cap():
    import random

    async def go():
        t = TcpTransport(
            0,
            lambda p, m: None,
            backoff_initial=0.1,
            backoff_max=1.0,
            rng=random.Random(7),
        )
        # No start() needed: the backoff schedule is pure arithmetic.
        t.add_peer(1, "127.0.0.1", 1)
        channel = t._channels[1]
        for attempt in range(12):
            uncapped = 0.1 * (2.0**attempt)
            base = min(uncapped, 1.0)
            for _ in range(20):
                delay = channel._backoff_delay(attempt)
                assert 0.5 * base <= delay <= base
        # The cap binds from attempt 4 on (0.1 * 2**4 = 1.6 > 1.0).
        assert all(channel._backoff_delay(k) <= 1.0 for k in range(4, 12))
        await t.close()

    asyncio.run(go())


def test_reconnect_counted_after_listener_restart():
    """Kill the listener mid-stream; the dialer backs off, reconnects to
    the reborn listener on the same port, and counts the reconnect."""

    async def go():
        inbox = []
        b = TcpTransport(1, lambda p, m: inbox.append((p, m)))
        host, port = await b.start()
        a = TcpTransport(0, lambda p, m: None, backoff_initial=0.01)
        a.add_peer(1, host, port)
        try:
            assert a.send(1, encode_message(0, _sample_message(0)))
            await _wait_for(lambda: len(inbox) == 1)
            await b.close()  # listener dies (the kill -9 stand-in)
            b2 = TcpTransport(1, lambda p, m: inbox.append((p, m)))
            await b2.start()
            b2.port = port  # informational; rebind below is what matters
            b2._server.close()
            await b2._server.wait_closed()
            b2._server = await asyncio.start_server(
                b2._handle_inbound, host=host, port=port
            )
            # Sends during the outage are either queued or dropped; keep
            # offering until one lands on the new incarnation.
            async def pump():
                a.send(1, encode_message(0, _sample_message(1)))
                return len(inbox) >= 2

            deadline = asyncio.get_running_loop().time() + 5.0
            while not await pump():
                if asyncio.get_running_loop().time() > deadline:
                    pytest.fail("no delivery after listener restart")
                await asyncio.sleep(0.05)
            assert a.reconnects >= 1
            assert a.per_peer_counters()[1]["reconnects"] >= 1
            assert a.per_peer_counters()[1]["connect_attempts"] >= 2
            await b2.close()
        finally:
            await a.close()

    asyncio.run(go())


def test_reply_channel_round_trip_without_listener():
    """A client (no listener) dials a replica and gets the reply back over
    the same connection via the replica's accepted reply channel."""

    async def go():
        server_inbox = []
        client_inbox = []
        server = TcpTransport(0, lambda p, m: server_inbox.append((p, m)))
        host, port = await server.start()
        client = TcpTransport(1000, lambda p, m: client_inbox.append((p, m)))
        client.add_peer(0, host, port)  # never calls start(): no listener
        try:
            assert client.send(0, encode_message(1000, _sample_message(0)))
            await _wait_for(lambda: len(server_inbox) == 1)
            assert server_inbox == [(1000, _sample_message(0))]
            # The accepted connection became a reply channel for id 1000.
            assert server.send(1000, encode_message(0, _sample_message(1)))
            await _wait_for(lambda: len(client_inbox) == 1)
            assert client_inbox == [(0, _sample_message(1))]
            assert server.per_peer_counters()[1000]["frames_sent"] == 1
        finally:
            await client.close()
            await server.close()

    asyncio.run(go())


def test_per_peer_counters_merge_static_and_accepted():
    async def go():
        a, b, inbox_a, inbox_b = await _start_pair()
        try:
            assert a.send(1, encode_message(0, _sample_message(0)))
            await _wait_for(lambda: len(inbox_b) == 1)
            counters = a.per_peer_counters()
            assert counters[1]["frames_sent"] == 1
            assert counters[1]["bytes_sent"] > 0
            assert counters[1]["connect_attempts"] >= 1
        finally:
            await a.close()
            await b.close()

    asyncio.run(go())


def test_close_is_clean_and_idempotent_send_refused():
    async def go():
        a, b, _, inbox_b = await _start_pair()
        a.send(1, encode_message(0, _sample_message()))
        await _wait_for(lambda: len(inbox_b) == 1)
        await a.close()
        await b.close()
        # After close the channel refuses quietly instead of queueing.
        assert a.send(1, b"late") is False

    asyncio.run(go())
