"""Tests for the reliable-channel layer over a lossy transport."""

import pytest

from repro.net.conditions import SynchronousDelay
from repro.net.loss import IIDLoss, LossModel, NoLoss
from repro.net.reliable import (
    AckPacket,
    ChannelConfig,
    DataPacket,
    ReliableNetwork,
)
from repro.sim.process import Process
from repro.sim.scheduler import Scheduler


class Sink(Process):
    def __init__(self, process_id, scheduler):
        super().__init__(process_id, scheduler)
        self.received = []

    def on_message(self, sender, message):
        self.received.append((sender, message))


class ScriptedLoss(LossModel):
    """Drops the Nth, N+1th, ... transmissions on a link (0-indexed),
    delivering everything else exactly once.  Deterministic by design."""

    def __init__(self, drop_indices):
        self.drop_indices = set(drop_indices)
        self.count = 0

    def copies(self, sender, receiver, message, now, rng):
        index = self.count
        self.count += 1
        return 0 if index in self.drop_indices else 1


def build(n=2, seed=1, loss=None, channel=None, delta=1.0):
    scheduler = Scheduler(seed=seed)
    network = ReliableNetwork(
        scheduler,
        SynchronousDelay(delta=delta, min_delay=0.1),
        loss_model=loss,
        channel=channel,
    )
    sinks = [Sink(i, scheduler) for i in range(n)]
    for sink in sinks:
        network.register(sink)
    return scheduler, network, sinks


def payloads(sink):
    return [m for _, m in sink.received]


# ----------------------------------------------------------------------
# Framing and transparency
# ----------------------------------------------------------------------
def test_receiver_sees_raw_payload_not_the_frame():
    scheduler, network, sinks = build()
    network.send(0, 1, "hello")
    scheduler.run(until=5.0)
    assert sinks[1].received == [(0, "hello")]


def test_lossless_delivery_is_exactly_once():
    scheduler, network, sinks = build(loss=NoLoss())
    for i in range(20):
        network.send(0, 1, f"m{i}")
    scheduler.run(until=50.0)
    # Arrival order is delay-dependent; delivery is exactly-once, not FIFO.
    assert sorted(payloads(sinks[1]), key=lambda m: int(m[1:])) == [
        f"m{i}" for i in range(20)
    ]
    assert network.retransmissions == 0
    assert network.duplicates_suppressed == 0


def test_self_delivery_bypasses_the_channel():
    scheduler, network, sinks = build()
    network.send(0, 0, "me")
    scheduler.run(until=1.0)
    assert sinks[0].received == [(0, "me")]
    assert network.acks_sent == 0


def test_wire_sizes_of_frames():
    packet = DataPacket(seq=3, payload="x")
    assert packet.wire_size() == 8 + 64  # header + untyped default
    ack = AckPacket(cumulative=5, selective=(7, 9))
    assert ack.wire_size() == 32 + 2 * 4


# ----------------------------------------------------------------------
# Retransmission
# ----------------------------------------------------------------------
def test_dropped_packet_is_retransmitted_and_delivered():
    scheduler, network, sinks = build(
        loss=ScriptedLoss({0}),  # lose only the first transmission
        channel=ChannelConfig(initial_rto=2.0, jitter=0.0),
    )
    network.send(0, 1, "persist")
    scheduler.run(until=30.0)
    assert payloads(sinks[1]) == ["persist"]
    assert network.retransmissions >= 1
    assert network.unacked_count(0, 1) == 0  # eventually acked


def test_retransmission_uses_exponential_backoff():
    times = []

    scheduler, network, sinks = build(
        loss=IIDLoss(drop=1.0 - 1e-12),  # everything is lost
        channel=ChannelConfig(initial_rto=1.0, backoff=2.0, jitter=0.0, max_attempts=4),
    )
    network.add_channel_hook(
        lambda kind, s, r, p, t: times.append(t) if kind == "retransmit" else None
    )
    network.send(0, 1, "doomed")
    scheduler.run(until=200.0)
    # Retransmits at RTO 1, 2, 4, 8 after each prior attempt.
    assert times == [1.0, 3.0, 7.0, 15.0]
    assert network.packets_abandoned == 1
    assert network.unacked_count(0, 1) == 0


def test_acked_packet_is_not_retransmitted():
    scheduler, network, sinks = build(
        loss=NoLoss(), channel=ChannelConfig(initial_rto=50.0, max_rto=50.0, jitter=0.0)
    )
    network.send(0, 1, "quick")
    scheduler.run(until=10.0)  # delivered and acked well before the RTO
    assert network.unacked_count(0, 1) == 0
    scheduler.run(until=200.0)
    assert network.retransmissions == 0


def test_max_rto_caps_backoff():
    config = ChannelConfig(initial_rto=1.0, backoff=10.0, max_rto=5.0, jitter=0.0)
    assert config.rto_for_attempt(0) == 1.0
    assert config.rto_for_attempt(1) == 5.0
    assert config.rto_for_attempt(5) == 5.0


def test_channel_config_validation():
    with pytest.raises(ValueError):
        ChannelConfig(initial_rto=0.0)
    with pytest.raises(ValueError):
        ChannelConfig(backoff=0.5)
    with pytest.raises(ValueError):
        ChannelConfig(max_rto=1.0, initial_rto=2.0)
    with pytest.raises(ValueError):
        ChannelConfig(max_attempts=0)
    with pytest.raises(ValueError):
        ChannelConfig(window=0)


# ----------------------------------------------------------------------
# Deduplication
# ----------------------------------------------------------------------
def test_transport_duplicates_reach_the_process_once():
    scheduler, network, sinks = build(
        loss=IIDLoss(duplicate=1.0 - 1e-12, max_copies=3)
    )
    network.send(0, 1, "once")
    scheduler.run(until=30.0)
    assert payloads(sinks[1]) == ["once"]
    assert network.duplicates_suppressed == 2


def test_spurious_retransmission_is_suppressed():
    """A slow ack triggers a retransmit; the receiver must not deliver the
    packet twice."""
    scheduler, network, sinks = build(
        loss=NoLoss(),
        # RTO below the minimum round trip (2 x min_delay = 0.2):
        # a spurious retransmit is guaranteed.
        channel=ChannelConfig(initial_rto=0.15, jitter=0.0),
        delta=1.0,
    )
    network.send(0, 1, "slow-ack")
    scheduler.run(until=30.0)
    assert payloads(sinks[1]) == ["slow-ack"]
    assert network.retransmissions >= 1
    assert network.duplicates_suppressed >= 1


def test_reordered_delivery_is_preserved_not_resequenced():
    """The channel restores reliability, not FIFO: the protocol tolerates
    reordering (the paper's model), so deliveries stay in arrival order."""
    scheduler, network, sinks = build(
        seed=13,
        loss=ScriptedLoss({0}),  # first packet's first copy lost
        channel=ChannelConfig(initial_rto=5.0, jitter=0.0),
    )
    network.send(0, 1, "a")  # lost, retransmitted at ~5
    network.send(0, 1, "b")  # delivered at ~1
    scheduler.run(until=60.0)
    assert sorted(payloads(sinks[1])) == ["a", "b"]
    assert payloads(sinks[1])[0] == "b"  # arrival order, no head-of-line block


def test_selective_acks_prevent_spurious_retransmits_of_reordered_packets():
    """With out-of-order arrivals, the cumulative ack lags; the selective
    list must still confirm the later packets."""
    scheduler, network, sinks = build(
        loss=ScriptedLoss({0}),
        channel=ChannelConfig(
            initial_rto=100.0, max_rto=100.0, jitter=0.0, max_selective=8
        ),
    )
    for i in range(5):
        network.send(0, 1, f"m{i}")
    scheduler.run(until=50.0)  # m0 lost until RTO 100; m1..m4 delivered, acked
    # Only m0 may remain unacked; m1..m4 were selectively acked.
    assert network.unacked_count(0, 1) == 1


# ----------------------------------------------------------------------
# Crash semantics
# ----------------------------------------------------------------------
def test_crashed_receiver_gets_no_delivery_and_no_ack():
    scheduler, network, sinks = build(
        loss=NoLoss(), channel=ChannelConfig(initial_rto=2.0, jitter=0.0, max_attempts=3)
    )
    sinks[1].crash()
    network.send(0, 1, "void")
    scheduler.run(until=100.0)
    assert sinks[1].received == []
    assert network.acks_sent == 0
    assert network.retransmissions == 3  # kept retrying into the void
    assert network.packets_abandoned == 1


def test_recovered_receiver_gets_the_retransmission():
    scheduler, network, sinks = build(
        loss=NoLoss(), channel=ChannelConfig(initial_rto=2.0, jitter=0.0)
    )
    sinks[1].crash()
    network.send(0, 1, "patience")
    scheduler.run(until=3.0)
    assert sinks[1].received == []
    sinks[1].crashed = False  # recover the host
    scheduler.run(until=60.0)
    assert payloads(sinks[1]) == ["patience"]


def test_crashed_sender_stops_retransmitting():
    scheduler, network, sinks = build(
        loss=IIDLoss(drop=1.0 - 1e-12),
        channel=ChannelConfig(initial_rto=2.0, jitter=0.0, max_attempts=10),
    )
    network.send(0, 1, "orphan")
    scheduler.run(until=3.0)
    sinks[0].crash()
    scheduler.run(until=100.0)
    assert network.retransmissions <= 1  # at most the pre-crash attempt
    assert network.packets_abandoned == 1


# ----------------------------------------------------------------------
# Bounded buffers
# ----------------------------------------------------------------------
def test_sender_buffer_bound_abandons_oldest():
    scheduler, network, sinks = build(
        loss=IIDLoss(drop=1.0 - 1e-12),
        channel=ChannelConfig(
            initial_rto=1000.0, max_rto=1000.0, jitter=0.0, max_unacked=5
        ),
    )
    for i in range(8):
        network.send(0, 1, f"m{i}")
    assert network.unacked_count(0, 1) == 5
    assert network.packets_abandoned == 3


def test_receiver_window_bound_advances_the_floor():
    scheduler, network, sinks = build(
        loss=ScriptedLoss({0}),  # seq 0 lost: everything after buffers
        channel=ChannelConfig(
            initial_rto=10_000.0, max_rto=10_000.0, jitter=0.0, window=4
        ),
    )
    for i in range(8):
        network.send(0, 1, f"m{i}")
    scheduler.run(until=100.0)
    assert network.window_evictions > 0
    # All arrived packets were still delivered exactly once.
    assert sorted(payloads(sinks[1])) == [f"m{i}" for i in range(1, 8)]


# ----------------------------------------------------------------------
# Hooks and metrics separation
# ----------------------------------------------------------------------
def test_send_hooks_see_only_first_transmissions():
    seen = []
    scheduler, network, sinks = build(
        loss=ScriptedLoss({0}), channel=ChannelConfig(initial_rto=2.0, jitter=0.0)
    )
    network.add_send_hook(lambda s, r, m, t, d: seen.append(m))
    network.send(0, 1, "counted-once")
    scheduler.run(until=60.0)
    assert len(seen) == 1  # retransmits and acks invisible to send hooks
    assert isinstance(seen[0], DataPacket)
    assert seen[0].payload == "counted-once"
    assert network.retransmissions >= 1
    assert network.acks_sent >= 1


def test_channel_hooks_report_every_overhead_kind():
    kinds = set()
    scheduler, network, sinks = build(
        loss=ScriptedLoss({0, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}),
        channel=ChannelConfig(initial_rto=1.0, jitter=0.0, max_attempts=2),
    )
    network.add_channel_hook(lambda kind, s, r, p, t: kinds.add(kind))
    network.send(0, 1, "a")  # first copy lost -> retransmits -> abandoned
    network.send(0, 1, "b")  # delivered -> ack; its retransmit duplicates
    scheduler.run(until=200.0)
    assert "retransmit" in kinds
    assert "ack" in kinds
    assert "abandon" in kinds


def test_channel_summary_mentions_all_counters():
    _, network, _ = build()
    summary = network.channel_summary()
    for key in ("retransmissions", "acks", "duplicates_suppressed", "abandoned"):
        assert key in summary


def test_determinism_same_seed_same_channel_behavior():
    def run(seed):
        scheduler, network, sinks = build(
            n=3, seed=seed, loss=IIDLoss(drop=0.3, duplicate=0.1)
        )
        for i in range(30):
            network.send(i % 2, 2, f"m{i}")
        scheduler.run(until=500.0)
        return (
            payloads(sinks[2]),
            network.retransmissions,
            network.acks_sent,
            network.duplicates_suppressed,
        )

    assert run(21) == run(21)
    assert run(21) != run(22)
