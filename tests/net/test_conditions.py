"""Tests for delay models."""

import random

import pytest

from repro.net.conditions import (
    AsynchronousDelay,
    LeaderTargetingAdversary,
    NetworkSchedule,
    PartialSynchronyDelay,
    PartitionDelay,
    SynchronousDelay,
)


@pytest.fixture
def rng():
    return random.Random(0)


def draw_many(model, rng, count=200, sender=0, receiver=1, now=0.0):
    return [model.delay(sender, receiver, None, now, rng) for _ in range(count)]


def test_synchronous_bounded_by_delta(rng):
    model = SynchronousDelay(delta=2.0, min_delay=0.5)
    for delay in draw_many(model, rng):
        assert 0.5 <= delay <= 2.0


def test_synchronous_validation():
    with pytest.raises(ValueError):
        SynchronousDelay(delta=1.0, min_delay=2.0)
    with pytest.raises(ValueError):
        SynchronousDelay(delta=1.0, min_delay=0.0)


def test_asynchronous_has_heavy_tail_but_finite(rng):
    model = AsynchronousDelay(base_delay=0.1, tail_scale=5.0, max_delay=100.0)
    delays = draw_many(model, rng, count=2000)
    assert all(0.0 < d <= 100.0 for d in delays)
    assert max(delays) > 10.0  # the tail actually bites
    assert min(delays) < 1.0


def test_leader_targeting_slows_only_targets(rng):
    targets = {1}
    model = LeaderTargetingAdversary(
        targets=lambda: targets, attack_delay=50.0, fast=SynchronousDelay(delta=1.0)
    )
    assert model.delay(0, 1, None, 0.0, rng) >= 50.0  # to the target
    assert model.delay(1, 2, None, 0.0, rng) >= 50.0  # from the target
    assert model.delay(0, 2, None, 0.0, rng) <= 1.0  # unrelated traffic

    targets.clear()
    targets.add(2)  # adversary retargets as the leader changes
    assert model.delay(0, 1, None, 0.0, rng) <= 1.0
    assert model.delay(0, 2, None, 0.0, rng) >= 50.0


def test_partial_synchrony_switches_at_gst(rng):
    model = PartialSynchronyDelay(
        gst=100.0,
        before=AsynchronousDelay(base_delay=20.0, tail_scale=0.0),
        after=SynchronousDelay(delta=1.0),
    )
    assert model.delay(0, 1, None, 50.0, rng) >= 20.0
    assert model.delay(0, 1, None, 100.0, rng) <= 1.0


def test_partition_holds_cross_traffic_until_heal(rng):
    model = PartitionDelay(groups=[[0, 1], [2, 3]], heal_time=30.0, base=SynchronousDelay(delta=1.0))
    # Cross-partition before heal: held until heal time.
    assert model.delay(0, 2, None, 10.0, rng) >= 20.0
    # Same side: normal.
    assert model.delay(0, 1, None, 10.0, rng) <= 1.0
    # After heal: normal.
    assert model.delay(0, 2, None, 31.0, rng) <= 1.0


def test_partition_rejects_overlapping_groups():
    with pytest.raises(ValueError):
        PartitionDelay(groups=[[0, 1], [1, 2]], heal_time=1.0)


def test_schedule_picks_phase_by_time(rng):
    sync = SynchronousDelay(delta=1.0)
    slow = AsynchronousDelay(base_delay=30.0, tail_scale=0.0)
    schedule = NetworkSchedule([(0.0, sync), (50.0, slow), (100.0, sync)])
    assert schedule.model_at(10.0) is sync
    assert schedule.model_at(50.0) is slow
    assert schedule.model_at(99.0) is slow
    assert schedule.model_at(150.0) is sync
    assert schedule.delay(0, 1, None, 60.0, rng) >= 30.0
    assert schedule.delay(0, 1, None, 10.0, rng) <= 1.0


def test_schedule_validation():
    with pytest.raises(ValueError):
        NetworkSchedule([])
    with pytest.raises(ValueError):
        NetworkSchedule([(5.0, SynchronousDelay())])


def test_describe_strings():
    assert "sync" in SynchronousDelay().describe()
    assert "async" in AsynchronousDelay().describe()
    assert "GST" in PartialSynchronyDelay(1.0, SynchronousDelay(), SynchronousDelay()).describe()
    assert "schedule" in NetworkSchedule([(0.0, SynchronousDelay())]).describe()
