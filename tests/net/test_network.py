"""Tests for the simulated network."""

import pytest

from repro.net.conditions import SynchronousDelay
from repro.net.network import Network
from repro.sim.process import Process
from repro.sim.scheduler import Scheduler


class Sink(Process):
    def __init__(self, process_id, scheduler):
        super().__init__(process_id, scheduler)
        self.received = []

    def on_message(self, sender, message):
        self.received.append((sender, message, self.now))


def build(n=3, seed=1, delta=1.0):
    scheduler = Scheduler(seed=seed)
    network = Network(scheduler, SynchronousDelay(delta=delta, min_delay=0.1))
    sinks = [Sink(i, scheduler) for i in range(n)]
    for sink in sinks:
        network.register(sink)
    return scheduler, network, sinks


def test_send_delivers_with_delay():
    scheduler, network, sinks = build()
    network.send(0, 1, "hello")
    scheduler.run()
    assert len(sinks[1].received) == 1
    sender, message, at = sinks[1].received[0]
    assert (sender, message) == (0, "hello")
    assert 0.1 <= at <= 1.0


def test_multicast_reaches_everyone_including_self():
    scheduler, network, sinks = build(n=4)
    network.multicast(2, "ping")
    scheduler.run()
    for sink in sinks:
        assert [m for _, m, _ in sink.received] == ["ping"]


def test_multicast_exclude_self():
    scheduler, network, sinks = build(n=3)
    network.multicast(0, "ping", include_self=False)
    scheduler.run()
    assert sinks[0].received == []
    assert len(sinks[1].received) == 1


def test_self_delivery_not_counted_as_traffic():
    scheduler, network, sinks = build(n=3)
    network.multicast(0, "ping")
    scheduler.run()
    assert network.messages_sent == 2  # self-delivery excluded


def test_unknown_receiver_raises():
    _, network, _ = build(n=2)
    with pytest.raises(KeyError):
        network.send(0, 9, "x")


def test_duplicate_registration_rejected():
    scheduler, network, sinks = build(n=2)
    with pytest.raises(ValueError):
        network.register(Sink(0, scheduler))


def test_send_hooks_observe_traffic():
    scheduler, network, _ = build(n=3)
    seen = []
    network.add_send_hook(lambda s, r, m, t, d: seen.append((s, r, m)))
    network.multicast(1, "x")
    scheduler.run()
    assert sorted(seen) == [(1, 0, "x"), (1, 2, "x")]


def test_bytes_accounting_uses_wire_size():
    class Sized:
        def wire_size(self):
            return 123

    scheduler, network, _ = build(n=2)
    network.send(0, 1, Sized())
    assert network.bytes_sent == 123


def test_default_size_for_untyped_messages():
    scheduler, network, _ = build(n=2)
    network.send(0, 1, "plain")
    assert network.bytes_sent == 64


def test_determinism_same_seed_same_delivery_times():
    def run(seed):
        scheduler, network, sinks = build(n=3, seed=seed)
        for i in range(10):
            network.multicast(0, f"m{i}")
        scheduler.run()
        return [(s, m, t) for sink in sinks for (s, m, t) in sink.received]

    assert run(7) == run(7)
    assert run(7) != run(8)


def test_swap_delay_model_mid_run():
    scheduler, network, sinks = build(n=2)
    network.send(0, 1, "fast")
    scheduler.run()
    network.set_delay_model(SynchronousDelay(delta=50.0, min_delay=40.0))
    network.send(0, 1, "slow")
    start = scheduler.now
    scheduler.run()
    _, _, at = sinks[1].received[-1]
    assert at - start >= 40.0


def test_crashed_process_receives_nothing():
    scheduler, network, sinks = build(n=2)
    sinks[1].crash()
    network.send(0, 1, "x")
    scheduler.run()
    assert sinks[1].received == []
