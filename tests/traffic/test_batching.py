"""The adaptive proposal-batch controller: hysteresis and convergence."""

import pytest

from repro.traffic.batching import AdaptiveBatchController
from repro.traffic.envelope import ArrivalEnvelope


def test_validation():
    with pytest.raises(ValueError):
        AdaptiveBatchController(min_batch=0)
    with pytest.raises(ValueError):
        AdaptiveBatchController(min_batch=10, max_batch=5)
    with pytest.raises(ValueError):
        AdaptiveBatchController(drain_rounds=0)
    with pytest.raises(ValueError):
        AdaptiveBatchController(hysteresis=1.0)


def test_start_is_clamped():
    controller = AdaptiveBatchController(min_batch=5, max_batch=50, start=1000)
    assert controller.current == 50


def test_deep_backlog_grows_batch():
    controller = AdaptiveBatchController(min_batch=1, max_batch=160, start=10)
    size = controller.tune(mempool_depth=1000, now=0.0)
    assert size > 10
    for step in range(1, 20):
        size = controller.tune(mempool_depth=1000, now=float(step))
    # Converges to the hysteresis band around the cap (the band's width is
    # the point: the controller stops adjusting once within ±25% of target).
    assert size >= 160 * 0.75


def test_empty_mempool_shrinks_batch():
    controller = AdaptiveBatchController(min_batch=1, max_batch=160, start=100)
    size = 100
    for step in range(20):
        size = controller.tune(mempool_depth=0, now=float(step))
    assert size == 1


def test_hysteresis_suppresses_small_moves():
    controller = AdaptiveBatchController(min_batch=1, max_batch=160, start=100)
    # Target 90 is within the ±25% band around 100: no adjustment.
    size = controller.tune(mempool_depth=180, now=0.0)  # ceil(180/2) = 90
    assert size == 100
    assert controller.adjustments == 0
    assert controller.tunes == 1


def test_geometric_approach_is_gradual():
    controller = AdaptiveBatchController(min_batch=1, max_batch=160, start=10)
    first = controller.tune(mempool_depth=320, now=0.0)  # target 160
    # Halfway (75 of the 150 gap), not a jump to the target.
    assert 10 < first < 160


def test_envelope_rate_holds_batch_size_without_backlog():
    envelope = ArrivalEnvelope(horizons=(1.0, 5.0))
    controller = AdaptiveBatchController(
        min_batch=1, max_batch=160, start=40, envelope=envelope
    )
    # 50 tx/s offered; proposals every 2s => rate target ~100.
    now = 0.0
    for round_number in range(1, 30):
        now = round_number * 2.0
        for tick in range(100):  # 50/s for the 2s interval
            envelope.observe(now - 2.0 + tick * 0.02)
        size = controller.tune(mempool_depth=0, now=now)
    # Despite an empty mempool the envelope keeps the size provisioned.
    assert size > 20


def test_counters_track_activity():
    controller = AdaptiveBatchController(start=10)
    controller.tune(0, now=0.0)
    controller.tune(1000, now=1.0)
    counters = controller.counters()
    assert counters["tunes"] == 2
    assert counters["adjustments"] >= 1
    assert counters["current"] == controller.current
