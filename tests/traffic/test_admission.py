"""Bounded-queue admission control: shed, count, attribute."""

import pytest

from repro.mempool.mempool import Mempool
from repro.traffic.admission import AdmissionController
from repro.traffic.envelope import TrafficEnvelope
from repro.traffic.slo import RequestTracker
from repro.types.transactions import make_transaction


def bounded_pools(n=3, capacity=5):
    return [Mempool(batch_size=10, capacity=capacity) for _ in range(n)]


def test_needs_mempools():
    with pytest.raises(ValueError):
        AdmissionController([])


def test_admits_until_capacity_then_rejects():
    admission = AdmissionController(bounded_pools(capacity=5))
    results = [
        admission.offer(make_transaction(i, submitted_at=float(i)))
        for i in range(8)
    ]
    assert results == [True] * 5 + [False] * 3
    counters = admission.counters()
    assert counters["offered"] == 8
    assert counters["admitted"] == 5
    assert counters["rejected"] == 3
    assert counters["reject_rate"] == pytest.approx(3 / 8)
    # Every pool rejected the 3 overflow offers.
    assert counters["mempool_rejects"] == 9


def test_rejects_attributed_per_source():
    admission = AdmissionController(bounded_pools(capacity=2))
    for i in range(4):
        admission.offer(make_transaction(i, client=7))
    admission.offer(make_transaction(9, client=8))
    assert admission.counters()["rejected_by_source"] == {7: 2, 8: 1}


def test_envelope_sees_offered_not_admitted_load():
    envelope = TrafficEnvelope()
    admission = AdmissionController(bounded_pools(capacity=2), envelope=envelope)
    for i in range(10):
        admission.offer(make_transaction(i, submitted_at=1.0))
    # All 10 offers observed, even though 8 were shed.
    assert envelope.cluster.total == 10


def test_tracker_sees_admitted_only():
    tracker = RequestTracker()
    admission = AdmissionController(bounded_pools(capacity=2), tracker=tracker)
    for i in range(10):
        admission.offer(make_transaction(i, submitted_at=1.0))
    assert len(tracker.submitted) == 2


def test_duplicate_offer_of_pending_transaction_is_admitted():
    admission = AdmissionController(bounded_pools(capacity=5))
    transaction = make_transaction(0)
    assert admission.offer(transaction)
    assert admission.offer(transaction)  # retransmit: still pending => True
    assert admission.counters()["rejected"] == 0


def test_depth_is_max_mempool_backlog():
    pools = bounded_pools(capacity=100)
    admission = AdmissionController(pools)
    for i in range(7):
        admission.offer(make_transaction(i))
    pools[0].mark_committed([make_transaction(0)])
    assert admission.depth() == 7  # other pools still hold everything


def test_unbounded_pools_never_reject():
    admission = AdmissionController([Mempool(batch_size=10) for _ in range(2)])
    for i in range(1000):
        assert admission.offer(make_transaction(i))
    assert admission.counters()["rejected"] == 0
