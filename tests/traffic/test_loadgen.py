"""Load generators: seeded schedules, sim-clock and wall-clock drivers."""

import asyncio
import itertools

import pytest

from repro.sim.scheduler import Scheduler
from repro.traffic.loadgen import (
    BurstArrivals,
    BurstyRampArrivals,
    ClosedLoopGenerator,
    OpenLoopGenerator,
    PoissonArrivals,
    UniformArrivals,
)


def take(schedule, count):
    return list(itertools.islice(schedule.gaps(), count))


# ----------------------------------------------------------------------
# Schedules
# ----------------------------------------------------------------------
def test_uniform_gaps():
    assert take(UniformArrivals(4.0), 3) == [0.25, 0.25, 0.25]
    with pytest.raises(ValueError):
        UniformArrivals(0.0)


def test_poisson_is_seed_deterministic():
    a = take(PoissonArrivals(10.0, seed=7), 50)
    b = take(PoissonArrivals(10.0, seed=7), 50)
    c = take(PoissonArrivals(10.0, seed=8), 50)
    assert a == b
    assert a != c
    # Mean gap ~ 1/rate.
    assert sum(a) / len(a) == pytest.approx(0.1, rel=0.5)


def test_burst_gap_pattern():
    gaps = take(BurstArrivals(3, 5.0, bursts=2), 10)
    # 3 arrivals (2 zero gaps), wait, 3 arrivals, stop — no trailing wait.
    assert gaps == [0.0, 0.0, 5.0, 0.0, 0.0]


def test_bursty_ramp_rate_sweeps_up():
    ramp = BurstyRampArrivals(base_rate=2.0, peak_rate=50.0, period=10.0, seed=1)
    assert ramp.rate_at(0.0) == pytest.approx(2.0)
    assert ramp.rate_at(9.999) == pytest.approx(50.0, rel=0.01)
    assert ramp.rate_at(10.0) == pytest.approx(2.0)  # sawtooth reset
    assert take(ramp, 20) == take(
        BurstyRampArrivals(base_rate=2.0, peak_rate=50.0, period=10.0, seed=1), 20
    )
    with pytest.raises(ValueError):
        BurstyRampArrivals(base_rate=10.0, peak_rate=5.0, period=1.0)


# ----------------------------------------------------------------------
# Open loop (sim clock)
# ----------------------------------------------------------------------
def test_open_loop_emits_on_schedule():
    scheduler = Scheduler(seed=1)
    seen = []
    generator = OpenLoopGenerator(
        UniformArrivals(10.0), lambda tx: seen.append(tx) or True
    )
    generator.start(scheduler)
    scheduler.run(until=1.0)
    assert 9 <= len(seen) <= 12
    assert seen[0].submitted_at == 0.0


def test_open_loop_burst_lands_same_instant():
    scheduler = Scheduler(seed=1)
    generator = OpenLoopGenerator(
        BurstArrivals(4, 5.0, bursts=2), lambda tx: True
    )
    generator.start(scheduler)
    scheduler.run(until=20.0)
    times = sorted({tx.submitted_at for tx in generator.submitted})
    assert times == [0.0, 5.0]
    assert len(generator.submitted) == 8


def test_open_loop_counts_rejections():
    scheduler = Scheduler(seed=1)
    generator = OpenLoopGenerator(
        UniformArrivals(10.0),
        lambda tx: tx.tx_id.endswith(("0", "2", "4", "6", "8")),
        max_count=10,
    )
    generator.start(scheduler)
    scheduler.run(until=10.0)
    assert len(generator.submitted) == 10
    assert generator.rejected == 5


def test_open_loop_custom_factory_controls_ids():
    from repro.types.transactions import make_transaction

    scheduler = Scheduler(seed=1)
    generator = OpenLoopGenerator(
        UniformArrivals(100.0),
        lambda tx: True,
        factory=lambda index, now: make_transaction(
            index, client=42, submitted_at=now
        ),
        max_count=3,
    )
    generator.start(scheduler)
    scheduler.run(until=1.0)
    assert [tx.tx_id for tx in generator.submitted] == [
        "tx-42-0", "tx-42-1", "tx-42-2",
    ]


# ----------------------------------------------------------------------
# Open loop (wall clock)
# ----------------------------------------------------------------------
def test_open_loop_wall_clock_driver():
    async def go():
        loop = asyncio.get_running_loop()
        epoch = loop.time()
        generator = OpenLoopGenerator(UniformArrivals(100.0), lambda tx: True)
        await generator.run_wall_clock(0.2, lambda: loop.time() - epoch)
        return generator

    generator = asyncio.run(go())
    # ~20 arrivals in 0.2s at 100/s; scheduling jitter allowed.
    assert 5 <= len(generator.submitted) <= 25
    assert all(tx.submitted_at <= 0.25 for tx in generator.submitted)


# ----------------------------------------------------------------------
# Closed loop
# ----------------------------------------------------------------------
def test_closed_loop_fills_and_refills():
    scheduler = Scheduler(seed=1)
    generator = ClosedLoopGenerator(3, lambda tx: True)
    generator.start(scheduler)
    assert len(generator.submitted) == 3
    generator.notify_committed(generator.submitted[0])
    assert len(generator.submitted) == 4
    # Foreign clients are ignored.
    foreign = type(generator.submitted[0])(tx_id="x", client=99)
    generator.notify_committed(foreign)
    assert len(generator.submitted) == 4
    with pytest.raises(ValueError):
        ClosedLoopGenerator(0, lambda tx: True)
