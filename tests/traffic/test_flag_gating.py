"""`adaptive_batching` gating: the flag-off path must be behaviorally inert.

BENCH_simcore fingerprints are the cross-PR determinism contract, so with
the flag off (the default) the traffic subsystem must not exist from the
replica's point of view: no controller, no envelope hook on the mempool,
no batch-size drift, and no traffic-object construction anywhere in the
proposal hot path.
"""

import pytest

from repro.core.config import ProtocolConfig
from repro.runtime.cluster import ClusterBuilder
from repro.traffic.batching import AdaptiveBatchController
from repro.traffic.envelope import ArrivalEnvelope, TrafficEnvelope


def test_flag_defaults_off_and_validates():
    assert ProtocolConfig(n=4).adaptive_batching is False
    with pytest.raises(ValueError):
        ProtocolConfig(n=4, adaptive_min_batch=0)
    with pytest.raises(ValueError):
        ProtocolConfig(n=4, adaptive_min_batch=10, adaptive_max_batch=5)


def test_flag_off_wires_nothing():
    cluster = ClusterBuilder(n=4, seed=1).build()
    for replica in cluster.replicas:
        assert replica._batch_controller is None
        assert replica.mempool._envelope is None


def test_flag_off_never_constructs_traffic_objects(monkeypatch):
    """No per-round (or even per-run) traffic allocation with the flag off."""

    def forbid(name):
        def boom(self, *args, **kwargs):
            raise AssertionError(f"{name} constructed in flag-off mode")

        return boom

    monkeypatch.setattr(AdaptiveBatchController, "__init__", forbid("controller"))
    monkeypatch.setattr(TrafficEnvelope, "__init__", forbid("traffic envelope"))
    monkeypatch.setattr(ArrivalEnvelope, "__init__", forbid("arrival envelope"))
    cluster = ClusterBuilder(n=4, seed=1).build()
    cluster.run(until=60.0)
    assert cluster.metrics.decisions() > 0


def test_flag_off_batch_size_never_drifts():
    cluster = ClusterBuilder(n=4, seed=1).with_preload(2000).build()
    cluster.run(until=120.0)
    assert all(m.batch_size == cluster.config.batch_size for m in cluster.mempools)


def test_flag_on_tunes_batch_size_under_backlog():
    config = ProtocolConfig(n=4, adaptive_batching=True, adaptive_max_batch=160)
    cluster = (
        ClusterBuilder(n=4, seed=1, config=config).with_preload(5000).build()
    )
    cluster.run(until=120.0)
    for replica in cluster.replicas:
        assert replica._batch_controller is not None
    # A 5000-deep backlog must push proposers past the fixed default of 10.
    assert max(m.batch_size for m in cluster.mempools) > config.batch_size
    assert cluster.metrics.decisions() > 0
