"""Arrival-rate envelopes: sliding-window rates across horizons."""

import pytest

from repro.traffic.envelope import DEFAULT_HORIZONS, ArrivalEnvelope, TrafficEnvelope


def test_rejects_bad_horizons():
    with pytest.raises(ValueError):
        ArrivalEnvelope(horizons=())
    with pytest.raises(ValueError):
        ArrivalEnvelope(horizons=(0.0, 5.0))


def test_steady_stream_rate_is_approximate():
    envelope = ArrivalEnvelope(horizons=(1.0, 5.0))
    # 10/sec for 5 seconds.
    for tick in range(50):
        envelope.observe(tick * 0.1)
    # Window edges cover one extra partial bucket, so assert a band.
    assert envelope.rate(1.0, now=4.9) == pytest.approx(10.0, rel=0.3)
    assert envelope.rate(5.0, now=4.9) == pytest.approx(10.0, rel=0.3)
    assert envelope.total == 50


def test_burst_dominates_short_horizon():
    envelope = ArrivalEnvelope(horizons=(1.0, 30.0))
    envelope.observe(10.0, count=100)  # one 100-tx burst
    short = envelope.rate(1.0, now=10.0)
    long = envelope.rate(30.0, now=10.0)
    assert short > long  # the burst is 100/s short-term, ~3/s sustained
    assert envelope.envelope_rate(10.0) == short


def test_old_arrivals_age_out():
    envelope = ArrivalEnvelope(horizons=(1.0,))
    envelope.observe(0.0, count=50)
    assert envelope.rate(1.0, now=0.0) > 0
    # Far beyond the ring: everything expired.
    assert envelope.rate(1.0, now=100.0) == 0.0
    assert envelope.total == 50  # lifetime counter survives


def test_envelope_rate_is_max_across_horizons():
    envelope = ArrivalEnvelope(horizons=(1.0, 10.0))
    envelope.observe(5.0, count=20)
    rates = envelope.snapshot(now=5.0)
    assert rates["envelope"] == max(rates["rate_1s"], rates["rate_10s"])


def test_out_of_order_observations_do_not_crash():
    envelope = ArrivalEnvelope(horizons=(1.0,))
    envelope.observe(5.0)
    envelope.observe(4.2)  # skewed clock: credited to the head bucket
    assert envelope.total == 2


def test_traffic_envelope_tracks_sources():
    traffic = TrafficEnvelope(horizons=DEFAULT_HORIZONS)
    traffic.observe(source=1, now=0.5)
    traffic.observe(source=1, now=0.6)
    traffic.observe(source=2, now=0.6)
    assert traffic.cluster.total == 3
    assert traffic.per_source[1].total == 2
    assert traffic.source_rate(1, now=0.6) > traffic.source_rate(2, now=0.6)
    assert traffic.source_rate(99) == 0.0
    snapshot = traffic.snapshot(now=0.6)
    assert set(snapshot["sources"]) == {1, 2}
