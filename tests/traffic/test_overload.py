"""Overload behavior: commits continue and sheds are counted at 5x the knee.

The issue's acceptance property: with bounded mempools, an offered load
well past the sustainable rate must degrade gracefully — admission sheds
the excess (and counts it) while the cluster keeps committing the work it
admitted.  Checked both on the simulator clock and against a small live
TCP cluster.
"""

from dataclasses import replace

from repro.runtime.live import LiveCluster
from repro.traffic.saturation import default_scenarios, measure_rate

#: steady-n4's measured knee is ~50 offers/sec (see BENCH_traffic.json);
#: these tests probe at 10/s (comfortably under) and 250/s (~5x over).
UNDER_RATE = 10.0
OVERLOAD_RATE = 250.0


def test_sim_underload_is_sustainable():
    scenario = default_scenarios()["steady-n4"]
    measurement = measure_rate(
        scenario, UNDER_RATE, duration=20.0, drain=20.0, seed=3
    )
    assert measurement.sustainable
    assert measurement.rejected == 0


def test_sim_overload_commits_continue_and_rejects_are_counted():
    scenario = replace(default_scenarios()["steady-n4"], mempool_capacity=200)
    measurement = measure_rate(
        scenario, OVERLOAD_RATE, duration=20.0, drain=60.0, seed=3
    )
    # The cluster shed load instead of falling over ...
    assert not measurement.sustainable
    assert measurement.rejected > 0
    assert measurement.offered == measurement.admitted + measurement.rejected
    # ... while commits kept flowing throughout:
    assert measurement.committed > 0
    assert measurement.goodput > 0
    # and everything admitted (minus at most one mempool of backlog)
    # eventually committed during the drain window.
    assert measurement.committed >= measurement.admitted - scenario.mempool_capacity


def test_sim_overload_latency_stays_bounded_by_queue_cap():
    """Bounded queues bound queueing delay: overload p99 stays finite/sane."""
    scenario = replace(default_scenarios()["steady-n4"], mempool_capacity=200)
    measurement = measure_rate(
        scenario, OVERLOAD_RATE, duration=20.0, drain=20.0, seed=3
    )
    assert measurement.latency.p99 is not None
    # 200 queued / ~50 per sec service => worst-case ~4s of queueing plus
    # a few rounds of consensus; far below the unbounded-queue blowup.
    assert measurement.latency.p99 < 30.0


def test_live_overload_smoke():
    """Live TCP cluster at an absurd offered rate with tiny mempools."""
    cluster = LiveCluster(n=4, seed=11, round_timeout=1.0, preload=0)
    record = cluster.run_open_loop(
        rate=2000.0, duration=1.0, drain=8.0, mempool_capacity=4
    )
    assert record["offered"] == record["admitted"] + record["rejected"]
    assert record["rejected"] > 0
    assert record["committed"] > 0
    assert record["ledgers_consistent"]
