"""SLO percentile math and the per-request lifecycle tracker."""

import statistics

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.traffic.slo import LatencySummary, RequestTracker, percentile, summarize


# ----------------------------------------------------------------------
# percentile
# ----------------------------------------------------------------------
def test_percentile_empty_is_none():
    assert percentile([], 50) is None


def test_percentile_single_value():
    assert percentile([3.5], 99) == 3.5


def test_percentile_interpolates():
    values = [0.0, 10.0]
    assert percentile(values, 50) == pytest.approx(5.0)
    assert percentile(values, 25) == pytest.approx(2.5)


def test_percentile_order_insensitive():
    assert percentile([5.0, 1.0, 3.0], 50) == percentile([1.0, 3.0, 5.0], 50)


@given(
    st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=2,
        max_size=200,
    ),
    st.integers(min_value=1, max_value=99),
)
def test_percentile_matches_statistics_quantiles(values, p):
    """The extracted helper is the stdlib's inclusive quantile method."""
    expected = statistics.quantiles(values, n=100, method="inclusive")[p - 1]
    assert percentile(values, p) == pytest.approx(expected, rel=1e-9, abs=1e-9)


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=100,
    )
)
def test_percentile_bounded_by_min_max(values):
    for p in (0, 50, 100):
        result = percentile(values, p)
        assert min(values) <= result <= max(values)


# ----------------------------------------------------------------------
# summarize
# ----------------------------------------------------------------------
def test_summarize_empty():
    summary = summarize([])
    assert summary == LatencySummary(
        count=0, p50=None, p95=None, p99=None, mean=None, max=None
    )
    assert summary.to_json()["count"] == 0


def test_summarize_population():
    summary = summarize([1.0, 2.0, 3.0, 4.0])
    assert summary.count == 4
    assert summary.p50 == pytest.approx(2.5)
    assert summary.mean == pytest.approx(2.5)
    assert summary.max == 4.0


# ----------------------------------------------------------------------
# RequestTracker
# ----------------------------------------------------------------------
def test_tracker_full_lifecycle():
    tracker = RequestTracker()
    tracker.note_submit("tx-1", 1.0)
    tracker.note_propose("tx-1", 3.0)
    tracker.note_commit("tx-1", 6.0)
    tracker.note_confirm("tx-1", 7.5)
    assert tracker.queue_latencies() == [2.0]
    assert tracker.consensus_latencies() == [3.0]
    assert tracker.commit_latencies() == [5.0]
    assert tracker.confirm_latencies() == [6.5]
    assert tracker.committed_count() == 1
    assert tracker.pending_count() == 0


def test_tracker_first_occurrence_wins():
    tracker = RequestTracker()
    tracker.note_commit("tx-1", 5.0)
    tracker.note_commit("tx-1", 9.0)  # later replica commit: ignored
    tracker.note_submit("tx-1", 1.0)
    assert tracker.commit_latencies() == [4.0]


def test_tracker_pending_excludes_unsubmitted_commits():
    tracker = RequestTracker()
    tracker.note_submit("tx-a", 0.0)
    tracker.note_submit("tx-b", 0.0)
    tracker.note_commit("tx-a", 1.0)
    tracker.note_commit("tx-stray", 1.0)  # committed but never submitted here
    assert tracker.pending_count() == 1
    assert tracker.commit_latencies() == [1.0]


def test_tracker_summary_json_stages():
    tracker = RequestTracker()
    tracker.note_submit("tx-1", 0.0)
    tracker.note_commit("tx-1", 2.0)
    payload = tracker.summary_json()
    assert set(payload) == {"queue", "consensus", "commit", "confirm"}
    assert payload["commit"]["count"] == 1
    assert payload["confirm"]["count"] == 0
