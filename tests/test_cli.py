"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import _parse_byzantine, build_parser, main


def test_protocols_command(capsys):
    assert main(["protocols"]) == 0
    out = capsys.readouterr().out
    assert "fallback-3chain" in out
    assert "always-fallback" in out


def test_run_sync_default(capsys):
    assert main(["run", "--commits", "8", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "decisions:" in out
    assert "safety: OK" in out


def test_run_json_output(capsys):
    assert main(["run", "--commits", "5", "--seed", "1", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["live"]
    assert payload["decisions"] >= 5
    assert payload["safety_violations"] == []
    assert payload["protocol"] == "fallback-3chain"


def test_run_attack_network(capsys):
    assert main([
        "run", "--network", "attack", "--commits", "3", "--seed", "2", "--json",
    ]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["live"]
    assert payload["fallbacks"] >= 1


def test_run_with_byzantine_spec(capsys):
    assert main([
        "run", "--commits", "8", "--seed", "3",
        "--byzantine", "0:withhold", "--json",
    ]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["live"]


def test_run_with_crash_arg(capsys):
    assert main([
        "run", "--commits", "8", "--seed", "3",
        "--byzantine", "1:crash@15", "--json",
    ]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["live"]


def test_bad_byzantine_spec_exits():
    with pytest.raises(SystemExit):
        main(["run", "--byzantine", "0:hackerman"])
    with pytest.raises(SystemExit):
        main(["run", "--byzantine", "whatever"])


def test_parse_byzantine_helper():
    parsed = _parse_byzantine(["2:crash@25"])
    assert parsed[0][0] == 2
    assert _parse_byzantine([]) == []


def test_partition_network(capsys):
    assert main([
        "run", "--network", "partition", "--heal", "40",
        "--commits", "5", "--seed", "4", "--json", "--until", "5000",
    ]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["live"]


def test_table1_command(capsys):
    assert main(["table1", "--n", "4", "--commits", "12", "--until", "6000"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "NOT LIVE" in out  # the diembft async cell


def test_scaling_command(capsys):
    assert main(["scaling", "--sizes", "4", "7", "--until", "20000"]) == 0
    out = capsys.readouterr().out
    assert "sync slope" in out
    assert "async slope" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
