"""Integration tests for the BFT client layer."""

import pytest

from repro.analysis.safety import assert_cluster_safety
from repro.client.client import ClientReply
from repro.experiments.scenarios import leader_attack_factory
from repro.faults import SilentReplica, byzantine
from repro.runtime.cluster import ClusterBuilder


def build_with_clients(n=4, seed=71, clients=2, byz=None, delay_factory=None, **ckw):
    builder = (
        ClusterBuilder(n=n, seed=seed)
        .with_preload(0)  # clients generate the load
        .with_clients(clients, **ckw)
    )
    if byz is not None:
        builder.with_byzantine(*byz)
    if delay_factory is not None:
        builder.with_delay_model_factory(delay_factory)
    return builder.build()


def test_clients_get_confirmations():
    cluster = build_with_clients(outstanding=5)
    cluster.run(
        until=5_000, stop_when=lambda: cluster.total_confirmations() >= 30
    )
    assert cluster.total_confirmations() >= 30
    for client in cluster.clients:
        for confirmation in client.confirmations:
            assert len(confirmation.repliers) >= cluster.config.f + 1
            assert confirmation.latency > 0
    assert_cluster_safety(cluster.honest_replicas())


def test_confirmed_positions_match_the_ledger():
    cluster = build_with_clients()
    cluster.run(until=5_000, stop_when=lambda: cluster.total_confirmations() >= 10)
    replica = cluster.honest_replicas()[0]
    cluster.run(until=cluster.scheduler.now + 30)  # let the replica catch up
    for client in cluster.clients:
        for confirmation in client.confirmations:
            record = replica.ledger.record_at(confirmation.position)
            assert record is not None
            assert record.block.id == confirmation.block_id


def test_closed_loop_keeps_outstanding_bounded():
    cluster = build_with_clients(clients=1, outstanding=3)
    cluster.run(until=2_000, stop_when=lambda: cluster.total_confirmations() >= 10)
    client = cluster.clients[0]
    assert len(client.pending) <= 3


def test_total_limit_stops_submission():
    cluster = build_with_clients(clients=1, outstanding=2, total=6)
    cluster.run(until=5_000, stop_when=lambda: cluster.total_confirmations() >= 6)
    cluster.run(until=cluster.scheduler.now + 100)
    assert len(cluster.clients[0].confirmations) == 6


def test_confirmation_needs_f_plus_one_matching_replies():
    """A single lying replica cannot convince the client of a fake commit."""
    cluster = build_with_clients(clients=1, outstanding=1, total=3)
    client = cluster.clients[0]
    cluster.start()
    # A forged reply from replica 3 about a nonexistent commit.
    [tx_id] = list(client.pending)
    client.deliver(3, ClientReply(tx_id=tx_id, position=99, block_id="fake", replica=3))
    assert client.confirmations == []  # one reply is never enough
    # Mismatched sender/replica fields are dropped entirely.
    client.deliver(2, ClientReply(tx_id=tx_id, position=99, block_id="fake", replica=3))
    assert client.pending[tx_id].replies == {3: (99, "fake")}


def test_client_works_with_a_silent_replica():
    cluster = build_with_clients(byz=(1, byzantine(SilentReplica)))
    cluster.run(until=10_000, stop_when=lambda: cluster.total_confirmations() >= 10)
    assert cluster.total_confirmations() >= 10


def test_retransmission_after_committed_reply_is_answered_directly():
    cluster = build_with_clients(clients=1, outstanding=2, retransmit_interval=5.0)
    cluster.run(until=3_000, stop_when=lambda: cluster.total_confirmations() >= 5)
    replica = cluster.honest_replicas()[0]
    confirmed = cluster.clients[0].confirmations[0]
    # Simulate a late retransmission of an already-committed transaction.
    from repro.client.client import ClientRequest
    from repro.types.transactions import Transaction

    tx = Transaction(tx_id=confirmed.tx_id, client=cluster.clients[0].process_id)
    before = cluster.network.messages_sent
    replica.deliver(cluster.clients[0].process_id, ClientRequest(tx))
    assert cluster.network.messages_sent == before + 1  # immediate reply


def test_client_survives_async_attack():
    cluster = build_with_clients(
        clients=1, outstanding=3, retransmit_interval=40.0,
        delay_factory=leader_attack_factory(),
    )
    cluster.run(until=60_000, stop_when=lambda: cluster.total_confirmations() >= 5)
    assert cluster.total_confirmations() >= 5
    assert_cluster_safety(cluster.honest_replicas())


def test_clients_not_in_multicast_group():
    cluster = build_with_clients(clients=1)
    assert cluster.network.process_ids() == [0, 1, 2, 3]
    assert cluster.network.all_process_ids() == [0, 1, 2, 3, 4]


def test_default_retransmit_interval_derives_from_timeout_config():
    """Built through the cluster, the base interval tracks the protocol's
    round timeout instead of a hard-coded constant."""
    cluster = build_with_clients(clients=1)
    client = cluster.clients[0]
    assert client.retransmit_interval == 2.0 * cluster.config.round_timeout
    assert client.retransmit_cap == 8.0 * client.retransmit_interval
    # An explicit interval still wins.
    explicit = build_with_clients(clients=1, retransmit_interval=3.0)
    assert explicit.clients[0].retransmit_interval == 3.0


def test_retransmissions_back_off_exponentially():
    """With replies suppressed, per-request retransmit gaps must grow by
    the backoff factor until the cap."""
    cluster = build_with_clients(
        clients=1,
        outstanding=1,
        retransmit_interval=4.0,
        retransmit_backoff=2.0,
        retransmit_cap=16.0,
    )
    client = cluster.clients[0]
    sent_at = []
    original = client._broadcast

    def recording_broadcast(transaction):
        sent_at.append(client.now)
        original(transaction)

    client._broadcast = recording_broadcast
    # Cut the client off from all replies: requests never confirm.
    client.replica_ids = []
    cluster.start()
    cluster.scheduler.run(until=100.0)
    gaps = [b - a for a, b in zip(sent_at, sent_at[1:])]
    assert gaps[:3] == pytest.approx([4.0, 8.0, 16.0])
    assert all(gap == pytest.approx(16.0) for gap in gaps[2:])  # capped


def test_backoff_resets_per_request_not_globally():
    """A confirmed request must not inherit the backoff of earlier ones:
    each pending request tracks its own attempt count."""
    cluster = build_with_clients(clients=1, outstanding=2, retransmit_interval=5.0)
    cluster.run(until=3_000, stop_when=lambda: cluster.total_confirmations() >= 5)
    assert cluster.total_confirmations() >= 5
    for request in cluster.clients[0].pending.values():
        assert request.attempts <= 2  # fresh requests start from zero


def test_client_parameter_validation():
    with pytest.raises(ValueError):
        build_with_clients(clients=1, retransmit_interval=0.0)
    with pytest.raises(ValueError):
        build_with_clients(clients=1, retransmit_backoff=0.5)
