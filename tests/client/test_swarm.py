"""Client swarm: percentile math, report plumbing, and a live closed-loop
run against a real multi-process cluster."""

import asyncio

import pytest

from repro.client.swarm import ClientSwarm, SwarmClient, percentile
from repro.runtime.spec import ClusterSpec
from repro.runtime.supervisor import Supervisor

# ----------------------------------------------------------------------
# Percentile math (linear interpolation)
# ----------------------------------------------------------------------
def test_percentile_empty_and_singleton():
    assert percentile([], 50) is None
    assert percentile([7.0], 0) == 7.0
    assert percentile([7.0], 99) == 7.0


def test_percentile_interpolates():
    values = [1.0, 2.0, 3.0, 4.0]
    assert percentile(values, 0) == 1.0
    assert percentile(values, 100) == 4.0
    assert percentile(values, 50) == pytest.approx(2.5)
    assert percentile(values, 25) == pytest.approx(1.75)
    # Order-independent.
    assert percentile([4.0, 1.0, 3.0, 2.0], 50) == pytest.approx(2.5)


def test_percentile_monotone():
    values = [5.0, 1.0, 9.0, 3.0, 7.0, 2.0]
    points = [percentile(values, p) for p in range(0, 101, 5)]
    assert points == sorted(points)
    assert points[0] == min(values) and points[-1] == max(values)


# ----------------------------------------------------------------------
# Construction / validation
# ----------------------------------------------------------------------
def test_swarm_validation(tmp_path):
    spec = ClusterSpec.create(4, tmp_path)
    with pytest.raises(ValueError):
        ClientSwarm(spec, clients=0)
    with pytest.raises(ValueError):
        ClientSwarm(spec, mode="bursty")
    swarm = ClientSwarm(spec, clients=3)
    assert [client.client_id for client in swarm.clients] == [1000, 1001, 1002]
    assert swarm.clients[0].f == 1  # n=4 -> f=1


def test_confirmation_requires_f_plus_one_matching(tmp_path):
    """Replies are tallied by (position, block_id): f matching replies are
    not enough, and disagreeing replies never combine."""
    from repro.client.client import ClientReply

    spec = ClusterSpec.create(4, tmp_path)

    async def go():
        client = SwarmClient(1000, spec)
        await client.start()
        try:
            tx_id = client.submit()
            # One reply: below the f+1=2 threshold.
            client._on_message(0, ClientReply(tx_id, 3, "block-a", 0))
            assert not client.confirmations
            # A *disagreeing* reply must not combine with it.
            client._on_message(1, ClientReply(tx_id, 4, "block-b", 1))
            assert not client.confirmations
            # Replica impersonation (replica field != sender) is ignored.
            client._on_message(2, ClientReply(tx_id, 3, "block-a", 3))
            assert not client.confirmations
            # A second genuine matching reply confirms.
            client._on_message(3, ClientReply(tx_id, 3, "block-a", 3))
            assert [c.tx_id for c in client.confirmations] == [tx_id]
            assert client.confirmations[0].position == 3
            assert tx_id not in client.pending
        finally:
            await client.close()

    asyncio.run(go())


# ----------------------------------------------------------------------
# Live closed-loop run against a real multi-process cluster
# ----------------------------------------------------------------------
def test_swarm_confirms_against_live_cluster(tmp_path):
    # preload=0: every committed transaction originates from the swarm.
    spec = ClusterSpec.create(4, tmp_path, preload=0)

    async def go():
        supervisor = Supervisor(spec)
        await supervisor.start()
        try:
            swarm = ClientSwarm(spec, clients=2, mode="closed", outstanding=3)
            report = await swarm.run(duration=4.0)
        finally:
            await supervisor.stop()
        return report, supervisor.ledger_prefixes_consistent()

    report, consistent = asyncio.run(go())
    assert report.confirmed > 0, "swarm never confirmed a commit"
    assert report.submitted >= report.confirmed
    assert report.throughput_tps > 0
    assert report.latency_p50 is not None and report.latency_p50 > 0
    assert report.latency_p50 <= report.latency_p95 <= report.latency_p99
    assert report.latency_max >= report.latency_p99
    assert consistent
    payload = report.to_json()
    assert payload["clients"] == 2 and payload["mode"] == "closed"
