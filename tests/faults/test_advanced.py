"""Tests for advanced Byzantine behaviours (fallback equivocation, lazy
voting, message flooding)."""

from repro.analysis.safety import assert_cluster_safety
from repro.experiments.scenarios import leader_attack_factory
from repro.faults import (
    EquivocatingFallbackProposer,
    Flooder,
    LazyVoter,
    byzantine,
)
from repro.runtime.cluster import ClusterBuilder


def test_fallback_equivocation_cannot_certify_two_height1_blocks():
    cluster = (
        ClusterBuilder(n=4, seed=51)
        .with_byzantine(2, byzantine(EquivocatingFallbackProposer))
        .with_delay_model_factory(leader_attack_factory())
        .build()
    )
    cluster.run_until_commits(6, until=60_000)
    # No honest replica may hold two distinct certified height-1 f-blocks by
    # the equivocator for the same view.
    for replica in cluster.honest_replicas():
        by_view = {}
        for (view, proposer, height), fqc in replica.fallback.fqcs.items():
            if proposer == 2 and height == 1:
                existing = by_view.setdefault(view, fqc.block_id)
                assert existing == fqc.block_id, (
                    f"two certified height-1 f-blocks by the equivocator in view {view}"
                )
    assert_cluster_safety(cluster.honest_replicas())


def test_fallback_equivocation_does_not_break_liveness():
    cluster = (
        ClusterBuilder(n=4, seed=53)
        .with_byzantine(1, byzantine(EquivocatingFallbackProposer))
        .with_delay_model_factory(leader_attack_factory())
        .build()
    )
    result = cluster.run_until_commits(6, until=100_000)
    assert result.decisions >= 6
    assert_cluster_safety(cluster.honest_replicas())


def test_lazy_voter_slows_nothing_with_full_quorum():
    cluster = (
        ClusterBuilder(n=4, seed=55)
        .with_byzantine(3, byzantine(LazyVoter))
        .build()
    )
    result = cluster.run_until_commits(15, until=30_000)
    assert result.decisions >= 15
    assert_cluster_safety(cluster.honest_replicas())


def test_flooder_garbage_is_ignored_and_not_billed():
    cluster = (
        ClusterBuilder(n=4, seed=57)
        .with_byzantine(2, byzantine(Flooder, flood_interval=0.5))
        .build()
    )
    result = cluster.run_until_commits(10, until=30_000)
    assert result.decisions >= 10
    # Garbage traffic came from a Byzantine sender: not in honest accounting.
    assert "_Garbage" not in cluster.metrics.message_counts
    assert_cluster_safety(cluster.honest_replicas())


def test_flooder_bytes_counted_at_network_level_only():
    cluster = (
        ClusterBuilder(n=4, seed=57)
        .with_byzantine(2, byzantine(Flooder, flood_interval=0.5))
        .build()
    )
    cluster.run(until=30.0)
    # The raw network saw the garbage (it was sent)...
    assert cluster.network.messages_sent > cluster.metrics.honest_messages
