"""Twins tests: safety under duplicate-identity equivocation."""

import pytest

from repro.analysis.safety import assert_cluster_safety, check_cluster_safety
from repro.core.config import ProtocolConfig, ProtocolVariant
from repro.experiments.scenarios import leader_attack_factory
from repro.faults.twins import TwinPair, twin_pair_factory
from repro.runtime.cluster import ClusterBuilder


def build_twins(slot=0, n=4, seed=101, variant=ProtocolVariant.FALLBACK_3CHAIN,
                delay_factory=None):
    config = ProtocolConfig(n=n, variant=variant, fallback_adoption=True)
    builder = ClusterBuilder(config=config, seed=seed).with_byzantine(
        slot, twin_pair_factory
    )
    if delay_factory is not None:
        builder.with_delay_model_factory(delay_factory)
    return builder.build()


def test_twin_pair_hosts_two_replicas():
    cluster = build_twins()
    pair = cluster.replicas[0]
    assert isinstance(pair, TwinPair)
    assert pair.twin_a is not pair.twin_b
    assert pair.twin_a.process_id == pair.twin_b.process_id == 0
    assert pair.twin_a.crypto is pair.twin_b.crypto


def test_twins_actually_equivocate():
    """When the twin identity leads, two different valid proposals for the
    same round must appear on the wire."""
    cluster = build_twins(slot=0)
    round_blocks: dict[int, set] = {}
    cluster.network.add_send_hook(
        lambda s, r, m, t, d: round_blocks.setdefault(m.block.round, set()).add(m.block.id)
        if s == 0 and type(m).__name__ == "Proposal"
        else None
    )
    cluster.run(until=40.0)
    assert any(len(ids) > 1 for ids in round_blocks.values()), (
        "twins never diverged; the scenario is vacuous"
    )


@pytest.mark.parametrize("slot", [0, 2])
def test_safety_with_twins_under_synchrony(slot):
    cluster = build_twins(slot=slot)
    result = cluster.run_until_commits(20, until=30_000)
    assert result.decisions >= 20
    assert_cluster_safety(cluster.honest_replicas())


def test_safety_with_twins_under_leader_attack():
    cluster = build_twins(slot=1, delay_factory=leader_attack_factory())
    cluster.run_until_commits(6, until=100_000)
    assert cluster.metrics.decisions() >= 6
    assert_cluster_safety(cluster.honest_replicas())


def test_safety_with_twins_two_chain_variant():
    cluster = build_twins(slot=0, variant=ProtocolVariant.FALLBACK_2CHAIN)
    result = cluster.run_until_commits(15, until=30_000)
    assert result.decisions >= 15
    assert_cluster_safety(cluster.honest_replicas())


def test_twins_in_fallback_do_not_break_safety():
    """Force repeated fallbacks; the twin identity builds two divergent
    fallback chains — the per-identity vote maps must keep at most one
    certifiable."""
    cluster = build_twins(slot=3, seed=103, delay_factory=leader_attack_factory())
    cluster.run_until_commits(5, until=100_000)
    violations = check_cluster_safety(cluster.honest_replicas())
    assert not violations, violations[:3]


@pytest.mark.parametrize("seed", range(5))
def test_safety_with_twins_across_seeds(seed):
    cluster = build_twins(slot=seed % 4, seed=200 + seed)
    cluster.run(until=150.0)
    assert not check_cluster_safety(cluster.honest_replicas())
