"""Unit tests for the Byzantine behaviour library."""

from repro.faults import (
    CrashReplica,
    EquivocatingLeader,
    NonVoter,
    SilentReplica,
    StaleQCLeader,
    WithholdingLeader,
    byzantine,
)
from repro.runtime.cluster import ClusterBuilder


def build(factory, slot=0, n=4, seed=3):
    return ClusterBuilder(n=n, seed=seed).with_byzantine(slot, factory).build()


def test_byzantine_factory_adapts_kwargs():
    cluster = build(byzantine(CrashReplica, crash_at=12.0))
    assert isinstance(cluster.replicas[0], CrashReplica)
    assert cluster.replicas[0].crash_at == 12.0


def test_silent_replica_sends_nothing():
    cluster = build(byzantine(SilentReplica))
    cluster.run(until=30.0)
    sent_by_zero = []
    cluster.network.add_send_hook(
        lambda s, r, m, t, d: sent_by_zero.append(s) if s == 0 else None
    )
    cluster.run(until=60.0)
    assert sent_by_zero == []


def test_crash_replica_honest_until_deadline():
    cluster = build(byzantine(CrashReplica, crash_at=30.0), slot=1)
    cluster.run(until=29.0)
    assert not cluster.replicas[1].crashed
    cluster.run(until=31.0)
    assert cluster.replicas[1].crashed


def test_withholding_leader_never_proposes():
    cluster = build(byzantine(WithholdingLeader))
    cluster.run(until=60.0)
    proposals_by_zero = [
        block.author
        for replica in cluster.honest_replicas()
        for block in replica.ledger.committed_blocks()
        if getattr(block, "author", None) == 0
    ]
    assert proposals_by_zero == []


def test_equivocating_leader_sends_two_blocks():
    cluster = build(byzantine(EquivocatingLeader))
    sent_blocks = set()
    cluster.network.add_send_hook(
        lambda s, r, m, t, d: sent_blocks.add(m.block.id)
        if s == 0 and type(m).__name__ == "Proposal" and m.block.round == 1
        else None
    )
    cluster.run(until=10.0)
    assert len(sent_blocks) == 2  # two conflicting round-1 blocks


def test_nonvoter_tracks_but_never_votes():
    cluster = build(byzantine(NonVoter), slot=1)
    votes_by_one = []
    cluster.network.add_send_hook(
        lambda s, r, m, t, d: votes_by_one.append(m)
        if s == 1 and type(m).__name__ in ("Vote", "FallbackVote")
        else None
    )
    cluster.run(until=60.0)
    assert votes_by_one == []
    # But it keeps up with the chain via certificates.
    assert cluster.replicas[1].r_cur > 1


def test_stale_qc_leader_proposals_extend_genesis():
    cluster = build(byzantine(StaleQCLeader))
    stale_blocks = []
    cluster.network.add_send_hook(
        lambda s, r, m, t, d: stale_blocks.append(m.block)
        if s == 0 and type(m).__name__ == "Proposal"
        else None
    )
    cluster.run(until=10.0)
    assert stale_blocks
    assert all(block.qc.round == 0 for block in stale_blocks)
