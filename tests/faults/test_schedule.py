"""Tests for the composable chaos-injection schedule."""

import pytest

from repro.analysis.safety import assert_cluster_safety
from repro.faults import (
    FaultSchedule,
    clear_loss,
    crash,
    heal,
    inject,
    partition,
    recover,
    set_delay,
    set_loss,
)
from repro.net.conditions import SynchronousDelay
from repro.net.loss import IIDLoss, NoLoss, PartitionLoss
from repro.net.reliable import ReliableNetwork
from repro.runtime.cluster import ClusterBuilder
from repro.storage.durable import RecoveringReplica


def build(schedule, seed=17, **builder_calls):
    builder = ClusterBuilder(n=4, seed=seed).with_fault_schedule(schedule)
    for method, args in builder_calls.items():
        getattr(builder, method)(*args)
    return builder.build()


# ----------------------------------------------------------------------
# Schedule construction
# ----------------------------------------------------------------------
def test_at_validates_inputs():
    schedule = FaultSchedule()
    with pytest.raises(ValueError):
        schedule.at(-1.0, crash(0))
    with pytest.raises(TypeError):
        schedule.at(1.0, "not an action")


def test_loss_events_imply_reliable_channels():
    assert FaultSchedule().at(1.0, set_loss(IIDLoss(drop=0.1))).needs_reliable_channels
    assert FaultSchedule().at(1.0, partition([[0], [1, 2, 3]])).needs_reliable_channels
    assert not FaultSchedule().at(1.0, crash(0)).needs_reliable_channels
    assert not FaultSchedule().at(1.0, set_delay(SynchronousDelay())).needs_reliable_channels


def test_builder_installs_reliable_network_for_lossy_schedules():
    lossy = build(FaultSchedule().at(5.0, set_loss(IIDLoss(drop=0.1))))
    assert isinstance(lossy.network, ReliableNetwork)
    crash_only = build(FaultSchedule().at(5.0, crash(0)))
    assert not isinstance(crash_only.network, ReliableNetwork)


def test_describe_lists_events_in_time_order():
    schedule = FaultSchedule().at(30.0, heal()).at(10.0, partition([[0, 1], [2, 3]]))
    description = schedule.describe()
    assert description.index("partition") < description.index("heal")


# ----------------------------------------------------------------------
# Event application
# ----------------------------------------------------------------------
def test_set_loss_and_clear_loss_swap_the_model():
    schedule = (
        FaultSchedule()
        .at(10.0, set_loss(IIDLoss(drop=0.2)))
        .at(20.0, clear_loss())
    )
    cluster = build(schedule)
    cluster.run(until=15.0)
    assert isinstance(cluster.network.loss_model, IIDLoss)
    cluster.run(until=25.0)
    assert isinstance(cluster.network.loss_model, NoLoss)
    assert [entry for _, entry in cluster.fault_log] == [
        "set-loss(iid(drop=0.2, dup=0.0))",
        "set-loss(no-loss)",
    ]


def test_partition_layers_over_the_active_loss_and_heal_restores_it():
    base = IIDLoss(drop=0.1)
    schedule = (
        FaultSchedule()
        .at(5.0, set_loss(base))
        .at(10.0, partition([[0, 1], [2, 3]]))
        .at(20.0, heal())
    )
    cluster = build(schedule)
    cluster.run(until=15.0)
    model = cluster.network.loss_model
    assert isinstance(model, PartitionLoss)
    assert model.base is base  # loss persists inside each side
    cluster.run(until=25.0)
    assert cluster.network.loss_model is base  # heal restores exactly
    assert_cluster_safety(cluster.honest_replicas())


def test_heal_without_partition_raises():
    cluster = build(FaultSchedule().at(5.0, heal()))
    with pytest.raises(ValueError):
        cluster.run(until=10.0)


def test_crash_and_recover_drive_a_recovering_replica():
    schedule = FaultSchedule().at(20.0, crash(2)).at(40.0, recover(2))
    cluster = build(
        schedule, with_honest_factory=(2, RecoveringReplica.factory())
    )
    cluster.run(until=30.0)
    assert cluster.replicas[2].crashed
    cluster.run(until=200.0)
    assert not cluster.replicas[2].crashed
    assert cluster.replicas[2].recovered
    assert cluster.metrics.decisions() > 0
    assert_cluster_safety(cluster.honest_replicas())


def test_recover_requires_a_recovering_replica():
    cluster = build(FaultSchedule().at(5.0, recover(1)))
    with pytest.raises(TypeError, match="RecoveringReplica.factory"):
        cluster.run(until=10.0)


def test_set_delay_swaps_the_delay_model():
    slow = SynchronousDelay(delta=9.0, min_delay=8.0)
    cluster = build(FaultSchedule().at(10.0, set_delay(slow)))
    cluster.run(until=15.0)
    assert cluster.network.delay_model is slow


def test_inject_runs_arbitrary_callables():
    seen = []
    cluster = build(
        FaultSchedule().at(5.0, inject(lambda c: seen.append(c), label="probe"))
    )
    cluster.run(until=10.0)
    assert seen == [cluster]
    assert cluster.fault_log == [(5.0, "inject(probe)")]


def test_cluster_stays_live_through_a_full_chaos_script():
    schedule = (
        FaultSchedule()
        .at(10.0, set_loss(IIDLoss(drop=0.15, duplicate=0.05)))
        .at(25.0, partition([[0, 1], [2, 3]]))
        .at(45.0, heal())
        .at(60.0, crash(1))
        .at(90.0, recover(1))
        .at(110.0, clear_loss())
    )
    cluster = build(
        schedule, seed=23, with_honest_factory=(1, RecoveringReplica.factory())
    )
    result = cluster.run_until_commits(25, until=2_000.0)
    assert result.decisions >= 25
    # Let the tail of the script apply if the commit target came early.
    cluster.run(until=max(120.0, cluster.scheduler.now))
    assert len(cluster.fault_log) == 6
    assert_cluster_safety(cluster.honest_replicas())


def test_recovering_replica_factory_without_times_never_self_schedules():
    replica_factory = RecoveringReplica.factory()
    cluster = (
        ClusterBuilder(n=4, seed=3)
        .with_honest_factory(0, replica_factory)
        .build()
    )
    cluster.run(until=200.0)
    assert not cluster.replicas[0].crashed  # no self-scheduled crash
    assert cluster.replicas[0].crash_at is None
