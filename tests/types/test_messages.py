"""Tests for protocol message types and wire-size accounting."""

import pytest

from repro.crypto.coin import CoinShare
from repro.crypto.threshold import ThresholdSignatureShare
from repro.types.blocks import Block, FallbackBlock, genesis_block
from repro.types.certificates import CoinQC, FallbackTC, TimeoutCertificate, genesis_qc
from repro.types.messages import (
    BlockRequest,
    BlockResponse,
    CoinQCMessage,
    CoinShareMessage,
    FallbackProposal,
    FallbackQCMessage,
    FallbackTCMessage,
    FallbackTimeout,
    FallbackVote,
    PacemakerTCMessage,
    PacemakerTimeout,
    Proposal,
    Vote,
)

from tests.types.test_certificates import make_fqc, make_qc

SHARE = ThresholdSignatureShare(signer=0, epoch=0, tag="t")
COIN_SHARE = CoinShare(signer=0, view=1, epoch=0, tag="t")


def make_tc():
    qc = make_qc()
    return TimeoutCertificate(round=3, signature=qc.signature)


def make_ftc():
    qc = make_qc()
    return FallbackTC(view=2, signature=qc.signature)


def all_messages():
    genesis = genesis_block()
    gqc = genesis_qc(genesis.id)
    block = Block(qc=gqc, round=1, view=0, author=0)
    fblock = FallbackBlock(qc=gqc, round=1, view=0, height=1, proposer=0)
    fqc = make_fqc()
    return [
        Proposal(block),
        Vote(block_id=block.id, round=1, view=0, share=SHARE),
        PacemakerTimeout(round=1, share=SHARE, qc_high=gqc),
        PacemakerTCMessage(tc=make_tc(), qc_high=gqc),
        FallbackTimeout(view=0, share=SHARE, qc_high=gqc),
        FallbackTCMessage(ftc=make_ftc()),
        FallbackProposal(fblock=fblock, ftc=make_ftc()),
        FallbackVote(block_id=fblock.id, round=1, view=0, height=1, proposer=0,
                     share=SHARE),
        FallbackQCMessage(fqc=fqc),
        CoinShareMessage(share=COIN_SHARE),
        CoinQCMessage(coin_qc=CoinQC(view=0, leader=1, proof_tag="p")),
        BlockRequest(block_id=block.id),
        BlockResponse(block=block),
    ]


@pytest.mark.parametrize("message", all_messages(), ids=lambda m: m.type_name)
def test_every_message_has_positive_wire_size(message):
    assert message.wire_size() > 0


@pytest.mark.parametrize("message", all_messages(), ids=lambda m: m.type_name)
def test_wire_size_is_deterministic(message):
    assert message.wire_size() == message.wire_size()


def test_proposal_size_scales_with_batch():
    from repro.types.transactions import Batch, make_transaction

    genesis = genesis_block()
    gqc = genesis_qc(genesis.id)
    small = Proposal(Block(qc=gqc, round=1, view=0, author=0))
    big = Proposal(Block(
        qc=gqc, round=1, view=0, author=0,
        batch=Batch.of([make_transaction(i, payload_size=1000) for i in range(5)]),
    ))
    assert big.wire_size() - small.wire_size() == 5 * (1000 + 40)


def test_vote_is_constant_size():
    """Votes are O(1) — the crux of linear complexity."""
    vote = Vote(block_id="x" * 32, round=10 ** 9, view=10 ** 6, share=SHARE)
    assert vote.wire_size() < 200


def test_certificates_are_constant_size_in_messages():
    """A QC inside a timeout never grows with n (threshold signatures)."""
    timeout = FallbackTimeout(view=0, share=SHARE, qc_high=make_qc())
    assert timeout.wire_size() < 500


def test_height1_proposal_includes_ftc_bytes():
    genesis = genesis_block()
    gqc = genesis_qc(genesis.id)
    fblock = FallbackBlock(qc=gqc, round=1, view=0, height=1, proposer=0)
    with_ftc = FallbackProposal(fblock=fblock, ftc=make_ftc())
    without = FallbackProposal(fblock=fblock, ftc=None)
    assert with_ftc.wire_size() > without.wire_size()


def test_type_name():
    assert Proposal(genesis_block()).type_name == "Proposal"
