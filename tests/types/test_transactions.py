"""Tests for transactions and batches."""

from repro.types.transactions import (
    EMPTY_BATCH,
    Batch,
    Transaction,
    make_transaction,
)


def test_make_transaction_defaults():
    tx = make_transaction(3, client=1)
    assert tx.tx_id == "tx-1-3"
    assert tx.payload == "cmd:3"
    assert tx.client == 1


def test_transaction_wire_size():
    tx = Transaction(tx_id="t", payload_size=100)
    assert tx.wire_size() == 140


def test_batch_digest_depends_on_order_and_content():
    a, b = make_transaction(1), make_transaction(2)
    assert Batch.of([a, b]).digest != Batch.of([b, a]).digest
    assert Batch.of([a]).digest != Batch.of([b]).digest
    assert Batch.of([a, b]).digest == Batch.of([a, b]).digest


def test_batch_len_iter_and_size():
    txs = [make_transaction(i, payload_size=10) for i in range(3)]
    batch = Batch.of(txs)
    assert len(batch) == 3
    assert list(batch) == txs
    assert batch.wire_size() == 3 * (40 + 10)


def test_empty_batch():
    assert len(EMPTY_BATCH) == 0
    assert EMPTY_BATCH.wire_size() == 0
    assert EMPTY_BATCH.digest == Batch().digest
