"""Tests for block types and id computation."""

import pytest

from repro.types.blocks import Block, FallbackBlock, genesis_block, is_fallback
from repro.types.certificates import Rank, genesis_qc
from repro.types.transactions import Batch, make_transaction

from tests.types.test_certificates import make_fqc, make_qc


def test_genesis_block_properties():
    genesis = genesis_block()
    assert genesis.is_genesis
    assert genesis.round == 0
    assert genesis.view == 0
    assert genesis.parent_id is None
    assert genesis_block().id == genesis.id  # deterministic


def test_block_id_depends_on_content():
    qc = make_qc()
    base = Block(qc=qc, round=2, view=0, author=1)
    assert base.id == Block(qc=qc, round=2, view=0, author=1).id
    assert base.id != Block(qc=qc, round=3, view=0, author=1).id
    assert base.id != Block(qc=qc, round=2, view=1, author=1).id
    assert base.id != Block(qc=qc, round=2, view=0, author=2).id


def test_block_id_depends_on_batch():
    qc = make_qc()
    batch = Batch.of([make_transaction(0)])
    assert Block(qc=qc, round=2, view=0, batch=batch).id != Block(qc=qc, round=2, view=0).id


def test_block_id_depends_on_parent_cert_not_signers():
    """Same logical parent => same id (threshold sigs are payload-unique)."""
    qc_a = make_qc(round_=1, view=0, block_id="parent")
    qc_b = make_qc(round_=1, view=0, block_id="parent")
    assert Block(qc=qc_a, round=2, view=0).id == Block(qc=qc_b, round=2, view=0).id


def test_block_parent_and_rank():
    qc = make_qc(round_=1, view=0, block_id="parent")
    block = Block(qc=qc, round=2, view=0)
    assert block.parent_id == "parent"
    assert block.rank == Rank(0, False, 2)
    assert not block.is_genesis


def test_fallback_block_fields_and_id():
    fqc = make_fqc(round_=5, view=1, height=1, proposer=2, block_id="f1")
    fb = FallbackBlock(qc=fqc, round=6, view=1, height=2, proposer=2)
    assert fb.parent_id == "f1"
    assert fb.height == 2
    assert is_fallback(fb)
    assert not is_fallback(genesis_block())
    twin = FallbackBlock(qc=fqc, round=6, view=1, height=2, proposer=2)
    assert fb.id == twin.id
    other_proposer = FallbackBlock(qc=fqc, round=6, view=1, height=2, proposer=3)
    assert fb.id != other_proposer.id


def test_fallback_block_height_validation():
    qc = make_qc()
    with pytest.raises(ValueError):
        FallbackBlock(qc=qc, round=1, view=0, height=0, proposer=0)


def test_equivocating_blocks_have_distinct_ids():
    """Two different batches for the same (round, view) => different ids."""
    qc = make_qc()
    block_a = Block(qc=qc, round=2, view=0, batch=Batch.of([make_transaction(1)]), author=0)
    block_b = Block(qc=qc, round=2, view=0, batch=Batch.of([make_transaction(2)]), author=0)
    assert block_a.id != block_b.id


def test_wire_size_includes_batch():
    qc = make_qc()
    empty = Block(qc=qc, round=2, view=0)
    loaded = Block(qc=qc, round=2, view=0, batch=Batch.of([make_transaction(0, payload_size=500)]))
    assert loaded.wire_size() == empty.wire_size() + 500 + 40


def test_genesis_qc_points_to_genesis():
    genesis = genesis_block()
    qc = genesis_qc(genesis.id)
    assert qc.block_id == genesis.id
    child = Block(qc=qc, round=1, view=0)
    assert child.parent_id == genesis.id


def test_repr_is_compact():
    genesis = genesis_block()
    assert "r=0" in repr(genesis)
    fqc = make_fqc(proposer=1)
    fb = FallbackBlock(qc=fqc, round=3, view=1, height=2, proposer=1)
    assert "h=2" in repr(fb)
