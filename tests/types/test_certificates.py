"""Tests for ranks and certificates — the paper's ordering rules."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.keys import Registry
from repro.crypto.threshold import ThresholdScheme
from repro.types.blocks import genesis_block
from repro.types.certificates import (
    CoinQC,
    EndorsedFallbackQC,
    FallbackQC,
    FallbackTC,
    QC,
    Rank,
    TimeoutCertificate,
    cert_kind,
    genesis_qc,
    is_genesis_qc,
    max_cert,
)


def make_qc(round_=1, view=0, block_id="b1"):
    registry = Registry(n=4)
    scheme = ThresholdScheme(registry, threshold=3)
    payload = ("vote", block_id, round_, view)
    shares = [scheme.sign_share(registry.key_pair(i), payload) for i in range(3)]
    return QC(block_id=block_id, round=round_, view=view, signature=scheme.combine(shares, payload))


def make_fqc(round_=2, view=1, height=1, proposer=0, block_id="f1"):
    registry = Registry(n=4)
    scheme = ThresholdScheme(registry, threshold=3)
    payload = ("fvote", block_id, round_, view, height, proposer)
    shares = [scheme.sign_share(registry.key_pair(i), payload) for i in range(3)]
    return FallbackQC(
        block_id=block_id,
        round=round_,
        view=view,
        height=height,
        proposer=proposer,
        signature=scheme.combine(shares, payload),
    )


# ----------------------------------------------------------------------
# Rank ordering
# ----------------------------------------------------------------------
def test_rank_orders_by_view_first():
    assert Rank(1, False, 0) > Rank(0, False, 100)


def test_endorsed_outranks_certified_same_view():
    # The paper: an endorsed f-QC ranks higher than any QC of the same view.
    assert Rank(2, True, 1) > Rank(2, False, 999)


def test_rank_orders_by_round_last():
    assert Rank(1, False, 5) > Rank(1, False, 4)
    assert Rank(1, True, 5) > Rank(1, True, 4)


def test_rank_equality_and_hash():
    assert Rank(1, True, 2) == Rank(1, True, 2)
    assert hash(Rank(1, True, 2)) == hash(Rank(1, True, 2))
    assert Rank(1, True, 2) != Rank(1, False, 2)


def test_rank_zero():
    assert Rank.zero() == Rank(0, False, 0)
    assert Rank.zero() <= Rank(0, False, 0)


@given(
    st.tuples(st.integers(0, 5), st.booleans(), st.integers(0, 20)),
    st.tuples(st.integers(0, 5), st.booleans(), st.integers(0, 20)),
    st.tuples(st.integers(0, 5), st.booleans(), st.integers(0, 20)),
)
def test_property_rank_total_order(a, b, c):
    ra, rb, rc = Rank(*a), Rank(*b), Rank(*c)
    # Totality.
    assert (ra < rb) or (rb < ra) or (ra == rb)
    # Transitivity.
    if ra <= rb and rb <= rc:
        assert ra <= rc
    # Antisymmetry.
    if ra <= rb and rb <= ra:
        assert ra == rb


# ----------------------------------------------------------------------
# Certificates
# ----------------------------------------------------------------------
def test_qc_rank_and_payload():
    qc = make_qc(round_=3, view=1)
    assert qc.rank == Rank(1, False, 3)
    assert qc.payload() == ("vote", "b1", 3, 1)


def test_fqc_rank_is_unendorsed():
    fqc = make_fqc(round_=4, view=2)
    assert fqc.rank == Rank(2, False, 4)


def test_endorsement_requires_matching_leader_and_view():
    fqc = make_fqc(round_=4, view=2, proposer=1)
    coin = CoinQC(view=2, leader=1, proof_tag="t")
    endorsed = EndorsedFallbackQC(fqc=fqc, coin_qc=coin)
    assert endorsed.rank == Rank(2, True, 4)
    assert endorsed.block_id == fqc.block_id

    with pytest.raises(ValueError):
        EndorsedFallbackQC(fqc=fqc, coin_qc=CoinQC(view=2, leader=3, proof_tag="t"))
    with pytest.raises(ValueError):
        EndorsedFallbackQC(fqc=fqc, coin_qc=CoinQC(view=3, leader=1, proof_tag="t"))


def test_endorsed_outranks_regular_qc_same_view():
    qc = make_qc(round_=100, view=2)
    fqc = make_fqc(round_=4, view=2, proposer=1)
    endorsed = EndorsedFallbackQC(fqc=fqc, coin_qc=CoinQC(view=2, leader=1, proof_tag="t"))
    assert endorsed.rank > qc.rank
    assert max_cert(qc, endorsed) is endorsed
    assert max_cert(endorsed, qc) is endorsed


def test_max_cert_prefers_first_on_tie():
    qc_a = make_qc(round_=3, view=1)
    qc_b = make_qc(round_=3, view=1)
    assert max_cert(qc_a, qc_b) is qc_a


def test_genesis_qc_recognized():
    genesis = genesis_block()
    qc = genesis_qc(genesis.id)
    assert is_genesis_qc(qc)
    assert qc.rank == Rank.zero()
    assert not is_genesis_qc(make_qc())


def test_cert_kind_labels():
    genesis = genesis_block()
    assert cert_kind(genesis_qc(genesis.id)) == "genesis-qc"
    assert cert_kind(make_qc()) == "qc"
    fqc = make_fqc(proposer=1)
    endorsed = EndorsedFallbackQC(fqc=fqc, coin_qc=CoinQC(view=1, leader=1, proof_tag="t"))
    assert cert_kind(endorsed) == "endorsed-fqc"
    assert cert_kind(None) == "none"


def test_timeout_certificates_payloads():
    registry = Registry(n=4)
    scheme = ThresholdScheme(registry, threshold=3)
    payload = ("timeout", 7)
    shares = [scheme.sign_share(registry.key_pair(i), payload) for i in range(3)]
    tc = TimeoutCertificate(round=7, signature=scheme.combine(shares, payload))
    assert tc.payload() == ("timeout", 7)

    fpayload = ("ftimeout", 2)
    fshares = [scheme.sign_share(registry.key_pair(i), fpayload) for i in range(3)]
    ftc = FallbackTC(view=2, signature=scheme.combine(fshares, fpayload))
    assert ftc.payload() == ("ftimeout", 2)


def test_wire_sizes_constant():
    qc = make_qc()
    assert qc.wire_size() == 48 + 96
    fqc = make_fqc()
    assert fqc.wire_size() == 48 + 16 + 96
    coin = CoinQC(view=1, leader=0, proof_tag="t")
    assert coin.wire_size() == 96
