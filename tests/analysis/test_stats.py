"""Tests for the statistics helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.stats import mean_ci, proportion_ci


def test_mean_ci_basic():
    estimate = mean_ci([1.0, 2.0, 3.0, 4.0, 5.0])
    assert estimate.mean == 3.0
    assert estimate.low < 3.0 < estimate.high
    assert estimate.samples == 5
    assert estimate.contains(3.0)


def test_mean_ci_single_sample_degenerates():
    estimate = mean_ci([7.0])
    assert estimate.mean == estimate.low == estimate.high == 7.0


def test_mean_ci_zero_variance():
    estimate = mean_ci([2.0, 2.0, 2.0])
    assert estimate.low == estimate.high == 2.0


def test_mean_ci_width_shrinks_with_samples():
    narrow = mean_ci([1.0, 2.0] * 50)
    wide = mean_ci([1.0, 2.0] * 2)
    assert (narrow.high - narrow.low) < (wide.high - wide.low)


def test_mean_ci_requires_samples():
    with pytest.raises(ValueError):
        mean_ci([])


def test_proportion_ci_two_thirds():
    estimate = proportion_ci(32, 48)
    assert estimate.mean == pytest.approx(2 / 3)
    assert 0 < estimate.low < 2 / 3 < estimate.high < 1


def test_proportion_ci_extremes_stay_in_unit_interval():
    # Wilson at the extremes: the bound away from the extreme is nontrivial
    # (its defining advantage over the naive [1, 1] interval).
    all_success = proportion_ci(10, 10)
    assert all_success.high == 1.0
    assert 0.5 < all_success.low < 1.0
    none = proportion_ci(0, 10)
    assert none.low == 0.0
    assert none.high < 0.5


def test_proportion_ci_validation():
    with pytest.raises(ValueError):
        proportion_ci(1, 0)
    with pytest.raises(ValueError):
        proportion_ci(5, 4)


def test_str_rendering():
    text = str(mean_ci([1.0, 2.0, 3.0]))
    assert "n=3" in text
    assert "95%" in text


@given(
    successes=st.integers(0, 50),
    extra=st.integers(0, 50),
)
def test_property_wilson_interval_is_sane(successes, extra):
    trials = successes + extra
    if trials == 0:
        return
    estimate = proportion_ci(successes, trials)
    assert 0.0 <= estimate.low <= estimate.high <= 1.0
    assert estimate.low <= estimate.mean <= estimate.high


@given(values=st.lists(st.floats(-100, 100), min_size=2, max_size=30))
def test_property_mean_inside_its_interval(values):
    estimate = mean_ci(values)
    assert estimate.low <= estimate.mean <= estimate.high
