"""Tests for the global safety checker (it must catch real violations)."""

from repro.analysis.safety import (
    check_cluster_safety,
    divergence_point,
    assert_cluster_safety,
)
from repro.core.config import ProtocolConfig
from repro.core.context import SharedSetup
from repro.core.replica import Replica
from repro.net.network import Network
from repro.sim.scheduler import Scheduler
from repro.types.blocks import Block
from repro.types.certificates import genesis_qc

from tests.core.conftest import build_certified_chain

import pytest


@pytest.fixture
def replicas():
    config = ProtocolConfig(n=4)
    scheduler = Scheduler(seed=1)
    network = Network(scheduler)
    setup = SharedSetup.deal(config)
    built = []
    for replica_id in range(2):
        replica = Replica(
            replica_id, config, setup.context_for(replica_id), network, scheduler
        )
        network.register(replica)
        built.append(replica)
    return setup, built


def test_clean_replicas_pass(replicas):
    setup, (a, b) = replicas
    blocks, _ = build_certified_chain(setup, a.store, 3)
    for block in blocks:
        b.store.add(block)
    a.ledger.commit_through(blocks[2], now=1.0)
    b.ledger.commit_through(blocks[1], now=1.0)  # shorter prefix is fine
    assert check_cluster_safety([a, b]) == []
    assert_cluster_safety([a, b])
    assert divergence_point(a, b) is None


def test_detects_prefix_divergence(replicas):
    setup, (a, b) = replicas
    blocks_a, _ = build_certified_chain(setup, a.store, 1)
    fork = Block(qc=genesis_qc(b.store.genesis.id), round=1, view=0, author=1)
    b.store.add(fork)
    a.ledger.commit_through(blocks_a[0], now=1.0)
    b.ledger.commit_through(fork, now=1.0)
    violations = check_cluster_safety([a, b])
    assert any(v.kind == "prefix-divergence" for v in violations)
    assert divergence_point(a, b) == 0
    with pytest.raises(AssertionError):
        assert_cluster_safety([a, b])


def test_detects_duplicate_round(replicas):
    setup, (a, b) = replicas
    blocks_a, _ = build_certified_chain(setup, a.store, 1)
    # Same (view, round) but different content on the other replica.
    twin = Block(qc=genesis_qc(b.store.genesis.id), round=1, view=0, author=2)
    b.store.add(twin)
    a.ledger.commit_through(blocks_a[0], now=1.0)
    b.ledger.commit_through(twin, now=1.0)
    violations = check_cluster_safety([a, b])
    kinds = {v.kind for v in violations}
    assert "duplicate-round" in kinds


def test_detects_round_gap(replicas):
    setup, (a, _) = replicas
    gap_block = Block(qc=genesis_qc(a.store.genesis.id), round=5, view=0, author=0)
    a.store.add(gap_block)
    a.ledger.commit_through(gap_block, now=1.0)
    violations = check_cluster_safety([a])
    assert any(v.kind == "non-consecutive-rounds" for v in violations)


def test_violation_str():
    from repro.analysis.safety import SafetyViolation

    violation = SafetyViolation(kind="x", detail="y")
    assert str(violation) == "x: y"
