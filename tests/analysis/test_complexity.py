"""Tests for complexity fitting and table rendering."""

import pytest

from repro.analysis.complexity import (
    classify_complexity,
    fit_loglog_slope,
    per_decision_costs,
)
from repro.analysis.tables import fmt_cost, render_table
from repro.runtime.metrics import MetricsCollector


def test_slope_of_linear_data():
    ns = [4, 8, 16, 32]
    costs = [2 * n for n in ns]
    assert abs(fit_loglog_slope(ns, costs) - 1.0) < 1e-9


def test_slope_of_quadratic_data():
    ns = [4, 8, 16, 32]
    costs = [3 * n * n for n in ns]
    assert abs(fit_loglog_slope(ns, costs) - 2.0) < 1e-9


def test_slope_with_noise():
    ns = [4, 7, 10, 16, 31]
    costs = [2.1 * n**1.05 for n in ns]
    slope = fit_loglog_slope(ns, costs)
    assert 0.9 < slope < 1.2


def test_slope_skips_dead_points():
    slope = fit_loglog_slope([4, 8, 16], [8.0, None, 32.0])
    assert abs(slope - 1.0) < 1e-9


def test_slope_needs_two_points():
    with pytest.raises(ValueError):
        fit_loglog_slope([4], [10.0])
    with pytest.raises(ValueError):
        fit_loglog_slope([4, 8], [None, None])


def test_classify():
    assert classify_complexity(1.05) == "linear"
    assert classify_complexity(2.1) == "quadratic"
    assert classify_complexity(3.0) == "~n^3.00"


def test_per_decision_costs_from_metrics():
    metrics = MetricsCollector(honest_ids=[0])
    costs = per_decision_costs(metrics)
    assert not costs.live
    assert costs.messages_per_decision is None

    metrics.message_counts.update({"Proposal": 5, "FallbackVote": 2})
    from tests.runtime.test_metrics import commit_record

    metrics.on_send(0, 1, "m", 0.0, 0.1)
    metrics.on_commit(0, commit_record(), 1.0)
    costs = per_decision_costs(metrics)
    assert costs.live
    assert costs.decisions == 1
    assert costs.steady_messages == 5
    assert costs.view_change_messages == 2


def test_render_table():
    text = render_table(
        ["protocol", "cost"],
        [["ours", 6.5], ["vaba", None]],
        title="Table 1",
    )
    assert "Table 1" in text
    assert "protocol" in text
    assert "6.50" in text
    assert "-" in text


def test_fmt_cost():
    assert fmt_cost(None) == "no decisions (not live)"
    assert fmt_cost(12.34) == "12.3"
