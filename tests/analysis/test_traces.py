"""Tests for run timelines."""

from repro.analysis.traces import Timeline, TraceEvent
from repro.experiments.scenarios import build_cluster, leader_attack_factory
from repro.runtime.cluster import ClusterBuilder


def make_attacked_cluster():
    cluster = build_cluster(
        "fallback-3chain", 4, seed=5, delay_factory=leader_attack_factory()
    )
    cluster.run_until_commits(4, until=30_000)
    cluster.run(until=cluster.scheduler.now + 120)
    return cluster


def test_timeline_collects_all_event_kinds():
    cluster = make_attacked_cluster()
    timeline = Timeline.from_cluster(cluster)
    kinds = {event.kind for event in timeline.events}
    assert {"round", "timeout", "fallback-enter", "fallback-exit", "commit"} <= kinds


def test_timeline_is_time_ordered():
    cluster = make_attacked_cluster()
    timeline = Timeline.from_cluster(cluster)
    times = [event.time for event in timeline.events]
    assert times == sorted(times)


def test_filter_by_kind_and_replica():
    cluster = make_attacked_cluster()
    timeline = Timeline.from_cluster(cluster)
    commits = timeline.filter(kinds=["commit"])
    assert commits.events
    assert all(event.kind == "commit" for event in commits.events)
    mine = timeline.filter(replica=0)
    assert all(event.replica == 0 for event in mine.events)
    windowed = timeline.filter(start=10.0, end=20.0)
    assert all(10.0 <= event.time <= 20.0 for event in windowed.events)


def test_first():
    cluster = make_attacked_cluster()
    timeline = Timeline.from_cluster(cluster)
    first_commit = timeline.first("commit")
    assert first_commit is not None
    assert first_commit.time == min(
        event.time for event in timeline.events if event.kind == "commit"
    )
    assert timeline.first("nonexistent") is None


def test_fallback_spans_pair_enter_and_exit():
    cluster = make_attacked_cluster()
    timeline = Timeline.from_cluster(cluster)
    spans = timeline.fallback_spans()
    assert spans
    closed = [span for span in spans if span[3] is not None]
    assert closed, "no fallback completed"
    for replica, view, start, end in closed:
        assert end > start
        assert view >= 0


def test_render_is_readable():
    cluster = make_attacked_cluster()
    timeline = Timeline.from_cluster(cluster)
    text = timeline.render(limit=5)
    assert text.count("\n") == 4
    assert "t=" in text


def test_sync_run_has_no_fallback_events():
    cluster = ClusterBuilder(n=4, seed=1).build()
    cluster.run_until_commits(10, until=5_000)
    timeline = Timeline.from_cluster(cluster)
    assert not timeline.filter(kinds=["fallback-enter"]).events
    assert len(timeline.filter(kinds=["commit"]).events) > 0
    assert timeline.fallback_spans() == []


def test_trace_event_render():
    event = TraceEvent(time=1.5, kind="commit", replica=2, detail="block #0")
    assert "r2" in event.render()
    assert "commit" in event.render()
