"""Smoke tests: every example script runs cleanly and prints its report.

Examples are part of the public contract — if the API drifts, these fail.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda path: path.stem)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert "safety" in result.stdout.lower() or "Table 1" in result.stdout


def test_examples_exist():
    names = {path.stem for path in EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 3  # the deliverable floor; we ship more
