"""Caches must be invisible: cached and bypass runs are event-identical.

The digest memo and the verified-certificate cache are pure-function tables;
enabling them must not change a single protocol decision.  These tests run
the same seeded cluster with caches engaged and with the certificate cache
bypassed, and require identical commit traces and metrics counters.
"""

from repro.experiments.scenarios import leader_attack_factory
from repro.runtime.cluster import Cluster, ClusterBuilder
from repro.protocols.presets import preset


def _commit_trace(cluster: Cluster) -> list[tuple]:
    return [
        (
            event.replica,
            event.position,
            event.round,
            event.view,
            event.fallback_block,
            event.batch_size,
            event.time,
        )
        for event in cluster.metrics.commits
    ]


def _counters(cluster: Cluster) -> dict:
    metrics = cluster.metrics
    return {
        "decisions": metrics.decisions(),
        "honest_messages": metrics.honest_messages,
        "honest_bytes": metrics.honest_bytes,
        "message_counts": dict(metrics.message_counts),
        "message_bytes": dict(metrics.message_bytes),
        "proposals": metrics.proposals,
        "fallbacks": metrics.fallback_count(),
        "timeouts": len(metrics.timeouts),
        "round_entries": len(metrics.round_entries),
    }


def _run_steady(seed: int, cert_cache: bool) -> Cluster:
    config = preset("fallback-3chain").config(4)
    cluster = (
        ClusterBuilder(config=config, seed=seed)
        .with_cert_cache(cert_cache)
        .with_preload(500)
        .build()
    )
    cluster.run_until_commits(30, until=20_000)
    return cluster


def test_steady_run_identical_with_and_without_cert_cache():
    for seed in (1, 2, 3):
        cached = _run_steady(seed, cert_cache=True)
        bypass = _run_steady(seed, cert_cache=False)
        assert _commit_trace(cached) == _commit_trace(bypass)
        assert _counters(cached) == _counters(bypass)
        # The cached run actually exercised the cache...
        assert cached.metrics.cert_cache_counters()["hits"] > 0
        # ...and the bypass run recorded nothing.
        assert bypass.metrics.cert_cache_counters() == {
            "hits": 0,
            "misses": 0,
            "entries": 0,
            "invalidations": 0,
        }


def test_fallback_run_identical_with_and_without_cert_cache():
    """Forced-fallback path: coin QCs, f-QCs and f-TCs all flow through the
    cache; leader election must still come out identical."""
    config = preset("fallback-3chain").config(4)

    def run(cert_cache: bool) -> Cluster:
        cluster = (
            ClusterBuilder(config=config, seed=2)
            .with_cert_cache(cert_cache)
            .with_delay_model_factory(leader_attack_factory())
            .with_preload(500)
            .build()
        )
        cluster.run_until_commits(5, until=100_000)
        return cluster

    cached = run(True)
    bypass = run(False)
    assert _commit_trace(cached) == _commit_trace(bypass)
    assert _counters(cached) == _counters(bypass)
    assert cached.metrics.fallback_count() > 0
    assert cached.metrics.cert_cache_counters()["hits"] > 0
