"""Scale tests (n >= 64): liveness and determinism at the scale targets.

Marked ``scale`` and excluded from tier-1 (see pyproject addopts); the CI
``scale-smoke`` job runs them with ``-m scale``.  They assert the two
properties the n-scaling work must preserve:

- the simulator stays *live* at n=64 within a bounded wall/sim-time budget
  (the pre-refactor hot paths made n=64 runs minutes long);
- determinism holds at scale: two runs with one seed produce the same
  commit trace and protocol counters.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

_BENCHMARKS = Path(__file__).resolve().parents[2] / "benchmarks"
if str(_BENCHMARKS) not in sys.path:
    sys.path.insert(0, str(_BENCHMARKS))

from bench_simcore import fingerprint, protocol_counters  # noqa: E402

from repro.experiments.scenarios import (  # noqa: E402
    build_cluster,
    leader_attack_factory,
)

pytestmark = pytest.mark.scale


def _run_steady_n64(seed: int):
    cluster = build_cluster("fallback-3chain", 64, seed=seed)
    cluster.run_until_commits(100, until=100_000.0)
    return cluster


def test_steady_n64_live_and_deterministic():
    first = _run_steady_n64(seed=3)
    assert first.metrics.decisions() >= 100
    # No fallback should trigger on the synchronous steady path.
    assert first.metrics.fallback_count() == 0
    second = _run_steady_n64(seed=3)
    assert fingerprint(first) == fingerprint(second)
    assert protocol_counters(first) == protocol_counters(second)


def test_fallback_n64_progresses_under_attack():
    cluster = build_cluster(
        "fallback-3chain", 64, seed=3, delay_factory=leader_attack_factory()
    )
    cluster.run_until_commits(5, until=400_000.0)
    metrics = cluster.metrics
    assert metrics.decisions() >= 5
    assert metrics.fallback_count() >= 1
    # Per-decision cost must be quadratic-ish, not worse: at n=64 the
    # view-change machinery dominates, but a super-quadratic regression
    # (e.g. re-broadcast loops) would blow far past this ceiling.
    assert metrics.messages_per_decision() < 64 * 64 * 16


def test_steady_n256_commits():
    cluster = build_cluster("fallback-3chain", 256, seed=3)
    cluster.run_until_commits(10, until=100_000.0)
    assert cluster.metrics.decisions() >= 10
