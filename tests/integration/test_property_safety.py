"""Property-based adversarial testing: safety under random schedules.

Hypothesis draws a cluster size, a protocol variant, a network regime, a
fault assignment and a seed; the run must end with all of the paper's
safety invariants intact (Theorem 6 + the chain laws of Lemma 2) — and, for
the fallback variants under eventually-reasonable networks, with progress.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis.safety import check_cluster_safety
from repro.core.config import ProtocolConfig, ProtocolVariant
from repro.experiments.scenarios import leader_attack_factory
from repro.faults import (
    CrashReplica,
    EquivocatingLeader,
    NonVoter,
    SilentReplica,
    StaleQCLeader,
    WithholdingLeader,
    byzantine,
)
from repro.net.conditions import AsynchronousDelay, SynchronousDelay
from repro.runtime.cluster import ClusterBuilder

FAULT_FACTORIES = [
    None,
    byzantine(SilentReplica),
    byzantine(CrashReplica, crash_at=20.0),
    byzantine(NonVoter),
    byzantine(WithholdingLeader),
    byzantine(EquivocatingLeader),
    byzantine(StaleQCLeader),
]

VARIANTS = [
    ProtocolVariant.FALLBACK_3CHAIN,
    ProtocolVariant.FALLBACK_2CHAIN,
    ProtocolVariant.DIEMBFT,
    ProtocolVariant.ALWAYS_FALLBACK,
]


def build_and_run(variant, n, seed, network, fault_index, fault_replica, budget):
    config = ProtocolConfig(n=n, variant=variant, fallback_adoption=True)
    builder = ClusterBuilder(config=config, seed=seed).with_preload(500)
    factory = FAULT_FACTORIES[fault_index]
    if factory is not None:
        builder.with_byzantine(fault_replica % n, factory)
    if network == "sync":
        builder.with_delay_model(SynchronousDelay(delta=1.0))
    elif network == "async":
        builder.with_delay_model(
            AsynchronousDelay(base_delay=0.5, tail_scale=6.0, max_delay=60.0)
        )
    else:  # leader attack
        builder.with_delay_model_factory(leader_attack_factory(attack_delay=30.0))
    cluster = builder.build()
    cluster.run(until=budget, max_events=2_000_000)
    return cluster


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    variant=st.sampled_from(VARIANTS),
    n=st.sampled_from([4, 7]),
    seed=st.integers(0, 10_000),
    network=st.sampled_from(["sync", "async", "attack"]),
    fault_index=st.integers(0, len(FAULT_FACTORIES) - 1),
    fault_replica=st.integers(0, 6),
)
def test_safety_holds_under_random_adversaries(
    variant, n, seed, network, fault_index, fault_replica
):
    cluster = build_and_run(
        variant, n, seed, network, fault_index, fault_replica, budget=400.0
    )
    violations = check_cluster_safety(cluster.honest_replicas())
    assert not violations, "; ".join(str(v) for v in violations[:3])


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(0, 10_000),
    n=st.sampled_from([4, 7]),
    fault_index=st.integers(0, len(FAULT_FACTORIES) - 1),
    fault_replica=st.integers(0, 6),
)
def test_fallback_protocol_live_under_synchrony_with_any_fault(
    seed, n, fault_index, fault_replica
):
    cluster = build_and_run(
        ProtocolVariant.FALLBACK_3CHAIN,
        n,
        seed,
        "sync",
        fault_index,
        fault_replica,
        budget=600.0,
    )
    assert cluster.metrics.decisions() >= 5
    assert not check_cluster_safety(cluster.honest_replicas())


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 10_000))
def test_fallback_protocol_live_under_pure_asynchrony(seed):
    cluster = build_and_run(
        ProtocolVariant.FALLBACK_3CHAIN, 4, seed, "attack", 0, 0, budget=3_000.0
    )
    assert cluster.metrics.decisions() >= 2
    assert not check_cluster_safety(cluster.honest_replicas())


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 10_000), duplicate=st.sampled_from([0.3, 0.6, 0.9]))
def test_duplicate_message_delivery_is_idempotent(seed, duplicate):
    """Replica handlers must tolerate duplicated deliveries (the paper's
    channel model may not duplicate, but idempotence is the standard
    hardening and commits must not double-count).  ``reliable=False``
    exposes the raw transport duplicates directly to the replicas —
    no channel-layer dedup in the way."""
    from repro.net.loss import IIDLoss

    config = ProtocolConfig(n=4)
    cluster = (
        ClusterBuilder(config=config, seed=seed)
        .with_loss_model(IIDLoss(duplicate=duplicate, max_copies=3), reliable=False)
        .build()
    )
    cluster.run(until=120.0)
    assert cluster.network.duplicates_injected > 0
    assert cluster.metrics.decisions() >= 5
    assert not check_cluster_safety(cluster.honest_replicas())
    for replica in cluster.honest_replicas():
        positions = [record.position for record in replica.ledger.records]
        assert positions == sorted(set(positions))


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(0, 10_000),
    drop=st.sampled_from([0.05, 0.15, 0.3]),
    duplicate=st.sampled_from([0.0, 0.05]),
)
def test_safety_holds_over_reliable_channels_on_a_lossy_wire(seed, drop, duplicate):
    """With the reliable-channel layer in place, random drop/duplication
    rates must never break safety (and synchrony should keep progress)."""
    from repro.net.loss import IIDLoss

    cluster = (
        ClusterBuilder(n=4, seed=seed)
        .with_loss_model(IIDLoss(drop=drop, duplicate=duplicate))
        .with_preload(500)
        .build()
    )
    cluster.run(until=300.0, max_events=2_000_000)
    violations = check_cluster_safety(cluster.honest_replicas())
    assert not violations, "; ".join(str(v) for v in violations[:3])
    assert cluster.metrics.decisions() >= 3
