"""Property-based adversarial testing: safety under random schedules.

Hypothesis draws a cluster size, a protocol variant, a network regime, a
fault assignment and a seed; the run must end with all of the paper's
safety invariants intact (Theorem 6 + the chain laws of Lemma 2) — and, for
the fallback variants under eventually-reasonable networks, with progress.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis.safety import check_cluster_safety
from repro.core.config import ProtocolConfig, ProtocolVariant
from repro.experiments.scenarios import leader_attack_factory
from repro.faults import (
    CrashReplica,
    EquivocatingLeader,
    NonVoter,
    SilentReplica,
    StaleQCLeader,
    WithholdingLeader,
    byzantine,
)
from repro.net.conditions import AsynchronousDelay, SynchronousDelay
from repro.runtime.cluster import ClusterBuilder

FAULT_FACTORIES = [
    None,
    byzantine(SilentReplica),
    byzantine(CrashReplica, crash_at=20.0),
    byzantine(NonVoter),
    byzantine(WithholdingLeader),
    byzantine(EquivocatingLeader),
    byzantine(StaleQCLeader),
]

VARIANTS = [
    ProtocolVariant.FALLBACK_3CHAIN,
    ProtocolVariant.FALLBACK_2CHAIN,
    ProtocolVariant.DIEMBFT,
    ProtocolVariant.ALWAYS_FALLBACK,
]


def build_and_run(variant, n, seed, network, fault_index, fault_replica, budget):
    config = ProtocolConfig(n=n, variant=variant, fallback_adoption=True)
    builder = ClusterBuilder(config=config, seed=seed).with_preload(500)
    factory = FAULT_FACTORIES[fault_index]
    if factory is not None:
        builder.with_byzantine(fault_replica % n, factory)
    if network == "sync":
        builder.with_delay_model(SynchronousDelay(delta=1.0))
    elif network == "async":
        builder.with_delay_model(
            AsynchronousDelay(base_delay=0.5, tail_scale=6.0, max_delay=60.0)
        )
    else:  # leader attack
        builder.with_delay_model_factory(leader_attack_factory(attack_delay=30.0))
    cluster = builder.build()
    cluster.run(until=budget, max_events=2_000_000)
    return cluster


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    variant=st.sampled_from(VARIANTS),
    n=st.sampled_from([4, 7]),
    seed=st.integers(0, 10_000),
    network=st.sampled_from(["sync", "async", "attack"]),
    fault_index=st.integers(0, len(FAULT_FACTORIES) - 1),
    fault_replica=st.integers(0, 6),
)
def test_safety_holds_under_random_adversaries(
    variant, n, seed, network, fault_index, fault_replica
):
    cluster = build_and_run(
        variant, n, seed, network, fault_index, fault_replica, budget=400.0
    )
    violations = check_cluster_safety(cluster.honest_replicas())
    assert not violations, "; ".join(str(v) for v in violations[:3])


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(0, 10_000),
    n=st.sampled_from([4, 7]),
    fault_index=st.integers(0, len(FAULT_FACTORIES) - 1),
    fault_replica=st.integers(0, 6),
)
def test_fallback_protocol_live_under_synchrony_with_any_fault(
    seed, n, fault_index, fault_replica
):
    cluster = build_and_run(
        ProtocolVariant.FALLBACK_3CHAIN,
        n,
        seed,
        "sync",
        fault_index,
        fault_replica,
        budget=600.0,
    )
    assert cluster.metrics.decisions() >= 5
    assert not check_cluster_safety(cluster.honest_replicas())


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 10_000))
def test_fallback_protocol_live_under_pure_asynchrony(seed):
    cluster = build_and_run(
        ProtocolVariant.FALLBACK_3CHAIN, 4, seed, "attack", 0, 0, budget=3_000.0
    )
    assert cluster.metrics.decisions() >= 2
    assert not check_cluster_safety(cluster.honest_replicas())


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 10_000), duplicates=st.integers(1, 3))
def test_duplicate_message_delivery_is_idempotent(seed, duplicates):
    """Replica handlers must tolerate duplicated deliveries (the adversary
    may not duplicate in our channel model, but idempotence is the standard
    hardening and commits must not double-count)."""
    from repro.net.network import Network

    original_send = Network.send

    def duplicating_send(self, sender, receiver, message):
        for _ in range(duplicates):
            original_send(self, sender, receiver, message)

    Network.send = duplicating_send
    try:
        config = ProtocolConfig(n=4)
        cluster = ClusterBuilder(config=config, seed=seed).build()
        cluster.run(until=120.0)
    finally:
        Network.send = original_send
    assert cluster.metrics.decisions() >= 5
    assert not check_cluster_safety(cluster.honest_replicas())
    for replica in cluster.honest_replicas():
        positions = [record.position for record in replica.ledger.records]
        assert positions == sorted(set(positions))
