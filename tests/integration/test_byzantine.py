"""Integration: Byzantine fault tolerance.

Each behaviour is injected (up to f replicas) under synchronous and
adversarial networks; every run must preserve safety (Theorem 6) and — for
the fallback protocol — liveness.
"""

import pytest

from repro.analysis.safety import assert_cluster_safety
from repro.core.config import ProtocolConfig, ProtocolVariant
from repro.experiments.scenarios import leader_attack_factory
from repro.faults import (
    CrashReplica,
    EquivocatingLeader,
    NonVoter,
    SilentReplica,
    StaleQCLeader,
    WithholdingLeader,
    byzantine,
)
from repro.runtime.cluster import ClusterBuilder


BEHAVIOURS = [
    ("silent", byzantine(SilentReplica)),
    ("crash-late", byzantine(CrashReplica, crash_at=25.0)),
    ("non-voter", byzantine(NonVoter)),
    ("withholding-leader", byzantine(WithholdingLeader)),
    ("equivocating-leader", byzantine(EquivocatingLeader)),
    ("stale-qc-leader", byzantine(StaleQCLeader)),
]


@pytest.mark.parametrize("name,factory", BEHAVIOURS)
def test_one_byzantine_replica_n4(name, factory):
    cluster = (
        ClusterBuilder(n=4, seed=13)
        .with_byzantine(0, factory)  # replica 0 leads rounds 1-4: worst spot
        .build()
    )
    result = cluster.run_until_commits(15, until=30_000)
    assert result.decisions >= 15, f"{name}: protocol lost liveness"
    assert_cluster_safety(cluster.honest_replicas())


@pytest.mark.parametrize("name,factory", BEHAVIOURS)
def test_f_byzantine_replicas_n7(name, factory):
    cluster = (
        ClusterBuilder(n=7, seed=13)
        .with_byzantine(0, factory)
        .with_byzantine(3, factory)
        .build()
    )
    result = cluster.run_until_commits(12, until=60_000)
    assert result.decisions >= 12, f"{name}: lost liveness with f=2 faults"
    assert_cluster_safety(cluster.honest_replicas())


def test_equivocation_never_commits_two_blocks_per_round():
    cluster = (
        ClusterBuilder(n=4, seed=17)
        .with_byzantine(0, byzantine(EquivocatingLeader))
        .build()
    )
    cluster.run_until_commits(20, until=30_000)
    seen: dict[tuple, str] = {}
    for replica in cluster.honest_replicas():
        for block in replica.ledger.committed_blocks():
            key = (block.view, block.round)
            assert seen.setdefault(key, block.id) == block.id
    assert_cluster_safety(cluster.honest_replicas())


def test_byzantine_plus_network_attack():
    """The hardest configuration: f Byzantine replicas AND the asynchronous
    leader-targeting scheduler.  Chain adoption is enabled (the paper's own
    optimization), which repairs the height-1 lock-mismatch liveness corner
    of the brief announcement (see DESIGN.md)."""
    config = ProtocolConfig(n=4, fallback_adoption=True)
    cluster = (
        ClusterBuilder(config=config, seed=19)
        .with_byzantine(1, byzantine(SilentReplica))
        .with_delay_model_factory(leader_attack_factory())
        .build()
    )
    result = cluster.run_until_commits(6, until=100_000)
    assert result.decisions >= 6
    assert_cluster_safety(cluster.honest_replicas())


def test_crash_mid_fallback_is_tolerated():
    config = ProtocolConfig(n=4)
    cluster = (
        ClusterBuilder(config=config, seed=23)
        .with_byzantine(2, byzantine(CrashReplica, crash_at=70.0))
        .with_delay_model_factory(leader_attack_factory())
        .build()
    )
    result = cluster.run_until_commits(6, until=100_000)
    assert result.decisions >= 6
    assert_cluster_safety(cluster.honest_replicas())


def test_stale_qc_leader_blocks_are_rejected():
    cluster = (
        ClusterBuilder(n=4, seed=29)
        .with_byzantine(0, byzantine(StaleQCLeader))
        .build()
    )
    cluster.run_until_commits(10, until=30_000)
    from repro.types.blocks import Block

    for replica in cluster.honest_replicas():
        for block in replica.ledger.committed_blocks():
            if isinstance(block, Block):
                assert block.author != 0, "a stale-QC block was committed"


def test_builder_rejects_more_than_f_byzantine():
    builder = ClusterBuilder(n=4, seed=1).with_byzantine(0, byzantine(SilentReplica))
    with pytest.raises(ValueError):
        builder.with_byzantine(1, byzantine(SilentReplica))


def test_two_chain_variant_with_byzantine_leader():
    config = ProtocolConfig(n=4, variant=ProtocolVariant.FALLBACK_2CHAIN)
    cluster = (
        ClusterBuilder(config=config, seed=31)
        .with_byzantine(0, byzantine(WithholdingLeader))
        .build()
    )
    result = cluster.run_until_commits(12, until=30_000)
    assert result.decisions >= 12
    assert_cluster_safety(cluster.honest_replicas())
