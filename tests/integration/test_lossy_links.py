"""Acceptance tests: the protocol over a genuinely lossy transport.

The paper's proofs assume reliable links; these tests withdraw that
assumption at the transport (20% i.i.d. drop, 5% duplication, bursts,
scripted crash/recover) and check that the reliable-channel layer restores
enough of it for the protocol to stay safe and live — and that with the
loss machinery disabled, the simulation is event-identical to the seed.
"""

import pytest

from repro.analysis.safety import assert_cluster_safety, check_cluster_safety
from repro.core.config import ProtocolConfig, ProtocolVariant
from repro.faults import FaultSchedule, crash, recover
from repro.net.loss import BurstLoss, IIDLoss, NoLoss
from repro.net.reliable import ReliableNetwork
from repro.runtime.cluster import ClusterBuilder
from repro.storage.durable import RecoveringReplica

#: The ISSUE acceptance bar: 20% drop + 5% duplication + a crash/recover.
ACCEPTANCE_LOSS = IIDLoss(drop=0.2, duplicate=0.05)


def build_acceptance(seed=7):
    schedule = FaultSchedule().at(40.0, crash(2)).at(90.0, recover(2))
    return (
        ClusterBuilder(n=4, seed=seed)
        .with_loss_model(ACCEPTANCE_LOSS)
        .with_fault_schedule(schedule)
        .with_honest_factory(2, RecoveringReplica.factory())
        .build()
    )


def test_commits_thirty_blocks_under_loss_duplication_and_a_crash():
    cluster = build_acceptance()
    result = cluster.run_until_commits(30, until=5_000.0)
    assert result.decisions >= 30
    assert_cluster_safety(cluster.honest_replicas())
    assert cluster.fault_log == [(40.0, "crash(2)"), (90.0, "recover(2)")]
    assert cluster.replicas[2].recovered
    # The channel actually worked for its living.
    assert cluster.metrics.retransmissions > 0
    assert cluster.metrics.duplicates_suppressed > 0
    assert cluster.metrics.acks > 0
    # Every message in these suites models its wire size.
    assert cluster.network.untyped_messages == 0


def test_acceptance_run_is_deterministic():
    def run():
        cluster = build_acceptance()
        result = cluster.run_until_commits(30, until=5_000.0)
        return (
            result.stopped_at,
            result.decisions,
            cluster.metrics.honest_messages,
            cluster.metrics.honest_bytes,
            cluster.metrics.retransmissions,
            cluster.metrics.acks,
            cluster.metrics.duplicates_suppressed,
            cluster.network.messages_dropped,
        )

    assert run() == run()


def test_disabled_loss_model_matches_seed_traffic_exactly():
    """`NoLoss` (and the loss plumbing generally) must not change a single
    delay draw: per-decision message and byte counts equal the default
    build's, event for event."""

    def traffic(builder):
        cluster = builder.build()
        cluster.run_until_commits(10, until=2_000.0)
        return (
            cluster.scheduler.now,
            cluster.metrics.decisions(),
            cluster.metrics.honest_messages,
            cluster.metrics.honest_bytes,
            dict(cluster.metrics.message_counts),
        )

    default = traffic(ClusterBuilder(n=4, seed=42))
    explicit_noloss = traffic(
        ClusterBuilder(n=4, seed=42).with_loss_model(NoLoss(), reliable=False)
    )
    assert default == explicit_noloss


def test_lossy_transport_without_channels_still_safe():
    """Raw 10% loss exposed to the replicas: liveness may suffer, but the
    safety argument never relied on reliable delivery."""
    cluster = (
        ClusterBuilder(n=4, seed=19)
        .with_loss_model(IIDLoss(drop=0.1), reliable=False)
        .build()
    )
    cluster.run(until=600.0)
    assert not isinstance(cluster.network, ReliableNetwork)
    violations = check_cluster_safety(cluster.honest_replicas())
    assert not violations, "; ".join(str(v) for v in violations[:3])


def test_burst_loss_with_reliable_channels_stays_live():
    cluster = (
        ClusterBuilder(n=4, seed=29)
        .with_loss_model(BurstLoss(p_enter_bad=0.05, p_exit_bad=0.25, bad_drop=0.9))
        .build()
    )
    result = cluster.run_until_commits(15, until=5_000.0)
    assert result.decisions >= 15
    assert_cluster_safety(cluster.honest_replicas())


@pytest.mark.parametrize(
    "variant", [ProtocolVariant.FALLBACK_3CHAIN, ProtocolVariant.FALLBACK_2CHAIN]
)
def test_acceptance_bar_holds_for_both_fallback_variants(variant):
    schedule = FaultSchedule().at(40.0, crash(2)).at(90.0, recover(2))
    config = ProtocolConfig(n=4, variant=variant)
    cluster = (
        ClusterBuilder(config=config, seed=7)
        .with_loss_model(ACCEPTANCE_LOSS)
        .with_fault_schedule(schedule)
        .with_honest_factory(2, RecoveringReplica.factory())
        .build()
    )
    result = cluster.run_until_commits(30, until=5_000.0)
    assert result.decisions >= 30
    assert_cluster_safety(cluster.honest_replicas())


def test_channel_overhead_is_separated_from_goodput():
    """Retransmissions and acks must not inflate the protocol's
    messages-per-decision accounting."""
    lossless = ClusterBuilder(n=4, seed=31).build()
    lossless.run_until_commits(10, until=2_000.0)
    lossy = (
        ClusterBuilder(n=4, seed=31)
        .with_loss_model(IIDLoss(drop=0.2))
        .build()
    )
    lossy.run_until_commits(10, until=5_000.0)
    assert lossy.metrics.retransmissions > 0
    assert lossy.metrics.acks > 0
    # Overhead lives in its own counters: the per-type goodput counts only
    # ever contain protocol message names, never channel frame types.
    assert "AckPacket" not in lossy.metrics.message_counts
    assert "DataPacket" not in lossy.metrics.message_counts
    summary = lossy.metrics.summary()
    assert "retransmissions:" in summary
    assert "duplicates suppressed:" in summary
    assert "ack overhead:" in summary


def test_clients_confirm_over_a_lossy_transport():
    cluster = (
        ClusterBuilder(n=4, seed=5)
        .with_loss_model(IIDLoss(drop=0.15))
        .with_preload(0)
        .with_clients(1, total=5, outstanding=2)
        .build()
    )
    cluster.run(until=2_000.0, stop_when=lambda: cluster.total_confirmations() >= 5)
    assert cluster.total_confirmations() >= 5
    assert cluster.network.untyped_messages == 0
    assert_cluster_safety(cluster.honest_replicas())
