"""Crash a replica *mid-fallback*, restart it, and watch it catch up.

The nastiest recovery case: the replica dies while the cluster is inside
the asynchronous view-change (fallback) — its journal holds fallback vote
maps, not just steady-state rounds — and it comes back to a cluster that
has since elected a leader, exited the view, and kept committing.  The
restarted replica must rejoin through the certificate-driven
BlockRequest/ChainRequest catch-up path and end prefix-consistent with
everyone else (Lemmas 4-5: restored ``r_vote``/``rank_lock``/vote maps
forbid contradicting the dead incarnation's votes).

Timing of the crash is condition-triggered, not hard-coded: an ``inject``
probe fires periodically and crashes the victim the first time it is
actually inside fallback mode, so the test stays robust to scheduling
changes upstream.
"""

from repro.analysis.safety import assert_cluster_safety
from repro.experiments.scenarios import leader_attack_factory
from repro.faults.schedule import FaultSchedule, inject
from repro.runtime.cluster import ClusterBuilder
from repro.storage import RecoveringReplica

VICTIM = 2
OUTAGE = 80.0


def recovering_factory(*args, **kwargs):
    return RecoveringReplica(*args, crash_at=None, recover_at=None, **kwargs)


def test_kill_mid_fallback_restart_rejoins_and_catches_up():
    state = {"crashed_at": None, "height_at_crash": None}

    def crash_in_fallback(cluster):
        replica = cluster.replicas[VICTIM]
        if state["crashed_at"] is not None or not replica.fallback_mode:
            return
        state["crashed_at"] = cluster.scheduler.now
        state["height_at_crash"] = replica.ledger.height
        replica.crash()
        cluster.scheduler.call_at(
            cluster.scheduler.now + OUTAGE, replica.recover, label="test-recover"
        )

    schedule = FaultSchedule()
    for t in range(20, 800, 10):  # probe until the victim is in fallback
        schedule.at(float(t), inject(crash_in_fallback, label="crash-in-fallback"))

    cluster = (
        ClusterBuilder(n=4, seed=91)
        .with_byzantine(VICTIM, recovering_factory)
        .with_delay_model_factory(leader_attack_factory())
        .with_fault_schedule(schedule)
        .build()
    )

    # The victim occupies a "byzantine" builder slot, so the metrics
    # collector (honest senders only) never counts its sync requests; tap
    # the wire directly to see them.
    victim_requests = {"BlockRequest": 0, "ChainRequest": 0}

    def watch(sender, receiver, message, time, delay):
        name = type(message).__name__
        if sender == VICTIM and name in victim_requests:
            victim_requests[name] += 1

    cluster.network.add_send_hook(watch)
    cluster.run(until=3_000.0)

    replica = cluster.replicas[VICTIM]
    assert state["crashed_at"] is not None, "victim never entered fallback"
    assert replica.recovered and not replica.crashed

    # The outage cost it blocks; it streamed them back via the sync path.
    assert victim_requests["BlockRequest"] + victim_requests["ChainRequest"] > 0, (
        "recovered replica never requested missed blocks"
    )
    counts = cluster.metrics.message_counts
    assert counts["BlockResponse"] + counts["ChainResponse"] > 0, (
        "nobody served the missed blocks"
    )

    # It rejoined: committed past where it died.
    assert replica.ledger.height > (state["height_at_crash"] or 0)

    # Consistent ledger prefix across the whole cluster (and full safety
    # check over the recovered replica's logs).
    logs = [
        [block.id for block in cluster.replicas[i].ledger.committed_blocks()]
        for i in range(4)
    ]
    shortest = min(len(log) for log in logs)
    assert shortest > 0
    assert all(log[:shortest] == logs[0][:shortest] for log in logs)
    assert_cluster_safety([cluster.replicas[i] for i in range(4)])
