"""Integration: the asynchronous fallback (Figures 2-4 behaviour).

Runs clusters under adversarial networks and checks the paper's claims:
liveness under asynchrony (Theorem 8), quadratic-but-bounded cost
(Theorem 9), per-fallback commit probability (Lemma 7), safety throughout
(Theorem 6), and the DiemBFT baseline's liveness failure.
"""

from repro.analysis.safety import assert_cluster_safety
from repro.core.config import ProtocolConfig, ProtocolVariant
from repro.experiments.scenarios import leader_attack_factory
from repro.net.conditions import (
    AsynchronousDelay,
    NetworkSchedule,
    PartialSynchronyDelay,
    PartitionDelay,
    SynchronousDelay,
)
from repro.runtime.cluster import ClusterBuilder


def attack_cluster(n=4, seed=1, variant=ProtocolVariant.FALLBACK_3CHAIN, **kwargs):
    config = ProtocolConfig(n=n, variant=variant, **kwargs)
    return (
        ClusterBuilder(config=config, seed=seed)
        .with_delay_model_factory(leader_attack_factory())
        .build()
    )


def test_live_under_leader_targeting_asynchrony():
    cluster = attack_cluster()
    result = cluster.run_until_commits(10, until=50_000)
    assert result.decisions >= 10
    assert cluster.metrics.fallback_count() >= 1
    assert_cluster_safety(cluster.honest_replicas())


def test_views_advance_through_fallbacks():
    cluster = attack_cluster()
    cluster.run_until_commits(10, until=50_000)
    assert max(replica.v_cur for replica in cluster.honest_replicas()) >= 1


def test_fallback_blocks_get_committed():
    cluster = attack_cluster()
    result = cluster.run_until_commits(12, until=50_000)
    chain = result.committed_chain()
    from repro.types.blocks import FallbackBlock

    assert any(isinstance(block, FallbackBlock) for block in chain)


def test_every_fallback_exits():
    """Lemma 7 first half: entered fallbacks eventually finish."""
    cluster = attack_cluster(seed=5)
    cluster.run_until_commits(10, until=50_000)
    cluster.run(until=cluster.scheduler.now + 200)
    entered = {
        (event.replica, event.view)
        for event in cluster.metrics.fallback_events
        if event.kind == "entered"
    }
    exited_views = {
        event.view for event in cluster.metrics.fallback_events if event.kind == "exited"
    }
    last_view = max(view for _, view in entered)
    for _, view in entered:
        # Every entered view other than possibly the in-flight last one exits.
        if view < last_view:
            assert view in exited_views


def test_diembft_baseline_not_live_under_attack():
    cluster = attack_cluster(variant=ProtocolVariant.DIEMBFT)
    result = cluster.run(until=3_000)
    assert result.decisions == 0
    # It is not silent — it burns quadratic timeout traffic while stuck.
    assert cluster.metrics.phase_messages()["view_change"] > 0


def test_fallback_cost_is_quadratic_not_worse():
    costs = {}
    for n in (4, 7, 13):
        cluster = attack_cluster(n=n, seed=2)
        cluster.run_until_commits(8, until=80_000)
        costs[n] = cluster.metrics.messages_per_decision()
        assert costs[n] is not None
    # Between n and n^2.5 per decision.
    for n, cost in costs.items():
        assert n <= cost <= 10 * n**2


def test_random_heavy_tail_asynchrony():
    """Untargeted asynchrony: timeouts fire, fallback keeps things live."""
    config = ProtocolConfig(n=4, round_timeout=2.0)
    cluster = (
        ClusterBuilder(config=config, seed=7)
        .with_delay_model(AsynchronousDelay(base_delay=0.5, tail_scale=8.0))
        .build()
    )
    result = cluster.run_until_commits(10, until=100_000)
    assert result.decisions >= 10
    assert_cluster_safety(cluster.honest_replicas())


def test_partial_synchrony_recovers_after_gst():
    model = PartialSynchronyDelay(
        gst=120.0,
        before=AsynchronousDelay(base_delay=10.0, tail_scale=20.0),
        after=SynchronousDelay(delta=1.0),
    )
    cluster = ClusterBuilder(n=4, seed=3).with_delay_model(model).build()
    cluster.run(until=400.0)
    post_gst_commits = [
        event for event in cluster.metrics.commits if event.time > 120.0
    ]
    assert post_gst_commits, "no commits after GST"
    assert_cluster_safety(cluster.honest_replicas())


def test_network_degradation_and_recovery():
    """The paper's motivating story: sync -> async -> sync."""
    schedule = NetworkSchedule(
        [
            (0.0, SynchronousDelay(delta=1.0)),
            (60.0, AsynchronousDelay(base_delay=15.0, tail_scale=30.0, max_delay=100.0)),
            (260.0, SynchronousDelay(delta=1.0)),
        ]
    )
    cluster = ClusterBuilder(n=4, seed=4).with_delay_model(schedule).build()
    cluster.run(until=600.0)
    commits = cluster.metrics.commits
    assert any(event.time < 60.0 for event in commits), "no commits pre-degradation"
    # Messages already in flight when the network heals keep their (bounded)
    # adversarial delays, so recovery completes within max_delay of healing.
    assert any(event.time > 370.0 for event in commits), "no commits after recovery"
    assert_cluster_safety(cluster.honest_replicas())


def test_partition_heals_and_protocol_continues():
    model = PartitionDelay(groups=[[0, 1], [2, 3]], heal_time=60.0)
    cluster = ClusterBuilder(n=4, seed=5).with_delay_model(model).build()
    cluster.run(until=300.0)
    post_heal = [event for event in cluster.metrics.commits if event.time > 60.0]
    assert post_heal
    assert_cluster_safety(cluster.honest_replicas())


def test_two_chain_variant_under_attack():
    cluster = attack_cluster(variant=ProtocolVariant.FALLBACK_2CHAIN, seed=6)
    result = cluster.run_until_commits(10, until=80_000)
    assert result.decisions >= 10
    assert_cluster_safety(cluster.honest_replicas())


def test_always_fallback_baseline_live_everywhere():
    for delay_model in (SynchronousDelay(), AsynchronousDelay(base_delay=1.0, tail_scale=3.0)):
        config = ProtocolConfig(n=4, variant=ProtocolVariant.ALWAYS_FALLBACK)
        cluster = (
            ClusterBuilder(config=config, seed=8)
            .with_delay_model(delay_model)
            .build()
        )
        result = cluster.run_until_commits(8, until=100_000)
        assert result.decisions >= 8
        assert_cluster_safety(cluster.honest_replicas())


def test_always_fallback_quadratic_even_under_synchrony():
    config = ProtocolConfig(n=7, variant=ProtocolVariant.ALWAYS_FALLBACK)
    cluster = ClusterBuilder(config=config, seed=8).build()
    cluster.run_until_commits(10, until=100_000)
    per_decision = cluster.metrics.messages_per_decision()
    assert per_decision is not None
    assert per_decision > 2 * 7  # clearly superlinear at n=7


def test_adoption_optimization_keeps_safety():
    config = ProtocolConfig(n=4, fallback_adoption=True)
    cluster = (
        ClusterBuilder(config=config, seed=9)
        .with_delay_model_factory(leader_attack_factory())
        .build()
    )
    result = cluster.run_until_commits(10, until=80_000)
    assert result.decisions >= 10
    assert_cluster_safety(cluster.honest_replicas())


def test_fallback_commit_probability_is_about_two_thirds():
    """Lemma 7: each fallback commits a new block with probability ~2f+1/n.

    We measure across many fallbacks and seeds: the fraction of fallback
    views that produced an endorsed-block commit must be well above 1/3
    and statistically consistent with ~2/3 for n=4 (the elected leader must
    be one of the >= 2f+1 replicas whose chain completed).
    """
    committed_views = 0
    total_views = 0
    for seed in range(6):
        cluster = attack_cluster(seed=seed)
        cluster.run_until_commits(10, until=80_000)
        from repro.types.blocks import FallbackBlock

        chains = [
            replica.ledger.committed_blocks()
            for replica in cluster.honest_replicas()
        ]
        longest = max(chains, key=len)
        fallback_commit_views = {
            block.view for block in longest if isinstance(block, FallbackBlock)
        }
        entered_views = {
            event.view
            for event in cluster.metrics.fallback_events
            if event.kind == "exited"
        }
        total_views += len(entered_views)
        committed_views += len(fallback_commit_views & entered_views)
    assert total_views >= 20
    fraction = committed_views / total_views
    assert fraction >= 0.45, f"fallback commit fraction {fraction} too low"
