"""Integration: the synchronous fast path (Figure 1 behaviour).

These tests run full clusters on the simulated network and check the
paper's steady-state claims: linear communication, consecutive-round chains,
no fallbacks under synchrony, and state-machine consistency.
"""

from repro.analysis.safety import assert_cluster_safety
from repro.core.config import ProtocolConfig, ProtocolVariant
from repro.ledger.ledger import KVStateMachine
from repro.runtime.cluster import ClusterBuilder


def run_sync_cluster(n=4, seed=1, commits=30, variant=ProtocolVariant.FALLBACK_3CHAIN,
                     **config_kwargs):
    config = ProtocolConfig(n=n, variant=variant, **config_kwargs)
    cluster = ClusterBuilder(config=config, seed=seed).build()
    result = cluster.run_until_commits(commits, until=20_000)
    return cluster, result


def test_commits_under_synchrony():
    cluster, result = run_sync_cluster()
    assert result.decisions >= 30
    assert_cluster_safety(cluster.honest_replicas())


def test_no_fallbacks_under_synchrony():
    cluster, _ = run_sync_cluster()
    assert cluster.metrics.fallback_count() == 0
    assert cluster.metrics.phase_messages()["view_change"] == 0


def test_rounds_are_consecutive():
    cluster, result = run_sync_cluster()
    rounds = [block.round for block in result.committed_chain()]
    assert rounds == list(range(1, len(rounds) + 1))


def test_views_stay_at_zero():
    cluster, result = run_sync_cluster()
    assert all(block.view == 0 for block in result.committed_chain())
    assert all(replica.v_cur == 0 for replica in cluster.honest_replicas())


def test_all_replicas_commit_eventually():
    cluster, _ = run_sync_cluster()
    cluster.run(until=cluster.scheduler.now + 50)  # drain in-flight commits
    heights = [replica.ledger.height for replica in cluster.honest_replicas()]
    assert min(heights) >= 30 - cluster.config.commit_depth
    assert_cluster_safety(cluster.honest_replicas())


def test_linear_message_complexity():
    """Per decision: one proposal multicast (n-1) + n votes + QC piggyback.
    Must be Θ(n), far below n²."""
    for n in (4, 7, 13):
        cluster, result = run_sync_cluster(n=n, commits=40)
        per_decision = cluster.metrics.messages_per_decision()
        assert per_decision is not None
        assert per_decision <= 3.5 * n
        assert per_decision >= n  # at least the proposal multicast


def test_commit_latency_is_three_rounds():
    """3-chain: a block commits when the chain is 2 rounds deeper."""
    cluster, result = run_sync_cluster(commits=20)
    commits = cluster.metrics.commits_at(0)
    # Block at position p (round p+1) commits when round p+3's QC forms.
    by_position = {event.position: event for event in commits}
    chain = result.committed_chain(0)
    for position, event in by_position.items():
        assert event.round == chain[position].round


def test_two_chain_variant_also_linear_and_live():
    cluster, result = run_sync_cluster(variant=ProtocolVariant.FALLBACK_2CHAIN)
    assert result.decisions >= 30
    assert cluster.metrics.fallback_count() == 0
    assert_cluster_safety(cluster.honest_replicas())


def test_diembft_baseline_sync():
    cluster, result = run_sync_cluster(variant=ProtocolVariant.DIEMBFT)
    assert result.decisions >= 30
    assert_cluster_safety(cluster.honest_replicas())


def test_kv_state_machine_agreement():
    config = ProtocolConfig(n=4)
    cluster = (
        ClusterBuilder(config=config, seed=3)
        .with_state_machine(KVStateMachine)
        .build()
    )
    cluster.run_until_commits(20, until=10_000, everywhere=True)
    states = [
        replica.ledger.state_machine.data for replica in cluster.honest_replicas()
    ]
    # Prefix consistency means lagging replicas may have fewer keys, but all
    # replicas at the same height agree exactly.
    reference = max(
        (replica for replica in cluster.honest_replicas()),
        key=lambda replica: replica.ledger.height,
    )
    for replica, state in zip(cluster.honest_replicas(), states):
        if replica.ledger.height == reference.ledger.height:
            assert state == reference.ledger.state_machine.data


def test_transactions_flow_end_to_end():
    cluster, result = run_sync_cluster(commits=10)
    committed = result.cluster.honest_replicas()[0].ledger.committed_transactions()
    assert len(committed) > 0
    latencies = cluster.metrics.commit_latencies()
    assert latencies and all(latency > 0 for latency in latencies)


def test_leader_rotation_spreads_proposals():
    cluster, result = run_sync_cluster(commits=40)
    authors = {block.author for block in result.committed_chain()}
    assert len(authors) >= 3  # 40+ rounds / 4-round windows over 4 replicas


def test_larger_timeout_changes_nothing_under_synchrony():
    cluster_fast, result_fast = run_sync_cluster(seed=9, round_timeout=3.0)
    cluster_slow, result_slow = run_sync_cluster(seed=9, round_timeout=50.0)
    fast_chain = [b.id for b in result_fast.committed_chain()]
    slow_chain = [b.id for b in result_slow.committed_chain()]
    shared = min(len(fast_chain), len(slow_chain))
    assert fast_chain[:shared] == slow_chain[:shared]


def test_determinism_same_seed_same_run():
    cluster_a, result_a = run_sync_cluster(seed=11)
    cluster_b, result_b = run_sync_cluster(seed=11)
    assert [b.id for b in result_a.committed_chain()] == [
        b.id for b in result_b.committed_chain()
    ]
    commits_a = [(e.replica, e.position, e.time) for e in cluster_a.metrics.commits]
    commits_b = [(e.replica, e.position, e.time) for e in cluster_b.metrics.commits]
    assert commits_a == commits_b
    # A different seed shifts timing (block *content* is payload-determined,
    # so chains can coincide, but the event timeline differs).
    cluster_c, _ = run_sync_cluster(seed=12)
    commits_c = [(e.replica, e.position, e.time) for e in cluster_c.metrics.commits]
    assert commits_a != commits_c
