"""Known liveness stall: a StaleQCLeader on a synchronous network.

Replica 0 always proposes off the genesis QC, so honest voters reject
every proposal it leads (the ``qc.rank >= rank_lock`` and
``r == qc.r + 1`` checks) and its rounds burn a full timeout each.  On a
synchronous network the round-robin schedule keeps handing it the same
rounds back, and with ``n = 4`` the steady-state pipeline never gets far
enough ahead for honest leaders to re-certify progress: decisions stall
near zero for the whole budget.

This is a *liveness* gap, not a safety one (the safety property suite
passes this exact configuration), and it is a faithful reproduction of
the paper's motivation: the steady-state protocol alone cannot make
progress against an adversarial leader — only the asynchronous fallback's
leader rotation can.  The strict xfail pins the stall; if a scheduling or
pacemaker change ever makes this configuration live, the xpass will flag
it so the repro can be promoted to a regression test.
"""

import pytest

from repro.core.config import ProtocolVariant

from tests.integration.test_property_safety import build_and_run

#: Index of ``byzantine(StaleQCLeader)`` in the property suite's fault
#: factory table.
STALE_QC_LEADER = 6


@pytest.mark.xfail(
    strict=True,
    reason="StaleQCLeader stalls sync n=4 FALLBACK_3CHAIN: rounds led by "
    "the faulty replica burn a timeout each and decisions never ramp "
    "(known liveness gap; safety still holds)",
)
def test_stale_qc_leader_stalls_synchronous_cluster():
    cluster = build_and_run(
        ProtocolVariant.FALLBACK_3CHAIN,
        4,
        104,
        "sync",
        STALE_QC_LEADER,
        0,
        budget=600.0,
    )
    assert cluster.metrics.decisions() >= 5
