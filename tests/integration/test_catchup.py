"""Block catch-up: a replica that misses proposals fetches and commits.

Satellite coverage for the BlockRequest/BlockResponse sync path (shallow
single-block misses) and its ChainRequest escalation (deep gaps after a
longer outage).  Loss is injected raw (``reliable=False``) so the protocol
itself — not a retransmitting channel — has to recover the blocks.
"""

from repro.net.loss import LossModel
from repro.runtime.cluster import ClusterBuilder
from repro.types.messages import Proposal


class _DropProposalsTo(LossModel):
    """Drop the first ``count`` Proposal messages addressed to ``victim``."""

    def __init__(self, victim: int, count: int) -> None:
        self.victim = victim
        self.budget = count
        self.dropped = 0

    def copies(self, sender, receiver, message, now, rng) -> int:
        if (
            receiver == self.victim
            and isinstance(message, Proposal)
            and self.dropped < self.budget
        ):
            self.dropped += 1
            return 0
        return 1

    def describe(self) -> str:
        return f"drop-proposals(victim={self.victim}, count={self.budget})"


def _run_with_outage(missed_proposals: int, seed: int):
    loss = _DropProposalsTo(victim=3, count=missed_proposals)
    cluster = (
        ClusterBuilder(n=4, seed=seed)
        .with_loss_model(loss, reliable=False)
        .build()
    )
    result = cluster.run_until_commits(12, until=500.0, everywhere=True)
    return cluster, loss, result


def test_shallow_miss_recovers_via_block_request():
    cluster, loss, _ = _run_with_outage(missed_proposals=1, seed=5)
    assert loss.dropped == 1, "the victim never missed a proposal"
    # The victim caught up and committed the full prefix.
    assert cluster.metrics.min_honest_height() >= 12
    counts = cluster.metrics.message_counts
    assert counts["BlockRequest"] > 0, "victim never requested the missed block"
    assert counts["BlockResponse"] > 0, "nobody served the missed block"
    # Safety: the recovered ledger agrees with everyone else's.
    logs = [
        [b.id for b in cluster.replicas[i].ledger.committed_blocks()]
        for i in range(4)
    ]
    shortest = min(len(log) for log in logs)
    assert shortest >= 12
    assert all(log[:shortest] == logs[0][:shortest] for log in logs)


def test_deep_gap_escalates_to_chain_request():
    cluster, loss, _ = _run_with_outage(missed_proposals=6, seed=9)
    assert loss.dropped == 6
    assert cluster.metrics.min_honest_height() >= 12
    counts = cluster.metrics.message_counts
    # A multi-block gap walks the missing-ancestor chain with range sync.
    assert counts["ChainRequest"] > 0, "deep gap never escalated to range sync"
    assert counts["ChainResponse"] > 0
