"""Message fuzzing: malformed and adversarial messages must be harmless.

Hypothesis builds protocol messages with nonsense fields (wrong views,
absurd heights, negative rounds, forged certificates, misattributed
shares) and delivers them to honest replicas.  Nothing may crash, no
unjustified state change may occur, and a healthy cluster must keep
committing afterwards.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis.safety import check_cluster_safety
from repro.crypto.coin import CoinShare
from repro.crypto.threshold import ThresholdSignature, ThresholdSignatureShare
from repro.runtime.cluster import ClusterBuilder
from repro.types.blocks import Block, FallbackBlock
from repro.types.certificates import CoinQC, FallbackQC, FallbackTC, QC
from repro.types.messages import (
    BlockRequest,
    BlockResponse,
    ChainRequest,
    CoinQCMessage,
    CoinShareMessage,
    FallbackProposal,
    FallbackQCMessage,
    FallbackTCMessage,
    FallbackTimeout,
    FallbackVote,
    PacemakerTimeout,
    Proposal,
    Vote,
)

ids = st.text(alphabet="0123456789abcdef", min_size=1, max_size=32)
small_ints = st.integers(-5, 50)
signers = st.integers(-2, 9)

fake_tsig = st.builds(
    ThresholdSignature,
    epoch=st.integers(0, 1),
    tag=ids,
    signers=st.sets(st.integers(0, 6), max_size=7).map(frozenset),
)
fake_share = st.builds(
    ThresholdSignatureShare, signer=signers, epoch=st.integers(0, 1), tag=ids
)
fake_qc = st.builds(QC, block_id=ids, round=small_ints, view=small_ints,
                    signature=fake_tsig)
fake_fqc = st.builds(
    FallbackQC, block_id=ids, round=small_ints, view=small_ints,
    height=st.integers(1, 5), proposer=signers, signature=fake_tsig,
)
fake_block = st.builds(
    Block, qc=fake_qc, round=small_ints, view=small_ints, author=signers
)
fake_fblock = st.builds(
    FallbackBlock, qc=st.one_of(fake_qc, fake_fqc), round=small_ints,
    view=small_ints, height=st.integers(1, 5), proposer=signers,
)
fake_ftc = st.builds(FallbackTC, view=small_ints, signature=fake_tsig)
fake_coin_share = st.builds(
    CoinShare, signer=signers, view=small_ints, epoch=st.integers(0, 1), tag=ids
)
fake_coin_qc = st.builds(CoinQC, view=small_ints, leader=signers, proof_tag=ids)

fuzz_messages = st.one_of(
    st.builds(Proposal, block=fake_block),
    st.builds(Vote, block_id=ids, round=small_ints, view=small_ints,
              share=fake_share),
    st.builds(FallbackTimeout, view=small_ints, share=fake_share,
              qc_high=fake_qc),
    st.builds(PacemakerTimeout, round=small_ints, share=fake_share,
              qc_high=fake_qc),
    st.builds(FallbackTCMessage, ftc=fake_ftc),
    st.builds(FallbackProposal, fblock=fake_fblock,
              ftc=st.one_of(st.none(), fake_ftc)),
    st.builds(FallbackVote, block_id=ids, round=small_ints, view=small_ints,
              height=st.integers(1, 5), proposer=signers, share=fake_share),
    st.builds(FallbackQCMessage, fqc=fake_fqc),
    st.builds(CoinShareMessage, share=fake_coin_share),
    st.builds(CoinQCMessage, coin_qc=fake_coin_qc),
    st.builds(BlockRequest, block_id=ids),
    st.builds(BlockResponse, block=fake_block),
    st.builds(ChainRequest, block_id=ids, max_blocks=st.integers(-5, 500)),
    st.just("not even a message"),
    st.just(None),
    st.just(42),
)


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    messages=st.lists(st.tuples(st.integers(0, 3), fuzz_messages), max_size=12),
    seed=st.integers(0, 1000),
)
def test_fuzzed_messages_never_corrupt_an_idle_replica(messages, seed):
    cluster = ClusterBuilder(n=4, seed=seed).with_preload(20).build()
    target = cluster.replicas[1]
    for sender, message in messages:
        target.deliver(sender, message)  # must not raise
    # No forged certificate may have moved the replica's safety state.
    assert target.safety.r_vote == 0
    assert target.qc_high.round == 0
    assert target.ledger.height == 0
    # Forged f-TCs never verify, so the fallback can never be entered.
    assert not target.fallback_mode
    assert target.fallback.entered_view == -1
    cluster.scheduler.drain(limit=100_000)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    messages=st.lists(st.tuples(st.integers(0, 3), fuzz_messages), max_size=8),
    seed=st.integers(0, 1000),
)
def test_cluster_stays_live_after_fuzzing(messages, seed):
    cluster = ClusterBuilder(n=4, seed=seed).with_preload(200).build()
    cluster.start()
    for sender, message in messages:
        for replica in cluster.replicas:
            replica.deliver(sender, message)
    cluster.run(until=120.0)
    assert cluster.metrics.decisions() >= 5
    assert not check_cluster_safety(cluster.honest_replicas())
