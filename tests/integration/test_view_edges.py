"""Edge cases in view management: view skipping, future coin-QCs, laggards."""

import pytest

from repro.analysis.safety import assert_cluster_safety
from repro.core.config import ProtocolConfig
from repro.runtime.cluster import ClusterBuilder
from repro.types.certificates import CoinQC, FallbackTC
from repro.types.messages import CoinQCMessage, FallbackTCMessage


def build(seed=111, n=4):
    return ClusterBuilder(n=n, seed=seed).with_preload(50).build()


def make_ftc(cluster, view):
    scheme = cluster.setup.quorum_scheme
    payload = ("ftimeout", view)
    shares = [
        scheme.sign_share(cluster.setup.registry.key_pair(i), payload)
        for i in range(3)
    ]
    return FallbackTC(view=view, signature=scheme.combine(shares, payload))


def make_coin_qc(cluster, view):
    coin = cluster.setup.coin
    return CoinQC(view=view, leader=coin._value(view), proof_tag=coin.leader_proof_tag(view))


def test_ftc_for_future_view_skips_intermediate_views():
    """The paper: enter the fallback for any f-TC of view >= v_cur."""
    cluster = build()
    replica = cluster.replicas[1]
    replica.deliver(0, FallbackTCMessage(ftc=make_ftc(cluster, view=3)))
    assert replica.v_cur == 3
    assert replica.fallback_mode
    assert replica.fallback.entered_view == 3
    # A straggler f-TC for a skipped view is ignored.
    replica.deliver(0, FallbackTCMessage(ftc=make_ftc(cluster, view=1)))
    assert replica.v_cur == 3
    assert replica.fallback.entered_view == 3


def test_future_coin_qc_fast_forwards_a_laggard():
    """A replica that missed whole fallbacks adopts a future view's coin-QC
    and lands in the next view (the forwarding path of Exit Fallback)."""
    cluster = build()
    replica = cluster.replicas[2]
    assert replica.v_cur == 0
    replica.deliver(1, CoinQCMessage(coin_qc=make_coin_qc(cluster, view=5)))
    assert replica.v_cur == 6
    assert not replica.fallback_mode
    # Old f-TCs can no longer drag it backwards.
    replica.deliver(0, FallbackTCMessage(ftc=make_ftc(cluster, view=4)))
    assert replica.v_cur == 6


def test_old_coin_qc_still_recorded_for_endorsement():
    """Stale coin-QCs must be recorded (historical endorsement checks) even
    though they do not change the view."""
    cluster = build()
    replica = cluster.replicas[2]
    replica.deliver(1, CoinQCMessage(coin_qc=make_coin_qc(cluster, view=5)))
    assert replica.v_cur == 6
    replica.deliver(1, CoinQCMessage(coin_qc=make_coin_qc(cluster, view=2)))
    assert replica.v_cur == 6  # unchanged
    assert 2 in replica.fallback.coin_qcs  # but recorded


def test_timeout_in_new_view_after_exit():
    """After exiting fallback view v, a timeout in view v+1 produces shares
    over v+1, and a second fallback proceeds normally."""
    cluster = build()
    for replica in cluster.replicas:
        replica.deliver(
            1, CoinQCMessage(coin_qc=make_coin_qc(cluster, view=0))
        )
    assert all(r.v_cur == 1 for r in cluster.replicas)
    # Now force timeouts: every replica times out in view 1.
    for replica in cluster.replicas:
        replica.fallback.on_local_timeout()
    cluster.scheduler.drain(limit=300_000)
    assert all(r.v_cur >= 2 for r in cluster.replicas)
    assert_cluster_safety(cluster.honest_replicas())


def test_view_numbers_committed_are_monotone_under_churn():
    from repro.experiments.scenarios import leader_attack_factory

    cluster = (
        ClusterBuilder(n=4, seed=113)
        .with_delay_model_factory(leader_attack_factory())
        .build()
    )
    cluster.run_until_commits(12, until=100_000)
    for replica in cluster.honest_replicas():
        views = [block.view for block in replica.ledger.committed_blocks()]
        assert views == sorted(views)
    assert_cluster_safety(cluster.honest_replicas())


def test_laggard_rejoins_after_view_jump_and_commits():
    """A replica fast-forwarded by a future coin-QC still catches up on the
    chain via sync and resumes committing."""
    cluster = build(seed=115)
    laggard = cluster.replicas[3]
    # Run the cluster a little; then jump the laggard far ahead in views
    # (simulating having missed fallbacks that never actually happened is
    # not possible — instead verify a view-consistent jump):
    cluster.run_until_commits(10, until=5_000)
    assert laggard.ledger.height > 0
    before = laggard.ledger.height
    cluster.run_until_commits(20, until=10_000)
    assert laggard.ledger.height >= before
