"""Edge cases in view management: view skipping, future coin-QCs, laggards."""

import pytest

from repro.analysis.safety import assert_cluster_safety
from repro.core.config import ProtocolConfig, ProtocolVariant
from repro.runtime.cluster import ClusterBuilder
from repro.types.certificates import CoinQC, FallbackTC
from repro.types.messages import CoinQCMessage, FallbackTCMessage


def build(seed=111, n=4):
    return ClusterBuilder(n=n, seed=seed).with_preload(50).build()


def make_ftc(cluster, view):
    scheme = cluster.setup.quorum_scheme
    payload = ("ftimeout", view)
    shares = [
        scheme.sign_share(cluster.setup.registry.key_pair(i), payload)
        for i in range(3)
    ]
    return FallbackTC(view=view, signature=scheme.combine(shares, payload))


def make_coin_qc(cluster, view):
    coin = cluster.setup.coin
    return CoinQC(view=view, leader=coin._value(view), proof_tag=coin.leader_proof_tag(view))


def test_ftc_for_future_view_skips_intermediate_views():
    """The paper: enter the fallback for any f-TC of view >= v_cur."""
    cluster = build()
    replica = cluster.replicas[1]
    replica.deliver(0, FallbackTCMessage(ftc=make_ftc(cluster, view=3)))
    assert replica.v_cur == 3
    assert replica.fallback_mode
    assert replica.fallback.entered_view == 3
    # A straggler f-TC for a skipped view is ignored.
    replica.deliver(0, FallbackTCMessage(ftc=make_ftc(cluster, view=1)))
    assert replica.v_cur == 3
    assert replica.fallback.entered_view == 3


def test_future_coin_qc_fast_forwards_a_laggard():
    """A replica that missed whole fallbacks adopts a future view's coin-QC
    and lands in the next view (the forwarding path of Exit Fallback)."""
    cluster = build()
    replica = cluster.replicas[2]
    assert replica.v_cur == 0
    replica.deliver(1, CoinQCMessage(coin_qc=make_coin_qc(cluster, view=5)))
    assert replica.v_cur == 6
    assert not replica.fallback_mode
    # Old f-TCs can no longer drag it backwards.
    replica.deliver(0, FallbackTCMessage(ftc=make_ftc(cluster, view=4)))
    assert replica.v_cur == 6


def test_old_coin_qc_still_recorded_for_endorsement():
    """Stale coin-QCs must be recorded (historical endorsement checks) even
    though they do not change the view."""
    cluster = build()
    replica = cluster.replicas[2]
    replica.deliver(1, CoinQCMessage(coin_qc=make_coin_qc(cluster, view=5)))
    assert replica.v_cur == 6
    replica.deliver(1, CoinQCMessage(coin_qc=make_coin_qc(cluster, view=2)))
    assert replica.v_cur == 6  # unchanged
    assert 2 in replica.fallback.coin_qcs  # but recorded


def test_timeout_in_new_view_after_exit():
    """After exiting fallback view v, a timeout in view v+1 produces shares
    over v+1, and a second fallback proceeds normally."""
    cluster = build()
    for replica in cluster.replicas:
        replica.deliver(
            1, CoinQCMessage(coin_qc=make_coin_qc(cluster, view=0))
        )
    assert all(r.v_cur == 1 for r in cluster.replicas)
    # Now force timeouts: every replica times out in view 1.
    for replica in cluster.replicas:
        replica.fallback.on_local_timeout()
    cluster.scheduler.drain(limit=300_000)
    assert all(r.v_cur >= 2 for r in cluster.replicas)
    assert_cluster_safety(cluster.honest_replicas())


def test_view_numbers_committed_are_monotone_under_churn():
    from repro.experiments.scenarios import leader_attack_factory

    cluster = (
        ClusterBuilder(n=4, seed=113)
        .with_delay_model_factory(leader_attack_factory())
        .build()
    )
    cluster.run_until_commits(12, until=100_000)
    for replica in cluster.honest_replicas():
        views = [block.view for block in replica.ledger.committed_blocks()]
        assert views == sorted(views)
    assert_cluster_safety(cluster.honest_replicas())


@pytest.mark.parametrize(
    "variant", [ProtocolVariant.FALLBACK_3CHAIN, ProtocolVariant.FALLBACK_2CHAIN]
)
def test_partition_heals_mid_fallback_and_cluster_recovers(variant):
    """A 2-2 partition lands *while the fallback is in progress* (neither
    side can finish it alone: coin-QCs need 2f+1 shares) and heals while
    it is still stuck; held messages then flood in, and the run must
    converge — exit the fallback, keep safety, resume committing — under
    both chain-depth variants."""
    from repro.net.conditions import PartitionDelay

    config = ProtocolConfig(n=4, variant=variant)
    cluster = ClusterBuilder(config=config, seed=211).with_preload(300).build()
    cluster.run_until_commits(3, until=100.0)
    before = cluster.metrics.decisions()
    # Drive every replica into the view-change, then wait for fallback entry.
    for replica in cluster.honest_replicas():
        replica.fallback.on_local_timeout()
    cluster.scheduler.run(
        until=cluster.scheduler.now + 50.0,
        stop_when=lambda: all(r.fallback_mode for r in cluster.honest_replicas()),
        check_every=1,
    )
    assert all(r.fallback_mode for r in cluster.honest_replicas())
    # Split 2-2 mid-fallback; PartitionDelay holds cross traffic until heal.
    heal_at = cluster.scheduler.now + 30.0
    cluster.change_network(PartitionDelay([[0, 1], [2, 3]], heal_time=heal_at))
    cluster.run(until=heal_at)
    assert any(r.fallback_mode for r in cluster.honest_replicas()), (
        "fallback completed during the partition despite missing quorum"
    )
    # The heal releases the held messages; the fallback must now complete.
    cluster.run_until_commits(before + 8, until=heal_at + 2_000.0)
    assert cluster.metrics.decisions() >= before + 8
    exited = [e for e in cluster.metrics.fallback_events if e.kind == "exited"]
    assert exited, "fallback never exited after the heal"
    assert_cluster_safety(cluster.honest_replicas())


@pytest.mark.parametrize(
    "variant", [ProtocolVariant.FALLBACK_3CHAIN, ProtocolVariant.FALLBACK_2CHAIN]
)
def test_loss_partition_heals_mid_fallback_over_reliable_channels(variant):
    """Same shape, realistic transport: the partition *drops* cross-group
    traffic (PartitionLoss via the chaos schedule) instead of holding it,
    and reliable-channel retransmissions deliver what the split ate."""
    from repro.faults import FaultSchedule, heal, inject, partition

    def force_timeouts(cluster):
        for replica in cluster.honest_replicas():
            replica.fallback.on_local_timeout()

    # Timeouts at 20 put everyone in fallback by ~22 (two message delays);
    # the partition at 22.5 then strands it until the heal.
    schedule = (
        FaultSchedule()
        .at(20.0, inject(force_timeouts, label="force-timeouts"))
        .at(22.5, partition([[0, 1], [2, 3]]))
        .at(55.0, heal())
    )
    config = ProtocolConfig(n=4, variant=variant)
    cluster = (
        ClusterBuilder(config=config, seed=212)
        .with_preload(300)
        .with_fault_schedule(schedule)
        .build()
    )
    cluster.run(until=54.0)
    entered = [e for e in cluster.metrics.fallback_events if e.kind == "entered"]
    assert entered, "forced timeouts never drove the cluster into the fallback"
    assert any(r.fallback_mode for r in cluster.honest_replicas()), (
        "fallback completed during the partition despite missing quorum"
    )
    cluster.run_until_commits(10, until=2_000.0)
    assert cluster.metrics.decisions() >= 10
    assert_cluster_safety(cluster.honest_replicas())


def test_laggard_rejoins_after_view_jump_and_commits():
    """A replica fast-forwarded by a future coin-QC still catches up on the
    chain via sync and resumes committing."""
    cluster = build(seed=115)
    laggard = cluster.replicas[3]
    # Run the cluster a little; then jump the laggard far ahead in views
    # (simulating having missed fallbacks that never actually happened is
    # not possible — instead verify a view-consistent jump):
    cluster.run_until_commits(10, until=5_000)
    assert laggard.ledger.height > 0
    before = laggard.ledger.height
    cluster.run_until_commits(20, until=10_000)
    assert laggard.ledger.height >= before
