"""Integration: external validity (validated BFT SMR, paper §2).

With a validity predicate configured, honest replicas propose only valid
transactions and never vote for blocks carrying invalid ones, so only
externally valid transactions commit — even when a Byzantine leader tries
to smuggle invalid payloads in.
"""

from repro.analysis.safety import assert_cluster_safety
from repro.core.config import ProtocolConfig
from repro.core.replica import Replica
from repro.experiments.scenarios import leader_attack_factory
from repro.runtime.cluster import ClusterBuilder
from repro.types.blocks import Block
from repro.types.messages import Proposal
from repro.types.transactions import Batch, make_transaction


def valid_tx(tx) -> bool:
    return not tx.payload.startswith("invalid")


class InvalidPayloadLeader(Replica):
    """Byzantine leader proposing batches of externally invalid payloads."""

    def maybe_propose(self) -> None:
        if self.fallback_mode or self.schedule.leader(self.r_cur) != self.process_id:
            return
        key = (self.v_cur, self.r_cur)
        if key in self._proposed:
            return
        self._proposed.add(key)
        batch = Batch.of(
            [make_transaction(self.r_cur, client=66, payload="invalid command")]
        )
        block = Block(
            qc=self.qc_high, round=self.r_cur, view=self.v_cur,
            batch=batch, author=self.process_id,
        )
        self.store.add(block)
        self.network.multicast(self.process_id, Proposal(block))


def mixed_workload(mempools):
    from repro.workloads.generator import Workload

    return Workload(
        mempools,
        count=100,
        payload_fn=lambda client, index: (
            f"invalid {index}" if index % 3 == 0 else f"set key-{index} v{index}"
        ),
    )


def test_invalid_transactions_never_commit():
    config = ProtocolConfig(n=4, validity_predicate=valid_tx)
    cluster = (
        ClusterBuilder(config=config, seed=41)
        .with_workload(mixed_workload)
        .build()
    )
    cluster.run_until_commits(15, until=20_000)
    committed = [
        tx
        for replica in cluster.honest_replicas()
        for tx in replica.ledger.committed_transactions()
    ]
    assert committed, "nothing committed at all"
    assert all(valid_tx(tx) for tx in committed)
    assert_cluster_safety(cluster.honest_replicas())


def test_byzantine_leader_with_invalid_payloads_is_voted_down():
    config = ProtocolConfig(n=4, validity_predicate=valid_tx)
    cluster = (
        ClusterBuilder(config=config, seed=43)
        .with_byzantine(0, lambda *a, **k: InvalidPayloadLeader(*a, **k))
        .build()
    )
    result = cluster.run_until_commits(12, until=30_000)
    assert result.decisions >= 12  # liveness survives (fallback skips it)
    for replica in cluster.honest_replicas():
        for tx in replica.ledger.committed_transactions():
            assert valid_tx(tx), "an invalid transaction was committed"
    assert cluster.metrics.fallback_count() >= 1  # its rounds timed out
    assert_cluster_safety(cluster.honest_replicas())


def test_validity_enforced_on_fallback_chains_too():
    config = ProtocolConfig(n=4, validity_predicate=valid_tx)
    cluster = (
        ClusterBuilder(config=config, seed=47)
        .with_workload(mixed_workload)
        .with_delay_model_factory(leader_attack_factory())
        .build()
    )
    cluster.run_until_commits(6, until=60_000)
    committed = [
        tx
        for replica in cluster.honest_replicas()
        for tx in replica.ledger.committed_transactions()
    ]
    assert all(valid_tx(tx) for tx in committed)
    assert_cluster_safety(cluster.honest_replicas())


def test_no_predicate_means_everything_commits():
    cluster = (
        ClusterBuilder(n=4, seed=41)
        .with_workload(mixed_workload)
        .build()
    )
    cluster.run_until_commits(15, until=20_000)
    committed = cluster.honest_replicas()[0].ledger.committed_transactions()
    assert any(tx.payload.startswith("invalid") for tx in committed)


def test_next_valid_batch_drops_garbage():
    config = ProtocolConfig(n=4, batch_size=3, validity_predicate=valid_tx)
    cluster = ClusterBuilder(config=config, seed=1).with_preload(0).build()
    replica = cluster.replicas[0]
    for index in range(6):
        replica.mempool.submit(
            make_transaction(index, payload="invalid x" if index < 4 else f"ok {index}")
        )
    batch = replica.next_valid_batch()
    assert [tx.payload for tx in batch] == ["ok 4", "ok 5"]
    assert len(replica.mempool) == 2  # the garbage is gone for good
