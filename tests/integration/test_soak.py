"""Soak test: thousands of simulated seconds of oscillating conditions.

One long run per protocol variant through repeated good/bad network phases
with a recovering replica in the mix — the closest thing to a staging
deployment.  Checks at the end: safety, sustained liveness in every good
phase, bounded memory (pruning works), and monotone views.
"""

import pytest

from repro.analysis.safety import assert_cluster_safety
from repro.core.config import ProtocolConfig, ProtocolVariant
from repro.net.conditions import (
    AsynchronousDelay,
    NetworkSchedule,
    SynchronousDelay,
)
from repro.runtime.cluster import ClusterBuilder
from repro.storage import RecoveringReplica

GOOD = SynchronousDelay(delta=1.0)
BAD = AsynchronousDelay(base_delay=8.0, tail_scale=12.0, max_delay=45.0)

#: good/bad alternation, 5 cycles of 200s+100s, then a long good tail.
PHASES = []
t = 0.0
for _cycle in range(5):
    PHASES.append((t, GOOD))
    t += 200.0
    PHASES.append((t, BAD))
    t += 100.0
PHASES.append((t, GOOD))
END = t + 300.0


def recovering(*args, **kwargs):
    return RecoveringReplica(*args, crash_at=450.0, recover_at=700.0, **kwargs)


@pytest.mark.parametrize(
    "variant",
    [ProtocolVariant.FALLBACK_3CHAIN, ProtocolVariant.FALLBACK_2CHAIN],
    ids=["3chain", "2chain"],
)
def test_soak_oscillating_network(variant):
    config = ProtocolConfig(n=4, variant=variant, fallback_adoption=True)
    cluster = (
        ClusterBuilder(config=config, seed=141)
        .with_preload(50_000)
        .with_byzantine(3, recovering)
        .with_delay_model(NetworkSchedule(PHASES))
        .build()
    )
    cluster.run(until=END)

    honest = cluster.honest_replicas()
    assert_cluster_safety(honest)

    # Liveness in every good phase.
    commits = cluster.metrics.commits_at(cluster.honest_ids[0])
    for index in range(5):
        phase_start = index * 300.0
        window = [e for e in commits if phase_start + 60 <= e.time < phase_start + 200]
        assert window, f"no commits in good phase {index}"
    tail = [e for e in commits if e.time > END - 200]
    assert tail, "no commits in the final good phase"

    # The recovering replica is back and keeping up.
    replica3 = cluster.replicas[3]
    assert replica3.recovered
    assert replica3.ledger.height > 0

    # Views advanced through the bad phases but never ran away.
    views = [replica.v_cur for replica in honest]
    assert max(views) >= 3
    assert max(views) < 200

    # Memory hygiene held up over the long run.
    for replica in honest:
        assert len(replica._vote_shares) < 50
        assert len(replica._pending_certs) < 50
        engine = replica.fallback
        assert len(engine._timeout_shares) <= engine.PRUNE_MARGIN + 2
        assert len(engine.fqcs) < 100

    # Every protocol message models its wire size (byte accounting stays real).
    assert cluster.network.untyped_messages == 0


def test_soak_throughput_recovers_each_cycle():
    config = ProtocolConfig(n=4, fallback_adoption=True)
    cluster = (
        ClusterBuilder(config=config, seed=143)
        .with_preload(50_000)
        .with_delay_model(NetworkSchedule(PHASES))
        .build()
    )
    cluster.run(until=END)
    commits = cluster.metrics.commits_at(cluster.honest_ids[0])

    def rate(lo, hi):
        return sum(1 for e in commits if lo <= e.time < hi) / (hi - lo)

    good_rates = [rate(i * 300.0 + 60, i * 300.0 + 200) for i in range(5)]
    bad_rates = [rate(i * 300.0 + 220, i * 300.0 + 290) for i in range(5)]
    # Every good phase runs at full fast-path speed; bad phases are slower
    # but rarely dead (fallbacks commit with probability ~2/3 each).
    for good in good_rates:
        assert good > 0.2
    assert sum(good_rates) / 5 > 3 * (sum(bad_rates) / 5)
    assert_cluster_safety(cluster.honest_replicas())
