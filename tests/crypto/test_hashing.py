"""Unit tests for hashing."""

from hypothesis import given, strategies as st

from repro.crypto.hashing import (
    clear_hash_cache,
    hash_bytes,
    hash_cache_size,
    hash_fields,
    hash_fields_uncached,
)


def test_hash_is_deterministic():
    assert hash_fields("a", 1, (2, 3)) == hash_fields("a", 1, (2, 3))


def test_hash_differs_on_content():
    assert hash_fields("a") != hash_fields("b")


def test_hash_differs_on_field_boundaries():
    # Length-prefixing means moving a character across a boundary changes the hash.
    assert hash_fields("ab", "c") != hash_fields("a", "bc")


def test_nested_sequences_are_distinguished():
    assert hash_fields((1, 2), 3) != hash_fields(1, (2, 3))
    assert hash_fields([1, 2]) == hash_fields((1, 2))


def test_digest_is_fixed_width_hex():
    digest = hash_bytes(b"data")
    assert len(digest) == 32
    int(digest, 16)  # parses as hex


@given(st.lists(st.integers(), max_size=8), st.lists(st.integers(), max_size=8))
def test_property_distinct_tuples_distinct_hashes(a, b):
    if a != b:
        assert hash_fields(*a) != hash_fields(*b)
    else:
        assert hash_fields(*a) == hash_fields(*b)


# ----------------------------------------------------------------------
# Memoized path
# ----------------------------------------------------------------------
def test_cached_and_uncached_digests_byte_identical():
    """The memoized entry point must return exactly what the encoder does."""
    payloads = [
        (),
        ("vote", "abcd1234", 7, 3),
        ("block", ("parent", 0), [1, 2, 3], -42),
        ("tag", True, None, 3.5),
        ("nested", (("deep", (1,)), "x")),
    ]
    for fields in payloads:
        clear_hash_cache()
        uncached = hash_fields_uncached(*fields)
        cold = hash_fields(*fields)  # populates the memo
        warm = hash_fields(*fields)  # served from the memo
        assert cold == uncached
        assert warm == uncached


def test_unhashable_fields_fall_back_to_uncached():
    digest = hash_fields("k", [1, [2, 3]])
    assert digest == hash_fields_uncached("k", [1, [2, 3]])
    # And the nested-list payload matches its tuple spelling, as before.
    assert digest == hash_fields("k", (1, (2, 3)))


def test_cache_size_grows_and_clears():
    clear_hash_cache()
    assert hash_cache_size() == 0
    hash_fields("cache-probe", 1)
    hash_fields("cache-probe", 2)
    assert hash_cache_size() == 2
    hash_fields("cache-probe", 1)  # hit: no growth
    assert hash_cache_size() == 2
    clear_hash_cache()
    assert hash_cache_size() == 0


def test_memo_distinguishes_type_aliased_values():
    """``False == 0`` and ``1 == 1.0`` in Python, but they encode differently;
    the memo key must not conflate them (regression: a cached ``False`` digest
    used to be served for ``0``)."""
    clear_hash_cache()
    for a, b in [(False, 0), (True, 1), (1, 1.0), (0.0, False)]:
        assert hash_fields(a) == hash_fields_uncached(a)
        assert hash_fields(b) == hash_fields_uncached(b)
        assert hash_fields(a) != hash_fields(b)
        # Nested occurrences must be distinguished too.
        assert hash_fields(("k", a)) != hash_fields(("k", b))


@given(
    st.lists(
        st.one_of(st.integers(), st.text(max_size=12), st.booleans()), max_size=6
    )
)
def test_property_memo_matches_uncached(fields):
    assert hash_fields(*fields) == hash_fields_uncached(*fields)
