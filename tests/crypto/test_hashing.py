"""Unit tests for hashing."""

from hypothesis import given, strategies as st

from repro.crypto.hashing import hash_bytes, hash_fields


def test_hash_is_deterministic():
    assert hash_fields("a", 1, (2, 3)) == hash_fields("a", 1, (2, 3))


def test_hash_differs_on_content():
    assert hash_fields("a") != hash_fields("b")


def test_hash_differs_on_field_boundaries():
    # Length-prefixing means moving a character across a boundary changes the hash.
    assert hash_fields("ab", "c") != hash_fields("a", "bc")


def test_nested_sequences_are_distinguished():
    assert hash_fields((1, 2), 3) != hash_fields(1, (2, 3))
    assert hash_fields([1, 2]) == hash_fields((1, 2))


def test_digest_is_fixed_width_hex():
    digest = hash_bytes(b"data")
    assert len(digest) == 32
    int(digest, 16)  # parses as hex


@given(st.lists(st.integers(), max_size=8), st.lists(st.integers(), max_size=8))
def test_property_distinct_tuples_distinct_hashes(a, b):
    if a != b:
        assert hash_fields(*a) != hash_fields(*b)
    else:
        assert hash_fields(*a) == hash_fields(*b)
