"""Unit tests for the simulated signature scheme and PKI registry."""

import pytest

from repro.crypto.keys import DealerOutput, KeyPair, Registry
from repro.crypto.signatures import (
    Signature,
    SignatureError,
    Signer,
    require_valid,
    verify,
)


@pytest.fixture
def registry():
    return Registry(n=4)


def make_signer(registry, replica):
    return Signer(registry.key_pair(replica), registry)


def test_sign_verify_roundtrip(registry):
    signer = make_signer(registry, 0)
    sig = signer.sign(("hello", 1))
    assert verify(registry, sig, ("hello", 1))


def test_wrong_payload_fails(registry):
    signer = make_signer(registry, 0)
    sig = signer.sign("payload")
    assert not verify(registry, sig, "other payload")


def test_unregistered_signer_fails(registry):
    sig = Signature(signer=99, epoch=0, tag="deadbeef")
    assert not verify(registry, sig, "anything")


def test_wrong_epoch_fails():
    old = Registry(n=4, epoch=0)
    new = Registry(n=4, epoch=1)
    sig = Signer(old.key_pair(1), old).sign("m")
    assert not verify(new, sig, "m")


def test_forged_tag_fails(registry):
    signer = make_signer(registry, 2)
    good = signer.sign("m")
    forged = Signature(signer=2, epoch=0, tag=good.tag[:-1] + ("0" if good.tag[-1] != "0" else "1"))
    assert not verify(registry, forged, "m")


def test_require_valid_raises(registry):
    signer = make_signer(registry, 0)
    sig = signer.sign("m")
    require_valid(registry, sig, "m")  # no raise
    with pytest.raises(SignatureError):
        require_valid(registry, sig, "tampered")


def test_signature_wire_size(registry):
    sig = make_signer(registry, 0).sign("m")
    assert sig.wire_size() == 64


def test_registry_membership(registry):
    assert 0 in registry
    assert 3 in registry
    assert 4 not in registry
    with pytest.raises(KeyError):
        registry.key_pair(17)


def test_dealer_output_hands_all_keys():
    dealt = DealerOutput.deal(n=7)
    assert sorted(dealt.key_pairs) == list(range(7))
    for replica, key in dealt.key_pairs.items():
        assert key.owner == replica
        assert dealt.registry.public_key(replica) == key.public


def test_keypair_public_matches():
    key = KeyPair(owner=5, epoch=2)
    assert key.public.owner == 5
    assert key.public.epoch == 2
