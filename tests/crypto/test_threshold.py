"""Unit and property tests for the threshold signature scheme."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.keys import Registry
from repro.crypto.signatures import SignatureError
from repro.crypto.threshold import ThresholdScheme


N = 7
QUORUM = 5  # 2f+1 with f=2


@pytest.fixture
def registry():
    return Registry(n=N)


@pytest.fixture
def scheme(registry):
    return ThresholdScheme(registry, threshold=QUORUM)


def shares_for(scheme, registry, payload, signers):
    return [scheme.sign_share(registry.key_pair(i), payload) for i in signers]


def test_combine_with_quorum(scheme, registry):
    payload = ("vote", "blockid", 3, 0)
    shares = shares_for(scheme, registry, payload, range(QUORUM))
    sig = scheme.combine(shares, payload)
    assert scheme.verify(sig, payload)
    assert sig.signers == frozenset(range(QUORUM))


def test_combine_below_threshold_fails(scheme, registry):
    payload = "m"
    shares = shares_for(scheme, registry, payload, range(QUORUM - 1))
    with pytest.raises(SignatureError):
        scheme.combine(shares, payload)


def test_duplicate_shares_do_not_count_twice(scheme, registry):
    payload = "m"
    shares = shares_for(scheme, registry, payload, [0] * QUORUM)
    with pytest.raises(SignatureError):
        scheme.combine(shares, payload)


def test_share_on_wrong_payload_rejected(scheme, registry):
    good = shares_for(scheme, registry, "m", range(QUORUM - 1))
    bad = scheme.sign_share(registry.key_pair(6), "other")
    with pytest.raises(SignatureError):
        scheme.combine(good + [bad], "m")


def test_combined_verifies_only_its_payload(scheme, registry):
    sig = scheme.combine(shares_for(scheme, registry, "m", range(QUORUM)), "m")
    assert not scheme.verify(sig, "other")


def test_share_verification(scheme, registry):
    share = scheme.sign_share(registry.key_pair(3), "m")
    assert scheme.verify_share(share, "m")
    assert not scheme.verify_share(share, "not-m")


def test_threshold_bounds(registry):
    with pytest.raises(ValueError):
        ThresholdScheme(registry, threshold=0)
    with pytest.raises(ValueError):
        ThresholdScheme(registry, threshold=N + 1)


def test_constant_wire_size_regardless_of_signers(scheme, registry):
    sig5 = scheme.combine(shares_for(scheme, registry, "m", range(5)), "m")
    sig7 = scheme.combine(shares_for(scheme, registry, "m", range(7)), "m")
    assert sig5.wire_size() == sig7.wire_size() == 96


def test_require_valid(scheme, registry):
    sig = scheme.combine(shares_for(scheme, registry, "m", range(QUORUM)), "m")
    scheme.require_valid(sig, "m")
    with pytest.raises(SignatureError):
        scheme.require_valid(sig, "other")


@given(signers=st.sets(st.integers(min_value=0, max_value=N - 1)))
def test_property_combine_iff_quorum(signers):
    registry = Registry(n=N)
    scheme = ThresholdScheme(registry, threshold=QUORUM)
    payload = ("p",)
    shares = [scheme.sign_share(registry.key_pair(i), payload) for i in signers]
    if len(signers) >= QUORUM:
        sig = scheme.combine(shares, payload)
        assert scheme.verify(sig, payload)
    else:
        with pytest.raises(SignatureError):
            scheme.combine(shares, payload)


@given(
    quorum_a=st.sets(st.integers(0, N - 1), min_size=QUORUM),
    quorum_b=st.sets(st.integers(0, N - 1), min_size=QUORUM),
)
def test_property_quorum_intersection(quorum_a, quorum_b):
    """Any two quorums of 2f+1 out of 3f+1 intersect in >= f+1 replicas."""
    assert len(quorum_a & quorum_b) >= QUORUM + QUORUM - N
    assert len(quorum_a & quorum_b) >= 3  # f+1 with f=2
