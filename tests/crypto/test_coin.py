"""Unit tests for the common coin."""

import pytest

from repro.crypto.coin import CommonCoin
from repro.crypto.keys import Registry
from repro.crypto.signatures import SignatureError


N = 10
F_PLUS_ONE = 4  # f=3 for n=10


@pytest.fixture
def registry():
    return Registry(n=N)


@pytest.fixture
def coin(registry):
    return CommonCoin(registry, threshold=F_PLUS_ONE, seed=7)


def shares(coin, registry, view, signers):
    return [coin.share(registry.key_pair(i), view) for i in signers]


def test_reveal_with_threshold_shares(coin, registry):
    leader = coin.reveal(shares(coin, registry, view=0, signers=range(F_PLUS_ONE)), view=0)
    assert 0 <= leader < N


def test_reveal_below_threshold_fails(coin, registry):
    with pytest.raises(SignatureError):
        coin.reveal(shares(coin, registry, 0, range(F_PLUS_ONE - 1)), view=0)


def test_any_quorum_reveals_same_value(coin, registry):
    a = coin.reveal(shares(coin, registry, 3, range(F_PLUS_ONE)), view=3)
    b = coin.reveal(shares(coin, registry, 3, range(N - F_PLUS_ONE, N)), view=3)
    assert a == b


def test_shares_for_other_view_rejected(coin, registry):
    with pytest.raises(SignatureError):
        coin.reveal(shares(coin, registry, 1, range(F_PLUS_ONE)), view=2)


def test_duplicate_signers_do_not_count(coin, registry):
    duplicated = shares(coin, registry, 0, [0] * F_PLUS_ONE)
    with pytest.raises(SignatureError):
        coin.reveal(duplicated, view=0)


def test_different_views_give_varied_leaders(coin, registry):
    leaders = {
        coin.reveal(shares(coin, registry, v, range(F_PLUS_ONE)), view=v)
        for v in range(50)
    }
    # With 50 views over 10 replicas a single repeated leader is (1/10)^49.
    assert len(leaders) > 1


def test_leader_distribution_roughly_uniform(registry):
    coin = CommonCoin(registry, threshold=F_PLUS_ONE, seed=123)
    counts = [0] * N
    for view in range(2000):
        counts[coin._value(view)] += 1
    for count in counts:
        assert 100 < count < 320  # expectation 200; generous bounds


def test_leader_proof_verification(coin, registry):
    view = 5
    leader = coin.reveal(shares(coin, registry, view, range(F_PLUS_ONE)), view=view)
    proof = coin.leader_proof_tag(view)
    assert coin.verify_leader(view, leader, proof)
    assert not coin.verify_leader(view, (leader + 1) % N, proof)
    assert not coin.verify_leader(view + 1, leader, proof)


def test_invalid_share_rejected(coin, registry):
    good = shares(coin, registry, 0, range(F_PLUS_ONE - 1))
    tampered = coin.share(registry.key_pair(9), 0)
    tampered = type(tampered)(
        signer=tampered.signer,
        view=tampered.view,
        epoch=tampered.epoch,
        tag="0" * 32,
    )
    with pytest.raises(SignatureError):
        coin.reveal(good + [tampered], view=0)


def test_different_seeds_different_schedules(registry):
    coin_a = CommonCoin(registry, threshold=F_PLUS_ONE, seed=1)
    coin_b = CommonCoin(registry, threshold=F_PLUS_ONE, seed=2)
    values_a = [coin_a._value(v) for v in range(20)]
    values_b = [coin_b._value(v) for v in range(20)]
    assert values_a != values_b
