"""Unit tests for the cluster-wide verified-certificate cache."""

from repro.core.config import ProtocolConfig
from repro.core.context import SharedSetup
from repro.core.validation import verify_qc
from repro.crypto.certcache import VerifiedCertCache
from repro.types.certificates import QC


def _make_qc(setup: SharedSetup, block_id: str = "b1", round: int = 1, view: int = 0) -> QC:
    payload = ("vote", block_id, round, view)
    contexts = [setup.context_for(i) for i in range(setup.config.n)]
    shares = [ctx.share(payload) for ctx in contexts[: setup.config.quorum_size]]
    signature = contexts[0].combine(shares, payload)
    return QC(block_id=block_id, round=round, view=view, signature=signature)


def test_verifier_runs_once_per_digest():
    cache = VerifiedCertCache()
    calls = []

    def verifier():
        calls.append(1)
        return True

    assert cache.check("digest-a", 0, verifier) is True
    assert cache.check("digest-a", 0, verifier) is True
    assert cache.check("digest-a", 0, verifier) is True
    assert len(calls) == 1
    assert cache.hits == 2
    assert cache.misses == 1


def test_negative_verdicts_are_cached_too():
    cache = VerifiedCertCache()
    calls = []

    def verifier():
        calls.append(1)
        return False

    assert cache.check("forged", 0, verifier) is False
    assert cache.check("forged", 0, verifier) is False
    assert len(calls) == 1


def test_disabled_cache_is_pass_through():
    cache = VerifiedCertCache(enabled=False)
    calls = []
    for _ in range(3):
        cache.check("digest-a", 0, lambda: calls.append(1) or True)
    assert len(calls) == 3
    assert cache.hits == 0
    assert cache.misses == 0
    assert len(cache) == 0


def test_epoch_keys_are_distinct():
    cache = VerifiedCertCache()
    cache.check("d", 0, lambda: True)
    calls = []
    cache.check("d", 1, lambda: calls.append(1) or True)
    assert len(calls) == 1  # epoch 1 is a different key


def test_on_epoch_change_drops_stale_verdicts():
    cache = VerifiedCertCache()
    cache.check("old-1", 0, lambda: True)
    cache.check("old-2", 0, lambda: True)
    cache.check("new", 1, lambda: True)
    cache.on_epoch_change(1)
    assert len(cache) == 1
    assert cache.invalidations == 2
    # The surviving epoch-1 verdict is still served without re-verifying.
    calls = []
    cache.check("new", 1, lambda: calls.append(1) or True)
    assert calls == []


def test_bounded_cache_clears_on_overflow():
    cache = VerifiedCertCache(max_entries=2)
    cache.check("a", 0, lambda: True)
    cache.check("b", 0, lambda: True)
    cache.check("c", 0, lambda: True)  # overflow: wholesale clear, then insert
    assert len(cache) == 1


def test_registry_epoch_change_invalidates_through_listener():
    """SharedSetup wires the cache to the registry's epoch listeners, so
    advancing the registry epoch invalidates cached verdicts."""
    setup = SharedSetup.deal(ProtocolConfig(n=4))
    cache = setup.cert_cache
    context = setup.context_for(0)
    qc = _make_qc(setup)

    assert verify_qc(context, qc) is True
    assert cache.misses == 1
    assert verify_qc(context, qc) is True
    assert cache.hits == 1

    old_entries = len(cache)
    assert old_entries == 1
    setup.registry.advance_epoch()
    assert len(cache) == 0
    assert cache.invalidations == old_entries

    # Re-verification under the new epoch re-runs the verifier: the old
    # signature's epoch no longer matches the rotated keys, so the cert is
    # now rejected — and that rejection is itself a fresh cache entry.
    assert verify_qc(context, qc) is False
    assert cache.misses == 2


def test_deal_can_disable_cert_cache():
    setup = SharedSetup.deal(ProtocolConfig(n=4), cert_cache_enabled=False)
    assert setup.cert_cache is not None
    assert not setup.cert_cache.enabled
    context = setup.context_for(0)
    qc = _make_qc(setup)
    assert verify_qc(context, qc) is True
    assert verify_qc(context, qc) is True
    assert setup.cert_cache.hits == 0
    assert setup.cert_cache.misses == 0
