"""Live-cluster teardown: no leaked tasks, cancellation never swallowed.

These are the regression tests for the concurrency-rule fixes in the
transport teardown paths: ``close()`` must join every task it spawned
(sender loops, reply readers, inbound handlers), and a ``close()`` that
is itself cancelled must propagate that cancellation to its caller
instead of converting it into silent success.

pytest-asyncio is not available in this environment, so each test drives
its own event loop via ``asyncio.run``.
"""

import asyncio

import pytest

from repro.crypto.hashing import hash_fields
from repro.net.tcp import TcpTransport
from repro.types.messages import BlockRequest
from repro.wire.codec import encode_message

N = 4


async def _wait_for(predicate, timeout=5.0, interval=0.01):
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        if asyncio.get_running_loop().time() > deadline:
            pytest.fail("condition not reached before timeout")
        await asyncio.sleep(interval)


def _sample_message(n=0):
    return BlockRequest(block_id=hash_fields("shutdown-test", n))


async def _start_mesh(n=N):
    """``n`` transports in a full mesh; returns (transports, inboxes)."""
    inboxes = {i: [] for i in range(n)}
    transports = [
        TcpTransport(i, (lambda i: lambda p, m: inboxes[i].append((p, m)))(i))
        for i in range(n)
    ]
    addresses = [await t.start() for t in transports]
    for i, transport in enumerate(transports):
        for j, (host, port) in enumerate(addresses):
            if i != j:
                transport.add_peer(j, host, port)
    return transports, inboxes


def test_mesh_teardown_leaks_no_tasks():
    async def go():
        baseline = asyncio.all_tasks()
        transports, inboxes = await _start_mesh()
        # All-to-all traffic so every sender loop, reply reader, and
        # inbound handler is live before teardown begins.
        for i, transport in enumerate(transports):
            for j in range(N):
                if i != j:
                    assert transport.send(j, encode_message(i, _sample_message(i)))
        await _wait_for(
            lambda: all(len(inbox) == N - 1 for inbox in inboxes.values())
        )
        assert len(asyncio.all_tasks()) > len(baseline)
        for transport in transports:
            await transport.close()
        # One scheduling beat for done-callbacks to run, then: nothing
        # but this coroutine's own task may remain.
        await asyncio.sleep(0.05)
        leaked = asyncio.all_tasks() - baseline
        assert leaked == set(), sorted(t.get_name() for t in leaked)
        for transport in transports:
            assert not transport._inbound_tasks
            for channel in transport._channels.values():
                assert channel.task is not None and channel.task.done()

    asyncio.run(go())


def test_repeated_close_is_idempotent():
    async def go():
        transports, _ = await _start_mesh(2)
        for transport in transports:
            await transport.close()
            await transport.close()
        await asyncio.sleep(0.05)
        assert len(asyncio.all_tasks()) == 1

    asyncio.run(go())


def test_cancelling_close_propagates():
    # Regression: a channel stuck dialing a dead port sits in its
    # connect/backoff loop and never consumes the close sentinel, so
    # close() rides out the grace period.  Cancelling the closer must
    # surface CancelledError to the canceller — the old teardown
    # swallowed it, leaving the caller's `await close_task` looking
    # finished while the sender was still being reaped.
    async def go():
        # A port with no listener: bind, learn the number, close.
        probe = await asyncio.start_server(lambda r, w: None, host="127.0.0.1")
        dead_port = probe.sockets[0].getsockname()[1]
        probe.close()
        await probe.wait_closed()

        transport = TcpTransport(0, lambda p, m: None)
        transport.add_peer(1, "127.0.0.1", dead_port)
        channel = transport._channels[1]
        await asyncio.sleep(0.05)  # let the dial loop start failing

        closer = asyncio.get_running_loop().create_task(channel.close())
        await asyncio.sleep(0.05)  # closer is now inside the grace wait
        closer.cancel()
        with pytest.raises(asyncio.CancelledError):
            await closer
        assert closer.cancelled()
        # The sender task itself was still torn down, not orphaned.
        await _wait_for(lambda: channel.task.done())
        await asyncio.sleep(0.05)
        assert len(asyncio.all_tasks()) == 1

    asyncio.run(go())


def test_close_returns_normally_when_not_cancelled():
    # The complement of the regression above: an uncancelled close() on a
    # dead-port channel completes on its own after the grace period.
    async def go():
        probe = await asyncio.start_server(lambda r, w: None, host="127.0.0.1")
        dead_port = probe.sockets[0].getsockname()[1]
        probe.close()
        await probe.wait_closed()

        transport = TcpTransport(0, lambda p, m: None)
        transport.add_peer(1, "127.0.0.1", dead_port)
        await transport.close()
        channel = transport._channels[1]
        assert channel.task is not None and channel.task.done()
        await asyncio.sleep(0.05)
        assert len(asyncio.all_tasks()) == 1

    asyncio.run(go())
