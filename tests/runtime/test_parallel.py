"""Parallel seed sweeps must be indistinguishable from serial loops."""

from functools import partial

from repro.experiments.scenarios import run_sync, sweep_sync
from repro.runtime.parallel import default_processes, run_seed_sweep

SEEDS = list(range(1, 9))


def _square(seed: int) -> int:
    return seed * seed


def test_serial_fallback_single_process():
    assert run_seed_sweep(_square, SEEDS, processes=1) == [s * s for s in SEEDS]


def test_single_seed_runs_serially():
    assert run_seed_sweep(_square, [5], processes=4) == [25]


def test_parallel_matches_serial_simple_task():
    serial = run_seed_sweep(_square, SEEDS, processes=1)
    parallel = run_seed_sweep(_square, SEEDS, processes=2)
    assert parallel == serial


def test_results_come_back_in_seed_order():
    seeds = [8, 1, 5, 2]
    assert run_seed_sweep(_square, seeds, processes=2) == [64, 1, 25, 4]


def test_default_processes_positive():
    assert default_processes() >= 1


def test_parallel_simulation_sweep_matches_serial():
    """Eight deterministic n=4 runs: fork workers must reproduce the serial
    results exactly (decisions, message counts, everything in the record)."""
    task = partial(_run_one, target_commits=10)
    serial = run_seed_sweep(task, SEEDS, processes=1)
    parallel = run_seed_sweep(task, SEEDS, processes=2)
    assert parallel == serial
    assert all(result.decisions >= 10 for result in serial)


def _run_one(seed: int, target_commits: int):
    return run_sync("fallback-3chain", 4, seed=seed, target_commits=target_commits)


def test_sweep_sync_helper_parallel_matches_serial():
    serial = sweep_sync("fallback-3chain", 4, SEEDS[:4], target_commits=5, processes=1)
    parallel = sweep_sync("fallback-3chain", 4, SEEDS[:4], target_commits=5, processes=2)
    assert parallel == serial
    assert [r.protocol for r in serial] == ["fallback-3chain"] * 4
