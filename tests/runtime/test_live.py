"""LiveCluster over real localhost sockets: smoke, fallback, durability.

These are wall-clock tests (real TCP, real timers).  The smoke test is the
CI ``live-smoke`` gate; the fallback test is the issue's acceptance run —
commits through one induced timeout -> async fallback -> coin-elected
leader, with prefix-consistent ledgers and real-byte accounting.
"""

import asyncio

import pytest

from repro.analysis.complexity import live_decision_costs
from repro.runtime.live import LiveCluster, WallClockScheduler, WallClockTimer


# ----------------------------------------------------------------------
# Wall-clock timer interface
# ----------------------------------------------------------------------
def test_wall_clock_scheduler_implements_timer_interface():
    async def go():
        scheduler = WallClockScheduler()
        fired = []
        t0 = scheduler.now
        timer = scheduler.set_timer(0.01, lambda: fired.append(scheduler.now))
        assert isinstance(timer, WallClockTimer)
        assert timer.active
        assert timer.deadline == pytest.approx(t0 + 0.01, abs=0.005)
        await asyncio.sleep(0.05)
        assert fired and fired[0] >= t0
        assert not timer.active  # fired

        cancelled = scheduler.set_timer(10.0, lambda: fired.append(-1))
        cancelled.cancel()
        assert not cancelled.active
        await asyncio.sleep(0)
        assert -1 not in fired

    asyncio.run(go())


# ----------------------------------------------------------------------
# Cluster runs
# ----------------------------------------------------------------------
def test_live_smoke_commits_and_shuts_down_cleanly():
    """CI gate: 4 replicas, >=1 committed block, bounded wall clock."""
    cluster = LiveCluster(n=4, seed=7, round_timeout=1.0, preload=200)
    report = cluster.run(target_commits=3, timeout=30.0)
    assert report.ok, report
    assert report.min_honest_height >= 3
    assert report.decisions >= 1
    assert len(cluster.committed_ids(0)) >= 3
    # Real bytes were billed for every honest send.
    assert report.encoded_bytes > 0
    assert report.encoded_bytes == cluster.metrics.honest_bytes
    # Shutdown left no stray sockets behind: a fresh loop starts clean.
    asyncio.run(asyncio.sleep(0))


def test_live_cluster_survives_forced_fallback():
    """Acceptance: >=20 commits including a timeout -> fallback -> coin commit."""
    cluster = LiveCluster(n=4, seed=3, round_timeout=0.6, preload=1500)
    report = cluster.run(
        target_commits=20, timeout=45.0, force_fallback=True, fallback_after_commits=5
    )
    assert report.ok, report
    assert report.min_honest_height >= 20
    assert report.fallbacks >= 1, "induced stall never reached the fallback path"
    assert report.messages_dropped > 0, "the Proposal drop filter never engaged"
    assert report.ledgers_consistent
    # All four ledgers share the committed prefix after recovery.
    prefix = cluster.committed_ids(0)[:20]
    for replica_id in range(1, 4):
        assert cluster.committed_ids(replica_id)[:20] == prefix
    # Complexity analysis accepts the live metrics: every honest byte is a
    # real encoded byte (frame header + codec payload), nothing modeled.
    costs = live_decision_costs(cluster.metrics)
    assert costs.decisions >= 20
    assert costs.bytes_per_decision > 0


def test_live_cluster_durable_replicas():
    cluster = LiveCluster(n=4, seed=11, round_timeout=1.0, preload=200, durable=True)
    report = cluster.run(target_commits=3, timeout=30.0)
    assert report.ok, report
    assert report.min_honest_height >= 3
    # Durable replicas journal every vote they sign.
    assert all(r.journal.writes > 0 for r in cluster.replicas)


def test_conflicting_config_sizes_rejected():
    from repro.core.config import ProtocolConfig

    with pytest.raises(ValueError, match="conflicting"):
        LiveCluster(n=4, config=ProtocolConfig(n=7))
