"""Multi-process supervisor: spec plumbing, chaos semantics, real SIGKILL.

The heavyweight tests here spawn actual OS processes (one per replica)
over localhost TCP — the same path CI's live-smoke job exercises — and
therefore take a few wall-clock seconds each.
"""

import asyncio
import sys

import pytest

from repro.faults.schedule import FaultSchedule, crash, recover, set_loss
from repro.net.loss import IIDLoss
from repro.runtime.replica_process import prefixes_consistent
from repro.runtime.spec import ClusterSpec
from repro.runtime.supervisor import Supervisor, kill_schedule

# ----------------------------------------------------------------------
# ClusterSpec
# ----------------------------------------------------------------------
def test_spec_roundtrip(tmp_path):
    spec = ClusterSpec.create(4, tmp_path, seed=3, round_timeout=0.5, preload=50)
    assert len(spec.ports) == 4 and len(set(spec.ports)) == 4
    path = spec.save(tmp_path / "spec.json")
    loaded = ClusterSpec.load(path)
    assert loaded == spec
    assert loaded.address(2) == (spec.host, spec.ports[2])
    assert loaded.journal_path(1).name == "journal-1.log"
    assert loaded.config().n == 4


def test_spec_validation(tmp_path):
    with pytest.raises(ValueError):
        ClusterSpec(n=0)
    with pytest.raises(ValueError):
        ClusterSpec(n=4, ports=[1, 2])  # wrong arity
    with pytest.raises(ValueError):
        ClusterSpec.from_json('{"n": 4, "version": 99}')


# ----------------------------------------------------------------------
# Wall-clock schedule semantics
# ----------------------------------------------------------------------
def test_wall_clock_schedule_rejects_transport_shaping(tmp_path):
    spec = ClusterSpec.create(4, tmp_path)
    bad = FaultSchedule().at(1.0, set_loss(IIDLoss(drop=0.2)))
    with pytest.raises(ValueError, match="wall-clock"):
        Supervisor(spec, schedule=bad)
    # Crash/recover schedules are the supported dialect.
    Supervisor(spec, schedule=FaultSchedule().at(1.0, crash(1)).at(2.0, recover(1)))


def test_kill_schedule_shape():
    schedule = kill_schedule(3, 4, first_at=2.0, interval=5.0, recover_after=1.0)
    described = [event.describe() for event in schedule.events]
    assert described == [
        "t=2.0: crash(1)",
        "t=3.0: recover(1)",
        "t=7.0: crash(2)",
        "t=8.0: recover(2)",
        "t=12.0: crash(3)",
        "t=13.0: recover(3)",
    ]


# ----------------------------------------------------------------------
# prefixes_consistent (pure function)
# ----------------------------------------------------------------------
def _status(ids):
    return {"committed_ids": list(ids)}


def test_prefixes_consistent_basics():
    assert prefixes_consistent([])
    assert prefixes_consistent([None, None])
    assert prefixes_consistent([_status("ab"), _status("abc"), None])
    assert not prefixes_consistent([_status("ab"), _status("ax")])
    assert not prefixes_consistent([_status("abc"), None, _status("abd")])


# ----------------------------------------------------------------------
# Restart budget (no real replicas: the command dies instantly)
# ----------------------------------------------------------------------
class _CrashLoopSupervisor(Supervisor):
    def _command(self, replica_id):
        return [sys.executable, "-c", "import sys; sys.exit(3)"]


def test_restart_budget_degrades_to_down(tmp_path):
    spec = ClusterSpec.create(1, tmp_path)

    async def go():
        supervisor = _CrashLoopSupervisor(
            spec,
            restart_budget=2,
            restart_backoff_initial=0.02,
            restart_backoff_max=0.05,
        )
        await supervisor.start()
        try:
            deadline = asyncio.get_running_loop().time() + 10.0
            while supervisor.handles[0].state != "down":
                if asyncio.get_running_loop().time() > deadline:
                    pytest.fail("crash-looping replica never degraded to down")
                await asyncio.sleep(0.02)
        finally:
            await supervisor.stop()
        return supervisor

    supervisor = asyncio.run(go())
    handle = supervisor.handles[0]
    assert handle.restarts == 2  # the budget, fully spent
    assert handle.spawns == 3  # initial + 2 restarts
    assert any("budget" in description for _, description in supervisor.fault_log)
    # The degraded replica blocks completion, never crashes the supervisor.
    report = supervisor._report(timed_out=True, wall_seconds=0.0)
    assert report.down == [0]


def test_no_auto_restart_mode(tmp_path):
    spec = ClusterSpec.create(1, tmp_path)

    async def go():
        supervisor = _CrashLoopSupervisor(spec, auto_restart=False)
        await supervisor.start()
        try:
            deadline = asyncio.get_running_loop().time() + 10.0
            while supervisor.handles[0].state != "down":
                if asyncio.get_running_loop().time() > deadline:
                    pytest.fail("replica never marked down")
                await asyncio.sleep(0.02)
        finally:
            await supervisor.stop()
        return supervisor

    supervisor = asyncio.run(go())
    assert supervisor.handles[0].restarts == 0
    assert supervisor.handles[0].spawns == 1


# ----------------------------------------------------------------------
# The real thing: n=4 OS processes, one SIGKILL, durable recovery
# ----------------------------------------------------------------------
def test_multiprocess_cluster_survives_sigkill(tmp_path):
    """n=4 processes over TCP; SIGKILL one replica mid-run and restart it;
    the cluster keeps committing, the victim restores its journal and
    catches up, and every published ledger prefix agrees."""
    spec = ClusterSpec.create(4, tmp_path)
    schedule = kill_schedule(1, 4, first_at=1.5, recover_after=1.0)

    async def go():
        supervisor = Supervisor(spec, schedule=schedule)
        await supervisor.start()
        try:
            return await supervisor.wait(target_commits=10, duration=60.0)
        finally:
            await supervisor.stop()

    report = asyncio.run(go())
    assert not report.timed_out
    assert report.commits >= 10
    assert report.prefixes_consistent
    assert len(report.kills) == 1
    record = report.kills[0]
    assert record.replica == 1
    assert record.restart_seconds is not None
    assert record.recovery_seconds is not None and record.recovery_seconds >= 0
    # The restarted incarnation restored pre-crash safety state from disk.
    victim_status = report.statuses[1]
    assert victim_status is not None
    assert victim_status["restored_from_journal"] is True
    assert victim_status["height"] >= 10
