"""Tests for the metrics collector."""

from repro.ledger.blockstore import BlockStore
from repro.ledger.ledger import CommitRecord
from repro.runtime.metrics import MetricsCollector
from repro.types.blocks import Block, FallbackBlock
from repro.types.certificates import genesis_qc
from repro.types.transactions import Batch, make_transaction


class Sized:
    def __init__(self, size, name):
        self.size = size
        self.__class__.__name__ = name

    def wire_size(self):
        return self.size


def make_metrics(honest=(0, 1, 2)):
    return MetricsCollector(honest_ids=honest)


def commit_record(round_=1, view=0, position=0, fallback=False, txs=()):
    store = BlockStore()
    qc = genesis_qc(store.genesis.id)
    batch = Batch.of(txs)
    if fallback:
        block = FallbackBlock(qc=qc, round=round_, view=view, height=1, proposer=0,
                              batch=batch)
    else:
        block = Block(qc=qc, round=round_, view=view, batch=batch, author=0)
    return CommitRecord(block=block, position=position, committed_at=0.0)


def test_honest_only_message_accounting():
    metrics = make_metrics(honest=(0, 1))
    from repro.types.messages import Proposal  # any typed message works

    metrics.on_send(0, 1, "m", 0.0, 0.1)  # honest: counted (default 64B)
    metrics.on_send(5, 1, "m", 0.0, 0.1)  # Byzantine sender: ignored
    assert metrics.honest_messages == 1
    assert metrics.honest_bytes == 64


def test_decisions_uses_max_honest_height():
    metrics = make_metrics()
    metrics.on_commit(0, commit_record(position=0), 1.0)
    metrics.on_commit(0, commit_record(position=1, round_=2), 1.5)
    metrics.on_commit(1, commit_record(position=0), 2.0)
    assert metrics.decisions() == 2
    assert metrics.min_honest_height() == 0  # replica 2 committed nothing


def test_min_honest_height_needs_everyone():
    metrics = make_metrics(honest=(0, 1))
    metrics.on_commit(0, commit_record(position=3, round_=4), 1.0)
    assert metrics.min_honest_height() == 0
    metrics.on_commit(1, commit_record(position=1, round_=2), 1.0)
    assert metrics.min_honest_height() == 2


def test_per_decision_costs():
    metrics = make_metrics()
    assert metrics.messages_per_decision() is None
    metrics.on_send(0, 1, "m", 0.0, 0.1)
    metrics.on_send(0, 2, "m", 0.0, 0.1)
    metrics.on_commit(0, commit_record(), 1.0)
    assert metrics.messages_per_decision() == 2.0
    assert metrics.bytes_per_decision() == 128.0


def test_phase_classification():
    metrics = make_metrics()
    from repro.types.messages import BlockRequest, FallbackTimeout, Proposal, Vote

    metrics.message_counts.update({"Proposal": 3, "Vote": 9, "FallbackTimeout": 4,
                                   "BlockRequest": 1, "Mystery": 2})
    phases = metrics.phase_messages()
    assert phases == {"steady": 12, "view_change": 4, "sync": 1, "other": 2}


def test_commit_event_captures_block_facts():
    metrics = make_metrics()
    txs = [make_transaction(0, submitted_at=1.0)]
    metrics.on_commit(0, commit_record(fallback=True, txs=txs), 5.0)
    [event] = metrics.commits
    assert event.fallback_block
    assert event.batch_size == 1
    assert event.tx_latencies == [4.0]
    assert metrics.commit_latencies() == [4.0]


def test_fallback_event_tracking():
    metrics = make_metrics()
    metrics.on_fallback_entered(0, 0, 1.0)
    metrics.on_fallback_entered(1, 0, 1.1)
    metrics.on_fallback_entered(0, 1, 9.0)
    metrics.on_fallback_exited(0, 0, 2, 5.0)
    assert metrics.fallback_count() == 2  # distinct views entered


def test_commits_at_filters_by_replica():
    metrics = make_metrics()
    metrics.on_commit(0, commit_record(position=0), 1.0)
    metrics.on_commit(1, commit_record(position=0), 1.0)
    assert len(metrics.commits_at(0)) == 1


def test_summary_renders():
    metrics = make_metrics()
    metrics.on_commit(0, commit_record(), 1.0)
    text = metrics.summary()
    assert "decisions: 1" in text
    assert "messages/decision" in text
