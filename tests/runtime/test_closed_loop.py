"""Tests for closed-loop workload wiring through commit notifications."""

from repro.runtime.cluster import ClusterBuilder
from repro.workloads.generator import ClosedLoopWorkload


def build(outstanding=10, seed=121):
    return (
        ClusterBuilder(n=4, seed=seed)
        .with_workload(
            lambda pools: ClosedLoopWorkload(pools, outstanding=outstanding)
        )
        .build()
    )


def test_closed_loop_replenishes_through_commits():
    cluster = build(outstanding=10)
    cluster.run_until_commits(10, until=10_000)
    workload = cluster.workload
    committed = len(cluster.honest_replicas()[0].ledger.committed_transactions())
    # Every committed transaction triggered a replacement submission.
    assert len(workload.submitted) >= 10 + committed - 10  # initial + refills
    assert len(workload.submitted) > workload.outstanding


def test_outstanding_stays_bounded():
    cluster = build(outstanding=5)
    cluster.run_until_commits(20, until=10_000)
    workload = cluster.workload
    mempool = cluster.mempools[0]
    # In a quiesced moment, pending = submitted - committed <= outstanding + batch in flight.
    cluster.run(until=cluster.scheduler.now + 30)
    assert len(mempool) <= workload.outstanding + cluster.config.batch_size


def test_each_commit_notifies_once():
    cluster = build(outstanding=4)
    cluster.run_until_commits(10, until=10_000)
    tx_ids = [tx.tx_id for tx in cluster.workload.submitted]
    assert len(tx_ids) == len(set(tx_ids))  # no duplicate replacements
