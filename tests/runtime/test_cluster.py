"""Tests for cluster construction and running."""

import pytest

from repro.core.config import ProtocolConfig, ProtocolVariant
from repro.core.replica import Replica
from repro.faults import SilentReplica, byzantine
from repro.ledger.ledger import KVStateMachine
from repro.net.conditions import SynchronousDelay
from repro.runtime.cluster import ClusterBuilder
from repro.types.transactions import make_transaction
from repro.workloads.generator import Workload


def test_build_wires_everything():
    cluster = ClusterBuilder(n=4, seed=1).build()
    assert len(cluster.replicas) == 4
    assert len(cluster.mempools) == 4
    assert cluster.honest_ids == [0, 1, 2, 3]
    assert all(isinstance(r, Replica) for r in cluster.replicas)
    assert cluster.network.process_ids() == [0, 1, 2, 3]


def test_byzantine_wiring():
    cluster = (
        ClusterBuilder(n=4, seed=1)
        .with_byzantine(2, byzantine(SilentReplica))
        .build()
    )
    assert cluster.byzantine_ids == [2]
    assert cluster.honest_ids == [0, 1, 3]
    assert isinstance(cluster.replicas[2], SilentReplica)
    assert len(cluster.honest_replicas()) == 3


def test_run_until_commits_stops_early():
    cluster = ClusterBuilder(n=4, seed=1).build()
    result = cluster.run_until_commits(5, until=10_000)
    assert 5 <= result.decisions <= 10
    assert result.stopped_at < 10_000


def test_run_until_commits_everywhere():
    cluster = ClusterBuilder(n=4, seed=1).build()
    cluster.run_until_commits(5, until=10_000, everywhere=True)
    assert cluster.metrics.min_honest_height() >= 5


def test_start_is_idempotent():
    cluster = ClusterBuilder(n=4, seed=1).build()
    cluster.start()
    cluster.start()
    result = cluster.run(until=30.0)
    assert result.decisions > 0


def test_current_leaders_oracle():
    cluster = ClusterBuilder(n=4, seed=1).build()
    assert cluster.current_leaders() == {0}  # all replicas in round 1
    cluster.run(until=40.0)
    assert cluster.current_leaders() <= set(range(4))


def test_submit_reaches_all_mempools():
    cluster = ClusterBuilder(n=4, seed=1).with_preload(0).build()
    tx = make_transaction(0, client=9)
    cluster.submit(tx)
    assert all(len(pool) == 1 for pool in cluster.mempools)


def test_change_network_mid_run():
    cluster = ClusterBuilder(n=4, seed=1).build()
    cluster.run(until=20.0)
    before = cluster.metrics.decisions()
    cluster.change_network(SynchronousDelay(delta=0.2, min_delay=0.1))
    cluster.run(until=40.0)
    assert cluster.metrics.decisions() > before


def test_custom_workload_factory():
    captured = {}

    def factory(mempools):
        workload = Workload(mempools, count=3)
        captured["workload"] = workload
        return workload

    cluster = ClusterBuilder(n=4, seed=1).with_workload(factory).build()
    cluster.start()
    assert len(captured["workload"].submitted) == 3


def test_state_machine_factory():
    cluster = (
        ClusterBuilder(n=4, seed=1).with_state_machine(KVStateMachine).build()
    )
    cluster.run_until_commits(5, until=1_000)
    machine = cluster.honest_replicas()[0].ledger.state_machine
    assert isinstance(machine, KVStateMachine)
    assert machine.data  # default workload issues "set" commands


def test_committed_chain_accessor():
    cluster = ClusterBuilder(n=4, seed=1).build()
    result = cluster.run_until_commits(5, until=1_000)
    chain = result.committed_chain()
    assert len(chain) >= 5
    chain_specific = result.committed_chain(1)
    assert chain_specific[0].id == chain[0].id


def test_byzantine_id_bounds():
    builder = ClusterBuilder(n=4, seed=1)
    with pytest.raises(ValueError):
        builder.with_byzantine(7, byzantine(SilentReplica))


def test_n_and_matching_config_coexist():
    config = ProtocolConfig(n=7)
    cluster = ClusterBuilder(n=7, seed=1, config=config).build()
    assert cluster.config is config
    assert len(cluster.replicas) == 7


def test_conflicting_n_and_config_raise():
    with pytest.raises(ValueError, match="conflicting cluster sizes"):
        ClusterBuilder(n=4, seed=1, config=ProtocolConfig(n=7))


def test_config_alone_sets_the_size():
    cluster = ClusterBuilder(seed=1, config=ProtocolConfig(n=7)).build()
    assert len(cluster.replicas) == 7


def test_default_size_without_n_or_config():
    cluster = ClusterBuilder(seed=1).build()
    assert len(cluster.replicas) == 4


def test_honest_factory_replica_stays_honest():
    from repro.storage.durable import DurableReplica

    cluster = (
        ClusterBuilder(n=4, seed=1)
        .with_honest_factory(2, DurableReplica)
        .build()
    )
    assert isinstance(cluster.replicas[2], DurableReplica)
    assert cluster.honest_ids == [0, 1, 2, 3]
    assert 2 in cluster.metrics.honest_ids


def test_honest_factory_and_byzantine_are_mutually_exclusive():
    from repro.storage.durable import DurableReplica

    builder = ClusterBuilder(n=4, seed=1).with_byzantine(1, byzantine(SilentReplica))
    with pytest.raises(ValueError, match="already Byzantine"):
        builder.with_honest_factory(1, DurableReplica)
    builder = ClusterBuilder(n=4, seed=1).with_honest_factory(1, DurableReplica)
    with pytest.raises(ValueError, match="honest factory"):
        builder.with_byzantine(1, byzantine(SilentReplica))
    with pytest.raises(ValueError):
        ClusterBuilder(n=4, seed=1).with_honest_factory(9, DurableReplica)


def test_reliable_channels_only_when_requested():
    from repro.net.loss import IIDLoss
    from repro.net.reliable import ChannelConfig, ReliableNetwork

    plain = ClusterBuilder(n=4, seed=1).build()
    assert not isinstance(plain.network, ReliableNetwork)
    lossy = ClusterBuilder(n=4, seed=1).with_loss_model(IIDLoss(drop=0.1)).build()
    assert isinstance(lossy.network, ReliableNetwork)
    raw = (
        ClusterBuilder(n=4, seed=1)
        .with_loss_model(IIDLoss(drop=0.1), reliable=False)
        .build()
    )
    assert not isinstance(raw.network, ReliableNetwork)
    forced = (
        ClusterBuilder(n=4, seed=1)
        .with_reliable_channels(ChannelConfig(initial_rto=7.0))
        .build()
    )
    assert isinstance(forced.network, ReliableNetwork)
    assert forced.network.channel.initial_rto == 7.0


def test_variant_builder_shortcut():
    cluster = (
        ClusterBuilder(n=4, seed=1)
        .with_variant(ProtocolVariant.DIEMBFT)
        .build()
    )
    assert cluster.config.variant == ProtocolVariant.DIEMBFT
    assert cluster.replicas[0].pacemaker is not None
    assert cluster.replicas[0].fallback is None
