"""Small AST helpers shared by the lint rules."""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` attribute chains; None for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def import_map(tree: ast.Module) -> Dict[str, str]:
    """Local name -> imported dotted path, for top-level imports.

    ``import time as t`` maps ``t -> time``; ``from datetime import
    datetime`` maps ``datetime -> datetime.datetime``.  Only module-level
    imports are tracked — that is where the banned modules are imported in
    practice, and function-local import tricks are caught by review.
    """
    mapping: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                mapping[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
                if alias.asname:
                    mapping[alias.asname] = alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue  # relative imports are in-package, never stdlib
            for alias in node.names:
                mapping[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return mapping


def resolve_call(imports: Dict[str, str], func: ast.AST) -> Optional[str]:
    """Resolve a call target through the import map.

    ``t.time`` with ``t -> time`` resolves to ``time.time``; a bare name
    imported via ``from time import perf_counter`` resolves to
    ``time.perf_counter``.  Unresolvable heads (locals, parameters) return
    the raw dotted chain so callers can still match explicit suffixes.
    """
    chain = dotted_name(func)
    if chain is None:
        return None
    head, _, rest = chain.partition(".")
    resolved_head = imports.get(head, head)
    return f"{resolved_head}.{rest}" if rest else resolved_head


def iter_comprehension_iters(tree: ast.AST) -> Iterator[Tuple[ast.AST, ast.AST]]:
    """Yield ``(owner, iterable)`` for for-loops and comprehension clauses."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node, node.iter
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for generator in node.generators:
                yield node, generator.iter


def decorator_names(node: ast.AST) -> List[str]:
    """Dotted names of a class/function's decorators (call parens stripped)."""
    names: List[str] = []
    for decorator in getattr(node, "decorator_list", []):
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = dotted_name(target)
        if name is not None:
            names.append(name)
    return names


def dataclass_decorator(node: ast.ClassDef) -> Optional[ast.AST]:
    """The ``@dataclass`` / ``@dataclasses.dataclass`` decorator, if any."""
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = dotted_name(target)
        if name in ("dataclass", "dataclasses.dataclass"):
            return decorator
    return None


def dataclass_is_frozen(decorator: ast.AST) -> bool:
    """True when the dataclass decorator passes ``frozen=True``."""
    if not isinstance(decorator, ast.Call):
        return False
    for keyword in decorator.keywords:
        if keyword.arg == "frozen":
            return isinstance(keyword.value, ast.Constant) and keyword.value.value is True
    return False


def class_defines_slots(node: ast.ClassDef) -> bool:
    """True when the class body assigns ``__slots__`` directly."""
    for statement in node.body:
        targets: List[ast.AST] = []
        if isinstance(statement, ast.Assign):
            targets = list(statement.targets)
        elif isinstance(statement, ast.AnnAssign):
            targets = [statement.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__slots__":
                return True
    return False


def is_set_expression(node: ast.AST) -> bool:
    """Syntactically set-valued: a set display, set comprehension, or a
    call to the ``set``/``frozenset`` builtins."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def async_function_names(tree: ast.Module) -> set:
    """Names of every ``async def`` in the module (functions and methods)."""
    return {
        node.name
        for node in ast.walk(tree)
        if isinstance(node, ast.AsyncFunctionDef)
    }


def enclosing_async_spans(tree: ast.Module) -> List[Tuple[int, int]]:
    """(first, last) line spans of every async function body."""
    spans: List[Tuple[int, int]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.AsyncFunctionDef):
            end = getattr(node, "end_lineno", node.lineno)
            spans.append((node.lineno, end or node.lineno))
    return spans
