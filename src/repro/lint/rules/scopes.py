"""Shared scope policy for the concurrency-rule family.

The five interprocedural asyncio rules (`await-atomicity`,
`blocking-in-async`, `task-lifecycle`, `cancellation-safety`,
`unbounded-queue`) all target the *live runtime* — the code that runs
replicas over real sockets and processes — and deliberately skip the
deterministic simulator, where there is no event loop to stall and no
task to leak.  Keeping the prefix list in one place means a new runtime
package gets all five rules by adding one string.
"""

from __future__ import annotations

#: Dotted module prefixes the concurrency rules apply to.
RUNTIME_SCOPE_PREFIXES = (
    "repro.net.tcp",
    "repro.runtime",
    "repro.client",
    "repro.traffic",
)


def in_runtime_scope(module_name: str) -> bool:
    """True when ``module_name`` falls under a runtime scope prefix."""
    return any(
        module_name == prefix or module_name.startswith(prefix + ".")
        for prefix in RUNTIME_SCOPE_PREFIXES
    )
