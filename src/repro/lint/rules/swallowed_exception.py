"""Swallowed exceptions: core/sim/wire may not silently eat errors.

A bare ``except:`` (or ``except Exception:``) whose body neither re-raises
nor even looks at the error turns every bug downstream of it into silence.
In this codebase the stakes are concrete: a swallowed decode error makes a
lossy-network run look like packet loss (skewing the chaos benchmarks), a
swallowed handler error makes a safety violation look like a timeout.
Catching *specific* exceptions (``SignatureError``, ``FrameError``) as
protocol outcomes is the supported pattern; catching everything and
discarding it is not.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import (
    Finding,
    ParsedModule,
    Rule,
    SEVERITY_WARNING,
    register_rule,
)

#: Handler types considered "catch everything".
BROAD_TYPES = frozenset({"Exception", "BaseException"})

SCOPE_PREFIXES = ("repro.core", "repro.sim", "repro.wire")


def _is_broad(type_node: ast.AST) -> bool:
    if type_node is None:
        return True  # bare except
    if isinstance(type_node, ast.Name):
        return type_node.id in BROAD_TYPES
    if isinstance(type_node, ast.Attribute):
        return type_node.attr in BROAD_TYPES
    if isinstance(type_node, ast.Tuple):
        return any(_is_broad(element) for element in type_node.elts)
    return False


def _discards_error(handler: ast.ExceptHandler) -> bool:
    """True when the handler neither re-raises nor touches the exception."""
    for node in handler.body:
        for child in ast.walk(node):
            if isinstance(child, ast.Raise):
                return False
            if (
                handler.name is not None
                and isinstance(child, ast.Name)
                and child.id == handler.name
            ):
                return False
    return True


@register_rule
class SwallowedExceptionRule(Rule):
    """Bare/broad except blocks that discard the error in core/sim/wire."""

    id = "swallowed-exception"
    severity = SEVERITY_WARNING
    description = (
        "bare or broad except in core/sim/wire whose body neither re-raises "
        "nor uses the caught exception"
    )
    rationale = (
        "A swallowed error downgrades a protocol bug to silence: decode "
        "failures masquerade as packet loss and handler crashes as "
        "timeouts, corrupting both the benchmarks and any safety diagnosis."
    )

    def applies_to(self, module: ParsedModule) -> bool:
        return not module.is_test and module.module.startswith(SCOPE_PREFIXES)

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Try):
                continue
            for handler in node.handlers:
                if _is_broad(handler.type) and _discards_error(handler):
                    label = (
                        "bare except"
                        if handler.type is None
                        else "broad except"
                    )
                    yield self.finding(
                        module,
                        handler,
                        f"{label} discards the error; catch the specific "
                        "exception, re-raise, or at least record it",
                    )
