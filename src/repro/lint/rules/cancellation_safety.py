"""Cancellation must flow: no swallowed CancelledError, shielded finally.

``asyncio`` shutdown is a chain of ``CancelledError`` propagations: the
supervisor cancels a replica's tasks, each task unwinds through its
``finally`` blocks, and the cancellation *re-raises* out of every frame
so the canceller's ``await task`` completes.  Two patterns break the
chain:

- an ``except`` clause that catches ``CancelledError`` — naming it,
  via ``except BaseException``, or with a bare ``except:`` — and does
  not re-raise.  The task reports itself finished-normally; its
  canceller hangs or, worse, proceeds believing teardown completed
  (note ``except Exception`` is fine: ``CancelledError`` derives from
  ``BaseException`` precisely so broad handlers miss it);
- an ``await`` inside a ``finally`` block without ``asyncio.shield``.
  If the task is already being cancelled, the *first* await in the
  finally re-raises immediately and every cleanup step after it is
  silently skipped — half-closed sockets and unjoined subtasks, on the
  exact kill/restart path docs/LIVE_RUNTIME.md argues about.

Sanctioned shapes: a handler whose body (conditionally) re-raises is
correct keyed-cancellation handling; an await in a finally that is
wrapped in ``asyncio.shield`` or sits inside a nested ``try`` that
itself handles ``CancelledError`` is deliberate.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.lint.astutil import import_map
from repro.lint.engine import Finding, ParsedModule, Rule, register_rule
from repro.lint.flow.callgraph import _attribute_chain
from repro.lint.flow.effects import iter_own_body
from repro.lint.rules.scopes import in_runtime_scope

_CANCELLED_TAILS = ("CancelledError", "BaseException")


@register_rule
class CancellationSafetyRule(Rule):
    """Swallowed CancelledError and unshielded awaits in finally."""

    id = "cancellation-safety"
    description = (
        "except clauses must re-raise CancelledError; awaits inside "
        "finally need asyncio.shield or explicit cancellation handling"
    )
    rationale = (
        "Clean SIGKILL/restart recovery depends on cancellation "
        "unwinding every frame: a handler that swallows CancelledError "
        "makes the canceller hang on await task, and an unshielded "
        "await in finally aborts the rest of the cleanup the moment "
        "cancellation lands, leaking sockets and subtasks."
    )

    def applies_to(self, module: ParsedModule) -> bool:
        if module.is_test or not in_runtime_scope(module.module):
            return False
        return "asyncio" in import_map(module.tree).values()

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for function in ast.walk(module.tree):
            if not isinstance(function, ast.AsyncFunctionDef):
                continue
            tries = [
                item
                for item in iter_own_body(function)
                if isinstance(item, ast.Try)
            ]
            yield from self._check_handlers(module, tries)
            yield from self._check_finally_awaits(module, function, tries)

    # -- swallowed CancelledError --------------------------------------
    def _check_handlers(
        self, module: ParsedModule, tries: List[ast.Try]
    ) -> Iterator[Finding]:
        for try_node in tries:
            for handler in try_node.handlers:
                matched = _cancellation_catcher(handler.type)
                if matched is None:
                    continue
                if any(
                    isinstance(item, ast.Raise)
                    for body_item in handler.body
                    for item in ast.walk(body_item)
                ):
                    continue  # (conditional) re-raise present
                yield self.finding(
                    module,
                    handler,
                    f"{matched} swallows asyncio.CancelledError: the "
                    "cancelled task reports normal completion and its "
                    "canceller's `await task` never finishes cancelling; "
                    "re-raise (optionally keyed on shutdown state)",
                )

    # -- unshielded awaits in finally ----------------------------------
    def _check_finally_awaits(
        self,
        module: ParsedModule,
        function: ast.AsyncFunctionDef,
        tries: List[ast.Try],
    ) -> Iterator[Finding]:
        guarded = _guarded_spans(tries)
        for try_node in tries:
            for statement in try_node.finalbody:
                for item in ast.walk(statement):
                    if not isinstance(item, ast.Await):
                        continue
                    if _is_shielded(item.value):
                        continue
                    if any(
                        first <= item.lineno <= last for first, last in guarded
                    ):
                        continue
                    yield self.finding(
                        module,
                        item,
                        "await inside finally without asyncio.shield: if "
                        "this task is being cancelled, the first await "
                        "re-raises immediately and the remaining cleanup "
                        "is skipped; wrap the teardown coroutine in "
                        "asyncio.shield(...) or catch CancelledError "
                        "around it",
                    )


def _cancellation_catcher(node: Optional[ast.AST]) -> Optional[str]:
    """Human-readable description when a handler can catch cancellation."""
    if node is None:
        return "bare except"
    if isinstance(node, ast.Tuple):
        for element in node.elts:
            matched = _cancellation_catcher(element)
            if matched is not None:
                return matched
        return None
    chain = _attribute_chain(node)
    if chain and chain[-1] in _CANCELLED_TAILS:
        return f"except {'.'.join(chain)}"
    return None


def _is_shielded(value: ast.AST) -> bool:
    """The awaited expression runs under asyncio.shield somewhere."""
    for item in ast.walk(value):
        if isinstance(item, ast.Call):
            chain = _attribute_chain(item.func)
            if chain and chain[-1] == "shield":
                return True
    return False


def _guarded_spans(tries: List[ast.Try]) -> List[Tuple[int, int]]:
    """Body spans of try statements that handle CancelledError themselves."""
    spans: List[Tuple[int, int]] = []
    for try_node in tries:
        if not any(
            _cancellation_catcher(handler.type) is not None
            for handler in try_node.handlers
        ):
            continue
        if not try_node.body:
            continue
        first = try_node.body[0].lineno
        last = getattr(try_node.body[-1], "end_lineno", None) or try_node.body[
            -1
        ].lineno
        spans.append((first, last))
    return spans
