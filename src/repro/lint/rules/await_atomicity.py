"""Async TOCTOU: read-check-write of shared state across a suspension.

A single-threaded event loop makes every run of code *between* awaits
atomic — and nothing else.  The live runtime leans on that constantly:
``_handle_inbound`` checks ``self._closed`` and then registers a channel,
``close()`` reads a task handle and then awaits it.  When a read of a
``self`` attribute flows into a write of the same attribute **after** an
intervening suspension point, any other task may have mutated the
attribute in between; the write then clobbers state it never saw.  On
the recovery path (crash → SIGKILL → rejoin, docs/LIVE_RUNTIME.md) that
is exactly how a restarting replica's catch-up races the supervisor's
bookkeeping.

The rule scans each async function's evaluation-ordered effect stream
(:meth:`EffectsIndex.event_stream`): a read marks the attribute *fresh*;
a resolved suspension point marks every fresh attribute *stale*; a write
to a stale attribute is a finding; a re-read after the suspension
re-validates (clears staleness).  Suspensions under a lock-shaped
``async with`` are ignored — the lock serializes the racing writer too.
Fix by re-reading after the await, swapping before suspending
(``task, self.t = self.t, None``), or holding a lock across the span.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Set, Tuple

from repro.lint.engine import Finding, ParsedModule, ProjectRule, register_rule
from repro.lint.flow.effects import build_effects
from repro.lint.rules.scopes import in_runtime_scope


@register_rule
class AwaitAtomicityRule(ProjectRule):
    """Stale self-attribute writes after a suspension point."""

    id = "await-atomicity"
    description = (
        "a self attribute read before an await and written after it, "
        "without a re-read or a held lock, races every other task"
    )
    rationale = (
        "Handler atomicity between awaits is the only mutual exclusion "
        "the live runtime has; a read-check-write spanning a suspension "
        "point silently clobbers concurrent channel/replica bookkeeping, "
        "which is how a rejoining replica's catch-up path corrupts "
        "supervisor or transport state mid-fallback."
    )

    def check_project(self, modules: Sequence[ParsedModule]) -> Iterator[Finding]:
        project = [
            m
            for m in modules
            if not m.is_test and not m.skipped and m.module.startswith("repro")
        ]
        if not any(in_runtime_scope(m.module) for m in project):
            return
        index = build_effects(project)
        paths = {m.module: m.path for m in project}
        for qualname in index.qualnames():
            fx = index.effects(qualname)
            if fx is None or not fx.is_async or not in_runtime_scope(fx.module):
                continue
            yield from self._scan(index, qualname, paths[fx.module])

    def _scan(self, index, qualname: str, path: str) -> Iterator[Finding]:
        fresh: Dict[str, int] = {}  # attr -> line of the validating read
        stale: Dict[str, int] = {}  # attr -> line of the staling suspension
        reported: Set[Tuple[str, int]] = set()
        findings: List[Finding] = []
        for event in index.event_stream(qualname):
            if event.kind == "read":
                fresh[event.attr] = event.line
                stale.pop(event.attr, None)
            elif event.kind == "suspend":
                if not event.locked:
                    for attr in fresh:
                        stale[attr] = event.line
            elif event.kind == "write":
                attr = event.attr
                if attr in stale and (attr, event.line) not in reported:
                    reported.add((attr, event.line))
                    findings.append(
                        Finding(
                            path=path,
                            line=event.line,
                            col=event.col + 1,
                            rule=self.id,
                            message=(
                                f"self.{attr} read at line {fresh[attr]} is written "
                                f"here after a suspension point at line "
                                f"{stale[attr]}: another task may have changed it; "
                                "re-read after the await, swap-before-suspend, or "
                                "hold a lock across the span "
                                f"({qualname})"
                            ),
                            severity=self.severity,
                        )
                    )
                fresh[event.attr] = event.line
                stale.pop(event.attr, None)
        # The event stream visits loop bodies twice; dedup happened via
        # ``reported``, and ordering is restored by the engine's sort.
        yield from findings
