"""Determinism rules: the simulator must be a pure function of its seed.

The benchmark suite (``BENCH_simcore.json``) pins byte-identical
commit-trace fingerprints across runs, and the common-coin leader election
(Lemma 7) assumes the adversary cannot bias the coin — both break the
moment simulation-side code reads a wall clock, draws unseeded randomness,
or iterates a hash-ordered container where order reaches protocol state.

Scope: ``repro.core``, ``repro.sim``, ``repro.crypto`` and the simulated
side of ``repro.net``.  The live runtime (``repro.runtime.live``,
``repro.net.tcp``) is wall-clock *by design* and is excluded; its distinct
failure modes are covered by the ``asyncio-hygiene`` rule.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from repro.lint.astutil import (
    import_map,
    is_set_expression,
    iter_comprehension_iters,
    resolve_call,
)
from repro.lint.engine import Finding, ParsedModule, Rule, register_rule

#: Packages whose runs must be a pure function of the seed.
DETERMINISTIC_PREFIXES = ("repro.core", "repro.sim", "repro.crypto", "repro.net")

#: Modules inside those packages that are wall-clock by design (live side).
LIVE_SIDE_MODULES = frozenset({"repro.net.tcp"})

#: Call targets that read a wall clock.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Call targets that draw operating-system / unseeded randomness.
ENTROPY_CALLS = frozenset(
    {
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "random.SystemRandom",
    }
)

#: ``random.<fn>`` module-level draws come from the shared, unseeded global
#: Random instance; everything here perturbs (or is perturbed by) any other
#: component that touches it.  ``random.Random(seed)`` is the sanctioned
#: alternative and stays allowed.
GLOBAL_RANDOM_FUNCTIONS = frozenset(
    {
        "random.random",
        "random.randint",
        "random.randrange",
        "random.choice",
        "random.choices",
        "random.sample",
        "random.shuffle",
        "random.uniform",
        "random.gauss",
        "random.expovariate",
        "random.getrandbits",
        "random.betavariate",
        "random.normalvariate",
        "random.seed",
    }
)


def in_deterministic_scope(module: ParsedModule) -> bool:
    name = module.module
    if name in LIVE_SIDE_MODULES:
        return False
    return any(
        name == prefix or name.startswith(prefix + ".")
        for prefix in DETERMINISTIC_PREFIXES
    )


class _DeterministicScopeRule(Rule):
    def applies_to(self, module: ParsedModule) -> bool:
        return not module.is_test and in_deterministic_scope(module)


@register_rule
class WallClockRule(_DeterministicScopeRule):
    """Forbid wall-clock reads in simulation-side code."""

    id = "wall-clock"
    description = "no time.time()/monotonic()/perf_counter()/datetime.now() in sim-side code"
    rationale = (
        "Commit-trace fingerprints are byte-identical across runs only if "
        "simulated time is the sole clock; one wall-clock read makes runs "
        "unreproducible and benchmark diffs meaningless."
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        imports = import_map(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = resolve_call(imports, node.func)
            if resolved in WALL_CLOCK_CALLS:
                yield self.finding(
                    module,
                    node,
                    f"wall-clock read {resolved}() in deterministic module "
                    f"{module.module}; use the scheduler's simulated clock",
                )


@register_rule
class UnseededRandomRule(_DeterministicScopeRule):
    """Forbid unseeded / OS randomness in simulation-side code."""

    id = "unseeded-random"
    description = "no os.urandom / global random.* / uuid4 in sim-side code; seeded random.Random(seed) is fine"
    rationale = (
        "Every random draw must derive from the run seed "
        "(Scheduler.rng / child_rng) so delay models, workloads and the "
        "common coin replay identically; the global random module and OS "
        "entropy break seed-purity."
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        imports = import_map(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = resolve_call(imports, node.func)
            if resolved is None:
                continue
            if resolved in ENTROPY_CALLS or resolved.startswith("secrets."):
                yield self.finding(
                    module,
                    node,
                    f"OS/unseeded entropy {resolved}() in deterministic "
                    f"module {module.module}; derive randomness from the run seed",
                )
            elif resolved in GLOBAL_RANDOM_FUNCTIONS:
                yield self.finding(
                    module,
                    node,
                    f"global {resolved}() draws from the shared unseeded "
                    "Random instance; use random.Random(seed) or "
                    "Scheduler.child_rng",
                )
            elif resolved == "random.Random" and not (node.args or node.keywords):
                yield self.finding(
                    module,
                    node,
                    "random.Random() without a seed falls back to OS entropy; "
                    "pass an explicit seed",
                )


@register_rule
class UnorderedIterationRule(_DeterministicScopeRule):
    """Forbid iteration whose order comes from a hash-ordered container."""

    id = "unordered-iteration"
    description = "no direct iteration over sets (or dict.popitem) in sim-side code; sort first"
    rationale = (
        "Set iteration order depends on insertion history and hashing, so "
        "any protocol-visible effect derived from it (message order, "
        "digest input, quorum assembly) can differ between otherwise "
        "identical runs; iterate sorted(...) instead.  Membership tests, "
        "len() and sorted() over sets remain allowed."
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        set_valued = self._set_valued_names(module.tree)
        for owner, iterable in iter_comprehension_iters(module.tree):
            if self._is_unordered(iterable, set_valued):
                yield self.finding(
                    module,
                    iterable,
                    "iteration over a set has no deterministic order; wrap "
                    "the iterable in sorted(...) or keep an ordered mirror",
                )
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "popitem"
                and not node.args
            ):
                yield self.finding(
                    module,
                    node,
                    "dict.popitem() removes an arbitrary-looking entry; pop "
                    "an explicit key instead",
                )
            elif (
                isinstance(node.func, ast.Name)
                and node.func.id in ("list", "tuple")
                and len(node.args) == 1
                and self._is_unordered(node.args[0], set_valued)
            ):
                yield self.finding(
                    module,
                    node,
                    f"{node.func.id}() of a set freezes a nondeterministic "
                    "order; use sorted(...)",
                )

    # -- helpers -------------------------------------------------------
    def _is_unordered(self, node: ast.AST, set_valued: Set[Tuple[str, ...]]) -> bool:
        if is_set_expression(node):
            return True
        if isinstance(node, ast.Name):
            return (node.id,) in set_valued
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return ("self", node.attr) in set_valued
        return False

    def _set_valued_names(self, tree: ast.Module) -> Set[Tuple[str, ...]]:
        """Names assigned a syntactic set anywhere in the module.

        Tracks plain locals (``seen = set()``) and ``self.<attr>`` slots.
        Names later rebound to non-set values are dropped — a rebinding
        means the name's type is not reliably a set, and flagging it would
        be a false positive.
        """
        assigned: Dict[Tuple[str, ...], bool] = {}
        for node in ast.walk(tree):
            targets: List[ast.AST] = []
            value = None
            if isinstance(node, ast.Assign):
                targets, value = list(node.targets), node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None:
                continue
            for target in targets:
                key = self._target_key(target)
                if key is None:
                    continue
                is_set = is_set_expression(value)
                if key not in assigned:
                    assigned[key] = is_set
                else:
                    assigned[key] = assigned[key] and is_set
        return {key for key, is_set in assigned.items() if is_set}

    @staticmethod
    def _target_key(target: ast.AST) -> Tuple[str, ...] | None:
        if isinstance(target, ast.Name):
            return (target.id,)
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            return ("self", target.attr)
        return None
