"""Asyncio hygiene for the live runtime.

Covers every ``repro`` module that imports asyncio — today that is
`runtime/live.py`, `net/tcp.py`, the multi-process side
(`runtime/supervisor.py`, `runtime/replica_process.py`), and the client
swarm (`client/swarm.py`); new asyncio modules are picked up
automatically.

The live runtime promises handler atomicity on a single-threaded loop and
clean shutdown (every task cancelled, every socket closed, every
subprocess reaped).  The classic ways that promise rots: a fire-and-forget
``create_task`` whose handle is dropped (the task can never be awaited,
cancelled, or have its exception observed), a coroutine called without
``await`` (silently never runs), and a blocking ``time.sleep`` that stalls
every replica — or the supervisor's whole chaos schedule — sharing the
loop.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.astutil import (
    async_function_names,
    enclosing_async_spans,
    import_map,
    resolve_call,
)
from repro.lint.engine import Finding, ParsedModule, Rule, register_rule

_TASK_SPAWNERS = ("create_task", "ensure_future")


@register_rule
class AsyncioHygieneRule(Rule):
    """Untracked tasks, un-awaited coroutines, blocking sleeps."""

    id = "asyncio-hygiene"
    description = (
        "track every create_task handle, await coroutines, no time.sleep "
        "on the event loop, no deprecated get_event_loop"
    )
    rationale = (
        "Live-mode liveness and clean shutdown require every spawned task "
        "to be cancellable and every coroutine to actually run; a blocking "
        "sleep on the shared loop stalls all replicas at once, which "
        "manifests as spurious round timeouts and fallbacks."
    )

    def applies_to(self, module: ParsedModule) -> bool:
        if module.is_test or not module.module.startswith("repro"):
            return False
        return "asyncio" in import_map(module.tree).values()

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        imports = import_map(module.tree)
        async_names = async_function_names(module.tree)
        async_spans = enclosing_async_spans(module.tree)

        def inside_async(line: int) -> bool:
            return any(first <= line <= last for first, last in async_spans)

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Expr) or not isinstance(node.value, ast.Call):
                continue
            call = node.value
            resolved = resolve_call(imports, call.func) or ""
            tail = resolved.rsplit(".", 1)[-1]
            if tail in _TASK_SPAWNERS:
                yield self.finding(
                    module,
                    node,
                    f"{tail}() result discarded: the task cannot be awaited, "
                    "cancelled at shutdown, or have its exception observed; "
                    "store the handle",
                )
            elif self._is_local_coroutine_call(call.func, async_names):
                yield self.finding(
                    module,
                    node,
                    f"coroutine {tail}(...) called without await: it never "
                    "runs (bare call only builds the coroutine object)",
                )

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = resolve_call(imports, node.func)
            if resolved == "time.sleep" and inside_async(node.lineno):
                yield self.finding(
                    module,
                    node,
                    "blocking time.sleep() inside an async function stalls "
                    "the whole event loop; use await asyncio.sleep",
                )
            elif resolved == "asyncio.get_event_loop":
                yield self.finding(
                    module,
                    node,
                    "asyncio.get_event_loop() is deprecated outside a "
                    "running loop and can create a second loop; use "
                    "asyncio.get_running_loop()",
                )

    @staticmethod
    def _is_local_coroutine_call(func: ast.AST, async_names: set) -> bool:
        """A bare call that builds (but never runs) a module-local coroutine.

        Only unambiguous receivers are matched — a plain name, or a
        ``self.<method>`` — so a sync ``.close()`` on some other object is
        never confused with an async method that shares the name.
        """
        if isinstance(func, ast.Name):
            return func.id in async_names
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
        ):
            return func.attr in async_names
        return False
