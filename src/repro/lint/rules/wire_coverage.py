"""Wire coverage: every protocol message is encodable and round-trip tested.

The live runtime ships exactly what the codec can encode; a message type
added to ``types/messages.py`` but never registered in ``wire/codec.py``
silently degrades to the 64-byte "untyped" fallback in the simulator and
is *unsendable* over TCP (encode_message raises, the send is dropped).
The modeled-vs-encoded wire-size parity claim additionally needs a
round-trip test per type, so the registry entry is exercised rather than
merely present.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Sequence, Set

from repro.lint.engine import Finding, ParsedModule, ProjectRule, register_rule

MESSAGES_MODULE = "repro.types.messages"
CODEC_MODULE = "repro.wire.codec"
#: Test modules that count as wire round-trip coverage.
WIRE_TEST_PREFIX = "tests.wire"

#: The marker base class for protocol messages.
MESSAGE_BASE = "Message"

#: The codec's core registration table.
REGISTRY_TABLE = "_CORE_MESSAGES"


@register_rule
class WireCoverageRule(ProjectRule):
    """Cross-module check: message dataclasses <-> codec tags <-> tests."""

    id = "wire-coverage"
    description = (
        "every Message dataclass in types/messages.py has a codec tag in "
        "wire/codec.py and is referenced by a tests/wire round-trip test"
    )
    rationale = (
        "An unregistered message cannot cross the TCP transport at all and "
        "is billed a fake 64-byte size in the simulator, quietly breaking "
        "the modeled-vs-encoded wire parity the complexity tables rely on."
    )

    def check_project(self, modules: Sequence[ParsedModule]) -> Iterator[Finding]:
        messages = _find(modules, MESSAGES_MODULE)
        codec = _find(modules, CODEC_MODULE)
        if messages is None or codec is None:
            return  # partial tree (e.g. a fixture run); nothing to check
        declared = _message_classes(messages)
        registered = _registered_names(codec)
        test_text = "\n".join(
            module.source
            for module in modules
            if module.is_test and module.module.startswith(WIRE_TEST_PREFIX)
        )
        for name, node in declared.items():
            if name not in registered:
                yield self.finding(
                    messages,
                    node,
                    f"message type {name} has no codec tag in wire/codec.py "
                    f"({REGISTRY_TABLE}); it cannot be sent over the live "
                    "transport",
                )
            if not re.search(rf"\b{re.escape(name)}\b", test_text):
                yield self.finding(
                    messages,
                    node,
                    f"message type {name} is not referenced by any "
                    f"{WIRE_TEST_PREFIX} test; add a round-trip case",
                )


def _find(
    modules: Sequence[ParsedModule], dotted: str
) -> Optional[ParsedModule]:
    for module in modules:
        if module.module == dotted:
            return module
    return None


def _message_classes(messages: ParsedModule) -> Dict[str, ast.ClassDef]:
    """Concrete Message subclasses declared in types/messages.py."""
    found: Dict[str, ast.ClassDef] = {}
    for node in ast.walk(messages.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        bases = {base.id for base in node.bases if isinstance(base, ast.Name)}
        if MESSAGE_BASE in bases:
            found[node.name] = node
    return found


def _registered_names(codec: ParsedModule) -> Set[str]:
    """Class names appearing in the codec's registration table.

    Reads the first element of each ``(cls, tag, enc, dec)`` entry in the
    ``_CORE_MESSAGES`` tuple, plus any literal class name passed to a
    direct ``register_message(...)`` call, so extension registrations
    count too.
    """
    names: Set[str] = set()
    for node in ast.walk(codec.tree):
        if isinstance(node, ast.Assign):
            targets: List[str] = [
                target.id
                for target in node.targets
                if isinstance(target, ast.Name)
            ]
            if REGISTRY_TABLE in targets and isinstance(
                node.value, (ast.Tuple, ast.List)
            ):
                for entry in node.value.elts:
                    if (
                        isinstance(entry, (ast.Tuple, ast.List))
                        and entry.elts
                        and isinstance(entry.elts[0], ast.Name)
                    ):
                        names.add(entry.elts[0].id)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "register_message"
            and node.args
            and isinstance(node.args[0], ast.Name)
        ):
            names.add(node.args[0].id)
    return names
