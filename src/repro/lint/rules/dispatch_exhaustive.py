"""Dispatch exhaustiveness: every message type must be handled somewhere.

The replica's ``on_message`` dispatches by ``isinstance`` through the
pacemaker and fallback engines.  A message type declared in
``types/messages.py`` (and therefore encodable, billable, and sendable)
that no ``isinstance`` check along that chain ever matches is silently
dropped on receipt — the liveness-shaped failure mode: timeouts fire,
fallbacks trigger, and nothing points at the missing branch.  This rule
walks the call graph from every ``on_message`` entry point and demands
each concrete ``Message`` subclass appears in some reachable
``isinstance`` test.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Sequence, Set

from repro.lint.engine import Finding, ParsedModule, ProjectRule, register_rule
from repro.lint.flow import build_call_graph

MESSAGES_MODULE = "repro.types.messages"
MESSAGE_BASE = "Message"
DISPATCH_MODULE_PREFIX = "repro.core"


def _message_classes(module: ParsedModule) -> Dict[str, ast.ClassDef]:
    """Concrete Message subclasses (transitively) in the messages module."""
    by_name: Dict[str, ast.ClassDef] = {}
    parents: Dict[str, Set[str]] = {}
    for node in module.tree.body:
        if isinstance(node, ast.ClassDef):
            by_name[node.name] = node
            parents[node.name] = {
                base.id for base in node.bases if isinstance(base, ast.Name)
            }

    def descends(name: str, seen: Set[str]) -> bool:
        if name in seen:
            return False
        seen.add(name)
        bases = parents.get(name, set())
        return MESSAGE_BASE in bases or any(
            descends(base, seen) for base in bases
        )

    return {
        name: node
        for name, node in by_name.items()
        if name != MESSAGE_BASE and descends(name, set())
    }


def _isinstance_names(func: ast.AST) -> Set[str]:
    """Class names tested by ``isinstance(x, ...)`` inside one function."""
    names: Set[str] = set()
    for node in ast.walk(func):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "isinstance"
            and len(node.args) == 2
        ):
            continue
        spec = node.args[1]
        candidates = spec.elts if isinstance(spec, ast.Tuple) else [spec]
        for candidate in candidates:
            if isinstance(candidate, ast.Name):
                names.add(candidate.id)
            elif isinstance(candidate, ast.Attribute):
                names.add(candidate.attr)
    return names


@register_rule
class DispatchExhaustiveRule(ProjectRule):
    """Every concrete Message subclass is matched by the dispatch chain."""

    id = "dispatch-exhaustive"
    description = (
        "every concrete Message subclass in types/messages.py is isinstance-"
        "matched somewhere reachable from an on_message dispatch chain"
    )
    rationale = (
        "An unmatched message type is received and silently dropped; the "
        "symptom is spurious timeouts and fallbacks, never an error naming "
        "the missing branch.  Exhaustive dispatch keeps a new message type "
        "from shipping half-wired."
    )

    def check_project(self, modules: Sequence[ParsedModule]) -> Iterator[Finding]:
        messages = next(
            (m for m in modules if m.module == MESSAGES_MODULE), None
        )
        if messages is None:
            return  # partial tree (fixture run)
        project = [
            module
            for module in modules
            if not module.is_test and module.module.startswith("repro")
        ]
        graph = build_call_graph(project)
        roots = [
            qualname
            for qualname, node in graph.functions.items()
            if node.name == "on_message"
            and node.module.startswith(DISPATCH_MODULE_PREFIX)
        ]
        if not roots:
            return  # no dispatch chain in scope (fixture run)
        matched: Set[str] = set()
        for qualname in graph.reachable_from(sorted(roots)):
            matched |= _isinstance_names(graph.functions[qualname].node)
        for name, node in sorted(_message_classes(messages).items()):
            if name not in matched:
                yield self.finding(
                    messages,
                    node,
                    f"message type {name} is never isinstance-matched on "
                    "the on_message dispatch chain; it would be received "
                    "and silently dropped",
                )
