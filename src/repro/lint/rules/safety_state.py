"""Safety-state discipline: lock/vote/high-QC state has exactly one owner.

HotStuff-lineage view-change bugs live in the state-update paths: a lock
regression or an out-of-band ``r_vote`` reset is exactly how two conflicting
blocks both gather quorums (the paper's Lemma 4/5 territory, and the bug
class Jolteon/Ditto call out in their safety arguments).  This rule pins
every assignment to those fields to the modules whose invariants the
proofs were checked against.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List

from repro.lint.engine import Finding, ParsedModule, Rule, register_rule

#: Safety-critical attribute -> modules allowed to assign it.
#:
#: - ``r_vote`` / ``rank_lock`` / ``_fallback_votes`` belong to
#:   :mod:`repro.core.safety` (the vote/lock state machine); the durable
#:   journal restore path re-installs them verbatim on recovery.
#: - ``qc_high`` belongs to :mod:`repro.core.replica` (monotone
#:   ``max_cert`` update; the fallback adoption path reads it but mutates
#:   through the replica).
#: - ``locked_round`` / ``highest_qc`` are the common names for the same
#:   state in related codebases; reserving them keeps a refactor from
#:   quietly re-introducing an unguarded variant.
SAFETY_FIELDS: Dict[str, FrozenSet[str]] = {
    "r_vote": frozenset({"repro.core.safety", "repro.storage.durable"}),
    "rank_lock": frozenset({"repro.core.safety", "repro.storage.durable"}),
    "_fallback_votes": frozenset({"repro.core.safety", "repro.storage.durable"}),
    "qc_high": frozenset({"repro.core.replica"}),
    "locked_round": frozenset({"repro.core.safety"}),
    "highest_qc": frozenset({"repro.core.replica"}),
}


@register_rule
class SafetyStateRule(Rule):
    """Safety-critical fields may only be assigned from their owner module."""

    id = "safety-state"
    description = (
        "rank_lock/r_vote/qc_high-style fields only assigned inside "
        "core/safety.py, core/replica.py, or the durable restore path"
    )
    rationale = (
        "Lemma 4/5 safety depends on the lock and vote state moving only "
        "through the monotone rules in core/safety.py (and qc_high through "
        "the replica's max_cert update); an assignment anywhere else "
        "bypasses the proof obligations."
    )

    def applies_to(self, module: ParsedModule) -> bool:
        return not module.is_test and module.module.startswith("repro")

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            targets: List[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, ast.AugAssign):
                targets = [node.target]
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
            for target in targets:
                if not isinstance(target, ast.Attribute):
                    continue
                allowed = SAFETY_FIELDS.get(target.attr)
                if allowed is None or module.module in allowed:
                    continue
                owners = ", ".join(sorted(allowed))
                yield self.finding(
                    module,
                    node,
                    f"assignment to safety-critical field .{target.attr} "
                    f"outside its owner module(s) {owners}; route the update "
                    "through the safety API",
                )
