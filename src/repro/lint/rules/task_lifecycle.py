"""Every spawned task must be joinable: awaited or cancellable somewhere.

The lexical asyncio-hygiene rule already rejects a ``create_task`` whose
result is discarded outright.  This rule upgrades it: a handle that *is*
stored — on ``self._retransmit_task``, in a ``drivers`` list, in a
``handle.monitor`` field — still leaks if no code path ever awaits,
gathers, or cancels what was stored.  A leaked task survives shutdown,
keeps sockets and file descriptors alive, and turns "clean teardown with
no leaked tasks" (the live-cluster recovery invariant) into a lie the
n=4 regression test would only catch by luck.

For a handle retained on an attribute, the rule accepts any of these as
a lifecycle use of that attribute elsewhere in the module: appearing
under an ``await``, being the receiver of ``.cancel()`` /
``.add_done_callback()``, being passed to ``gather`` / ``wait`` /
``wait_for`` / ``shield``, or being moved in an assignment value (the
swap-before-suspend pattern).  For a local, any later use of the name
suffices — locals that are only assigned die with the frame, task and
all.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Tuple

from repro.lint.astutil import import_map
from repro.lint.engine import Finding, ParsedModule, Rule, register_rule
from repro.lint.flow.callgraph import _attribute_chain
from repro.lint.rules.scopes import in_runtime_scope

_TASK_SPAWNERS = ("create_task", "ensure_future")
_JOINERS = ("gather", "wait", "wait_for", "shield")
_LIFECYCLE_METHODS = ("cancel", "add_done_callback")
_COLLECTION_ADDERS = ("add", "append", "add_done_callback")


@register_rule
class TaskLifecycleRule(Rule):
    """Stored task handles that nothing ever awaits or cancels."""

    id = "task-lifecycle"
    description = (
        "a create_task handle stored on an attribute or local must be "
        "awaited, gathered, or cancelled on some path"
    )
    rationale = (
        "A task whose handle is stored but never joined survives "
        "shutdown, holding sockets and timers open; the supervisor's "
        "kill/restart chaos then leaks one orphan per cycle and the "
        "clean-teardown invariant of the recovery argument fails."
    )

    def applies_to(self, module: ParsedModule) -> bool:
        if module.is_test or not in_runtime_scope(module.module):
            return False
        return "asyncio" in import_map(module.tree).values()

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(module.tree):
            for child in ast.iter_child_nodes(parent):
                parents[child] = parent
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attribute_chain(node.func)
            if not chain or chain[-1] not in _TASK_SPAWNERS:
                continue
            kind, name = _classify_retention(node, parents)
            if kind == "attr":
                if not _attr_has_lifecycle_use(module.tree, name):
                    yield self.finding(
                        module,
                        node,
                        f"task handle stored on .{name} is never awaited, "
                        "gathered, or cancelled anywhere in this module; "
                        "join it on the shutdown path (or cancel it in "
                        "close()/stop())",
                    )
            elif kind == "local":
                function = _enclosing_function(node, parents)
                if function is not None and not _local_reused(
                    function, name, node
                ):
                    yield self.finding(
                        module,
                        node,
                        f"task handle bound to local {name!r} is never used "
                        "again: the handle dies with the frame and the task "
                        "can no longer be awaited or cancelled",
                    )

    # ``discarded`` (a bare Expr statement) is asyncio-hygiene's finding;
    # ``retained``/``unknown`` shapes are accepted without further proof.


def _classify_retention(
    call: ast.Call, parents: Dict[ast.AST, ast.AST]
) -> Tuple[str, Optional[str]]:
    """Where the spawned handle lands: attr, local, retained, discarded."""
    current: ast.AST = call
    while True:
        parent = parents.get(current)
        if parent is None:
            return ("unknown", None)
        if isinstance(parent, ast.NamedExpr):
            target = parent.target
            if isinstance(target, ast.Name):
                return ("local", target.id)
            return ("unknown", None)
        if isinstance(parent, ast.Assign) and len(parent.targets) == 1:
            target = parent.targets[0]
            if isinstance(target, ast.Name):
                return ("local", target.id)
            if isinstance(target, ast.Attribute):
                return ("attr", target.attr)
            return ("unknown", None)
        if isinstance(parent, ast.AnnAssign) and isinstance(
            parent.target, ast.Attribute
        ):
            return ("attr", parent.target.attr)
        if isinstance(parent, ast.Call) and current is not parent.func:
            chain = _attribute_chain(parent.func)
            if chain and len(chain) >= 3 and chain[-1] in _COLLECTION_ADDERS:
                # ``self._tasks.add(create_task(...))``: retention is the
                # collection attribute.
                return ("attr", chain[-2])
            return ("retained", None)  # e.g. gather(create_task(...))
        if isinstance(parent, (ast.Await, ast.Return)):
            return ("retained", None)
        if isinstance(parent, ast.Expr):
            return ("discarded", None)
        if isinstance(parent, ast.stmt):
            return ("unknown", None)
        current = parent


def _attr_has_lifecycle_use(tree: ast.Module, attr: Optional[str]) -> bool:
    """Is attribute ``attr`` joined/cancelled/moved anywhere in the module?"""
    if attr is None:
        return True
    for node in ast.walk(tree):
        if isinstance(node, ast.Await):
            if _subtree_loads_attr(node.value, attr):
                return True
        elif isinstance(node, ast.Call):
            chain = _attribute_chain(node.func)
            if chain and chain[-1] in _LIFECYCLE_METHODS:
                if isinstance(node.func, ast.Attribute) and _subtree_loads_attr(
                    node.func.value, attr
                ):
                    return True
            if chain and chain[-1] in _JOINERS:
                for arg in node.args:
                    if _subtree_loads_attr(arg, attr):
                        return True
        elif isinstance(node, ast.Assign):
            if _subtree_loads_attr(node.value, attr):
                return True
    return False


def _subtree_loads_attr(node: ast.AST, attr: str) -> bool:
    return any(
        isinstance(item, ast.Attribute)
        and item.attr == attr
        and isinstance(item.ctx, ast.Load)
        for item in ast.walk(node)
    )


def _enclosing_function(
    node: ast.AST, parents: Dict[ast.AST, ast.AST]
) -> Optional[ast.AST]:
    current: Optional[ast.AST] = node
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return current
        current = parents.get(current)
    return None


def _local_reused(function: ast.AST, name: Optional[str], spawn: ast.Call) -> bool:
    """Any use of local ``name`` besides the spawning statement itself."""
    if name is None:
        return True
    spawn_line = spawn.lineno
    for item in ast.walk(function):
        if (
            isinstance(item, ast.Name)
            and item.id == name
            and isinstance(item.ctx, ast.Load)
            and item.lineno != spawn_line
        ):
            return True
    return False
