"""Quorum literals: threshold comparisons must go through the config.

The 2f+1 / f+1 arithmetic lives in exactly one place —
``ProtocolConfig.quorum_size`` and ``coin_threshold`` (and the replica's
cached ``quorum``).  A hand-rolled ``len(votes) >= 3`` or
``len(votes) >= 2 * f + 1`` scattered through core/ can silently diverge
from it (wrong n, off-by-one, stale f), which is precisely the quorum-
intersection arithmetic Lemma 7's coin election and every quorum-overlap
argument depend on.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.engine import Finding, ParsedModule, Rule, register_rule

#: Terminal names that mark a comparison as routed through the config.
ALLOWED_THRESHOLDS = frozenset({"quorum", "quorum_size", "coin_threshold"})

#: Bare names whose appearance in threshold arithmetic marks a hand-rolled
#: 2f+1 / f+1 / n-f expression.
FAULT_PARAM_NAMES = frozenset({"f", "n", "num_faulty", "num_replicas"})


def _is_len_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "len"
    )


def _terminal_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Call):
        return _terminal_name(node.func)
    return None


def _uses_allowed_threshold(node: ast.AST) -> bool:
    for child in ast.walk(node):
        name = _terminal_name(child)
        if name in ALLOWED_THRESHOLDS:
            return True
    return False


def _offending_threshold(node: ast.AST) -> Optional[str]:
    """Describe why a comparator is a hand-rolled quorum, or None."""
    if _uses_allowed_threshold(node):
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        if node.value >= 2 and not isinstance(node.value, bool):
            return f"literal {node.value}"
        return None
    if isinstance(node, ast.BinOp):
        for child in ast.walk(node):
            name = _terminal_name(child)
            if name in FAULT_PARAM_NAMES:
                return "arithmetic over f/n"
        return None
    return None


@register_rule
class QuorumLiteralRule(Rule):
    """Hand-rolled quorum thresholds in core/ protocol code."""

    id = "quorum-literal"
    description = (
        "len(...) compared against an integer literal or f/n arithmetic in "
        "core/ instead of config.quorum_size()/coin_threshold/replica.quorum"
    )
    rationale = (
        "Quorum intersection (2f+1 of n = 3f+1) and the coin-unpredictability "
        "threshold (f+1) are Lemma 7's load-bearing arithmetic; a hand-rolled "
        "literal diverges silently when n or f changes."
    )

    def applies_to(self, module: ParsedModule) -> bool:
        return not module.is_test and module.module.startswith("repro.core")

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for first, second in zip(operands, operands[1:]):
                for len_side, other in ((first, second), (second, first)):
                    if not _is_len_call(len_side):
                        continue
                    why = _offending_threshold(other)
                    if why is not None:
                        yield self.finding(
                            module,
                            node,
                            f"quorum-style comparison against {why}; use "
                            "config.quorum_size/coin_threshold (or the "
                            "replica's cached quorum) instead",
                        )
