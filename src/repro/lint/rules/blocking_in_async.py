"""Blocking I/O transitively reachable from an async def.

The lexical asyncio-hygiene rule catches a literal ``time.sleep`` inside
an async function; it is blind to the two-hop version — an async handler
calling a sync helper that calls ``open()`` or ``os.fsync``.  Every
replica, the supervisor's chaos schedule, and the client swarm share one
event loop per process: a single blocking syscall stalls them all, which
the protocol layer observes as spurious round timeouts and needless
fallbacks — the exact failure the paper's fallback path exists to absorb,
manufactured in our own runtime.

This rule walks the effect summaries' *may-block* closure.  A finding is
reported at the closest async function to the blocking leaf (callers
further up are skipped: one root cause, one finding).  The journal's
fsync path and the status/spec snapshot helpers are **sanctioned** —
their blocking is deliberate, bounded, and documented (they are the
durability guarantee) — and listed in ``SANCTIONED_BLOCKING``; anything
else must move behind ``asyncio.to_thread``-style offload, become async,
or carry an explicit per-line pragma.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from repro.lint.engine import Finding, ParsedModule, ProjectRule, register_rule
from repro.lint.flow.effects import build_effects
from repro.lint.rules.scopes import in_runtime_scope

#: Qualname prefixes whose blocking calls are deliberate durability
#: boundaries (matched with ``startswith``).  The journal *is* the
#: fsync path the recovery argument depends on; the status/spec files
#: are tiny single-write snapshots read by the supervisor.
SANCTIONED_BLOCKING = (
    "repro.storage.journal.",
    "repro.runtime.replica_process.write_status",
    "repro.runtime.replica_process.read_status",
    "repro.runtime.spec.ClusterSpec.save",
    "repro.runtime.spec.ClusterSpec.load",
)


def _sanctioned(qualname: str) -> bool:
    return any(qualname.startswith(prefix) for prefix in SANCTIONED_BLOCKING)


@register_rule
class BlockingInAsyncRule(ProjectRule):
    """Async functions that (transitively) reach blocking syscalls."""

    id = "blocking-in-async"
    description = (
        "blocking I/O (file ops, fsync, subprocess, sync sockets) "
        "reachable from an async def stalls every replica on the loop"
    )
    rationale = (
        "All replicas in live mode share an event loop per process; one "
        "blocking syscall freezes every timer and socket at once, which "
        "surfaces as spurious timeouts and fallbacks the protocol then "
        "has to survive.  Only the journal's deliberate fsync durability "
        "path (and the tiny status/spec snapshots) are exempt."
    )

    def check_project(self, modules: Sequence[ParsedModule]) -> Iterator[Finding]:
        project = [
            m
            for m in modules
            if not m.is_test and not m.skipped and m.module.startswith("repro")
        ]
        if not any(in_runtime_scope(m.module) for m in project):
            return
        index = build_effects(project)
        paths = {m.module: m.path for m in project}
        for qualname in index.qualnames():
            fx = index.effects(qualname)
            if fx is None or not fx.is_async or not in_runtime_scope(fx.module):
                continue
            path = paths[fx.module]
            for line, name in sorted(set(fx.blocking_calls)):
                if name == "time.sleep":
                    continue  # asyncio-hygiene owns the lexical case
                if _sanctioned(qualname):
                    continue
                yield Finding(
                    path=path,
                    line=line,
                    col=1,
                    rule=self.id,
                    message=(
                        f"blocking {name}() inside async {qualname} stalls "
                        "the shared event loop; offload it, make the path "
                        "async, or sanction it with a pragma"
                    ),
                    severity=self.severity,
                )
            for owner, name in sorted(index.blocking_reached(qualname)):
                if owner == qualname or _sanctioned(owner):
                    continue
                chain = _call_path(index.graph, qualname, owner)
                if chain is None:
                    continue
                # Report at the closest async frame only: if any hop on
                # the way down (the leaf included) is itself async, the
                # finding belongs there, not here.
                if any(
                    getattr(index.effects(hop), "is_async", False)
                    for hop in chain[1:]
                ):
                    continue
                line = _first_edge_line(index.graph, qualname, chain[1])
                yield Finding(
                    path=path,
                    line=line or fx.lineno,
                    col=1,
                    rule=self.id,
                    message=(
                        f"async {qualname} reaches blocking {name}() in "
                        f"{owner} via {' -> '.join(chain)}; offload the "
                        "blocking step or sanction the leaf"
                    ),
                    severity=self.severity,
                )


def _call_path(graph, start: str, goal: str) -> Optional[List[str]]:
    """Shortest call-graph path from ``start`` to ``goal`` (inclusive)."""
    if start == goal:
        return [start]
    previous: Dict[str, Optional[str]] = {start: None}
    frontier = [start]
    while frontier:
        next_frontier: List[str] = []
        for current in frontier:
            node = graph.functions.get(current)
            if node is None:
                continue
            for callee in sorted(node.calls):
                if callee in previous:
                    continue
                previous[callee] = current
                if callee == goal:
                    path = [callee]
                    step: Optional[str] = current
                    while step is not None:
                        path.append(step)
                        step = previous[step]
                    return list(reversed(path))
                next_frontier.append(callee)
        frontier = next_frontier
    return None


def _first_edge_line(graph, caller: str, callee: str) -> Optional[int]:
    """Line of the first call site in ``caller`` that targets ``callee``."""
    node = graph.functions.get(caller)
    if node is None:
        return None
    lines = [
        line
        for (line, _col), target in node.call_targets.items()
        if target == callee
    ]
    return min(lines) if lines else None
