"""Byzantine taint: message data must be verified before touching safety state.

Every parameter of an ``on_message`` / ``handle_*`` entry point in
``repro.core`` is attacker-controlled until a ``verify_*`` check (or a
``may_vote_*`` safety gate) has vouched for it.  This rule runs the
field-level interprocedural dataflow in :mod:`repro.lint.flow.taint` and
flags any path on which an unsanitized message field reaches a write to
``r_vote`` / ``rank_lock`` / ``qc_high`` / ``_fallback_votes``, a
vote/lock-mutating safety call, or a ledger commit — the exact flow shape
that breaks Lemmas 4-5 and Theorem 8 if a verification gate goes missing
in a refactor.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, Sequence

from repro.lint.engine import Finding, ParsedModule, ProjectRule, register_rule
from repro.lint.flow import TaintEngine, build_call_graph
from repro.lint.rules.safety_state import SAFETY_FIELDS

#: Modules whose handler entry points are treated as taint sources.
SOURCE_MODULE_PREFIX = "repro.core"


def handler_sources(graph) -> FrozenSet[str]:
    """Qualnames of the message-handler entry points (taint sources)."""
    return frozenset(
        qualname
        for qualname, node in graph.functions.items()
        if node.module.startswith(SOURCE_MODULE_PREFIX)
        and (node.name == "on_message" or node.name.startswith("handle_"))
    )


@register_rule
class ByzantineTaintRule(ProjectRule):
    """Unsanitized message data reaching safety state or the ledger."""

    id = "byzantine-taint"
    description = (
        "message-handler input must pass a verify_*/may_vote_* gate before "
        "reaching r_vote/rank_lock/qc_high/_fallback_votes or a commit"
    )
    rationale = (
        "A Byzantine peer controls every field of every message; Lemmas 4-5 "
        "and Theorem 8 hold only for certificates the validation layer has "
        "accepted.  One handler writing unverified input into the vote/lock "
        "state is enough to let two conflicting blocks gather quorums."
    )

    def check_project(self, modules: Sequence[ParsedModule]) -> Iterator[Finding]:
        project = [
            module
            for module in modules
            if not module.is_test and module.module.startswith("repro")
        ]
        if not project:
            return
        by_module: Dict[str, ParsedModule] = {m.module: m for m in project}
        graph = build_call_graph(project)
        sources = handler_sources(graph)
        engine = TaintEngine(graph, frozenset(SAFETY_FIELDS), sources)
        for qualname in sorted(sources):
            handler = graph.functions[qualname]
            module = by_module.get(handler.module)
            if module is None:
                continue
            summary = engine.summary(qualname)
            for param in sorted(summary.param_sinks):
                for hit in summary.param_sinks[param]:
                    origins = ", ".join(sorted(hit.origins))
                    via = (
                        " via " + " -> ".join(hit.via)
                        if hit.via
                        else ""
                    )
                    yield Finding(
                        path=module.path,
                        line=hit.line,
                        col=hit.col + 1,
                        rule=self.id,
                        message=(
                            f"{handler.name}: unverified handler input "
                            f"({origins}) reaches {hit.sink}{via}; route it "
                            "through a verify_*/may_vote_* gate first"
                        ),
                        severity=self.severity,
                    )
