"""Hot-path discipline: event-engine and value-object classes stay lean.

``sim/events.py`` allocates one object per scheduled event — millions per
benchmark run — and every message/certificate/block in ``types/`` is
hashed, compared and shipped constantly.  A stray ``__dict__`` per event
costs measurable events/sec (PR 2's slim-engine speedup depends on it),
and a mutable value object invites aliasing bugs the protocol proofs never
contemplated.

``core/quorum.py`` holds the incremental quorum trackers and per-view
fallback state: one tracker per in-flight (round, view, block) at every
replica, so at n=64+ they are allocated and probed on every message — the
same discipline applies.

``traffic/`` sits on the request path: envelopes see every arrival,
admission control fronts every submission, and the batch controller runs
per proposal — so its controller/state classes carry the same __slots__
discipline.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.astutil import (
    class_defines_slots,
    dataclass_decorator,
    dataclass_is_frozen,
)
from repro.lint.engine import Finding, ParsedModule, Rule, register_rule

#: Modules where every class must be slotted or a frozen dataclass.
HOT_PATH_MODULES = ("repro.sim.events", "repro.core.quorum")
#: Module prefixes under the same discipline (every submodule).
HOT_PATH_PREFIXES = ("repro.types", "repro.traffic")
VALUE_OBJECT_PREFIX = "repro.types"

#: Base-class names that exempt a class (interfaces and exceptions carry
#: no per-instance hot-path state).
_EXEMPT_BASES = frozenset(
    {"Protocol", "Exception", "ValueError", "RuntimeError", "TypeError"}
)


@register_rule
class HotPathRule(Rule):
    """sim/events.py classes need __slots__; types/ dataclasses are frozen."""

    id = "hot-path"
    description = (
        "classes in sim/events.py, core/quorum.py and repro.traffic define "
        "__slots__; dataclasses under types/ and traffic/ are frozen "
        "(plain classes there need __slots__)"
    )
    rationale = (
        "The event queue allocates per simulated event, types/ objects "
        "are the protocol's value vocabulary, and traffic/ runs on the "
        "request path: __slots__ keeps those hot paths allocation-light, "
        "and frozen dataclasses make message/certificate immutability "
        "structural rather than conventional."
    )

    def applies_to(self, module: ParsedModule) -> bool:
        if module.is_test:
            return False
        if module.module in HOT_PATH_MODULES:
            return True
        return any(
            module.module == prefix or module.module.startswith(prefix + ".")
            for prefix in HOT_PATH_PREFIXES
        )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            base_names = {
                base.id for base in node.bases if isinstance(base, ast.Name)
            }
            if base_names & _EXEMPT_BASES:
                continue
            decorator = dataclass_decorator(node)
            if decorator is not None:
                if not dataclass_is_frozen(decorator):
                    yield self.finding(
                        module,
                        node,
                        f"dataclass {node.name} is mutable; value objects "
                        "here must be @dataclass(frozen=True)",
                    )
            elif not class_defines_slots(node):
                yield self.finding(
                    module,
                    node,
                    f"class {node.name} has no __slots__; hot-path classes "
                    "in this module must not carry a per-instance __dict__",
                )
