"""Crash-consistency rules: the write-ahead discipline, verified.

Four rules consume the persistence summaries in
:mod:`repro.lint.flow.persistence` (and a little direct AST inspection)
to prove the contract the recovery lemmas assume:

- ``persist-before-send`` — on every handler path of a journaled
  replica class, a safety-state mutation must reach the journal before
  any externally visible send.  A vote that leaves the box before its
  journal record lands is the equivocation-after-crash window: SIGKILL
  in between, restart, and the replica can vote differently for the
  same round.
- ``journal-coverage`` — the snapshot dataclass, the dict codec
  (``snapshot_to_dict`` / ``snapshot_from_dict``), and the replica's
  ``_persist`` / ``_restore`` must agree field-for-field, and every
  safety-state field owned by the durable restore path must be covered.
  A field persisted-but-never-restored (or vice versa) is state the
  recovery argument silently loses.
- ``atomic-replace`` — file writes in the storage and runtime layers
  must be append-mode (self-validating CRC-framed logs) or staged as
  tmp-write → fsync → ``os.replace``; anything else can leave a
  half-written file a reader will trust.
- ``monotonic-restore`` — restored snapshot values may only flow into
  adopt/max-merge sinks, never plain assignment that could regress
  ``rank_lock`` or ``r_vote`` below what a previous incarnation already
  acted on.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.engine import (
    Finding,
    ParsedModule,
    ProjectRule,
    Rule,
    register_rule,
)
from repro.lint.flow.callgraph import _attribute_chain, build_call_graph
from repro.lint.flow.persistence import PersistenceIndex, build_persistence
from repro.lint.rules.safety_state import SAFETY_FIELDS

#: Handler roots whose linearized streams the write-ahead rule checks.
HANDLER_ROOTS = ("deliver", "on_timer", "on_start", "recover")

#: Snapshot fields that persist each durable-owned safety-state field.
OWNED_SNAPSHOT_FIELDS: Dict[str, Tuple[str, ...]] = {
    "r_vote": ("r_vote",),
    "rank_lock": ("rank_lock",),
    "_fallback_votes": ("fallback_view", "fallback_r_vote", "fallback_h_vote"),
}

#: The module that owns the durable restore path (per the ownership map).
RESTORE_OWNER_MODULE = "repro.storage.durable"

#: Snapshot fields whose restore must be an adopt/max-merge, never a
#: plain assignment (they are monotone over a replica's lifetime).
MONOTONE_FIELDS = frozenset(
    {"r_vote", "rank_lock", "v_cur", "fallbacks_entered", "entered_view"}
)


def _project_modules(modules: Sequence[ParsedModule]) -> List[ParsedModule]:
    return [
        module
        for module in modules
        if not module.is_test and module.module.startswith("repro")
    ]


@register_rule
class PersistBeforeSendRule(ProjectRule):
    """A journaled replica must persist safety mutations before sending."""

    id = "persist-before-send"
    description = (
        "on journaled replica classes, every handler path must reach the "
        "safety journal before any network send that follows a "
        "safety-state mutation"
    )
    rationale = (
        "The recovery lemmas assume (sent => persisted): a vote that is "
        "externally visible before its journal record lands lets a "
        "SIGKILL between the send and the write produce a restarted "
        "replica that equivocates — two conflicting quorums, Lemma 4/5 "
        "broken.  Defer sends (outbox) and flush after the journal write."
    )

    def check_project(self, modules: Sequence[ParsedModule]) -> Iterator[Finding]:
        project = _project_modules(modules)
        if not project:
            return
        by_module = {module.module: module for module in project}
        index = build_persistence(project)
        graph = index.graph
        reported: Set[str] = set()
        for class_qual in sorted(graph.classes):
            streams: Dict[str, Tuple[str, list]] = {}
            durable = False
            for root in HANDLER_ROOTS:
                fn_qual = graph.resolve_method(class_qual, root)
                if fn_qual is None:
                    continue
                stream = index.linearize(fn_qual, dyn_class=class_qual)
                streams[root] = (fn_qual, stream)
                durable = durable or any(e.kind == "journal" for e in stream)
            if not durable:
                continue  # not a journaled class; nothing to order against
            for root in HANDLER_ROOTS:
                if root not in streams:
                    continue
                fn_qual, stream = streams[root]
                if fn_qual in reported:
                    continue
                violation = self._first_violation(stream)
                if violation is None:
                    continue
                reported.add(fn_qual)
                fields, send_event = violation
                handler = graph.functions[fn_qual]
                module = by_module.get(handler.module)
                if module is None:
                    continue
                via = " -> ".join(send_event.via) if send_event.via else ""
                yield Finding(
                    path=module.path,
                    line=handler.lineno,
                    col=1,
                    rule=self.id,
                    message=(
                        f"{class_qual.rsplit('.', 1)[-1]}.{root}: mutates "
                        f"safety state ({', '.join(fields)}) and reaches "
                        f"{send_event.detail} (line {send_event.line}"
                        + (f", via {via}" if via else "")
                        + ") before any journal write; defer the send until "
                        "after _persist (persist-then-flush outbox)"
                    ),
                    severity=self.severity,
                )

    @staticmethod
    def _first_violation(stream) -> Optional[Tuple[List[str], object]]:
        pending: Set[str] = set()
        for event in stream:
            if event.kind == "mutate":
                pending.add(event.detail)
            elif event.kind == "journal":
                pending.clear()
            elif event.kind == "send" and pending:
                return sorted(pending), event
        return None


@register_rule
class JournalCoverageRule(ProjectRule):
    """Snapshot codec, persist and restore must agree field-for-field."""

    id = "journal-coverage"
    description = (
        "SafetySnapshot fields, snapshot_to_dict/snapshot_from_dict keys, "
        "and _persist/_restore field sets must be the same set; "
        "durable-owned safety fields must be covered"
    )
    rationale = (
        "A field persisted but never restored is safety state the "
        "recovery path silently zeroes (r_vote regression => double "
        "vote); one restored but never persisted reads garbage.  The "
        "recovery lemmas quantify over *all* journaled state, so the "
        "three layers must enumerate the same fields."
    )

    def check_project(self, modules: Sequence[ParsedModule]) -> Iterator[Finding]:
        project = _project_modules(modules)
        subjects = _CoverageSubjects.collect(project)
        if subjects.snapshot_fields is None:
            return  # no snapshot dataclass in this tree; rule is inert
        fields = subjects.snapshot_fields
        checks = [
            (subjects.to_dict, "snapshot_to_dict", "serializes"),
            (subjects.from_dict, "snapshot_from_dict", "rebuilds"),
            (subjects.persist, "_persist", "persists"),
            (subjects.restore, "_restore", "restores"),
        ]
        for found, name, verb in checks:
            if found is None:
                continue
            module, node, seen = found
            missing = sorted(fields - seen)
            extra = sorted(seen - fields)
            if missing:
                yield self._finding(
                    module,
                    node,
                    f"{name} never {verb} snapshot field(s) "
                    f"{', '.join(missing)}; a crash forgets them",
                )
            if extra:
                yield self._finding(
                    module,
                    node,
                    f"{name} handles field(s) {', '.join(extra)} that "
                    "SafetySnapshot does not declare",
                )
        # Ownership coverage: every safety field the durable restore path
        # owns must round-trip through persist and restore.
        owned = sorted(
            field
            for field, owners in SAFETY_FIELDS.items()
            if RESTORE_OWNER_MODULE in owners
        )
        for found, name in (
            (subjects.persist, "_persist"),
            (subjects.restore, "_restore"),
        ):
            if found is None:
                continue
            module, node, seen = found
            for field in owned:
                snapshot_fields = OWNED_SNAPSHOT_FIELDS.get(field, (field,))
                uncovered = sorted(set(snapshot_fields) - seen)
                if uncovered:
                    yield self._finding(
                        module,
                        node,
                        f"{name} does not cover safety-state field "
                        f"{field} (snapshot field(s) "
                        f"{', '.join(uncovered)}); the ownership map says "
                        "the durable path must round-trip it",
                    )

    def _finding(self, module: ParsedModule, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.id,
            message=message,
            severity=self.severity,
        )


class _CoverageSubjects:
    """Located snapshot codec and persist/restore subjects + field sets."""

    def __init__(self) -> None:
        self.snapshot_fields: Optional[FrozenSet[str]] = None
        #: (module, def node, field-name set) per located subject.
        self.to_dict: Optional[Tuple[ParsedModule, ast.AST, Set[str]]] = None
        self.from_dict: Optional[Tuple[ParsedModule, ast.AST, Set[str]]] = None
        self.persist: Optional[Tuple[ParsedModule, ast.AST, Set[str]]] = None
        self.restore: Optional[Tuple[ParsedModule, ast.AST, Set[str]]] = None

    @classmethod
    def collect(cls, project: Sequence[ParsedModule]) -> "_CoverageSubjects":
        subjects = cls()
        for module in project:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef) and node.name == "SafetySnapshot":
                    subjects.snapshot_fields = frozenset(
                        item.target.id
                        for item in node.body
                        if isinstance(item, ast.AnnAssign)
                        and isinstance(item.target, ast.Name)
                    )
                elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if node.name == "snapshot_to_dict":
                        subjects.to_dict = (module, node, cls._dict_keys(node))
                    elif node.name == "snapshot_from_dict":
                        subjects.from_dict = (
                            module,
                            node,
                            cls._constructor_kwargs(node),
                        )
                    elif node.name == "_persist":
                        subjects.persist = (
                            module,
                            node,
                            cls._constructor_kwargs(node)
                            | cls._snapshot_stores(node),
                        )
                    elif node.name == "_restore":
                        subjects.restore = (module, node, cls._snapshot_reads(node))
        return subjects

    @staticmethod
    def _dict_keys(node: ast.AST) -> Set[str]:
        keys: Set[str] = set()
        for item in ast.walk(node):
            if isinstance(item, ast.Dict):
                keys.update(
                    key.value
                    for key in item.keys
                    if isinstance(key, ast.Constant) and isinstance(key.value, str)
                )
        return keys

    @staticmethod
    def _constructor_kwargs(node: ast.AST) -> Set[str]:
        kwargs: Set[str] = set()
        for item in ast.walk(node):
            if not isinstance(item, ast.Call):
                continue
            chain = _attribute_chain(item.func)
            if chain and chain[-1] == "SafetySnapshot":
                kwargs.update(
                    keyword.arg
                    for keyword in item.keywords
                    if keyword.arg is not None
                )
        return kwargs

    @staticmethod
    def _snapshot_stores(node: ast.AST) -> Set[str]:
        stores: Set[str] = set()
        for item in ast.walk(node):
            if (
                isinstance(item, ast.Attribute)
                and isinstance(item.ctx, ast.Store)
                and isinstance(item.value, ast.Name)
                and item.value.id == "snapshot"
            ):
                stores.add(item.attr)
        return stores

    @staticmethod
    def _snapshot_reads(node: ast.AST) -> Set[str]:
        reads: Set[str] = set()
        for item in ast.walk(node):
            if (
                isinstance(item, ast.Attribute)
                and isinstance(item.ctx, ast.Load)
                and isinstance(item.value, ast.Name)
                and item.value.id == "snapshot"
            ):
                reads.add(item.attr)
        return reads


@register_rule
class AtomicReplaceRule(Rule):
    """Storage/runtime file writes: append-mode or tmp -> fsync -> replace."""

    id = "atomic-replace"
    description = (
        "file writes under storage/ and runtime/ must be append-mode or "
        "staged tmp-write -> fsync -> os.replace"
    )
    rationale = (
        "A status/spec/journal file a crashed writer left half-written is "
        "read back by the supervisor or the next incarnation; append-mode "
        "CRC-framed logs self-validate their tail, and tmp+fsync+replace "
        "is atomic on POSIX — anything else turns kill -9 into corrupted "
        "recovery input."
    )

    _SCOPES = ("repro.storage", "repro.runtime")

    def applies_to(self, module: ParsedModule) -> bool:
        return not module.is_test and any(
            module.module == scope or module.module.startswith(scope + ".")
            for scope in self._SCOPES
        )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        index = _FileIdiomIndex([module])
        for qualname in sorted(index.functions):
            events = index.functions[qualname]
            writes = [e for e in events if e.kind == "open_write"]
            if not writes:
                continue
            has_fsync = any(e.kind == "fsync" for e in events)
            has_replace = any(e.kind == "replace" for e in events)
            for write in writes:
                mode, _, target_kind = write.detail.partition("@")
                if mode.startswith("a"):
                    continue  # append-mode logs self-validate their tail
                if target_kind == "tmp":
                    missing = []
                    if not has_fsync:
                        missing.append("fsync")
                    if not has_replace:
                        missing.append("os.replace")
                    if missing:
                        yield Finding(
                            path=module.path,
                            line=write.line,
                            col=write.col + 1,
                            rule=self.id,
                            message=(
                                f"tmp-file write ({mode}) is missing "
                                f"{' and '.join(missing)} before it can be "
                                "atomically published"
                            ),
                            severity=self.severity,
                        )
                else:
                    yield Finding(
                        path=module.path,
                        line=write.line,
                        col=write.col + 1,
                        rule=self.id,
                        message=(
                            f"non-atomic file write ({mode}): a crash "
                            "mid-write leaves a torn file; stage it as "
                            "tmp-write -> fsync -> os.replace (or use an "
                            "append-mode framed log)"
                        ),
                        severity=self.severity,
                    )


class _FileIdiomIndex:
    """Per-function file-idiom event streams for one module."""

    def __init__(self, modules: Sequence[ParsedModule]) -> None:
        index = PersistenceIndex(build_call_graph(list(modules)), modules)
        self.functions: Dict[str, list] = {}
        for qualname in index.qualnames():
            fp = index.persistence(qualname)
            if fp is None:
                continue
            self.functions[qualname] = [
                event
                for event in fp.stream
                if event.kind in {"open_write", "fsync", "replace"}
            ]


@register_rule
class MonotonicRestoreRule(Rule):
    """Restored snapshot values must flow through adopt/max-merge sinks."""

    id = "monotonic-restore"
    description = (
        "restore paths may not plain-assign monotone snapshot fields "
        "(r_vote/rank_lock/v_cur/...); merge with max() or an adopt API"
    )
    rationale = (
        "r_vote and rank_lock only ever grow while a replica lives; a "
        "restore that plain-assigns them can regress the state below "
        "votes the previous incarnation already sent (a stale snapshot, "
        "a double restore), which is exactly the Lemma 4/5 violation the "
        "journal exists to prevent.  max-merge is a no-op on the normal "
        "fresh-state restore and a safety net everywhere else."
    )

    def applies_to(self, module: ParsedModule) -> bool:
        return not module.is_test and module.module.startswith("repro.storage")

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for func in ast.walk(module.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            snapshot_params = {
                arg.arg
                for arg in list(func.args.args) + list(func.args.kwonlyargs)
                if arg.arg == "snapshot"
                or self._is_snapshot_annotation(arg.annotation)
            }
            if not snapshot_params:
                continue
            for stmt in ast.walk(func):
                if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1):
                    continue
                target = stmt.targets[0]
                if (
                    not isinstance(target, ast.Attribute)
                    or target.attr not in MONOTONE_FIELDS
                ):
                    continue
                chain = _attribute_chain(stmt.value)
                if chain is None or chain[0] not in snapshot_params:
                    continue
                yield self.finding(
                    module,
                    stmt,
                    f"plain assignment restores monotone field "
                    f".{target.attr} from {'.'.join(chain)}; use "
                    "max(current, restored) or an adopt API so a restore "
                    "can never regress it",
                )

    @staticmethod
    def _is_snapshot_annotation(annotation: Optional[ast.AST]) -> bool:
        if annotation is None:
            return False
        text = ast.dump(annotation)
        return "SafetySnapshot" in text
