"""Bounded queues only: backpressure is a correctness feature here.

The transport's send queues are the live runtime's backpressure
mechanism — when a peer stalls, producers must feel it (``QueueFull``
shed accounting) instead of buffering without limit until the process
OOMs mid-fallback, which the rest of the cluster observes as a crash.
Three shapes defeat that:

- ``asyncio.Queue()`` (or Lifo/Priority variants) with no ``maxsize``,
- ``collections.deque()`` with no ``maxlen`` in runtime modules,
- ``put_nowait(...)`` with no enclosing ``QueueFull`` handler — the one
  call shape whose overflow signal is an exception, not an await.

A deliberate unbounded buffer (rare, and it should be rare) carries a
per-line pragma with a comment saying why the producer can't outrun the
consumer.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Tuple

from repro.lint.astutil import import_map, resolve_call
from repro.lint.engine import Finding, ParsedModule, Rule, register_rule
from repro.lint.flow.callgraph import _attribute_chain
from repro.lint.rules.scopes import in_runtime_scope

_UNBOUNDED_QUEUES = {
    "asyncio.Queue": "maxsize",
    "asyncio.LifoQueue": "maxsize",
    "asyncio.PriorityQueue": "maxsize",
    "collections.deque": "maxlen",
    "queue.Queue": "maxsize",
    "queue.SimpleQueue": None,
}
_FULL_TAILS = ("QueueFull", "Full")


@register_rule
class UnboundedQueueRule(Rule):
    """Unbounded queues/deques and unhandled put_nowait overflow."""

    id = "unbounded-queue"
    description = (
        "asyncio.Queue/deque in runtime scopes need maxsize/maxlen, and "
        "put_nowait needs QueueFull handling"
    )
    rationale = (
        "Bounded send queues are how a stalled peer's backpressure "
        "reaches producers as measurable shed instead of unbounded "
        "buffering; an unbounded queue turns sustained asynchrony into "
        "memory growth and an eventual crash that looks Byzantine to "
        "the rest of the cluster."
    )

    def applies_to(self, module: ParsedModule) -> bool:
        return not module.is_test and in_runtime_scope(module.module)

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        imports = import_map(module.tree)
        handled = _queue_full_spans(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = resolve_call(imports, node.func) or ""
            if resolved in _UNBOUNDED_QUEUES:
                bound = _UNBOUNDED_QUEUES[resolved]
                if bound is None:
                    yield self.finding(
                        module,
                        node,
                        f"{resolved} cannot be bounded; use a bounded "
                        "queue so backpressure reaches producers",
                    )
                elif not _has_bound(node, resolved, bound):
                    yield self.finding(
                        module,
                        node,
                        f"{resolved}() without {bound}= is unbounded: a "
                        "stalled consumer grows it until OOM; size it "
                        f"(pass {bound}=) so producers see backpressure",
                    )
                continue
            chain = _attribute_chain(node.func)
            if chain and chain[-1] == "put_nowait":
                if not any(
                    first <= node.lineno <= last for first, last in handled
                ):
                    yield self.finding(
                        module,
                        node,
                        "put_nowait() outside a QueueFull handler: on a "
                        "full (bounded) queue this raises and the item "
                        "is silently dropped with the exception; catch "
                        "asyncio.QueueFull and account for the shed",
                    )


def _has_bound(node: ast.Call, resolved: str, bound: str) -> bool:
    """A positional or keyword capacity argument is present and not None."""
    position = 1 if resolved == "collections.deque" else 0
    if len(node.args) > position:
        return True
    for keyword in node.keywords:
        if keyword.arg == bound:
            return not (
                isinstance(keyword.value, ast.Constant)
                and keyword.value.value is None
            )
        if keyword.arg is None:
            return True  # **kwargs: assume the caller knows
    return False


def _queue_full_spans(tree: ast.Module) -> List[Tuple[int, int]]:
    """Body spans of try statements with a QueueFull/Full handler."""
    spans: List[Tuple[int, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Try) or not node.body:
            continue
        for handler in node.handlers:
            if _catches_queue_full(handler.type):
                first = node.body[0].lineno
                last = getattr(node.body[-1], "end_lineno", None) or node.body[
                    -1
                ].lineno
                spans.append((first, last))
                break
    return spans


def _catches_queue_full(node) -> bool:
    if node is None:
        return True  # bare except certainly catches QueueFull
    if isinstance(node, ast.Tuple):
        return any(_catches_queue_full(element) for element in node.elts)
    chain = _attribute_chain(node)
    return bool(chain) and chain[-1] in _FULL_TAILS
