"""First-class rule suite; importing this package registers every rule."""

from repro.lint.rules import (  # noqa: F401  (registration side effects)
    asyncio_hygiene,
    determinism,
    hot_path,
    safety_state,
    wire_coverage,
)
