"""First-class rule suite; importing this package registers every rule."""

from repro.lint.rules import (  # noqa: F401  (registration side effects)
    asyncio_hygiene,
    byzantine_taint,
    determinism,
    dispatch_exhaustive,
    hot_path,
    quorum_literal,
    safety_state,
    swallowed_exception,
    wire_coverage,
)
