"""First-class rule suite; importing this package registers every rule."""

from repro.lint.rules import (  # noqa: F401  (registration side effects)
    asyncio_hygiene,
    await_atomicity,
    blocking_in_async,
    byzantine_taint,
    cancellation_safety,
    crash_consistency,
    determinism,
    dispatch_exhaustive,
    hot_path,
    quorum_literal,
    safety_state,
    swallowed_exception,
    task_lifecycle,
    unbounded_queue,
    wire_coverage,
)
