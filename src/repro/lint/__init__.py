"""Protocol-aware static analysis (``python -m repro lint``).

The simulator's headline claims — byte-identical commit-trace fingerprints
across runs, safety of the steady state plus asynchronous fallback, and
modeled-vs-encoded wire-size parity — rest on invariants that are easy to
break with an innocent-looking edit: a wall-clock read in the simulator, a
message type the codec cannot ship, a lock update outside the safety
module.  This package checks those invariants statically, before a 10k-event
fingerprint diff has to find them at runtime.

See ``docs/STATIC_ANALYSIS.md`` for the rule catalogue and the
``# repro-lint: ignore[rule-id]`` pragma.
"""

from repro.lint.engine import (
    Finding,
    LintError,
    ParsedModule,
    ProjectRule,
    Rule,
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    all_rule_ids,
    collect_modules,
    get_rules,
    lint_modules,
    lint_tree,
    register_rule,
    render_json,
    render_text,
    rule_catalogue,
    should_fail,
    summarize,
)

# Importing the rules package registers every first-class rule.
import repro.lint.rules  # noqa: F401  (import side effect: registration)

__all__ = [
    "Finding",
    "LintError",
    "ParsedModule",
    "ProjectRule",
    "Rule",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "all_rule_ids",
    "collect_modules",
    "get_rules",
    "lint_modules",
    "lint_tree",
    "register_rule",
    "render_json",
    "render_text",
    "rule_catalogue",
    "should_fail",
    "summarize",
]
