"""Project call graph over the parsed lint modules.

The graph resolves, statically and without importing anything:

- **bare-name calls** to functions defined in the same module;
- **imported calls**, through module-level *and* function-local import
  aliases (``from repro.core.validation import verify_qc as vq; vq(...)``);
- **``self.method(...)``** through the enclosing class and its project
  base classes (``Replica(Process)`` resolves ``self.set_timer`` into
  :mod:`repro.sim.process`);
- **typed-attribute calls** — ``self.safety.update_lock(...)`` resolves
  through the inferred type of ``self.safety`` (from ``self.safety =
  SafetyRules(...)`` constructor assignments, annotated ``self.x:
  Optional[T]`` declarations, and parameter annotations, including string
  annotations under ``TYPE_CHECKING``);
- **constructor calls**, which edge to the class's ``__init__`` when it
  defines one (and to the class node otherwise).

Anything else lands in the per-function ``unresolved`` list with its raw
dotted chain, so the serialized graph says what the analysis could *not*
see — a dataflow result is only trustworthy alongside that list.

The graph serializes to JSON (:meth:`CallGraph.to_json`) with every
collection sorted, so two builds of the same tree are byte-identical and
per-PR graph diffs are reviewable (the CI lint job uploads the dump as an
artifact).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.engine import ParsedModule

__all__ = [
    "CallGraph",
    "ClassNode",
    "FunctionNode",
    "build_call_graph",
    "neighborhood_paths",
]


class FunctionNode:
    """One function or method definition in the project."""

    __slots__ = (
        "qualname",
        "module",
        "name",
        "class_name",
        "lineno",
        "params",
        "node",
        "calls",
        "call_targets",
        "unresolved",
    )

    def __init__(
        self,
        qualname: str,
        module: str,
        name: str,
        class_name: Optional[str],
        lineno: int,
        params: List[str],
        node: ast.AST,
    ) -> None:
        self.qualname = qualname
        self.module = module
        self.name = name
        #: Enclosing class qualname, or None for a module-level function.
        self.class_name = class_name
        self.lineno = lineno
        #: Positional parameter names, ``self`` excluded for methods.
        self.params = params
        self.node = node
        #: Resolved project-internal call targets (qualnames).
        self.calls: Set[str] = set()
        #: Per-call-site resolution, keyed by ``(lineno, col_offset)`` of
        #: the ``ast.Call`` node — the dataflow engine's lookup table.
        self.call_targets: Dict[Tuple[int, int], str] = {}
        #: Raw dotted chains the resolver could not map to a project def.
        self.unresolved: Set[str] = set()

    @property
    def is_method(self) -> bool:
        return self.class_name is not None

    def to_json(self) -> dict:
        return {
            "module": self.module,
            "class": self.class_name,
            "line": self.lineno,
            "params": list(self.params),
            "calls": sorted(self.calls),
            "unresolved": sorted(self.unresolved),
        }


class ClassNode:
    """One class definition: bases, methods, inferred attribute types."""

    __slots__ = ("qualname", "module", "name", "lineno", "bases", "methods", "attr_types")

    def __init__(self, qualname: str, module: str, name: str, lineno: int) -> None:
        self.qualname = qualname
        self.module = module
        self.name = name
        self.lineno = lineno
        #: Base-class qualnames resolved into the project (others dropped).
        self.bases: List[str] = []
        #: method name -> function qualname.
        self.methods: Dict[str, str] = {}
        #: ``self.<attr>`` name -> inferred class qualname.
        self.attr_types: Dict[str, str] = {}

    def to_json(self) -> dict:
        return {
            "module": self.module,
            "line": self.lineno,
            "bases": list(self.bases),
            "methods": dict(sorted(self.methods.items())),
            "attr_types": dict(sorted(self.attr_types.items())),
        }


class CallGraph:
    """Def/use-resolved call graph of the scanned project tree."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionNode] = {}
        self.classes: Dict[str, ClassNode] = {}

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------
    def function(self, qualname: str) -> Optional[FunctionNode]:
        return self.functions.get(qualname)

    def mro(self, class_qualname: str) -> List[str]:
        """The class plus its project bases, depth-first, cycle-safe."""
        order: List[str] = []
        stack = [class_qualname]
        seen: Set[str] = set()
        while stack:
            current = stack.pop(0)
            if current in seen or current not in self.classes:
                continue
            seen.add(current)
            order.append(current)
            stack.extend(self.classes[current].bases)
        return order

    def resolve_method(self, class_qualname: str, method: str) -> Optional[str]:
        """Resolve ``method`` on a class through its project bases."""
        for cls in self.mro(class_qualname):
            qual = self.classes[cls].methods.get(method)
            if qual is not None:
                return qual
        return None

    def attr_type(self, class_qualname: str, attr: str) -> Optional[str]:
        """Inferred type of ``self.<attr>``, searched through the bases."""
        for cls in self.mro(class_qualname):
            found = self.classes[cls].attr_types.get(attr)
            if found is not None:
                return found
        return None

    def callees(self, qualname: str) -> Set[str]:
        node = self.functions.get(qualname)
        return set(node.calls) if node is not None else set()

    def reachable_from(self, roots: Sequence[str]) -> Set[str]:
        """Every function qualname reachable from ``roots`` (inclusive)."""
        seen: Set[str] = set()
        stack = [root for root in roots if root in self.functions]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(
                callee
                for callee in self.functions[current].calls
                if callee not in seen and callee in self.functions
            )
        return seen

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_json(self, module_prefix: Optional[str] = None) -> dict:
        """JSON-ready dict; every collection sorted for byte-stability.

        ``module_prefix`` restricts the dump to functions/classes whose
        module matches (edges to the rest of the tree are kept, so a
        ``repro.core`` dump still names its calls into ``repro.ledger``).
        """

        def keep(module: str) -> bool:
            return module_prefix is None or (
                module == module_prefix or module.startswith(module_prefix + ".")
            )

        return {
            "version": 1,
            "functions": {
                qual: node.to_json()
                for qual, node in sorted(self.functions.items())
                if keep(node.module)
            },
            "classes": {
                qual: node.to_json()
                for qual, node in sorted(self.classes.items())
                if keep(node.module)
            },
        }


# ----------------------------------------------------------------------
# Import resolution
# ----------------------------------------------------------------------
def _module_imports(module: ParsedModule) -> Dict[str, str]:
    """Local name -> imported dotted path, everywhere in the module.

    Unlike :func:`repro.lint.astutil.import_map` this walks function
    bodies and ``TYPE_CHECKING`` blocks too: the replica imports its
    view-change engines inside ``__init__`` to break a module cycle, and
    those are exactly the types the resolver needs.  Relative imports are
    resolved against the module's own package.
    """
    mapping: Dict[str, str] = {}
    package_parts = module.module.split(".")
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                mapping[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                # ``from . import x`` / ``from ..pkg import x``.
                base_parts = package_parts[: len(package_parts) - node.level + 1]
                base = ".".join(base_parts + ([node.module] if node.module else []))
            else:
                base = node.module or ""
            if not base:
                continue
            for alias in node.names:
                mapping[alias.asname or alias.name] = f"{base}.{alias.name}"
    return mapping


def _annotation_class(node: Optional[ast.AST]) -> Optional[str]:
    """Extract a plain class name from an annotation expression.

    Unwraps ``Optional[T]`` / ``"T"`` string annotations; gives up on
    anything fancier (unions, generics over project types).
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Subscript):
        head = node.value
        head_name = head.attr if isinstance(head, ast.Attribute) else (
            head.id if isinstance(head, ast.Name) else None
        )
        if head_name == "Optional":
            return _annotation_class(node.slice)
        return None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        parts: List[str] = []
        current: ast.AST = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if isinstance(current, ast.Name):
            parts.append(current.id)
            return ".".join(reversed(parts))
    return None


def _attribute_chain(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` -> ``["a", "b", "c"]``; None for non-name-rooted chains."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


def _iter_defs(
    tree: ast.Module,
) -> Iterator[Tuple[Optional[ast.ClassDef], ast.AST]]:
    """Yield ``(enclosing_class, def)`` for top-level functions, classes,
    and methods (nested defs stay attached to their enclosing function)."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield None, node
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield node, item


# ----------------------------------------------------------------------
# Building
# ----------------------------------------------------------------------
class _ModuleContext:
    """Per-module resolution state shared by the two build passes."""

    __slots__ = ("module", "imports", "local_defs")

    def __init__(self, module: ParsedModule) -> None:
        self.module = module
        self.imports = _module_imports(module)
        #: name defined at module level -> qualname.
        self.local_defs: Dict[str, str] = {}


def build_call_graph(modules: Sequence[ParsedModule]) -> CallGraph:
    """Build the project call graph from parsed (non-test) modules."""
    graph = CallGraph()
    contexts: List[_ModuleContext] = []

    # Pass 1: declare every function, method, and class.
    for module in modules:
        if module.is_test or module.skipped:
            continue
        context = _ModuleContext(module)
        contexts.append(context)
        for class_def, func in _iter_defs(module.tree):
            if class_def is None:
                qual = f"{module.module}.{func.name}"
                context.local_defs.setdefault(func.name, qual)
                graph.functions[qual] = FunctionNode(
                    qual, module.module, func.name, None, func.lineno,
                    [a.arg for a in func.args.args], func,
                )
            else:
                class_qual = f"{module.module}.{class_def.name}"
                if class_qual not in graph.classes:
                    graph.classes[class_qual] = ClassNode(
                        class_qual, module.module, class_def.name, class_def.lineno
                    )
                    context.local_defs.setdefault(class_def.name, class_qual)
                qual = f"{class_qual}.{func.name}"
                params = [a.arg for a in func.args.args]
                if params and params[0] == "self":
                    params = params[1:]
                graph.functions[qual] = FunctionNode(
                    qual, module.module, func.name, class_qual, func.lineno,
                    params, func,
                )
                graph.classes[class_qual].methods[func.name] = qual
        # Classes with no methods still need declaring (marker classes).
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef):
                class_qual = f"{module.module}.{node.name}"
                if class_qual not in graph.classes:
                    graph.classes[class_qual] = ClassNode(
                        class_qual, module.module, node.name, node.lineno
                    )
                context.local_defs.setdefault(node.name, class_qual)

    # Pass 2a: resolve base classes (needs every class declared).
    for context in contexts:
        for node in context.module.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            class_node = graph.classes[f"{context.module.module}.{node.name}"]
            for base in node.bases:
                base_qual = _resolve_name(graph, context, base)
                if base_qual is not None and base_qual in graph.classes:
                    class_node.bases.append(base_qual)

    # Pass 2b: infer attribute types, then resolve call edges (attribute
    # types feed typed-attribute call resolution, so they go first).
    for context in contexts:
        for class_def, func in _iter_defs(context.module.tree):
            if class_def is not None:
                _infer_attr_types(graph, context, class_def, func)
    for context in contexts:
        for class_def, func in _iter_defs(context.module.tree):
            qual = (
                f"{context.module.module}.{func.name}"
                if class_def is None
                else f"{context.module.module}.{class_def.name}.{func.name}"
            )
            _resolve_calls(graph, context, graph.functions[qual], func)
    return graph


def neighborhood_paths(
    modules: Sequence[ParsedModule], changed_paths: Iterable[str]
) -> Set[str]:
    """Expand changed file paths to their call-graph neighborhood.

    Interprocedural rules (taint, effects, persistence) can produce a
    finding in file A because of an edit in file B; a path filter built
    from ``git diff`` alone would silently drop it.  This returns the
    changed set plus every file containing a direct caller or callee of
    a function defined in a changed file, so ``repro lint --changed``
    re-reports those cross-file findings.
    """
    project = [
        m
        for m in modules
        if not m.is_test and not m.skipped and m.module.startswith("repro")
    ]
    graph = build_call_graph(project)
    path_of = {m.module: m.path for m in project}
    changed = set(changed_paths)
    out = set(changed)
    for node in graph.functions.values():
        caller_path = path_of.get(node.module)
        if caller_path is None:
            continue
        for callee in node.calls:
            callee_node = graph.functions.get(callee)
            callee_path = (
                path_of.get(callee_node.module) if callee_node is not None else None
            )
            if callee_path is None:
                continue
            if caller_path in changed:
                out.add(callee_path)
            if callee_path in changed:
                out.add(caller_path)
    return out


def _resolve_name(
    graph: CallGraph, context: _ModuleContext, node: ast.AST
) -> Optional[str]:
    """Resolve a Name/Attribute expression to a project qualname."""
    chain = _attribute_chain(node)
    if chain is None:
        return None
    head, rest = chain[0], chain[1:]
    candidates = []
    if head in context.local_defs:
        candidates.append(context.local_defs[head])
    if head in context.imports:
        candidates.append(context.imports[head])
    candidates.append(head)  # a plain module reference (``repro.x.y``)
    for candidate in candidates:
        dotted = ".".join([candidate] + rest)
        if dotted in graph.classes or dotted in graph.functions:
            return dotted
    return None


def _param_types(
    graph: CallGraph, context: _ModuleContext, func: ast.AST
) -> Dict[str, str]:
    """Parameter name -> project class qualname, from annotations."""
    types: Dict[str, str] = {}
    for arg in list(func.args.args) + list(func.args.kwonlyargs):
        name = _annotation_class(arg.annotation)
        if name is None:
            continue
        qual = _lookup_class(graph, context, name)
        if qual is not None:
            types[arg.arg] = qual
    return types


def _lookup_class(
    graph: CallGraph, context: _ModuleContext, name: str
) -> Optional[str]:
    """Resolve a (possibly dotted) class name through the import map."""
    head, _, rest = name.partition(".")
    for candidate in (
        context.local_defs.get(head),
        context.imports.get(head),
        head,
    ):
        if candidate is None:
            continue
        dotted = f"{candidate}.{rest}" if rest else candidate
        if dotted in graph.classes:
            return dotted
    return None


def _infer_attr_types(
    graph: CallGraph,
    context: _ModuleContext,
    class_def: ast.ClassDef,
    func: ast.AST,
) -> None:
    """Record ``self.<attr>`` types visible in one method."""
    class_node = graph.classes[f"{context.module.module}.{class_def.name}"]
    param_types = _param_types(graph, context, func)
    for node in ast.walk(func):
        target: Optional[ast.AST] = None
        value: Optional[ast.AST] = None
        annotation: Optional[ast.AST] = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign):
            target, value, annotation = node.target, node.value, node.annotation
        if (
            not isinstance(target, ast.Attribute)
            or not isinstance(target.value, ast.Name)
            or target.value.id != "self"
        ):
            continue
        attr = target.attr
        # ``x if cond else Cls()`` defaults: either branch may carry the
        # type (``self.journal = journal if journal is not None else
        # SafetyJournal()``); take the first branch that infers.
        candidates: List[Optional[ast.AST]] = (
            [value.body, value.orelse] if isinstance(value, ast.IfExp) else [value]
        )
        inferred: Optional[str] = None
        if annotation is not None:
            name = _annotation_class(annotation)
            if name is not None:
                inferred = _lookup_class(graph, context, name)
        for value in candidates:
            if inferred is not None:
                break
            if isinstance(value, ast.Call):
                inferred = _resolve_name(graph, context, value.func)
                if inferred is not None and inferred not in graph.classes:
                    inferred = None
            elif isinstance(value, ast.Name):
                inferred = param_types.get(value.id)
            elif isinstance(value, ast.Attribute):
                # ``self.crypto = replica.crypto``: chase one typed hop.
                chain = _attribute_chain(value)
                if chain is not None and len(chain) == 2:
                    owner = param_types.get(chain[0])
                    if owner is not None:
                        inferred = graph.attr_type(owner, chain[1])
        if inferred is not None:
            class_node.attr_types.setdefault(attr, inferred)


def _constructor_target(graph: CallGraph, class_qual: str) -> str:
    """Edge target for a constructor call: ``__init__`` when defined."""
    init = graph.resolve_method(class_qual, "__init__")
    return init if init is not None else class_qual


def _resolve_calls(
    graph: CallGraph,
    context: _ModuleContext,
    node: FunctionNode,
    func: ast.AST,
) -> None:
    param_types = _param_types(graph, context, func)
    #: local variable -> class qualname (``engine = FallbackEngine(...)``).
    local_types: Dict[str, str] = dict(param_types)
    for stmt in ast.walk(func):
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and isinstance(stmt.value, ast.Call)
        ):
            constructed = _resolve_name(graph, context, stmt.value.func)
            if constructed is not None and constructed in graph.classes:
                local_types[stmt.targets[0].id] = constructed

    for call in ast.walk(func):
        if not isinstance(call, ast.Call):
            continue
        target = _resolve_call_target(graph, context, node, call.func, local_types)
        if target is not None:
            node.calls.add(target)
            node.call_targets[(call.lineno, call.col_offset)] = target
        else:
            chain = _attribute_chain(call.func)
            if chain is not None:
                node.unresolved.add(".".join(chain))
            elif _super_attr(call.func) is not None:
                node.unresolved.add(f"super().{_super_attr(call.func)}")


def _super_attr(func: ast.AST) -> Optional[str]:
    """``super().m`` -> ``"m"``; None for anything else (incl. 2-arg super)."""
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Call)
        and isinstance(func.value.func, ast.Name)
        and func.value.func.id == "super"
        and not func.value.args
    ):
        return func.attr
    return None


def _resolve_call_target(
    graph: CallGraph,
    context: _ModuleContext,
    node: FunctionNode,
    func: ast.AST,
    local_types: Dict[str, str],
) -> Optional[str]:
    chain = _attribute_chain(func)
    if chain is None:
        # ``super().method(...)``: the MRO search starts *after* the
        # defining class, which is exactly Python's zero-arg super.
        method = _super_attr(func)
        if method is not None and node.class_name is not None:
            for cls in graph.mro(node.class_name)[1:]:
                qual = graph.classes[cls].methods.get(method)
                if qual is not None:
                    return qual
        return None
    head, rest = chain[0], chain[1:]

    # ``self.method(...)`` and ``self.attr.method(...)``.
    if head == "self" and node.class_name is not None:
        if len(rest) == 1:
            resolved = graph.resolve_method(node.class_name, rest[0])
            if resolved is not None:
                return resolved
            attr_cls = graph.attr_type(node.class_name, rest[0])
            if attr_cls is not None:  # ``self.factory(...)`` on a class attr
                return _constructor_target(graph, attr_cls)
        elif len(rest) == 2:
            attr_cls = graph.attr_type(node.class_name, rest[0])
            if attr_cls is not None:
                resolved = graph.resolve_method(attr_cls, rest[1])
                if resolved is not None:
                    return resolved
        return None

    # ``obj.method(...)`` with a typed parameter or local.
    if head in local_types and rest:
        owner: Optional[str] = local_types[head]
        for part in rest[:-1]:
            owner = graph.attr_type(owner, part) if owner is not None else None
        if owner is not None:
            resolved = graph.resolve_method(owner, rest[-1])
            if resolved is not None:
                return resolved
        return None

    # Bare or dotted names through local defs and the import map.
    resolved = _resolve_name(graph, context, func)
    if resolved is not None:
        if resolved in graph.classes:
            return _constructor_target(graph, resolved)
        return resolved
    return None
