"""Interprocedural persistence summaries: the write-ahead substrate.

The paper's safety argument survives crashes only if a replica never
contradicts a vote it already sent — which operationally means every
mutation of the journaled safety state (``r_vote`` / ``rank_lock`` /
``_fallback_votes`` / the proposal watermarks) must reach the safety
journal *before* any externally visible send.  This module computes, for
every function in the project call graph, an **evaluation-ordered stream
of persistence events**:

- ``mutate`` — a store into a tracked safety-state attribute (plain
  assignment, subscript store, augmented assignment, ``del``, or a
  mutator-method call like ``self._proposed.add(...)``);
- ``call`` — every call site, with its raw attribute chain and the
  statically resolved target, so the linearizer can *re-resolve* it
  against the dynamic class of the object actually running the handler;
- ``open_write`` / ``fsync`` / ``replace`` — the file-write idioms the
  atomic-replace discipline is made of (open-for-write / ``write_text``
  with a tmp-vs-plain target classification, ``os.fsync``,
  ``os.replace``).

On top of the per-function streams, :meth:`PersistenceIndex.linearize`
expands a handler root into one transitively inlined stream.  The
expansion is **dynamic-class aware** — the one property the write-ahead
rule cannot live without:

- ``self``-rooted calls keep the root's dynamic class, so
  ``super().deliver`` inside ``DurableReplica`` walks ``Replica``'s
  handler bodies *as a DurableReplica*;
- attribute hops resolve through the dynamic class's MRO, so
  ``self.network`` inside a steady-state handler resolves to the
  durable replica's deferred-send outbox, not the raw ``Network``;
- objects constructed as ``Engine(self)`` carry the constructor's
  dynamic class into their back-reference attributes, so an engine's
  ``self.replica.network.multicast(...)`` (and the common
  ``replica = self.replica`` local alias) resolves like the replica
  itself made the call.

Journal writes (``*Journal.write`` / ``*Journal.checkpoint``) and
network egress (``*Network.send`` / ``*Transport.multicast`` …) are
classified on the **re-resolved** target and emitted as ``journal`` /
``send`` events instead of being expanded, each carrying the frame
stack (``via``) that reached it.  The index serializes to JSON with
every collection in deterministic order, so two builds of the same tree
are byte-identical and the CI artifact (``repro lint --persistence``)
diffs cleanly per PR — golden-tested like ``effects_runtime.json``.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.lint.engine import ParsedModule
from repro.lint.flow.callgraph import (
    CallGraph,
    FunctionNode,
    _attribute_chain,
    _module_imports,
    _super_attr,
    build_call_graph,
)

__all__ = [
    "EGRESS_CHAIN_HINTS",
    "EGRESS_CLASS_SUFFIXES",
    "EGRESS_METHODS",
    "JOURNAL_CLASS_SUFFIX",
    "JOURNAL_METHODS",
    "MUTATOR_TAILS",
    "PersistenceEvent",
    "FunctionPersistence",
    "PersistenceIndex",
    "build_persistence",
    "tracked_safety_fields",
]

#: Journal operations: matched on the re-resolved method name when the
#: receiving class ends with this suffix (SafetyJournal, FileSafetyJournal).
JOURNAL_CLASS_SUFFIX = "Journal"
JOURNAL_METHODS = frozenset({"write", "checkpoint"})

#: Network egress: matched on the re-resolved method name when the
#: receiving class ends with one of these suffixes (Network,
#: ReliableNetwork, ProcessNetwork, TcpTransport, ...).
EGRESS_CLASS_SUFFIXES = ("Network", "Transport")
EGRESS_METHODS = frozenset({"send", "multicast", "enqueue"})

#: Fallback for chains the resolver cannot type: a ``send``/``multicast``
#: tail reached through something that *names* a transport is treated as
#: egress rather than silently dropped.
EGRESS_CHAIN_HINTS = ("network", "transport", "channel")

#: In-place mutator tails that count as writes to a tracked container
#: (``self._proposed.add(key)``).
MUTATOR_TAILS = frozenset(
    {"add", "append", "clear", "discard", "extend", "pop", "remove",
     "setdefault", "update"}
)

#: Substrings marking a file-write target as a tmp staging file.
_TMP_HINTS = ("tmp", "temp")

_DEF_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)

#: Hard ceiling on one linearized stream (runaway-recursion backstop).
_MAX_EVENTS = 100_000


def tracked_safety_fields() -> FrozenSet[str]:
    """The safety-state ownership map plus the proposal watermark.

    Imported lazily so the flow layer never executes the rule package at
    import time (the rules import the flow layer, not vice versa).
    """
    from repro.lint.rules.safety_state import SAFETY_FIELDS

    return frozenset(SAFETY_FIELDS) | {"_proposed"}


class PersistenceEvent:
    """One step of a function's persistence-event stream."""

    __slots__ = ("kind", "detail", "line", "col", "chain", "static", "via")

    def __init__(
        self,
        kind: str,
        detail: str,
        line: int,
        col: int,
        chain: Optional[Tuple[str, ...]] = None,
        static: Optional[str] = None,
        via: Tuple[str, ...] = (),
    ) -> None:
        #: "mutate" | "call" | "journal" | "send" | "open_write" |
        #: "fsync" | "replace"
        self.kind = kind
        self.detail = detail
        self.line = line
        self.col = col
        #: Raw attribute chain of a call site (linearizer re-resolves it).
        self.chain = chain
        #: Statically resolved call target, if any.
        self.static = static
        #: Frame stack (function qualnames) that reached this event.
        self.via = via

    def replaced(self, kind: str, detail: str, via: Tuple[str, ...]) -> "PersistenceEvent":
        return PersistenceEvent(
            kind, detail, self.line, self.col, self.chain, self.static, via
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PersistenceEvent({self.kind}, {self.detail!r}, line={self.line})"


class FunctionPersistence:
    """Direct (non-transitive) persistence facts for one function."""

    __slots__ = ("qualname", "module", "class_name", "lineno", "stream",
                 "self_aliases")

    def __init__(self, node: FunctionNode) -> None:
        self.qualname = node.qualname
        self.module = node.module
        self.class_name = node.class_name
        self.lineno = node.lineno
        #: Evaluation-ordered direct events (loop bodies emitted twice).
        self.stream: List[PersistenceEvent] = []
        #: local name -> self attribute (``replica = self.replica``).
        self.self_aliases: Dict[str, str] = {}


class PersistenceIndex:
    """Persistence summaries for every function in a :class:`CallGraph`."""

    def __init__(self, graph: CallGraph, modules: Sequence[ParsedModule]) -> None:
        self.graph = graph
        self.tracked = tracked_safety_fields()
        self._imports: Dict[str, Dict[str, str]] = {}
        for module in modules:
            if module.module not in self._imports and not module.is_test:
                self._imports[module.module] = _module_imports(module)
        self._fp: Dict[str, FunctionPersistence] = {}
        for qualname, node in graph.functions.items():
            self._fp[qualname] = self._collect_direct(node)
        #: class qualname -> self attributes assigned ``Cls(self, ...)``.
        self._with_self: Dict[str, Set[str]] = {}
        self._collect_constructed_with_self()

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def persistence(self, qualname: str) -> Optional[FunctionPersistence]:
        return self._fp.get(qualname)

    def qualnames(self) -> List[str]:
        return sorted(self._fp)

    # ------------------------------------------------------------------
    # Direct facts
    # ------------------------------------------------------------------
    def _collect_direct(self, node: FunctionNode) -> FunctionPersistence:
        fp = FunctionPersistence(node)
        walker = _StreamWalker(
            self, node, fp, self._imports.get(node.module, {})
        )
        for stmt in node.node.body:
            walker.emit(stmt)
        return fp

    def _collect_constructed_with_self(self) -> None:
        """Record ``self.<attr> = Cls(self, ...)`` constructor back-refs."""
        for qualname, node in self.graph.functions.items():
            if node.class_name is None:
                continue
            for stmt in ast.walk(node.node):
                if not (
                    isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Attribute)
                    and isinstance(stmt.targets[0].value, ast.Name)
                    and stmt.targets[0].value.id == "self"
                    and isinstance(stmt.value, ast.Call)
                ):
                    continue
                if not any(
                    isinstance(arg, ast.Name) and arg.id == "self"
                    for arg in stmt.value.args
                ):
                    continue
                attr = stmt.targets[0].attr
                if self.graph.attr_type(node.class_name, attr) is not None:
                    self._with_self.setdefault(node.class_name, set()).add(attr)

    # ------------------------------------------------------------------
    # Dynamic-class-aware linearization
    # ------------------------------------------------------------------
    def linearize(
        self, root_qualname: str, dyn_class: Optional[str] = None
    ) -> List[PersistenceEvent]:
        """The root's transitively inlined stream under ``dyn_class``.

        ``dyn_class`` is the dynamic type of ``self`` for the whole
        expansion (defaults to the root's defining class); virtual
        dispatch, attribute types, and ``super()`` all resolve against
        its MRO, frame by frame.
        """
        out: List[PersistenceEvent] = []
        node = self.graph.functions.get(root_qualname)
        if node is None:
            return out
        if dyn_class is None:
            dyn_class = node.class_name
        self._expand(root_qualname, dyn_class, {}, out, [], ())
        return out

    def _expand(
        self,
        qualname: str,
        dyn_class: Optional[str],
        overrides: Dict[str, str],
        out: List[PersistenceEvent],
        stack: List[str],
        via: Tuple[str, ...],
    ) -> None:
        if qualname in stack or len(out) >= _MAX_EVENTS:
            return
        fp = self._fp.get(qualname)
        node = self.graph.functions.get(qualname)
        if fp is None or node is None:
            return
        stack.append(qualname)
        try:
            for event in fp.stream:
                if len(out) >= _MAX_EVENTS:
                    return
                if event.kind != "call":
                    out.append(event.replaced(event.kind, event.detail, via))
                    continue
                target, callee_dyn, callee_over = self._resolve_call(
                    node, fp, dyn_class, overrides, event
                )
                if target is None:
                    if self._heuristic_egress(event.chain):
                        out.append(event.replaced("send", event.detail, via))
                    continue
                callee = self.graph.functions.get(target)
                owner = callee.class_name if callee is not None else None
                kind = self._classify(owner, target)
                if kind is not None:
                    out.append(event.replaced(kind, target, via))
                    continue
                self._expand(
                    target, callee_dyn, callee_over, out, stack, via + (target,)
                )
        finally:
            stack.pop()

    def _classify(self, owner: Optional[str], target: str) -> Optional[str]:
        """``journal`` / ``send`` when the resolved target is a boundary."""
        if owner is None:
            return None
        cls = self.graph.classes.get(owner)
        if cls is None:
            return None
        method = target.rsplit(".", 1)[-1]
        if cls.name.endswith(JOURNAL_CLASS_SUFFIX) and method in JOURNAL_METHODS:
            return "journal"
        if method in EGRESS_METHODS and any(
            cls.name.endswith(suffix) for suffix in EGRESS_CLASS_SUFFIXES
        ):
            return "send"
        return None

    @staticmethod
    def _heuristic_egress(chain: Optional[Tuple[str, ...]]) -> bool:
        if not chain or chain[-1] not in {"send", "multicast"}:
            return False
        return any(
            hint in part.lower() for part in chain[:-1] for hint in EGRESS_CHAIN_HINTS
        )

    def _resolve_call(
        self,
        node: FunctionNode,
        fp: FunctionPersistence,
        dyn_class: Optional[str],
        overrides: Dict[str, str],
        event: PersistenceEvent,
    ) -> Tuple[Optional[str], Optional[str], Dict[str, str]]:
        """Re-resolve one call site under the frame's dynamic class.

        Returns ``(target qualname, callee dyn_class, callee overrides)``;
        falls back to the statically resolved target when dynamic
        resolution has nothing better.
        """
        graph = self.graph
        chain = event.chain
        d = dyn_class or node.class_name
        if chain and chain[0] == "super" and node.class_name is not None and d:
            mro = graph.mro(d)
            start = mro.index(node.class_name) + 1 if node.class_name in mro else 0
            for cls in mro[start:]:
                qual = graph.classes[cls].methods.get(chain[1])
                if qual is not None:
                    # super() dispatches the *method* up the MRO; self (and
                    # therefore the dynamic class) is unchanged.
                    return qual, d, overrides
            return self._static_fallback(event)
        if chain:
            parts: Tuple[str, ...] = chain
            if parts[0] != "self" and parts[0] in fp.self_aliases:
                parts = ("self", fp.self_aliases[parts[0]]) + parts[1:]
            if parts[0] == "self" and d is not None:
                if len(parts) == 2:
                    qual = graph.resolve_method(d, parts[1])
                    if qual is not None:
                        return qual, d, overrides
                elif len(parts) >= 3:
                    attr0 = parts[1]
                    owner: Optional[str] = overrides.get(attr0) or graph.attr_type(
                        d, attr0
                    )
                    for part in parts[2:-1]:
                        owner = (
                            graph.attr_type(owner, part)
                            if owner is not None
                            else None
                        )
                    if owner is not None:
                        qual = graph.resolve_method(owner, parts[-1])
                        if qual is not None:
                            callee_over = (
                                self._back_ref_overrides(d, attr0, owner)
                                if len(parts) == 3
                                else {}
                            )
                            return qual, owner, callee_over
        return self._static_fallback(event)

    def _static_fallback(
        self, event: PersistenceEvent
    ) -> Tuple[Optional[str], Optional[str], Dict[str, str]]:
        if event.static is None:
            return None, None, {}
        callee = self.graph.functions.get(event.static)
        return event.static, callee.class_name if callee else None, {}

    def _back_ref_overrides(
        self, d: str, attr0: str, callee_class: str
    ) -> Dict[str, str]:
        """Dynamic types for a ``Cls(self)``-constructed object's back-refs.

        When ``self.<attr0>`` was assigned ``Cls(self)`` somewhere in
        ``d``'s MRO, every attribute of ``Cls`` whose *static* type is a
        base of ``d`` actually holds ``d`` itself at runtime — the
        engines' ``self.replica`` pattern.
        """
        constructed = any(
            attr0 in self._with_self.get(cls, ())
            for cls in self.graph.mro(d)
        )
        if not constructed:
            return {}
        d_mro = self.graph.mro(d)
        overrides: Dict[str, str] = {}
        for cls in self.graph.mro(callee_class):
            node = self.graph.classes.get(cls)
            if node is None:
                continue
            for attr, static_type in node.attr_types.items():
                if attr in overrides:
                    continue
                if static_type != d and static_type in d_mro:
                    overrides[attr] = d
        return overrides

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_json(self, prefixes: Optional[Sequence[str]] = None) -> dict:
        """JSON-ready dict; deterministic order for byte-stability."""

        def keep(module: str) -> bool:
            if not prefixes:
                return True
            return any(
                module == prefix or module.startswith(prefix + ".")
                for prefix in prefixes
            )

        functions = {}
        for qualname in sorted(self._fp):
            fp = self._fp[qualname]
            if not keep(fp.module):
                continue
            events = []
            for event in fp.stream:
                entry = {
                    "kind": event.kind,
                    "detail": event.detail,
                    "line": event.line,
                }
                if event.kind == "call" and event.static is not None:
                    entry["target"] = event.static
                events.append(entry)
            functions[qualname] = {
                "module": fp.module,
                "class": fp.class_name,
                "line": fp.lineno,
                "events": events,
                "self_aliases": dict(sorted(fp.self_aliases.items())),
            }
        constructed = {
            cls: sorted(attrs)
            for cls, attrs in sorted(self._with_self.items())
            if keep(self.graph.classes[cls].module)
        }
        return {
            "version": 1,
            "functions": functions,
            "constructed_with_self": constructed,
        }


class _StreamWalker:
    """Emit a function body as an evaluation-ordered persistence stream."""

    def __init__(
        self,
        index: PersistenceIndex,
        node: FunctionNode,
        fp: FunctionPersistence,
        imports: Dict[str, str],
    ) -> None:
        self.index = index
        self.node = node
        self.fp = fp
        self.imports = imports

    # -- event emission -------------------------------------------------
    def _event(
        self,
        kind: str,
        detail: str,
        node: ast.AST,
        chain: Optional[Tuple[str, ...]] = None,
        static: Optional[str] = None,
    ) -> None:
        self.fp.stream.append(
            PersistenceEvent(
                kind,
                detail,
                getattr(node, "lineno", 0),
                getattr(node, "col_offset", 0),
                chain,
                static,
            )
        )

    # -- traversal ------------------------------------------------------
    def emit(self, item: Optional[ast.AST]) -> None:
        if item is None or isinstance(item, _DEF_NODES):
            return
        method = getattr(self, f"_emit_{type(item).__name__}", None)
        if method is not None:
            method(item)
            return
        for child in ast.iter_child_nodes(item):
            self.emit(child)

    def emit_all(self, items: Sequence[ast.AST]) -> None:
        for item in items:
            self.emit(item)

    def emit_target(self, target: ast.AST) -> None:
        if isinstance(target, ast.Attribute):
            chain = _attribute_chain(target)
            if chain and chain[-1] in self.index.tracked:
                self._event("mutate", chain[-1], target)
            else:
                self.emit(target.value)
            return
        if isinstance(target, ast.Subscript):
            self.emit(target.slice)
            chain = _attribute_chain(target.value)
            if chain and chain[-1] in self.index.tracked:
                self._event("mutate", chain[-1], target)
            else:
                self.emit(target.value)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self.emit_target(element)
            return
        if isinstance(target, ast.Starred):
            self.emit_target(target.value)

    # -- statements with non-source-order evaluation --------------------
    def _emit_Assign(self, item: ast.Assign) -> None:
        self.emit(item.value)
        for target in item.targets:
            self.emit_target(target)
        # ``replica = self.replica``: a local alias the linearizer treats
        # as self-rooted (first binding wins; good enough for the repo's
        # read-only aliasing idiom).
        if (
            len(item.targets) == 1
            and isinstance(item.targets[0], ast.Name)
            and isinstance(item.value, ast.Attribute)
            and isinstance(item.value.value, ast.Name)
            and item.value.value.id == "self"
        ):
            self.fp.self_aliases.setdefault(
                item.targets[0].id, item.value.attr
            )

    def _emit_AnnAssign(self, item: ast.AnnAssign) -> None:
        if item.value is not None:
            self.emit(item.value)
            self.emit_target(item.target)

    def _emit_AugAssign(self, item: ast.AugAssign) -> None:
        self.emit(item.value)
        self.emit_target(item.target)

    def _emit_Delete(self, item: ast.Delete) -> None:
        for target in item.targets:
            self.emit_target(target)

    def _emit_For(self, item: ast.For) -> None:
        self.emit(item.iter)
        for _ in range(2):  # loop-back visibility
            self.emit_all(item.body)
        self.emit_all(item.orelse)

    def _emit_While(self, item: ast.While) -> None:
        for _ in range(2):
            self.emit(item.test)
            self.emit_all(item.body)
        self.emit_all(item.orelse)

    # -- calls ----------------------------------------------------------
    def _emit_Call(self, item: ast.Call) -> None:
        self.emit_all(item.args)
        for keyword in item.keywords:
            self.emit(keyword.value)
        chain_list = _attribute_chain(item.func)
        chain = tuple(chain_list) if chain_list else None
        if chain is None:
            sup = _super_attr(item.func)
            if sup is not None:
                chain = ("super", sup)
            else:
                # e.g. ``factory()(args)`` — walk the callable expression.
                self.emit(item.func)
        static = self.node.call_targets.get((item.lineno, item.col_offset))
        if chain is not None:
            # In-place mutators on a tracked container are writes.
            if (
                len(chain) >= 2
                and chain[-1] in MUTATOR_TAILS
                and chain[-2] in self.index.tracked
            ):
                self._event("mutate", chain[-2], item)
                return
            self._file_idioms(item, chain)
        self._event(
            "call",
            ".".join(chain) if chain else (static or "<dynamic>"),
            item,
            chain=chain,
            static=static,
        )

    # -- file-write idioms ----------------------------------------------
    def _file_idioms(self, item: ast.Call, chain: Tuple[str, ...]) -> None:
        tail = chain[-1]
        resolved = ".".join([self.imports.get(chain[0], chain[0])] + list(chain[1:]))
        if resolved in {"os.fsync", "os.fdatasync"} or tail in {
            "fsync",
            "fdatasync",
        }:
            self._event("fsync", resolved, item)
            return
        if resolved in {"os.replace", "os.rename"}:
            self._event("replace", resolved, item)
            return
        if chain == ("open",):
            mode = self._open_mode(item)
            if mode is not None and any(flag in mode for flag in "wxa+"):
                target = item.args[0] if item.args else None
                self._event(
                    "open_write", f"{mode}@{self._target_kind(target)}", item
                )
            return
        if tail in {"write_text", "write_bytes"}:
            receiver = (
                item.func.value if isinstance(item.func, ast.Attribute) else None
            )
            self._event(
                "open_write", f"{tail}@{self._target_kind(receiver)}", item
            )

    @staticmethod
    def _open_mode(item: ast.Call) -> Optional[str]:
        mode_node: Optional[ast.AST] = None
        if len(item.args) >= 2:
            mode_node = item.args[1]
        for keyword in item.keywords:
            if keyword.arg == "mode":
                mode_node = keyword.value
        if mode_node is None:
            return "r"
        if isinstance(mode_node, ast.Constant) and isinstance(mode_node.value, str):
            return mode_node.value
        return None

    @staticmethod
    def _target_kind(target: Optional[ast.AST]) -> str:
        """``tmp`` when the write target names a staging file, else ``plain``."""
        if target is None:
            return "plain"
        for node in ast.walk(target):
            text: Optional[str] = None
            if isinstance(node, ast.Name):
                text = node.id
            elif isinstance(node, ast.Attribute):
                text = node.attr
            elif isinstance(node, ast.Constant) and isinstance(node.value, str):
                text = node.value
            if text is not None and any(
                hint in text.lower() for hint in _TMP_HINTS
            ):
                return "tmp"
        return "plain"


def build_persistence(modules: Sequence[ParsedModule]) -> PersistenceIndex:
    """Build the call graph and its persistence summaries in one call."""
    project = [m for m in modules if not m.is_test and not m.skipped]
    return PersistenceIndex(build_call_graph(project), project)
