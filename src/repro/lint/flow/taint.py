"""Byzantine-taint dataflow over the project call graph.

Threat model: every field of a network message is attacker-controlled
until a cryptographic check has vouched for it.  The engine tracks, per
function and across project-internal calls, which *origin paths* (field
accesses rooted at a handler parameter, e.g. ``message.block.qc``) can
reach a **sink** — a write to the safety-critical state the paper's
Lemmas 4-5 and Theorem 8 reason about, or a ledger commit — without first
passing a **sanitizer** (the ``verify_*`` certificate/share checks in
``core/validation.py`` and ``CryptoContext``, or the ``may_vote_*``
safety-rule gates).

The analysis is deliberately a lint-grade approximation:

- **flow-sensitive, path-insensitive**: statements are visited in source
  order; a sanitizer call covers its argument paths for the rest of the
  function, and branch bodies are visited sequentially.  The dominant
  project idiom — ``if not verify_x(...): return`` before any use — is
  modeled exactly; exotic control flow errs toward fewer findings.
- **field-level**: sanitizing ``block.qc`` covers ``message.block.qc``
  and everything below it, but not the rest of ``message.block``; a
  tuple/constructor built from covered fields is itself covered (this is
  how ``verify_share(share, payload)`` vouches for the payload fields a
  later QC is assembled from).
- **summary-based interprocedural**: each function gets a memoized
  summary — which parameters reach a sink unsanitized, and which flow to
  the return value — computed over the call graph with cycles broken
  optimistically.  A handler passing an unverified message field into
  ``process_certificate`` is flagged at the handler's call site.

Soundness disclaimer: a ``verify_*`` name is trusted by construction and
aliasing through containers is approximated (a tainted value stored into
a collection taints the collection variable, not the heap).  The point is
to catch the real-world regression shape — a new handler or refactor that
forgets a verify gate — not to prove non-interference.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.lint.engine import ParsedModule
from repro.lint.flow.callgraph import CallGraph, FunctionNode, build_call_graph

__all__ = [
    "GUARD_METHODS",
    "SINK_METHODS",
    "Summary",
    "SinkHit",
    "TaintEngine",
    "is_sanitizer_name",
]

#: Methods whose call *is* a safety-state/ledger sink regardless of how
#: the receiver resolves (name-based, so an unresolvable receiver still
#: counts).  The safety-state field writes themselves are matched via
#: :data:`repro.lint.rules.safety_state.SAFETY_FIELDS`.
SINK_METHODS: FrozenSet[str] = frozenset(
    {
        "record_regular_vote",
        "record_fallback_vote",
        "update_lock",
        "adopt_leader_votes",
        "reset_fallback_votes",
        "stop_voting_below",
        "stop_voting_for",
        "commit_through",
    }
)

#: Boolean gates that vouch for their arguments: the safety-rule vote
#: predicates and external validity.  ``verify_*`` is matched by prefix.
GUARD_METHODS: FrozenSet[str] = frozenset(
    {"may_vote_regular", "may_vote_fallback", "batch_valid"}
)

_SANITIZER_PREFIX = "verify_"


def is_sanitizer_name(name: str) -> bool:
    """True when a call to ``name`` vouches for its arguments."""
    return name.startswith(_SANITIZER_PREFIX) or name in GUARD_METHODS


@dataclass(frozen=True)
class SinkHit:
    """One unsanitized flow into a sink, located in some function body."""

    line: int
    col: int
    #: Human-readable sink, e.g. ``assignment to .qc_high`` or
    #: ``call to record_regular_vote``.
    sink: str
    #: Call chain (callee qualnames) crossed between the analyzed
    #: function and the sink; empty for a direct hit.
    via: Tuple[str, ...]
    #: The origin paths that reached the sink (``message.block`` ...).
    origins: FrozenSet[str]


@dataclass
class Summary:
    """What a function does with each of its parameters."""

    #: param name -> unsanitized sink flows when that param is tainted.
    param_sinks: Dict[str, List[SinkHit]] = field(default_factory=dict)
    #: params whose data can flow into the return value.
    param_returns: Set[str] = field(default_factory=set)


class TaintEngine:
    """Computes per-function taint summaries over a call graph."""

    def __init__(
        self,
        graph: CallGraph,
        safety_fields: FrozenSet[str],
        sources: FrozenSet[str],
    ) -> None:
        self.graph = graph
        self.safety_fields = safety_fields
        #: Source-handler qualnames: never descended into from a caller
        #: (each is analyzed as its own root, so findings are not
        #: duplicated through the dispatch chain).
        self.sources = sources
        self._summaries: Dict[str, Summary] = {}
        self._in_progress: Set[str] = set()

    @classmethod
    def for_modules(
        cls,
        modules: Sequence[ParsedModule],
        safety_fields: FrozenSet[str],
        sources: FrozenSet[str],
        graph: Optional[CallGraph] = None,
    ) -> "TaintEngine":
        project = [
            m for m in modules if not m.is_test and m.module.startswith("repro")
        ]
        return cls(
            graph if graph is not None else build_call_graph(project),
            safety_fields,
            sources,
        )

    def summary(self, qualname: str) -> Summary:
        """Memoized summary; optimistic (empty) on recursion cycles."""
        cached = self._summaries.get(qualname)
        if cached is not None:
            return cached
        if qualname in self._in_progress:
            return Summary()
        node = self.graph.function(qualname)
        if node is None:
            return Summary()
        self._in_progress.add(qualname)
        try:
            computed = _FunctionAnalyzer(self, node).run()
        finally:
            self._in_progress.discard(qualname)
        self._summaries[qualname] = computed
        return computed


class _FunctionAnalyzer:
    """One pass over a function body with every parameter tainted."""

    def __init__(self, engine: TaintEngine, node: FunctionNode) -> None:
        self.engine = engine
        self.graph = engine.graph
        self.node = node
        #: variable -> origin paths it carries.
        self.env: Dict[str, Set[str]] = {p: {p} for p in node.params}
        #: origin paths vouched for by a sanitizer so far.
        self.sanitized: Set[str] = set()
        self.hits: List[SinkHit] = []
        self.return_origins: Set[str] = set()

    # ------------------------------------------------------------------
    def run(self) -> Summary:
        for stmt in getattr(self.node.node, "body", []):
            self.visit(stmt)
        summary = Summary()
        params = set(self.node.params)
        for hit in self.hits:
            for root in {origin.split(".", 1)[0] for origin in hit.origins}:
                if root in params:
                    summary.param_sinks.setdefault(root, []).append(hit)
        summary.param_returns = {
            origin.split(".", 1)[0]
            for origin in self.return_origins
            if origin.split(".", 1)[0] in params
        }
        return summary

    # ------------------------------------------------------------------
    # Taint helpers
    # ------------------------------------------------------------------
    def effective(self, origins: Set[str]) -> FrozenSet[str]:
        """Origins not covered by any sanitized path prefix."""
        out = set()
        for origin in origins:
            covered = False
            for clean in self.sanitized:
                if origin == clean or origin.startswith(clean + "."):
                    covered = True
                    break
            if not covered:
                out.add(origin)
        return frozenset(out)

    def record_hit(self, node: ast.AST, sink: str, origins: FrozenSet[str],
                   via: Tuple[str, ...] = ()) -> None:
        self.hits.append(
            SinkHit(
                line=getattr(node, "lineno", self.node.lineno),
                col=getattr(node, "col_offset", 0),
                sink=sink,
                via=via,
                origins=origins,
            )
        )

    # ------------------------------------------------------------------
    # Statements (visited in source order)
    # ------------------------------------------------------------------
    def visit(self, stmt: ast.AST) -> None:
        if isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        elif isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value)
            for target in stmt.targets:
                self.assign(target, value, stmt)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self.assign(stmt.target, self.eval(stmt.value), stmt)
        elif isinstance(stmt, ast.AugAssign):
            value = self.eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                self.env.setdefault(stmt.target.id, set()).update(value)
            else:
                self.assign(stmt.target, value, stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.return_origins.update(self.eval(stmt.value))
        elif isinstance(stmt, ast.If):
            self.eval(stmt.test)
            for child in stmt.body + stmt.orelse:
                self.visit(child)
        elif isinstance(stmt, (ast.While,)):
            self.eval(stmt.test)
            for child in stmt.body + stmt.orelse:
                self.visit(child)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iterable = self.eval(stmt.iter)
            self.assign(stmt.target, iterable, stmt)
            for child in stmt.body + stmt.orelse:
                self.visit(child)
        elif isinstance(stmt, ast.Try):
            for child in stmt.body:
                self.visit(child)
            for handler in stmt.handlers:
                for child in handler.body:
                    self.visit(child)
            for child in stmt.orelse + stmt.finalbody:
                self.visit(child)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                value = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self.assign(item.optional_vars, value, stmt)
            for child in stmt.body:
                self.visit(child)
        elif isinstance(stmt, ast.Assert):
            self.eval(stmt.test)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.eval(stmt.exc)
        elif isinstance(stmt, ast.Delete):
            pass
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            pass  # nested scopes are out of this pass's reach
        # Pass/Break/Continue/Global/Import...: no dataflow effect.

    def assign(self, target: ast.AST, value: Set[str], stmt: ast.AST) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = set(value)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self.assign(element, value, stmt)
        elif isinstance(target, ast.Starred):
            self.assign(target.value, value, stmt)
        elif isinstance(target, ast.Attribute):
            if target.attr in self.engine.safety_fields:
                origins = self.effective(value)
                if origins:
                    self.record_hit(
                        stmt, f"assignment to .{target.attr}", origins
                    )
        elif isinstance(target, ast.Subscript):
            inner = target.value
            if isinstance(inner, ast.Name):
                # ``bucket[k] = v`` taints the collection variable.
                self.env.setdefault(inner.id, set()).update(value)
            elif (
                isinstance(inner, ast.Attribute)
                and inner.attr in self.engine.safety_fields
            ):
                origins = self.effective(value | self.eval(target.slice))
                if origins:
                    self.record_hit(
                        stmt, f"write into .{inner.attr}[...]", origins
                    )

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def eval(self, node: ast.AST) -> Set[str]:
        if isinstance(node, ast.Name):
            return set(self.env.get(node.id, ()))
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Constant):
            return set()
        if isinstance(node, ast.Lambda):
            return set()
        # Tuples, dicts, comparisons, f-strings, comprehensions, slices...
        origins: Set[str] = set()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.expr, ast.comprehension, ast.keyword)):
                origins |= self.eval(child)
            elif isinstance(child, ast.AST):
                for grandchild in ast.walk(child):
                    if isinstance(grandchild, ast.expr):
                        origins |= self.eval(grandchild)
                        break
        return origins

    def _eval_attribute(self, node: ast.Attribute) -> Set[str]:
        parts: List[str] = []
        current: ast.AST = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if isinstance(current, ast.Name):
            base = self.env.get(current.id)
            if not base:
                return set()
            suffix = ".".join(reversed(parts))
            return {f"{origin}.{suffix}" for origin in base}
        return self.eval(current)

    def _eval_call(self, call: ast.Call) -> Set[str]:
        func = call.func
        arg_origins: List[Set[str]] = [self.eval(arg) for arg in call.args]
        kw_origins: Dict[Optional[str], Set[str]] = {
            kw.arg: self.eval(kw.value) for kw in call.keywords
        }
        receiver: Set[str] = set()
        terminal: Optional[str] = None
        if isinstance(func, ast.Attribute):
            terminal = func.attr
            receiver = self.eval(func.value)
        elif isinstance(func, ast.Name):
            terminal = func.id
        else:
            receiver = self.eval(func)

        all_origins: Set[str] = set(receiver)
        for origins in arg_origins:
            all_origins |= origins
        for origins in kw_origins.values():
            all_origins |= origins

        if terminal is not None and is_sanitizer_name(terminal):
            self.sanitized |= all_origins
            return set()

        if terminal is not None and terminal in SINK_METHODS:
            effective = self.effective(all_origins)
            if effective:
                self.record_hit(call, f"call to {terminal}()", effective)
            return set()

        target = self.node.call_targets.get((call.lineno, call.col_offset))
        if target is not None and target in self.graph.classes:
            return all_origins  # constructed object carries its arguments
        if (
            target is not None
            and target in self.graph.functions
            and target not in self.engine.sources
        ):
            returned = self._apply_summary(call, target, arg_origins,
                                           kw_origins, receiver)
            if self.graph.functions[target].name == "__init__":
                # Constructor edge: the object carries its arguments even
                # though ``__init__`` itself returns None.
                return all_origins
            return returned
        # Unknown target (stdlib, unresolvable, or a stopped source):
        # conservatively, the result carries every argument's taint.
        return all_origins

    def _apply_summary(
        self,
        call: ast.Call,
        target: str,
        arg_origins: List[Set[str]],
        kw_origins: Dict[Optional[str], Set[str]],
        receiver: Set[str],
    ) -> Set[str]:
        callee = self.graph.functions[target]
        summary = self.engine.summary(target)
        params = callee.params
        mapped: List[Tuple[str, Set[str]]] = []
        for index, origins in enumerate(arg_origins):
            if index < len(params):
                mapped.append((params[index], origins))
        for name, origins in kw_origins.items():
            if name is not None and name in params:
                mapped.append((name, origins))

        returned: Set[str] = set(receiver)
        for param, origins in mapped:
            effective = self.effective(origins)
            if effective and param in summary.param_sinks:
                for hit in summary.param_sinks[param]:
                    self.record_hit(
                        call, hit.sink, effective, via=(target,) + hit.via
                    )
            if param in summary.param_returns:
                returned |= origins
        return returned
