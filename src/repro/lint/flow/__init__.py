"""Interprocedural analysis layer for `repro lint`.

`callgraph` builds a def/use-resolved project call graph from the parsed
lint modules; `taint` runs a field-level Byzantine-taint dataflow over
it; `effects` computes per-function effect summaries (suspension points,
self-attribute reads/writes, tasks, locks, blocking calls) with
transitive may-suspend/may-block closure.  The flow-based rules in
`repro.lint.rules` sit on top of all three.
"""

from repro.lint.flow.callgraph import (
    CallGraph,
    ClassNode,
    FunctionNode,
    build_call_graph,
)
from repro.lint.flow.effects import (
    BLOCKING_CALLS,
    BLOCKING_METHOD_TAILS,
    EffectsIndex,
    FunctionEffects,
    build_effects,
)
from repro.lint.flow.taint import (
    GUARD_METHODS,
    SINK_METHODS,
    SinkHit,
    Summary,
    TaintEngine,
    is_sanitizer_name,
)

# Imported last: persistence lazily reaches into the rules package (for
# the safety-state ownership map), so every earlier flow symbol must be
# bound before any re-entrant import of this package.
from repro.lint.flow.callgraph import neighborhood_paths
from repro.lint.flow.persistence import (
    FunctionPersistence,
    PersistenceEvent,
    PersistenceIndex,
    build_persistence,
)

__all__ = [
    "BLOCKING_CALLS",
    "BLOCKING_METHOD_TAILS",
    "CallGraph",
    "ClassNode",
    "EffectsIndex",
    "FunctionEffects",
    "FunctionNode",
    "FunctionPersistence",
    "GUARD_METHODS",
    "PersistenceEvent",
    "PersistenceIndex",
    "SINK_METHODS",
    "SinkHit",
    "Summary",
    "TaintEngine",
    "build_call_graph",
    "build_effects",
    "build_persistence",
    "is_sanitizer_name",
    "neighborhood_paths",
]
