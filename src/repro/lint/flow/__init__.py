"""Interprocedural analysis layer for `repro lint`.

`callgraph` builds a def/use-resolved project call graph from the parsed
lint modules; `taint` runs a field-level Byzantine-taint dataflow over
it.  The flow-based rules in `repro.lint.rules` sit on top of both.
"""

from repro.lint.flow.callgraph import (
    CallGraph,
    ClassNode,
    FunctionNode,
    build_call_graph,
)
from repro.lint.flow.taint import (
    GUARD_METHODS,
    SINK_METHODS,
    SinkHit,
    Summary,
    TaintEngine,
    is_sanitizer_name,
)

__all__ = [
    "CallGraph",
    "ClassNode",
    "FunctionNode",
    "GUARD_METHODS",
    "SINK_METHODS",
    "SinkHit",
    "Summary",
    "TaintEngine",
    "build_call_graph",
    "is_sanitizer_name",
]
