"""Per-function effect summaries over the project call graph.

The live runtime (`net/tcp.py`, `runtime/*.py`, `client/swarm.py`,
`traffic/loadgen.py`) is asyncio code, and the bugs that break its
crash-recovery story are *effects*, not expressions: a read of shared
state that goes stale across an ``await``, a blocking ``open()`` reached
three calls below an ``async def``, a task handle nobody will ever
cancel.  This module computes, for every function in the call graph:

- **suspension points** — ``await`` / ``async for`` / ``async with``
  sites, with awaited *project* calls resolved through the graph: an
  ``await self.helper()`` where ``helper`` never suspends is **not** a
  suspension point, which is exactly the precision the await-atomicity
  rule needs;
- **self-attribute reads and writes** (subscript stores and ``del``
  count as writes; mutating method calls like ``.append`` count as
  reads — single-threaded handlers make in-place mutation atomic);
- **tasks created** (``create_task`` / ``ensure_future`` sites and the
  name the handle is retained on, if any);
- **locks acquired** (``with`` / ``async with`` over lock-shaped
  context managers);
- **blocking calls** (file ops, ``fsync``, ``subprocess``, sync socket
  calls) and their transitive *may-block* closure, so a rule can say
  "this async def reaches ``os.fsync`` in ``journal.append``" with the
  owning leaf named — sanctioned-list filtering happens per leaf.

Transitive **may-suspend** and **may-block** are least fixed points over
the call graph, memoized with optimistic cycle-breaking (the same
discipline as :mod:`repro.lint.flow.taint`).  The index serializes to
JSON with every collection sorted, so two builds of the same tree are
byte-identical and the CI artifact (``repro lint --effects``) diffs
cleanly per PR — golden-tested like ``callgraph_core.json``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.engine import ParsedModule
from repro.lint.flow.callgraph import (
    CallGraph,
    FunctionNode,
    _attribute_chain,
    _module_imports,
    build_call_graph,
)

__all__ = [
    "BLOCKING_CALLS",
    "BLOCKING_METHOD_TAILS",
    "EffectsIndex",
    "Event",
    "FunctionEffects",
    "build_effects",
    "iter_own_body",
]

#: Calls that block the event loop, matched on their import-resolved
#: dotted name (``open`` is the builtin).  ``time.sleep`` is listed for
#: the *transitive* case — a sync helper reached from an async def; the
#: direct-in-async case stays with the lexical asyncio-hygiene rule.
BLOCKING_CALLS = frozenset(
    {
        "open",
        "time.sleep",
        "os.fsync",
        "os.fdatasync",
        "os.replace",
        "os.rename",
        "os.remove",
        "os.unlink",
        "os.makedirs",
        "os.listdir",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "socket.create_connection",
        "socket.getaddrinfo",
        "socket.gethostbyname",
        "shutil.rmtree",
        "shutil.copy",
        "shutil.copytree",
        "shutil.move",
    }
)

#: Method names that are blocking I/O on any receiver (Path file ops).
BLOCKING_METHOD_TAILS = frozenset(
    {"read_text", "write_text", "read_bytes", "write_bytes"}
)

_TASK_SPAWNERS = frozenset({"create_task", "ensure_future"})

#: Substrings that mark a context-manager chain as a lock acquisition.
_LOCK_HINTS = ("lock", "mutex", "sem")

_DEF_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def iter_own_body(node: ast.AST) -> Iterator[ast.AST]:
    """Walk a function's own body, skipping nested defs and lambdas."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        current = stack.pop()
        if isinstance(current, _DEF_NODES):
            continue
        yield current
        stack.extend(ast.iter_child_nodes(current))


def _is_lockish(chain: Optional[List[str]]) -> bool:
    if not chain:
        return False
    return any(hint in part.lower() for part in chain for hint in _LOCK_HINTS)


class Event:
    """One step of a function's evaluation-ordered effect stream."""

    __slots__ = ("kind", "attr", "line", "col", "locked")

    def __init__(
        self, kind: str, attr: Optional[str], line: int, col: int, locked: bool
    ) -> None:
        self.kind = kind  # "read" | "write" | "suspend"
        self.attr = attr
        self.line = line
        self.col = col
        self.locked = locked

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Event({self.kind}, {self.attr}, line={self.line})"


class FunctionEffects:
    """Direct (non-transitive) effect facts for one function."""

    __slots__ = (
        "qualname",
        "module",
        "class_name",
        "lineno",
        "is_async",
        "await_sites",
        "always_suspends",
        "self_reads",
        "self_writes",
        "tasks",
        "locks",
        "lock_spans",
        "blocking_calls",
    )

    def __init__(self, node: FunctionNode) -> None:
        self.qualname = node.qualname
        self.module = node.module
        self.class_name = node.class_name
        self.lineno = node.lineno
        self.is_async = isinstance(node.node, ast.AsyncFunctionDef)
        #: ``await <call>`` sites: (line, col, resolved target or None).
        self.await_sites: List[Tuple[int, int, Optional[str]]] = []
        #: Unconditional suspension lines (async for / async with / await
        #: of a non-call or external call).
        self.always_suspends: Set[int] = set()
        self.self_reads: Set[str] = set()
        self.self_writes: Set[str] = set()
        #: (line, retained-on) per create_task/ensure_future site.
        self.tasks: List[Tuple[int, Optional[str]]] = []
        #: Lock-shaped context-manager chains acquired in the body.
        self.locks: Set[str] = set()
        #: (first, last) line spans of lock-guarded blocks.
        self.lock_spans: List[Tuple[int, int]] = []
        #: (line, name) of direct blocking calls.
        self.blocking_calls: List[Tuple[int, str]] = []


class EffectsIndex:
    """Effect summaries for every function in a :class:`CallGraph`."""

    def __init__(self, graph: CallGraph, modules: Sequence[ParsedModule]) -> None:
        self.graph = graph
        self._imports: Dict[str, Dict[str, str]] = {}
        for module in modules:
            if module.module not in self._imports and not module.is_test:
                self._imports[module.module] = _module_imports(module)
        self._fx: Dict[str, FunctionEffects] = {}
        for qualname, node in graph.functions.items():
            self._fx[qualname] = self._collect_direct(node)
        self._may_suspend: Dict[str, bool] = {}
        self._suspending: Set[str] = set()
        self._reached: Dict[str, Set[Tuple[str, str]]] = {}
        self._reaching: Set[str] = set()
        self._reads_closure: Dict[str, Set[str]] = {}
        self._writes_closure: Dict[str, Set[str]] = {}
        self._closing: Set[str] = set()

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def effects(self, qualname: str) -> Optional[FunctionEffects]:
        return self._fx.get(qualname)

    def qualnames(self) -> List[str]:
        return sorted(self._fx)

    # ------------------------------------------------------------------
    # Direct facts (one own-body pass per function)
    # ------------------------------------------------------------------
    def _collect_direct(self, node: FunctionNode) -> FunctionEffects:
        fx = FunctionEffects(node)
        imports = self._imports.get(node.module, {})
        parents: Dict[ast.AST, ast.AST] = {}
        for parent in iter_own_body(node.node):
            for child in ast.iter_child_nodes(parent):
                parents[child] = parent
        for child in ast.iter_child_nodes(node.node):
            parents[child] = node.node

        for item in iter_own_body(node.node):
            if isinstance(item, ast.Await):
                value = item.value
                if isinstance(value, ast.Call):
                    target = node.call_targets.get(
                        (value.lineno, value.col_offset)
                    )
                    fx.await_sites.append((item.lineno, item.col_offset, target))
                else:
                    fx.always_suspends.add(item.lineno)
            elif isinstance(item, ast.AsyncFor):
                fx.always_suspends.add(item.lineno)
            elif isinstance(item, (ast.With, ast.AsyncWith)):
                if isinstance(item, ast.AsyncWith):
                    fx.always_suspends.add(item.lineno)
                for with_item in item.items:
                    chain = _attribute_chain(with_item.context_expr)
                    if chain is None and isinstance(
                        with_item.context_expr, ast.Call
                    ):
                        chain = _attribute_chain(with_item.context_expr.func)
                    if _is_lockish(chain):
                        fx.locks.add(".".join(chain or []))
                        end = getattr(item, "end_lineno", item.lineno)
                        fx.lock_spans.append((item.lineno, end or item.lineno))
            elif isinstance(item, ast.Attribute):
                self._record_self_attr(fx, node, item, parents)
            elif isinstance(item, ast.Call):
                self._record_call(fx, node, item, parents, imports)
        # iter_own_body is an unordered walk; sort for determinism.
        fx.await_sites.sort(key=lambda site: (site[0], site[1], site[2] or ""))
        fx.tasks.sort(key=lambda task: (task[0], task[1] or ""))
        fx.blocking_calls.sort()
        fx.lock_spans.sort()
        return fx

    def _record_self_attr(
        self,
        fx: FunctionEffects,
        node: FunctionNode,
        item: ast.Attribute,
        parents: Dict[ast.AST, ast.AST],
    ) -> None:
        if not (isinstance(item.value, ast.Name) and item.value.id == "self"):
            return
        parent = parents.get(item)
        if isinstance(parent, ast.Call) and parent.func is item:
            # ``self.method(...)``: an edge when resolved, a read of the
            # attribute when not (``self.on_message(...)`` callbacks).
            if (parent.lineno, parent.col_offset) not in node.call_targets:
                fx.self_reads.add(item.attr)
            return
        if (
            isinstance(parent, ast.Subscript)
            and parent.value is item
            and isinstance(parent.ctx, (ast.Store, ast.Del))
        ):
            fx.self_writes.add(item.attr)
            return
        if isinstance(item.ctx, (ast.Store, ast.Del)):
            fx.self_writes.add(item.attr)
            if isinstance(parent, ast.AugAssign):
                fx.self_reads.add(item.attr)
            return
        fx.self_reads.add(item.attr)

    def _record_call(
        self,
        fx: FunctionEffects,
        node: FunctionNode,
        item: ast.Call,
        parents: Dict[ast.AST, ast.AST],
        imports: Dict[str, str],
    ) -> None:
        chain = _attribute_chain(item.func)
        tail = chain[-1] if chain else None
        if tail in _TASK_SPAWNERS:
            fx.tasks.append((item.lineno, _retention_target(item, parents)))
            return
        if (item.lineno, item.col_offset) in node.call_targets:
            return  # a project edge; its effects arrive transitively
        resolved = _resolve_imported(imports, chain)
        if resolved in BLOCKING_CALLS:
            fx.blocking_calls.append((item.lineno, resolved))
        elif tail in BLOCKING_METHOD_TAILS:
            fx.blocking_calls.append((item.lineno, f"{tail}"))

    # ------------------------------------------------------------------
    # Transitive may-suspend
    # ------------------------------------------------------------------
    def may_suspend(self, qualname: str) -> bool:
        """Can calling (and awaiting) this function yield to the loop?

        Sync functions never suspend.  An async function suspends when it
        has an unconditional suspension point, awaits something external,
        or awaits a project function that itself may suspend.  Cycles
        resolve optimistically (least fixed point).
        """
        cached = self._may_suspend.get(qualname)
        if cached is not None:
            return cached
        fx = self._fx.get(qualname)
        if fx is None or not fx.is_async:
            self._may_suspend[qualname] = False
            return False
        if qualname in self._suspending:
            return False  # cycle: optimistic
        self._suspending.add(qualname)
        try:
            result = bool(fx.always_suspends)
            if not result:
                for _line, _col, target in fx.await_sites:
                    if target is None or target not in self._fx:
                        result = True
                        break
                    if self.may_suspend(target):
                        result = True
                        break
        finally:
            self._suspending.discard(qualname)
        self._may_suspend[qualname] = result
        return result

    def suspension_lines(self, qualname: str) -> List[int]:
        """Resolved suspension-point lines, sorted and deduplicated."""
        fx = self._fx.get(qualname)
        if fx is None or not fx.is_async:
            return []
        lines = set(fx.always_suspends)
        for line, _col, target in fx.await_sites:
            if target is None or target not in self._fx or self.may_suspend(target):
                lines.add(line)
        return sorted(lines)

    # ------------------------------------------------------------------
    # Transitive may-block
    # ------------------------------------------------------------------
    def blocking_reached(self, qualname: str) -> Set[Tuple[str, str]]:
        """Every ``(owner, call)`` blocking site reachable from here.

        ``owner`` is the function whose body contains the direct blocking
        call — the unit the sanctioned-list is matched against.
        """
        cached = self._reached.get(qualname)
        if cached is not None:
            return cached
        fx = self._fx.get(qualname)
        if fx is None:
            return set()
        if qualname in self._reaching:
            return set()  # cycle: optimistic
        self._reaching.add(qualname)
        try:
            reached = {(qualname, name) for _line, name in fx.blocking_calls}
            node = self.graph.functions.get(qualname)
            if node is not None:
                for callee in node.calls:
                    reached |= self.blocking_reached(callee)
        finally:
            self._reaching.discard(qualname)
        self._reached[qualname] = reached
        return reached

    def may_block(self, qualname: str) -> bool:
        return bool(self.blocking_reached(qualname))

    # ------------------------------------------------------------------
    # Self-attribute closures (through same-class-family method calls)
    # ------------------------------------------------------------------
    def _same_family(self, a: Optional[str], b: Optional[str]) -> bool:
        if a is None or b is None:
            return False
        return a == b or b in self.graph.mro(a) or a in self.graph.mro(b)

    def _attr_closure(self, qualname: str, writes: bool) -> Set[str]:
        cache = self._writes_closure if writes else self._reads_closure
        cached = cache.get(qualname)
        if cached is not None:
            return cached
        fx = self._fx.get(qualname)
        if fx is None:
            return set()
        key = ("w" if writes else "r") + qualname
        if key in self._closing:
            return set()  # cycle: optimistic
        self._closing.add(key)
        try:
            out = set(fx.self_writes if writes else fx.self_reads)
            node = self.graph.functions.get(qualname)
            if node is not None:
                for callee in node.calls:
                    callee_fx = self._fx.get(callee)
                    if callee_fx is not None and self._same_family(
                        fx.class_name, callee_fx.class_name
                    ):
                        out |= self._attr_closure(callee, writes)
        finally:
            self._closing.discard(key)
        cache[qualname] = out
        return out

    def self_reads_closure(self, qualname: str) -> Set[str]:
        return self._attr_closure(qualname, writes=False)

    def self_writes_closure(self, qualname: str) -> Set[str]:
        return self._attr_closure(qualname, writes=True)

    # ------------------------------------------------------------------
    # Evaluation-ordered event stream (the await-atomicity substrate)
    # ------------------------------------------------------------------
    def event_stream(self, qualname: str) -> List[Event]:
        """Reads, writes, and suspension points in evaluation order.

        Loop bodies are emitted twice so loop-back hazards (a write at
        the top of an iteration after an ``await`` at the bottom of the
        previous one) are visible to a single linear scan.  Self-method
        calls inject the callee's transitive self reads/writes at the
        call site.
        """
        node = self.graph.functions.get(qualname)
        fx = self._fx.get(qualname)
        if node is None or fx is None:
            return []
        out: List[Event] = []
        walker = _EventWalker(self, node, out)
        for stmt in node.node.body:
            walker.emit(stmt)
        return out

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_json(self, prefixes: Optional[Sequence[str]] = None) -> dict:
        """JSON-ready dict; every collection sorted for byte-stability."""

        def keep(module: str) -> bool:
            if not prefixes:
                return True
            return any(
                module == prefix or module.startswith(prefix + ".")
                for prefix in prefixes
            )

        functions = {}
        for qualname in sorted(self._fx):
            fx = self._fx[qualname]
            if not keep(fx.module):
                continue
            via = sorted(
                {
                    owner
                    for owner, _name in self.blocking_reached(qualname)
                    if owner != qualname
                }
            )
            functions[qualname] = {
                "module": fx.module,
                "line": fx.lineno,
                "async": fx.is_async,
                "may_suspend": self.may_suspend(qualname),
                "may_block": self.may_block(qualname),
                "suspends": self.suspension_lines(qualname),
                "self_reads": sorted(fx.self_reads),
                "self_writes": sorted(fx.self_writes),
                "tasks": [
                    {"line": line, "target": target}
                    for line, target in sorted(
                        fx.tasks, key=lambda t: (t[0], t[1] or "")
                    )
                ],
                "locks": sorted(fx.locks),
                "blocking": sorted({name for _line, name in fx.blocking_calls}),
                "blocking_via": via,
            }
        return {"version": 1, "functions": functions}


class _EventWalker:
    """Emit a function body as an evaluation-ordered effect stream."""

    def __init__(
        self, index: EffectsIndex, node: FunctionNode, out: List[Event]
    ) -> None:
        self.index = index
        self.node = node
        self.out = out
        self.lock_depth = 0

    # -- event emission -------------------------------------------------
    def _event(self, kind: str, attr: Optional[str], node: ast.AST) -> None:
        self.out.append(
            Event(
                kind,
                attr,
                getattr(node, "lineno", 0),
                getattr(node, "col_offset", 0),
                self.lock_depth > 0,
            )
        )

    def _is_self_attr(self, item: ast.AST) -> bool:
        return (
            isinstance(item, ast.Attribute)
            and isinstance(item.value, ast.Name)
            and item.value.id == "self"
        )

    # -- traversal ------------------------------------------------------
    def emit(self, item: Optional[ast.AST]) -> None:
        if item is None or isinstance(item, _DEF_NODES):
            return
        method = getattr(self, f"_emit_{type(item).__name__}", None)
        if method is not None:
            method(item)
            return
        for child in ast.iter_child_nodes(item):
            self.emit(child)

    def emit_all(self, items: Sequence[ast.AST]) -> None:
        for item in items:
            self.emit(item)

    def emit_target(self, target: ast.AST) -> None:
        """A store target: writes for self attrs, reads for its indices."""
        if self._is_self_attr(target):
            self._event("write", target.attr, target)  # type: ignore[attr-defined]
            return
        if isinstance(target, ast.Subscript):
            self.emit(target.slice)
            if self._is_self_attr(target.value):
                self._event("write", target.value.attr, target)  # type: ignore[attr-defined]
            else:
                self.emit(target.value)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self.emit_target(element)
            return
        if isinstance(target, ast.Starred):
            self.emit_target(target.value)
            return
        if isinstance(target, ast.Attribute):
            self.emit(target.value)

    # -- statements with non-source-order evaluation --------------------
    def _emit_Assign(self, item: ast.Assign) -> None:
        self.emit(item.value)
        for target in item.targets:
            self.emit_target(target)

    def _emit_AnnAssign(self, item: ast.AnnAssign) -> None:
        if item.value is not None:
            self.emit(item.value)
            self.emit_target(item.target)

    def _emit_AugAssign(self, item: ast.AugAssign) -> None:
        if self._is_self_attr(item.target):
            self._event("read", item.target.attr, item.target)  # type: ignore[attr-defined]
        else:
            self.emit(item.target.value if isinstance(item.target, ast.Attribute) else item.target)
        self.emit(item.value)
        self.emit_target(item.target)

    def _emit_Delete(self, item: ast.Delete) -> None:
        for target in item.targets:
            self.emit_target(target)

    def _emit_For(self, item: ast.For) -> None:
        self.emit(item.iter)
        for _ in range(2):  # loop-back visibility
            self.emit_target(item.target)
            self.emit_all(item.body)
        self.emit_all(item.orelse)

    def _emit_AsyncFor(self, item: ast.AsyncFor) -> None:
        self.emit(item.iter)
        for _ in range(2):
            self._event("suspend", None, item)
            self.emit_target(item.target)
            self.emit_all(item.body)
        self.emit_all(item.orelse)

    def _emit_While(self, item: ast.While) -> None:
        for _ in range(2):
            self.emit(item.test)
            self.emit_all(item.body)
        self.emit_all(item.orelse)

    def _with_lockish(self, item) -> bool:
        for with_item in item.items:
            chain = _attribute_chain(with_item.context_expr)
            if chain is None and isinstance(with_item.context_expr, ast.Call):
                chain = _attribute_chain(with_item.context_expr.func)
            if _is_lockish(chain):
                return True
        return False

    def _emit_With(self, item: ast.With) -> None:
        for with_item in item.items:
            self.emit(with_item.context_expr)
            if with_item.optional_vars is not None:
                self.emit_target(with_item.optional_vars)
        locked = self._with_lockish(item)
        self.lock_depth += 1 if locked else 0
        self.emit_all(item.body)
        self.lock_depth -= 1 if locked else 0

    def _emit_AsyncWith(self, item: ast.AsyncWith) -> None:
        for with_item in item.items:
            self.emit(with_item.context_expr)
        self._event("suspend", None, item)
        locked = self._with_lockish(item)
        self.lock_depth += 1 if locked else 0
        for with_item in item.items:
            if with_item.optional_vars is not None:
                self.emit_target(with_item.optional_vars)
        self.emit_all(item.body)
        self.lock_depth -= 1 if locked else 0
        self._event("suspend", None, item)  # __aexit__ at block end

    def _emit_Await(self, item: ast.Await) -> None:
        self.emit(item.value)
        value = item.value
        if isinstance(value, ast.Call):
            target = self.node.call_targets.get((value.lineno, value.col_offset))
            if target is not None and self.index.effects(target) is not None:
                if not self.index.may_suspend(target):
                    return  # awaiting a never-suspending project coroutine
        self._event("suspend", None, item)

    # -- expressions ----------------------------------------------------
    def _emit_Attribute(self, item: ast.Attribute) -> None:
        if self._is_self_attr(item):
            if isinstance(item.ctx, ast.Load):
                self._event("read", item.attr, item)
            return
        self.emit(item.value)

    def _emit_Subscript(self, item: ast.Subscript) -> None:
        self.emit(item.value)
        self.emit(item.slice)

    def _emit_Call(self, item: ast.Call) -> None:
        func = item.func
        if self._is_self_attr(func):
            target = self.node.call_targets.get((item.lineno, item.col_offset))
            self.emit_all(item.args)
            for keyword in item.keywords:
                self.emit(keyword.value)
            if target is not None:
                fx = self.index.effects(target)
                if fx is not None and self.index._same_family(
                    self.node.class_name, fx.class_name
                ):
                    # Inline the callee's self effects at the call site:
                    # reads first, then writes (its own read-modify-write
                    # is atomic unless *it* suspends, which it reports on
                    # its own lines).
                    for attr in sorted(self.index.self_reads_closure(target)):
                        self._event("read", attr, item)
                    for attr in sorted(self.index.self_writes_closure(target)):
                        self._event("write", attr, item)
                    return
                return  # resolved non-family call (constructor via attr)
            self._event("read", func.attr, func)  # type: ignore[attr-defined]
            return
        self.emit(func)
        self.emit_all(item.args)
        for keyword in item.keywords:
            self.emit(keyword.value)


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _resolve_imported(
    imports: Dict[str, str], chain: Optional[List[str]]
) -> Optional[str]:
    """Resolve a call chain through the module's import aliases."""
    if not chain:
        return None
    head, rest = chain[0], chain[1:]
    resolved_head = imports.get(head, head)
    return ".".join([resolved_head] + rest)


def _retention_target(
    call: ast.Call, parents: Dict[ast.AST, ast.AST]
) -> Optional[str]:
    """Where a spawned task's handle lands: a dotted name, or None.

    Climbs from the ``create_task`` call to its statement: an assignment
    target names the retainer (through comprehensions); a call argument
    (``self._tasks.add(task)``) names the receiver collection; a bare
    expression statement retains nothing.
    """
    current: ast.AST = call
    while True:
        parent = parents.get(current)
        if parent is None:
            return None
        if isinstance(parent, ast.Assign) and len(parent.targets) == 1:
            chain = _attribute_chain(parent.targets[0])
            return ".".join(chain) if chain else None
        if isinstance(parent, ast.Call) and current in parent.args:
            chain = _attribute_chain(parent.func)
            return ".".join(chain) if chain else None
        if isinstance(parent, ast.Await):
            return "<awaited>"
        if isinstance(parent, ast.Return):
            return "<returned>"
        if isinstance(parent, ast.Expr):
            return None
        if isinstance(parent, ast.stmt):
            return None
        current = parent


def build_effects(modules: Sequence[ParsedModule]) -> EffectsIndex:
    """Build the call graph and its effect summaries in one call."""
    project = [m for m in modules if not m.is_test and not m.skipped]
    return EffectsIndex(build_call_graph(project), project)
