"""AST lint engine: parsed modules, rule registry, pragmas, reporters.

The engine is deliberately small: it parses every Python file in the
scanned roots exactly once into a :class:`ParsedModule` (source lines, AST,
dotted module name, suppression pragmas), hands the modules to each
registered :class:`Rule`, filters findings through per-line pragmas and
renders the survivors as text or JSON.

Two rule shapes exist:

- :class:`Rule` — checks one module at a time (most rules).
- :class:`ProjectRule` — sees every parsed module at once, for
  cross-module invariants such as "every message type has a codec tag and
  a round-trip test" (the wire-coverage rule).

Suppression: append ``# repro-lint: ignore[rule-id]`` (or a bare
``# repro-lint: ignore`` for all rules) to the flagged line, or put
``# repro-lint: skip-file`` in the first five lines to exempt a whole
file.  Pragmas are per-line and per-rule so a suppression cannot silently
widen.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Type

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

_PRAGMA_RE = re.compile(r"#\s*repro-lint:\s*ignore(?:\[([A-Za-z0-9_\-, ]*)\])?")
_SKIP_FILE_RE = re.compile(r"#\s*repro-lint:\s*skip-file")

#: How many leading lines may carry a file-level ``skip-file`` pragma.
_SKIP_FILE_WINDOW = 5


class LintError(Exception):
    """A problem with the lint run itself (bad rule id, unparsable file)."""


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    severity: str = SEVERITY_ERROR

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.severity} [{self.rule}] {self.message}"

    def to_json(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
        }


class ParsedModule:
    """One source file, parsed once and shared by every rule.

    Attributes:
        module: dotted module name (``repro.core.safety``,
            ``tests.wire.test_roundtrip``).
        path: display path used in findings (posix, repo-relative when
            built through :func:`collect_modules`).
        source: raw text.
        lines: source split into lines (1-indexed access via ``lines[i-1]``).
        tree: the parsed ``ast.Module``.
        is_test: True for files under the tests root.
        skipped: True when a file-level skip pragma was found.
    """

    def __init__(
        self,
        source: str,
        module: str,
        path: str,
        is_test: bool = False,
    ) -> None:
        self.source = source
        self.module = module
        self.path = path
        self.is_test = is_test
        self.lines = source.splitlines()
        try:
            self.tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            raise LintError(f"{path}: cannot parse: {exc}") from exc
        self.skipped = any(
            _SKIP_FILE_RE.search(line) for line in self.lines[:_SKIP_FILE_WINDOW]
        )
        #: line number -> suppressed rule ids; empty set means "all rules".
        self._ignores: Dict[int, set] = {}
        for number, line in enumerate(self.lines, start=1):
            match = _PRAGMA_RE.search(line)
            if match is None:
                continue
            inner = match.group(1)
            if inner is None or not inner.strip():
                self._ignores[number] = set()
            else:
                self._ignores[number] = {
                    part.strip() for part in inner.split(",") if part.strip()
                }

    @classmethod
    def from_path(cls, path: Path, module: str, display: str, is_test: bool = False) -> "ParsedModule":
        return cls(
            path.read_text(encoding="utf-8"), module, display, is_test=is_test
        )

    def suppresses(self, line: int, rule_id: str) -> bool:
        """True when ``line`` carries a pragma covering ``rule_id``."""
        rules = self._ignores.get(line)
        if rules is None:
            return False
        return not rules or rule_id in rules

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ParsedModule({self.module!r}, path={self.path!r})"


class Rule:
    """Base class: one lint invariant checked module-by-module.

    Subclasses set ``id`` / ``description`` / ``rationale`` and implement
    :meth:`check`; :meth:`applies_to` narrows the scanned module set.
    """

    id: str = ""
    severity: str = SEVERITY_ERROR
    description: str = ""
    #: Which protocol invariant the rule protects (shown in --list-rules
    #: and docs/STATIC_ANALYSIS.md).
    rationale: str = ""

    def applies_to(self, module: ParsedModule) -> bool:
        return not module.is_test

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, module: ParsedModule, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.id,
            message=message,
            severity=self.severity,
        )


class ProjectRule(Rule):
    """A rule that needs a cross-module view of the whole scanned tree."""

    def check(self, module: ParsedModule) -> Iterator[Finding]:  # pragma: no cover
        return iter(())

    def check_project(self, modules: Sequence[ParsedModule]) -> Iterator[Finding]:
        raise NotImplementedError


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, Type[Rule]] = {}


def register_rule(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator: add a rule to the global registry (unique id)."""
    if not rule_class.id:
        raise LintError(f"rule {rule_class.__name__} has no id")
    if rule_class.id in _REGISTRY:
        raise LintError(f"duplicate rule id {rule_class.id!r}")
    _REGISTRY[rule_class.id] = rule_class
    return rule_class


def all_rule_ids() -> List[str]:
    return sorted(_REGISTRY)


def rule_catalogue() -> List[Rule]:
    """Fresh instances of every registered rule, sorted by id."""
    return [_REGISTRY[rule_id]() for rule_id in all_rule_ids()]


def get_rules(rule_ids: Optional[Sequence[str]] = None) -> List[Rule]:
    """Instantiate the requested rules (all registered rules by default)."""
    if rule_ids is None:
        return rule_catalogue()
    unknown = sorted(set(rule_ids) - set(_REGISTRY))
    if unknown:
        known = ", ".join(all_rule_ids())
        raise LintError(f"unknown rule id(s) {unknown}; known rules: {known}")
    return [_REGISTRY[rule_id]() for rule_id in sorted(set(rule_ids))]


# ----------------------------------------------------------------------
# Running
# ----------------------------------------------------------------------
def collect_modules(
    src_root: Path, tests_root: Optional[Path] = None
) -> List[ParsedModule]:
    """Parse every ``*.py`` file under the source (and optional tests) root.

    ``src_root`` is the directory that *contains* the top-level package
    (i.e. ``src/``); module names are dotted paths relative to it.  The
    display path is relative to the root's parent (the repo root), so
    findings print as ``src/repro/core/safety.py:12``.
    """
    modules: List[ParsedModule] = []
    for root, is_test in ((src_root, False), (tests_root, True)):
        if root is None:
            continue
        root = root.resolve()
        base = root if is_test else root.parent
        for path in sorted(root.rglob("*.py")):
            relative = path.relative_to(root)
            dotted_parts = list(relative.with_suffix("").parts)
            if dotted_parts[-1] == "__init__":
                dotted_parts = dotted_parts[:-1]
            prefix = ["tests"] if is_test else []
            module_name = ".".join(prefix + dotted_parts) or (
                "tests" if is_test else root.name
            )
            try:
                display = path.relative_to(base.parent if is_test else base)
            except ValueError:
                display = relative
            modules.append(
                ParsedModule.from_path(
                    path, module_name, display.as_posix(), is_test=is_test
                )
            )
    return modules


def lint_modules(
    modules: Sequence[ParsedModule],
    rules: Optional[Sequence[Rule]] = None,
    only_paths: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Run ``rules`` over ``modules`` and return pragma-filtered findings.

    ``only_paths`` (display paths, as in ``Finding.path``) restricts the
    *reported* scope without shrinking the analysis: per-module rules run
    only on the listed files, while project rules still see the whole
    tree (their interprocedural facts need it) and have their findings
    filtered to the listed files afterwards.
    """
    if rules is None:
        rules = get_rules()
    active = [module for module in modules if not module.skipped]
    by_path = {module.path: module for module in active}
    selected = None if only_paths is None else set(only_paths)
    raw: List[Finding] = []
    for rule in rules:
        if isinstance(rule, ProjectRule):
            raw.extend(rule.check_project(active))
        else:
            for module in active:
                if selected is not None and module.path not in selected:
                    continue
                if rule.applies_to(module):
                    raw.extend(rule.check(module))
    findings = [
        finding
        for finding in raw
        if not (
            finding.path in by_path
            and by_path[finding.path].suppresses(finding.line, finding.rule)
        )
        and (selected is None or finding.path in selected)
    ]
    return sorted(set(findings))


def lint_tree(
    src_root: Path,
    tests_root: Optional[Path] = None,
    rule_ids: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Collect, lint, and return findings for a whole source tree."""
    return lint_modules(collect_modules(src_root, tests_root), get_rules(rule_ids))


# ----------------------------------------------------------------------
# Reporters
# ----------------------------------------------------------------------
def render_text(findings: Sequence[Finding]) -> str:
    if not findings:
        return "repro lint: clean (0 findings)"
    lines = [finding.render() for finding in findings]
    errors = sum(1 for finding in findings if finding.severity == SEVERITY_ERROR)
    warnings = len(findings) - errors
    lines.append(
        f"repro lint: {len(findings)} finding(s) "
        f"({errors} error(s), {warnings} warning(s))"
    )
    return "\n".join(lines)


def summarize(findings: Sequence[Finding]) -> dict:
    """Severity and per-rule counts for a finding list."""
    by_rule: Dict[str, int] = {}
    for finding in findings:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    return {
        "total": len(findings),
        "errors": sum(1 for f in findings if f.severity == SEVERITY_ERROR),
        "warnings": sum(1 for f in findings if f.severity == SEVERITY_WARNING),
        "by_rule": dict(sorted(by_rule.items())),
    }


def render_json(findings: Sequence[Finding]) -> str:
    summary = summarize(findings)
    payload = {
        "findings": [finding.to_json() for finding in findings],
        # Top-level errors/warnings predate the summary block; kept for
        # scripts already parsing them.
        "errors": summary["errors"],
        "warnings": summary["warnings"],
        "summary": summary,
    }
    return json.dumps(payload, indent=2)


def has_errors(findings: Iterable[Finding]) -> bool:
    return any(finding.severity == SEVERITY_ERROR for finding in findings)


def should_fail(findings: Sequence[Finding], fail_on: str = SEVERITY_ERROR) -> bool:
    """Exit-code policy: fail on errors, or on any finding at all when
    ``fail_on`` is ``"warning"``."""
    if fail_on == SEVERITY_WARNING:
        return bool(findings)
    return has_errors(findings)
