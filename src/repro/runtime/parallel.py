"""Parallel seed sweeps over deterministic simulations.

Every simulation run is a pure function of its seed, so sweeping seeds is
embarrassingly parallel: fork one worker per core, give each a seed, merge
the results in seed order.  The output is bit-identical to running the
seeds serially — workers share nothing, and each run re-derives all state
from its seed — which the test suite checks directly.

The ``task`` callable must be picklable (a module-level function or a
``functools.partial`` over one), and so must its return value.  Prefer
returning plain data (e.g. :class:`~repro.experiments.scenarios.
ScenarioResult`) over live simulation objects.

Falls back to serial execution when only one worker makes sense (single
seed, ``processes<=1``) or when the platform cannot fork worker processes.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, Optional, Sequence, TypeVar

T = TypeVar("T")

#: Fork keeps workers cheap and inherits the imported simulator; spawn
#: would re-import everything per worker.
_MP_CONTEXT = "fork"


def default_processes() -> int:
    """Worker count: one per available core, at least 1."""
    return max(1, os.cpu_count() or 1)


def run_seed_sweep(
    task: Callable[[int], T],
    seeds: Sequence[int],
    processes: Optional[int] = None,
) -> list[T]:
    """Run ``task(seed)`` for every seed, in parallel when it pays off.

    Results come back in ``seeds`` order regardless of completion order, so
    a parallel sweep is indistinguishable from ``[task(s) for s in seeds]``.

    Args:
        task: picklable callable mapping a seed to a picklable result.
        seeds: seeds to sweep (order defines result order).
        processes: worker count; ``None`` means one per core.  Values <= 1
            (and single-seed sweeps) run serially in this process.
    """
    seeds = list(seeds)
    if processes is None:
        processes = default_processes()
    if processes <= 1 or len(seeds) <= 1:
        return [task(seed) for seed in seeds]
    try:
        context = multiprocessing.get_context(_MP_CONTEXT)
    except ValueError:
        # Platform without fork (e.g. Windows): stay correct, run serially.
        return [task(seed) for seed in seeds]
    workers = min(processes, len(seeds))
    try:
        with context.Pool(processes=workers) as pool:
            return pool.map(task, seeds)
    except OSError:
        # Process creation failed (restricted sandbox); fall back.
        return [task(seed) for seed in seeds]
