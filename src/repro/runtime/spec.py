"""Cluster specification for the multi-process live runtime.

A :class:`ClusterSpec` is the single source of truth shared by the
supervisor, every replica process, and the client swarm: cluster size,
protocol preset, timing, the TCP address of each replica, and the data
directory holding journals, status files, and process logs.  It serializes
to JSON so ``python -m repro live --replica i --cluster-spec spec.json``
can reconstruct the exact same cluster from any process.

Determinism note: the shared cryptographic setup
(:meth:`~repro.core.context.SharedSetup.deal`) is a pure function of
``(n, protocol, seed)``, so every process deals it independently and all
signatures, threshold shares, and coin elections line up — no key
distribution step is needed for the simulated crypto.
"""

from __future__ import annotations

import json
import os
import socket
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.core.config import ProtocolConfig

#: Spec format version (bump on incompatible changes).
SPEC_VERSION = 1


@dataclass
class ClusterSpec:
    """Everything a replica process needs to join the cluster."""

    n: int
    seed: int = 0
    protocol: str = "fallback-3chain"
    round_timeout: float = 1.0
    batch_size: int = 10
    preload: int = 1000
    host: str = "127.0.0.1"
    ports: list[int] = field(default_factory=list)
    data_dir: str = "."
    #: fsync the safety journal on every write (survives machine crash, not
    #: just process death; much slower — kill -9 chaos only needs flush).
    fsync: bool = False
    version: int = SPEC_VERSION

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError("cluster spec needs n >= 1")
        if self.ports and len(self.ports) != self.n:
            raise ValueError(
                f"spec has {len(self.ports)} ports for n={self.n} replicas"
            )

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def config(self) -> ProtocolConfig:
        """The :class:`ProtocolConfig` every process derives from the spec."""
        from repro.protocols import preset

        return preset(self.protocol).config(
            self.n, round_timeout=self.round_timeout, batch_size=self.batch_size
        )

    def address(self, replica_id: int) -> tuple[str, int]:
        return self.host, self.ports[replica_id]

    def addresses(self) -> list[tuple[str, int]]:
        return [(self.host, port) for port in self.ports]

    def journal_path(self, replica_id: int) -> Path:
        return Path(self.data_dir) / f"journal-{replica_id}.log"

    def status_path(self, replica_id: int) -> Path:
        return Path(self.data_dir) / f"status-{replica_id}.json"

    def log_path(self, replica_id: int) -> Path:
        return Path(self.data_dir) / f"replica-{replica_id}.log"

    # ------------------------------------------------------------------
    # JSON round trip
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "ClusterSpec":
        data = json.loads(text)
        version = data.get("version", SPEC_VERSION)
        if version != SPEC_VERSION:
            raise ValueError(f"unsupported cluster-spec version {version}")
        known = {name for name in cls.__dataclass_fields__}
        return cls(**{key: value for key, value in data.items() if key in known})

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Every worker process loads this file; publish it atomically so a
        # crash mid-save can never hand a worker a torn spec.
        tmp = path.with_suffix(path.suffix + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ClusterSpec":
        return cls.from_json(Path(path).read_text(encoding="utf-8"))

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        n: int,
        data_dir: Union[str, Path],
        seed: int = 0,
        protocol: str = "fallback-3chain",
        round_timeout: float = 1.0,
        batch_size: int = 10,
        preload: int = 1000,
        host: str = "127.0.0.1",
        base_port: Optional[int] = None,
        fsync: bool = False,
    ) -> "ClusterSpec":
        """Build a spec with concrete ports and an existing data directory.

        With ``base_port`` the replicas get consecutive fixed ports;
        otherwise each port is picked by briefly binding an ephemeral
        socket (released immediately — a small race the listener's
        ``SO_REUSEADDR`` absorbs in practice on localhost).
        """
        data_dir = Path(data_dir)
        data_dir.mkdir(parents=True, exist_ok=True)
        if base_port is not None:
            ports = [base_port + i for i in range(n)]
        else:
            ports = _free_ports(n, host)
        return cls(
            n=n,
            seed=seed,
            protocol=protocol,
            round_timeout=round_timeout,
            batch_size=batch_size,
            preload=preload,
            host=host,
            ports=ports,
            data_dir=str(data_dir),
            fsync=fsync,
        )


def _free_ports(count: int, host: str) -> list[int]:
    """Reserve ``count`` distinct ephemeral ports by binding then releasing."""
    sockets = []
    try:
        for _ in range(count):
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((host, 0))
            sockets.append(sock)
        return [sock.getsockname()[1] for sock in sockets]
    finally:
        for sock in sockets:
            sock.close()
