"""Cluster construction and experiment running.

:class:`ClusterBuilder` assembles an n-replica cluster: dealer setup, the
simulated network with a chosen delay model, per-replica mempools fed by a
workload, optional Byzantine replicas, and a metrics collector.
:class:`Cluster` drives the run (until a time bound, a commit count, or an
arbitrary predicate) and exposes the pieces for inspection.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.core.config import ProtocolConfig, ProtocolVariant
from repro.core.context import SharedSetup
from repro.core.leader import LeaderSchedule
from repro.core.replica import Replica
from repro.ledger.ledger import StateMachine
from repro.mempool.mempool import Mempool
from repro.net.conditions import DelayModel, SynchronousDelay
from repro.net.loss import LossModel
from repro.net.network import Network
from repro.net.reliable import ChannelConfig, ReliableNetwork
from repro.runtime.metrics import MetricsCollector
from repro.sim.process import Process
from repro.sim.scheduler import Scheduler
from repro.types.blocks import AnyBlock
from repro.types.transactions import Transaction
from repro.workloads.generator import Workload

#: Factory producing a (possibly Byzantine) replica process.  Receives the
#: same arguments as :class:`Replica`.
ReplicaFactory = Callable[..., Process]


@dataclass
class RunResult:
    """Outcome of one cluster run."""

    cluster: "Cluster"
    stopped_at: float
    #: Events the scheduler processed during this ``run`` call.
    events_processed: int = 0
    #: Host wall-clock seconds this ``run`` call took.
    wall_seconds: float = 0.0

    @property
    def metrics(self) -> MetricsCollector:
        return self.cluster.metrics

    @property
    def events_per_sec(self) -> float:
        """Simulator throughput of this run (0.0 for an instant run)."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.events_processed / self.wall_seconds

    @property
    def decisions(self) -> int:
        return self.cluster.metrics.decisions()

    def committed_chain(self, replica: Optional[int] = None) -> list[AnyBlock]:
        """Committed blocks at a replica (default: first honest)."""
        target = replica if replica is not None else self.cluster.honest_ids[0]
        process = self.cluster.replicas[target]
        if not isinstance(process, Replica):
            raise ValueError(f"replica {target} is not an honest Replica")
        return process.ledger.committed_blocks()


class Cluster:
    """A running (or runnable) cluster of replicas on a simulated network."""

    def __init__(
        self,
        config: ProtocolConfig,
        scheduler: Scheduler,
        network: Network,
        setup: SharedSetup,
        replicas: Sequence[Process],
        mempools: Sequence[Mempool],
        metrics: MetricsCollector,
        workload: Optional[Workload],
        byzantine_ids: Sequence[int],
        clients: Sequence["Client"] = (),
        fault_schedule: Optional["FaultSchedule"] = None,
    ) -> None:
        self.config = config
        self.scheduler = scheduler
        self.network = network
        self.setup = setup
        self.replicas = list(replicas)
        self.mempools = list(mempools)
        self.metrics = metrics
        self.workload = workload
        self.clients = list(clients)
        self.byzantine_ids = list(byzantine_ids)
        self.honest_ids = [
            replica_id
            for replica_id in range(config.n)
            if replica_id not in set(byzantine_ids)
        ]
        self.schedule = LeaderSchedule(config.n, config.leader_rotation_interval)
        self.fault_schedule = fault_schedule
        #: (time, description) of every chaos event applied during the run.
        self.fault_log: list[tuple[float, str]] = []
        self._started = False
        # Leader-oracle caches: the targeting adversary queries the oracle
        # once per message, so at n=64+ an uncached oracle is the single
        # hottest call in the simulator.  Both caches are invalidated by the
        # metrics round-entry listener (advance_round is the only writer of
        # r_cur after construction; crash recovery fires on_state_reset).
        self._honest_cache: Optional[list[Replica]] = None
        self._leaders_cache: Optional[set[int]] = None
        metrics.round_entry_listeners.append(self._on_round_entry)
        if fault_schedule is not None:
            fault_schedule.install(self)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def replica(self, replica_id: int) -> Process:
        return self.replicas[replica_id]

    def honest_replicas(self) -> list[Replica]:
        cached = self._honest_cache
        if cached is None:
            honest_ids = set(self.honest_ids)
            cached = [
                process
                for process in self.replicas
                if isinstance(process, Replica) and process.process_id in honest_ids
            ]
            self._honest_cache = cached
        return cached

    def current_leaders(self) -> set[int]:
        """Leaders of the rounds honest replicas are currently in.

        This is the oracle the leader-targeting adversary uses: an
        omniscient scheduler always knows whom to delay.  The result is
        cached between round entries; callers must not mutate it.
        """
        leaders = self._leaders_cache
        if leaders is None:
            leader = self.schedule.leader
            leaders = {leader(replica.r_cur) for replica in self.honest_replicas()}
            self._leaders_cache = leaders
        return leaders

    def _on_round_entry(self, replica: int, round_number: int, now: float) -> None:
        self._leaders_cache = None

    def submit(self, transaction: Transaction) -> None:
        """Inject one client transaction into every mempool."""
        for mempool in self.mempools:
            mempool.submit(transaction)

    def change_network(self, model: DelayModel) -> None:
        self.network.set_delay_model(model)

    def change_loss(self, model: LossModel) -> None:
        self.network.set_loss_model(model)

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        if self.workload is not None:
            notify = getattr(self.workload, "notify_committed", None)
            if callable(notify):
                self.metrics.commit_listeners.append(notify)
            self.workload.start(self.scheduler)
        for process in self.replicas:
            process.on_start()
        for client in self.clients:
            client.on_start()

    def total_confirmations(self) -> int:
        """Client-side confirmed commits across all clients."""
        return sum(len(client.confirmations) for client in self.clients)

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> RunResult:
        self.start()
        events_before = self.scheduler.events_processed
        wall_start = time.perf_counter()
        stopped_at = self.scheduler.run(
            until=until, max_events=max_events, stop_when=stop_when
        )
        wall_seconds = time.perf_counter() - wall_start
        return RunResult(
            cluster=self,
            stopped_at=stopped_at,
            events_processed=self.scheduler.events_processed - events_before,
            wall_seconds=wall_seconds,
        )

    def run_until_commits(
        self,
        count: int,
        until: float = 100_000.0,
        max_events: int = 20_000_000,
        everywhere: bool = False,
    ) -> RunResult:
        """Run until ``count`` blocks commit (at one honest replica, or at
        every honest replica with ``everywhere=True``)."""

        def reached() -> bool:
            if everywhere:
                return self.metrics.min_honest_height() >= count
            return self.metrics.decisions() >= count

        return self.run(until=until, max_events=max_events, stop_when=reached)


class ClusterBuilder:
    """Fluent builder for clusters.

    Example::

        cluster = (
            ClusterBuilder(n=4, seed=7)
            .with_variant(ProtocolVariant.FALLBACK_3CHAIN)
            .with_delay_model(SynchronousDelay(delta=1.0))
            .build()
        )
    """

    def __init__(
        self,
        n: Optional[int] = None,
        seed: int = 0,
        config: Optional[ProtocolConfig] = None,
    ):
        if config is not None:
            # `None` is the "not passed" sentinel: an explicit n that
            # disagrees with the config is a genuine conflict, never
            # silently resolved in the config's favor.
            if n is not None and n != config.n:
                raise ValueError(
                    f"conflicting cluster sizes: n={n} but config.n={config.n}"
                )
            self._config = config
        else:
            self._config = ProtocolConfig(n=n if n is not None else 4)
        self.seed = seed
        self._delay_model: DelayModel = SynchronousDelay()
        self._delay_model_factory: Optional[Callable[["Cluster"], DelayModel]] = None
        self._loss_model: Optional[LossModel] = None
        self._reliable_channels: Optional[bool] = None
        self._channel_config: Optional[ChannelConfig] = None
        self._fault_schedule: Optional["FaultSchedule"] = None
        self._workload_factory: Optional[Callable[[list[Mempool]], Workload]] = None
        self._byzantine: dict[int, ReplicaFactory] = {}
        self._honest_factories: dict[int, ReplicaFactory] = {}
        self._state_machine_factory: Optional[Callable[[], StateMachine]] = None
        self._preload_transactions = 200
        self._client_count = 0
        self._client_kwargs: dict = {}
        self._cert_cache_enabled = True
        self._share_pool_enabled = True

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def with_config(self, config: ProtocolConfig) -> "ClusterBuilder":
        self._config = config
        return self

    def with_variant(self, variant: ProtocolVariant) -> "ClusterBuilder":
        from dataclasses import replace

        self._config = replace(self._config, variant=variant)
        return self

    def with_delay_model(self, model: DelayModel) -> "ClusterBuilder":
        self._delay_model = model
        self._delay_model_factory = None
        return self

    def with_delay_model_factory(
        self, factory: Callable[["Cluster"], DelayModel]
    ) -> "ClusterBuilder":
        """Delay model that needs the cluster (e.g. the leader oracle)."""
        self._delay_model_factory = factory
        return self

    def with_loss_model(self, model: LossModel, reliable: bool = True) -> "ClusterBuilder":
        """Make the transport lossy.

        By default this also installs the reliable-channel layer so the
        protocol keeps its reliable-link abstraction; pass
        ``reliable=False`` to expose raw loss to the replicas (testing
        protocol-level idempotence / loss tolerance).
        """
        self._loss_model = model
        if self._reliable_channels is None or not reliable:
            self._reliable_channels = reliable
        return self

    def with_reliable_channels(
        self, channel: Optional[ChannelConfig] = None
    ) -> "ClusterBuilder":
        """Force the reliable-channel layer on (even without a loss model),
        optionally with custom retransmission/buffer tuning."""
        self._reliable_channels = True
        if channel is not None:
            self._channel_config = channel
        return self

    def with_fault_schedule(self, schedule: "FaultSchedule") -> "ClusterBuilder":
        """Attach a chaos schedule; loss-injecting schedules imply
        reliable channels (unless explicitly disabled via
        ``with_loss_model(..., reliable=False)``)."""
        self._fault_schedule = schedule
        return self

    def with_honest_factory(
        self, replica_id: int, factory: ReplicaFactory
    ) -> "ClusterBuilder":
        """Use a custom *honest* replica class for one slot (for example
        ``RecoveringReplica.factory()`` for scheduled crash/recover).  The
        replica stays in the honest set for metrics and safety checks."""
        if not 0 <= replica_id < self._config.n:
            raise ValueError(f"replica id {replica_id} out of range")
        if replica_id in self._byzantine:
            raise ValueError(f"replica {replica_id} is already Byzantine")
        self._honest_factories[replica_id] = factory
        return self

    def with_workload(
        self, factory: Callable[[list[Mempool]], Workload]
    ) -> "ClusterBuilder":
        self._workload_factory = factory
        return self

    def with_preload(self, count: int) -> "ClusterBuilder":
        """Size of the default preloaded workload (ignored with a custom one)."""
        self._preload_transactions = count
        return self

    def with_byzantine(self, replica_id: int, factory: ReplicaFactory) -> "ClusterBuilder":
        if not 0 <= replica_id < self._config.n:
            raise ValueError(f"replica id {replica_id} out of range")
        if replica_id in self._honest_factories:
            raise ValueError(f"replica {replica_id} already has an honest factory")
        if len(self._byzantine) >= self._config.f and replica_id not in self._byzantine:
            raise ValueError(
                f"cannot make more than f={self._config.f} replicas Byzantine"
            )
        self._byzantine[replica_id] = factory
        return self

    def with_state_machine(self, factory: Callable[[], StateMachine]) -> "ClusterBuilder":
        self._state_machine_factory = factory
        return self

    def with_cert_cache(self, enabled: bool) -> "ClusterBuilder":
        """Toggle the cluster-wide verified-certificate cache.

        Disabling it makes every replica re-verify every certificate (the
        pre-cache behavior) — the bypass mode the determinism tests compare
        against."""
        self._cert_cache_enabled = enabled
        return self

    def with_share_pool(self, enabled: bool) -> "ClusterBuilder":
        """Toggle the cluster-wide verified-share pool.

        Disabling it makes every replica re-verify every threshold/coin
        share on arrival — the bypass mode the property tests compare
        against."""
        self._share_pool_enabled = enabled
        return self

    def with_clients(self, count: int, **client_kwargs) -> "ClusterBuilder":
        """Attach closed-loop BFT clients (ids n, n+1, ...).

        Keyword arguments are forwarded to :class:`repro.client.Client`
        (``outstanding``, ``total``, ``retransmit_interval``, ...).
        """
        if count < 0:
            raise ValueError("client count must be non-negative")
        self._client_count = count
        self._client_kwargs = client_kwargs
        return self

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    def _wants_reliable_channels(self) -> bool:
        if self._reliable_channels is not None:
            return self._reliable_channels
        if self._fault_schedule is not None:
            return self._fault_schedule.needs_reliable_channels
        return False

    def build(self) -> Cluster:
        config = self._config
        scheduler = Scheduler(seed=self.seed)
        if self._wants_reliable_channels():
            network: Network = ReliableNetwork(
                scheduler,
                self._delay_model,
                loss_model=self._loss_model,
                channel=self._channel_config,
            )
        else:
            network = Network(scheduler, self._delay_model, loss_model=self._loss_model)
        setup = SharedSetup.deal(
            config,
            coin_seed=self.seed,
            cert_cache_enabled=self._cert_cache_enabled,
            share_pool_enabled=self._share_pool_enabled,
        )
        byzantine_ids = sorted(self._byzantine)
        metrics = MetricsCollector(
            honest_ids=[i for i in range(config.n) if i not in self._byzantine]
        )
        metrics.attach_cert_cache(setup.cert_cache)
        metrics.attach_share_pool(setup.share_pool)
        network.add_send_hook(metrics.on_send)
        if isinstance(network, ReliableNetwork):
            network.add_channel_hook(metrics.on_channel_event)

        mempools = [Mempool(batch_size=config.batch_size) for _ in range(config.n)]
        replicas: list[Process] = []
        for replica_id in range(config.n):
            factory = self._byzantine.get(
                replica_id, self._honest_factories.get(replica_id, Replica)
            )
            state_machine = (
                self._state_machine_factory() if self._state_machine_factory else None
            )
            process = factory(
                replica_id,
                config,
                setup.context_for(replica_id),
                network,
                scheduler,
                mempool=mempools[replica_id],
                state_machine=state_machine,
                observer=metrics,
            )
            replicas.append(process)
            network.register(process)

        if self._workload_factory is not None:
            workload = self._workload_factory(mempools)
        else:
            workload = Workload(mempools, count=self._preload_transactions)

        clients = []
        if self._client_count:
            from repro.client.client import Client

            client_kwargs = dict(self._client_kwargs)
            # Sane default derived from the cluster's timeout config: one
            # retransmission per ~2 stalled rounds, not a fixed constant.
            client_kwargs.setdefault("retransmit_interval", 2.0 * config.round_timeout)
            for offset in range(self._client_count):
                client = Client(
                    process_id=config.n + offset,
                    scheduler=scheduler,
                    network=network,
                    f=config.f,
                    replica_ids=list(range(config.n)),
                    **client_kwargs,
                )
                network.register(client, in_multicast_group=False)
                clients.append(client)

        cluster = Cluster(
            config=config,
            scheduler=scheduler,
            network=network,
            setup=setup,
            replicas=replicas,
            mempools=mempools,
            metrics=metrics,
            workload=workload,
            byzantine_ids=byzantine_ids,
            clients=clients,
            fault_schedule=self._fault_schedule,
        )
        if self._delay_model_factory is not None:
            network.set_delay_model(self._delay_model_factory(cluster))
        return cluster
