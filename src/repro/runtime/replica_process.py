"""One replica as one OS process (the multi-process live runtime).

``python -m repro live --replica i --cluster-spec spec.json`` lands here:
the process binds its spec-assigned TCP port, meshes to every peer, runs an
unchanged :class:`~repro.storage.durable.DurableReplica` whose safety state
persists in a :class:`~repro.storage.journal.FileSafetyJournal`, and keeps
committing until it is told to stop — or killed.

``kill -9`` is the design case, not an error path: the journal survives on
disk, so the respawned process restores its pre-crash safety state at
construction (never contradicting votes the dead incarnation sent), rejoins
the mesh through the transport's reconnect loops, and streams missed blocks
back in through the certificate-driven BlockRequest/ChainRequest catch-up
path while the rest of the cluster keeps committing.

The process periodically publishes an atomically written status file
(committed block ids, height, fallbacks, transport counters) that the
supervisor and benchmarks read to check cross-process prefix consistency
and to time recovery — the replicas themselves never need any channel
beyond the protocol's own messages.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import time
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.core.context import SharedSetup
from repro.mempool.mempool import Mempool
from repro.net.tcp import TcpTransport
from repro.runtime.live import WallClockScheduler
from repro.runtime.metrics import MetricsCollector
from repro.runtime.spec import ClusterSpec
from repro.storage.durable import DurableReplica
from repro.storage.journal import FileSafetyJournal
from repro.wire.codec import encode_message
from repro.wire.framing import FRAME_HEADER_SIZE
from repro.workloads.generator import Workload

#: How often the status file is refreshed (seconds).
STATUS_INTERVAL = 0.15


class ProcessNetwork:
    """The transport surface of a single-replica process.

    Same contract as the in-process :class:`~repro.runtime.live.LiveNetwork`
    — authenticated sender ids, deterministic multicast order over the whole
    replica group, non-reentrant self-delivery — but every non-local
    receiver is reached through this process's one :class:`TcpTransport`.
    Sends to ids outside the replica group (clients) ride the transport's
    accepted reply channels.
    """

    def __init__(
        self,
        scheduler: WallClockScheduler,
        group_size: int,
        transport: TcpTransport,
        metrics: Optional[MetricsCollector] = None,
    ) -> None:
        self.scheduler = scheduler
        self.metrics = metrics
        self.transport = transport
        self._group = tuple(range(group_size))
        self._loop = asyncio.get_running_loop()
        self._local: Optional[object] = None
        self.messages_sent = 0
        self.bytes_sent = 0
        self.encode_failures = 0
        self.sends_refused = 0

    def register(self, process) -> None:
        if self._local is not None:
            raise ValueError("process network already has a local replica")
        self._local = process

    def process_ids(self) -> list[int]:
        return list(self._group)

    def send(self, sender: int, receiver: int, message: object) -> None:
        local = self._local
        if local is not None and receiver == getattr(local, "process_id", None):
            # Same non-reentrancy as the simulator's self-delivery: the
            # current handler finishes before the message is processed.
            self._loop.call_soon(local.deliver, sender, message)
            return
        try:
            payload = encode_message(sender, message)
        except Exception:
            self.encode_failures += 1
            return
        size = FRAME_HEADER_SIZE + len(payload)
        if self.metrics is not None:
            self.metrics.on_wire_send(
                sender, receiver, message, self.scheduler.now, size
            )
        if self.transport.send(receiver, payload):
            self.messages_sent += 1
            self.bytes_sent += size
        else:
            self.sends_refused += 1

    def multicast(self, sender: int, message: object, include_self: bool = True) -> None:
        for receiver in self._group:
            if receiver == sender and not include_self:
                continue
            self.send(sender, receiver, message)


def write_status(path: Path, payload: dict) -> None:
    """Atomically publish a status snapshot (tmp + fsync + rename).

    The supervisor trusts whatever it reads here, so the staging file must
    be durable *before* the rename makes it visible — without the fsync a
    power cut can publish an empty or torn snapshot under the final name.
    """
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(payload, sort_keys=True) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def read_status(path: Path) -> Optional[dict]:
    """Parse a status snapshot; ``None`` when missing or unreadable."""
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None


class ReplicaProcess:
    """Owns one replica's event loop inside its own OS process."""

    def __init__(self, spec: ClusterSpec, replica_id: int) -> None:
        if not 0 <= replica_id < spec.n:
            raise ValueError(f"replica id {replica_id} outside 0..{spec.n - 1}")
        if len(spec.ports) != spec.n:
            raise ValueError("cluster spec has no port assignments")
        self.spec = spec
        self.replica_id = replica_id
        self.scheduler: Optional[WallClockScheduler] = None
        self.metrics: Optional[MetricsCollector] = None
        self.network: Optional[ProcessNetwork] = None
        self.transport: Optional[TcpTransport] = None
        self.replica: Optional[DurableReplica] = None
        self.restored_from_journal = False
        self._stop = asyncio.Event()
        self._started_at = time.time()

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def stop(self) -> None:
        self._stop.set()

    async def run(
        self,
        until: Optional[Callable[[], bool]] = None,
        duration: Optional[float] = None,
    ) -> dict:
        """Run until stopped (SIGTERM), ``until()`` is true, or ``duration``.

        Returns the final status payload.
        """
        spec = self.spec
        config = spec.config()
        self.scheduler = WallClockScheduler()
        setup = SharedSetup.deal(config, coin_seed=spec.seed)
        self.metrics = MetricsCollector(honest_ids=range(spec.n))
        self.metrics.attach_cert_cache(setup.cert_cache)

        journal = FileSafetyJournal(
            spec.journal_path(self.replica_id), fsync=spec.fsync
        )
        self.restored_from_journal = not journal.empty

        host, port = spec.address(self.replica_id)
        self.transport = TcpTransport(
            node_id=self.replica_id,
            on_message=self._deliver,
            host=host,
            port=port,
        )
        self.metrics.attach_transport(self.transport)
        await self.transport.start()
        for peer_id, (peer_host, peer_port) in enumerate(spec.addresses()):
            if peer_id != self.replica_id:
                self.transport.add_peer(peer_id, peer_host, peer_port)

        self.network = ProcessNetwork(
            self.scheduler, spec.n, self.transport, metrics=self.metrics
        )
        mempool = Mempool(batch_size=config.batch_size)
        self.replica = DurableReplica(
            self.replica_id,
            config,
            setup.context_for(self.replica_id),
            self.network,
            self.scheduler,
            mempool=mempool,
            observer=self.metrics,
            journal=journal,
        )
        self.network.register(self.replica)
        if spec.preload:
            # Deterministic shared backlog: every process preloads the same
            # transactions (dedup by tx_id keeps commits exactly-once).
            Workload([mempool], count=spec.preload).start(self.scheduler)

        loop = asyncio.get_running_loop()
        deadline = None if duration is None else loop.time() + duration
        status: dict = {}
        try:
            self.replica.on_start()
            while not self._stop.is_set():
                status = self._publish_status()
                if until is not None and until():
                    break
                if deadline is not None and loop.time() >= deadline:
                    break
                try:
                    await asyncio.wait_for(self._stop.wait(), timeout=STATUS_INTERVAL)
                except asyncio.TimeoutError:
                    pass
        finally:
            status = self._publish_status(final=True)
            self.replica.cancel_all_timers()
            # Shielded: a cancelled replica (SIGTERM path) must still
            # close its transport and journal before the process exits.
            await asyncio.shield(self._shutdown(journal))
        return status

    async def _shutdown(self, journal: FileSafetyJournal) -> None:
        """Transport + journal teardown; the shield target for run()."""
        await self.transport.close()
        journal.close()

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _deliver(self, peer_id: int, message: object) -> None:
        replica = self.replica
        if replica is not None:
            replica.deliver(peer_id, message)

    def committed_ids(self) -> list[str]:
        if self.replica is None:
            return []
        return [block.id for block in self.replica.ledger.committed_blocks()]

    def _publish_status(self, final: bool = False) -> dict:
        assert self.replica is not None and self.metrics is not None
        committed = self.committed_ids()
        journal = self.replica.journal
        payload = {
            "replica": self.replica_id,
            "pid": os.getpid(),
            "started_at": self._started_at,
            "updated_at": time.time(),
            "height": len(committed),
            "committed_ids": committed,
            "v_cur": self.replica.v_cur,
            "fallbacks_entered": self.replica.fallbacks_entered,
            "restored_from_journal": self.restored_from_journal,
            "journal_writes": journal.writes,
            "journal_recovered_from_corruption": getattr(
                journal, "recovered_from_corruption", False
            ),
            "transport": self.metrics.transport_counters(),
            "final": final,
        }
        write_status(self.spec.status_path(self.replica_id), payload)
        return payload


def run_replica_process(
    spec: ClusterSpec,
    replica_id: int,
    duration: Optional[float] = None,
) -> int:
    """Synchronous entry point used by the CLI: run one replica process.

    Installs SIGTERM/SIGINT handlers for a clean stop; SIGKILL needs no
    handler — surviving it is the journal's job.
    """

    async def main() -> None:
        process = ReplicaProcess(spec, replica_id)
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, process.stop)
        await process.run(duration=duration)

    asyncio.run(main())
    return 0


def collect_statuses(spec: ClusterSpec) -> dict[int, Optional[dict]]:
    """Latest status snapshot per replica (``None`` where unpublished)."""
    return {
        replica_id: read_status(spec.status_path(replica_id))
        for replica_id in range(spec.n)
    }


def prefixes_consistent(statuses: Sequence[Optional[dict]]) -> bool:
    """Pairwise prefix consistency over published committed logs.

    Missing statuses are skipped (a replica that has not published yet
    cannot witness a violation).
    """
    logs = [
        status.get("committed_ids", [])
        for status in statuses
        if status is not None
    ]
    for i in range(len(logs)):
        for j in range(i + 1, len(logs)):
            shorter = min(len(logs[i]), len(logs[j]))
            if logs[i][:shorter] != logs[j][:shorter]:
                return False
    return True
