"""Multi-process cluster supervisor: spawn, monitor, kill -9, restart.

The :class:`Supervisor` turns a :class:`~repro.runtime.spec.ClusterSpec`
into a running cluster of OS processes (one
:mod:`~repro.runtime.replica_process` per replica), then plays chaos
against it:

- it drives a **wall-clock interpretation** of the existing
  :class:`~repro.faults.schedule.FaultSchedule` DSL — ``crash(i)`` becomes
  a real ``SIGKILL`` of replica *i*'s process, ``recover(i)`` respawns it
  against its surviving on-disk journal, ``inject(fn)`` calls ``fn`` with
  the supervisor.  Transport-shaping actions (loss, partitions, delay
  models) belong to the simulator and are rejected up front: over real
  sockets the network misbehaves on its own terms.
- it **restarts** replicas that die unexpectedly, with jittered
  exponential backoff and a per-replica restart budget: a crash-looping
  replica degrades to state ``"down"`` instead of thrashing the host —
  the BFT protocol tolerates it as one of the *f* faults.
- it **times recovery**: each kill records when the process died, when it
  was respawned, and when its published height caught back up to what the
  rest of the cluster had committed at respawn time.

Replica health is read from the status files each process publishes
atomically; the supervisor never speaks the protocol itself.
"""

from __future__ import annotations

import asyncio
import os
import random
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.faults.schedule import Crash, FaultSchedule, Inject, Recover
from repro.runtime.replica_process import prefixes_consistent, read_status
from repro.runtime.spec import ClusterSpec

#: Supervisor poll interval for statuses / completion (seconds).
POLL_INTERVAL = 0.1

#: Wall-clock grace for SIGTERM before escalating to SIGKILL at shutdown.
TERM_GRACE = 2.0


@dataclass
class KillRecord:
    """One SIGKILL and the recovery that followed it."""

    replica: int
    killed_at: float
    restarted_at: Optional[float] = None
    caught_up_at: Optional[float] = None
    #: Cluster max height when the replica was respawned — catching up
    #: means re-reaching this height (a fixed, reachable target even while
    #: the cluster keeps committing past it).
    target_height: Optional[int] = None
    #: ``started_at`` of the dead incarnation's last status file; only a
    #: status newer than this counts as catch-up evidence (internal).
    stale_started_at: float = 0.0

    @property
    def restart_seconds(self) -> Optional[float]:
        if self.restarted_at is None:
            return None
        return self.restarted_at - self.killed_at

    @property
    def recovery_seconds(self) -> Optional[float]:
        """Respawn -> caught-up-to-kill-time-height (None until it happens)."""
        if self.restarted_at is None or self.caught_up_at is None:
            return None
        return self.caught_up_at - self.restarted_at

    def to_json(self) -> dict:
        return {
            "replica": self.replica,
            "killed_at": self.killed_at,
            "restarted_at": self.restarted_at,
            "caught_up_at": self.caught_up_at,
            "target_height": self.target_height,
            "restart_seconds": self.restart_seconds,
            "recovery_seconds": self.recovery_seconds,
        }


@dataclass
class ReplicaHandle:
    """Supervisor-side state for one replica slot."""

    replica_id: int
    #: "running" | "held" (scheduled kill, awaiting recover) | "down"
    #: (restart budget exhausted) | "stopped" (clean shutdown)
    state: str = "stopped"
    process: Optional[asyncio.subprocess.Process] = None
    monitor: Optional[asyncio.Task] = None
    restarts: int = 0
    spawns: int = 0
    log_handle: Optional[object] = None


@dataclass
class SupervisorReport:
    """Outcome of one supervised run."""

    n: int
    commits: int
    max_height: int
    prefixes_consistent: bool
    timed_out: bool
    wall_seconds: float
    kills: list[KillRecord] = field(default_factory=list)
    restarts: int = 0
    down: list[int] = field(default_factory=list)
    fault_log: list[tuple[float, str]] = field(default_factory=list)
    transport_totals: dict = field(default_factory=dict)
    statuses: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.prefixes_consistent and not self.timed_out

    def to_json(self) -> dict:
        return {
            "n": self.n,
            "commits": self.commits,
            "max_height": self.max_height,
            "prefixes_consistent": self.prefixes_consistent,
            "timed_out": self.timed_out,
            "wall_seconds": self.wall_seconds,
            "kills": [record.to_json() for record in self.kills],
            "restarts": self.restarts,
            "down": self.down,
            "fault_log": [[t, desc] for t, desc in self.fault_log],
            "transport_totals": self.transport_totals,
        }


class Supervisor:
    """Spawns and babysits one OS process per replica (see module doc)."""

    def __init__(
        self,
        spec: ClusterSpec,
        schedule: Optional[FaultSchedule] = None,
        restart_budget: int = 5,
        restart_backoff_initial: float = 0.2,
        restart_backoff_max: float = 3.0,
        auto_restart: bool = True,
        seed: int = 0,
    ) -> None:
        self.spec = spec
        self.schedule = schedule
        if schedule is not None:
            _validate_wall_clock_schedule(schedule)
        self.restart_budget = restart_budget
        self.restart_backoff_initial = restart_backoff_initial
        self.restart_backoff_max = restart_backoff_max
        self.auto_restart = auto_restart
        #: Jitter source for restart backoff (seeded: reproducible-ish runs).
        self.rng = random.Random(seed)
        self.handles = [ReplicaHandle(replica_id=i) for i in range(spec.n)]
        self.kills: list[KillRecord] = []
        self.fault_log: list[tuple[float, str]] = []
        self.spec_path = Path(spec.data_dir) / "cluster-spec.json"
        self._epoch: Optional[float] = None
        self._stopping = False
        self._schedule_task: Optional[asyncio.Task] = None
        self._restart_tasks: set[asyncio.Task] = set()

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Seconds since :meth:`start` (the schedule's wall-clock origin)."""
        if self._epoch is None:
            return 0.0
        return time.monotonic() - self._epoch

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Write the spec, spawn every replica, arm the fault schedule."""
        self.spec.save(self.spec_path)
        self._epoch = time.monotonic()
        for handle in self.handles:
            await self._spawn(handle)
        if self.schedule is not None:
            self._schedule_task = asyncio.get_running_loop().create_task(
                self._drive_schedule(), name="supervisor-schedule"
            )

    async def wait(
        self, target_commits: int = 20, duration: float = 120.0
    ) -> SupervisorReport:
        """Poll until every replica's height reaches the target (or timeout).

        Completion additionally requires the fault schedule to have fully
        played out and every replica to be back in ``running`` state (a
        held-for-recovery or down replica cannot publish fresh heights).
        """
        wall_start = time.monotonic()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + duration
        timed_out = False
        while True:
            statuses = self.statuses()
            self._update_catch_up(statuses)
            if self._reached(statuses, target_commits):
                break
            if loop.time() >= deadline:
                timed_out = True
                break
            await asyncio.sleep(POLL_INTERVAL)
        return self._report(timed_out, time.monotonic() - wall_start)

    async def stop(self) -> None:
        """SIGTERM everyone, escalate to SIGKILL after a grace period."""
        self._stopping = True
        if self._schedule_task is not None:
            self._schedule_task.cancel()
            await asyncio.gather(self._schedule_task, return_exceptions=True)
        for task in list(self._restart_tasks):
            task.cancel()
        if self._restart_tasks:
            await asyncio.gather(*self._restart_tasks, return_exceptions=True)
        self._restart_tasks.clear()
        for handle in self.handles:
            process = handle.process
            if process is None or process.returncode is not None:
                continue
            try:
                process.terminate()
            except ProcessLookupError:
                continue
        for handle in self.handles:
            process = handle.process
            if process is None:
                continue
            try:
                await asyncio.wait_for(process.wait(), timeout=TERM_GRACE)
            except asyncio.TimeoutError:
                try:
                    process.kill()
                except ProcessLookupError:
                    pass
                await process.wait()
            if handle.state != "down":  # "down" is diagnostic; keep it
                handle.state = "stopped"
        for handle in self.handles:
            if handle.monitor is not None:
                await asyncio.gather(handle.monitor, return_exceptions=True)
                handle.monitor = None
            self._close_log(handle)

    # ------------------------------------------------------------------
    # Chaos verbs (the wall-clock FaultSchedule backend)
    # ------------------------------------------------------------------
    def kill(self, replica_id: int) -> KillRecord:
        """SIGKILL the replica's process and hold it down until recover()."""
        handle = self.handles[replica_id]
        record = KillRecord(replica=replica_id, killed_at=self.now)
        self.kills.append(record)
        self.fault_log.append((self.now, f"kill -9 replica {replica_id}"))
        handle.state = "held"
        process = handle.process
        if process is not None and process.returncode is None:
            try:
                process.kill()
            except ProcessLookupError:
                pass
        return record

    async def restart(self, replica_id: int) -> None:
        """Respawn a held/dead replica against its surviving journal."""
        handle = self.handles[replica_id]
        process = handle.process
        if process is not None and process.returncode is None:
            try:
                process.kill()
            except ProcessLookupError:
                pass
            await process.wait()
        # Snapshot *before* the respawn: the catch-up target, and the dead
        # incarnation's status timestamp (its stale file must not count as
        # recovery evidence).
        stale = read_status(self.spec.status_path(replica_id))
        stale_started = 0.0 if stale is None else stale.get("started_at", 0.0)
        heights = [
            status.get("height", 0)
            for status in self.statuses().values()
            if status is not None
        ]
        target = max(heights, default=0)
        await self._spawn(handle)
        self.fault_log.append((self.now, f"restart replica {replica_id}"))
        restarted_at = self.now
        for record in self.kills:
            if record.replica == replica_id and record.restarted_at is None:
                record.restarted_at = restarted_at
                record.target_height = target
                record.stale_started_at = stale_started

    # ------------------------------------------------------------------
    # Health
    # ------------------------------------------------------------------
    def statuses(self) -> dict[int, Optional[dict]]:
        return {
            replica_id: read_status(self.spec.status_path(replica_id))
            for replica_id in range(self.spec.n)
        }

    def ledger_prefixes_consistent(self) -> bool:
        return prefixes_consistent(list(self.statuses().values()))

    def min_height(self) -> int:
        statuses = self.statuses().values()
        heights = [
            0 if status is None else status.get("height", 0) for status in statuses
        ]
        return min(heights, default=0)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _command(self, replica_id: int) -> list[str]:
        return [
            sys.executable,
            "-m",
            "repro",
            "live",
            "--cluster-spec",
            str(self.spec_path),
            "--replica",
            str(replica_id),
        ]

    def _environment(self) -> dict[str, str]:
        import repro

        env = dict(os.environ)
        src = str(Path(repro.__file__).resolve().parent.parent)
        existing = env.get("PYTHONPATH", "")
        if src not in existing.split(os.pathsep):
            env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
        return env

    async def _spawn(self, handle: ReplicaHandle) -> None:
        self._close_log(handle)
        # Sanctioned: opening the per-replica log in append mode is one
        # local syscall on the spawn (not the message) path.
        log = open(self.spec.log_path(handle.replica_id), "ab")  # repro-lint: ignore[blocking-in-async]
        handle.log_handle = log
        handle.process = await asyncio.create_subprocess_exec(
            *self._command(handle.replica_id),
            stdout=log,
            stderr=asyncio.subprocess.STDOUT,
            env=self._environment(),
        )
        handle.spawns += 1
        handle.state = "running"
        handle.monitor = asyncio.get_running_loop().create_task(
            self._monitor(handle), name=f"supervisor-monitor-{handle.replica_id}"
        )

    def _close_log(self, handle: ReplicaHandle) -> None:
        log = handle.log_handle
        if log is not None:
            try:
                log.close()
            except OSError:
                pass
            handle.log_handle = None

    async def _monitor(self, handle: ReplicaHandle) -> None:
        process = handle.process
        assert process is not None
        returncode = await process.wait()
        if self._stopping or handle.state in ("held", "stopped"):
            return  # expected: scheduled kill or shutdown
        # Unexpected death: crash-loop containment via budgeted restarts.
        self.fault_log.append(
            (self.now, f"replica {handle.replica_id} exited rc={returncode}")
        )
        if not self.auto_restart:
            handle.state = "down"
            return
        if handle.restarts >= self.restart_budget:
            handle.state = "down"
            self.fault_log.append(
                (
                    self.now,
                    f"replica {handle.replica_id} down: restart budget "
                    f"({self.restart_budget}) exhausted",
                )
            )
            return
        handle.restarts += 1
        delay = self._restart_delay(handle.restarts)
        task = asyncio.get_running_loop().create_task(
            self._delayed_restart(handle, delay),
            name=f"supervisor-restart-{handle.replica_id}",
        )
        self._restart_tasks.add(task)
        task.add_done_callback(self._restart_tasks.discard)

    def _restart_delay(self, attempt: int) -> float:
        base = min(
            self.restart_backoff_initial * (2.0 ** (attempt - 1)),
            self.restart_backoff_max,
        )
        return base * (0.5 + 0.5 * self.rng.random())

    async def _delayed_restart(self, handle: ReplicaHandle, delay: float) -> None:
        await asyncio.sleep(delay)
        if self._stopping or handle.state in ("held", "stopped", "down"):
            return
        await self._spawn(handle)
        self.fault_log.append(
            (self.now, f"auto-restarted replica {handle.replica_id} (#{handle.restarts})")
        )

    async def _drive_schedule(self) -> None:
        assert self.schedule is not None
        for event in sorted(self.schedule.events, key=lambda e: e.time):
            delay = event.time - self.now
            if delay > 0:
                await asyncio.sleep(delay)
            if self._stopping:
                return
            action = event.action
            if isinstance(action, Crash):
                self.kill(action.replica_id)
            elif isinstance(action, Recover):
                await self.restart(action.replica_id)
            elif isinstance(action, Inject):
                action.fn(self)
                self.fault_log.append((self.now, action.describe()))

    def _update_catch_up(self, statuses: dict[int, Optional[dict]]) -> None:
        for record in self.kills:
            if record.restarted_at is None or record.caught_up_at is not None:
                continue
            status = statuses.get(record.replica)
            if status is None:
                continue
            # Only the post-restart incarnation counts (stale files carry
            # the dead process's old started_at).
            if status.get("started_at", 0.0) <= record.stale_started_at:
                continue
            if status.get("height", 0) >= (record.target_height or 0):
                record.caught_up_at = self.now

    def _reached(
        self, statuses: dict[int, Optional[dict]], target_commits: int
    ) -> bool:
        if any(handle.state != "running" for handle in self.handles):
            return False
        if self._schedule_task is not None and not self._schedule_task.done():
            return False
        # Every executed kill must have its recovery timed, so the report
        # always carries a per-kill recovery figure.
        if any(record.caught_up_at is None for record in self.kills):
            return False
        heights = [
            0 if status is None else status.get("height", 0)
            for status in statuses.values()
        ]
        return bool(heights) and min(heights) >= target_commits

    def _report(self, timed_out: bool, wall_seconds: float) -> SupervisorReport:
        statuses = self.statuses()
        heights = [
            0 if status is None else status.get("height", 0)
            for status in statuses.values()
        ]
        transport_totals: dict[str, int] = {}
        for status in statuses.values():
            if status is None:
                continue
            totals = status.get("transport", {}).get("totals", {})
            for key, value in totals.items():
                transport_totals[key] = transport_totals.get(key, 0) + value
        return SupervisorReport(
            n=self.spec.n,
            commits=min(heights, default=0),
            max_height=max(heights, default=0),
            prefixes_consistent=prefixes_consistent(list(statuses.values())),
            timed_out=timed_out,
            wall_seconds=wall_seconds,
            kills=list(self.kills),
            restarts=sum(handle.restarts for handle in self.handles),
            down=[h.replica_id for h in self.handles if h.state == "down"],
            fault_log=list(self.fault_log),
            transport_totals=transport_totals,
            statuses=statuses,
        )


def _validate_wall_clock_schedule(schedule: FaultSchedule) -> None:
    """Wall-clock mode supports crash/recover/inject only."""
    for event in schedule.events:
        if not isinstance(event.action, (Crash, Recover, Inject)):
            raise ValueError(
                f"{event.action.describe()} has no wall-clock interpretation: "
                "the multi-process runtime only supports crash (SIGKILL), "
                "recover (respawn), and inject; shape the network with the "
                "simulator's loss/delay models instead"
            )


def kill_schedule(
    kills: int,
    n: int,
    first_at: float = 3.0,
    interval: float = 4.0,
    recover_after: float = 1.5,
) -> FaultSchedule:
    """A canonical chaos schedule: ``kills`` SIGKILL/restart pairs.

    Victims rotate round-robin over non-zero replicas (replica 0 is spared
    only so a single-kill smoke keeps its initial leader; with enough kills
    it rotates in too — the protocol does not care).
    """
    from repro.faults.schedule import crash, recover

    schedule = FaultSchedule()
    for index in range(kills):
        victim = (index % max(n - 1, 1)) + 1 if n > 1 else 0
        at = first_at + index * interval
        schedule.at(at, crash(victim))
        schedule.at(at + recover_after, recover(victim))
    return schedule
