"""Metrics: message/byte accounting, commits, rounds, fallback events.

The collector hangs off the network's send hook and the replicas' observer
hook, so it sees every honest network message and every state transition.
Communication-cost figures count only messages sent by *honest* replicas
(Byzantine senders can inflate their own cost arbitrarily), matching how the
paper accounts complexity.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.core.replica import ReplicaObserver
from repro.ledger.ledger import CommitRecord
from repro.types.blocks import FallbackBlock

#: Message types belonging to the linear fast path.
STEADY_TYPES = frozenset({"Proposal", "Vote"})
#: Message types belonging to view-change machinery (either variant).
VIEWCHANGE_TYPES = frozenset(
    {
        "PacemakerTimeout",
        "PacemakerTCMessage",
        "FallbackTimeout",
        "FallbackTCMessage",
        "FallbackProposal",
        "FallbackVote",
        "FallbackQCMessage",
        "CoinShareMessage",
        "CoinQCMessage",
    }
)
#: Catch-up traffic (not part of the protocol's complexity accounting).
SYNC_TYPES = frozenset({"BlockRequest", "BlockResponse"})


@dataclass
class CommitEvent:
    """One block commit observed at one replica."""

    replica: int
    position: int
    round: int
    view: int
    time: float
    fallback_block: bool
    batch_size: int
    tx_latencies: list[float] = field(default_factory=list)


@dataclass
class FallbackEvent:
    replica: int
    view: int
    time: float
    kind: str  # "entered" | "exited"
    leader: Optional[int] = None


class MetricsCollector(ReplicaObserver):
    """Aggregates everything the benchmarks report."""

    def __init__(self, honest_ids: Iterable[int]) -> None:
        self.honest_ids = set(honest_ids)
        self.message_counts: Counter = Counter()
        self.message_bytes: Counter = Counter()
        self.honest_messages = 0
        self.honest_bytes = 0
        #: Real codec-encoded bytes (live mode only; 0 under the simulator,
        #: where byte figures come from modeled wire_size()).
        self.encoded_bytes = 0
        self.commits: list[CommitEvent] = []
        self.fallback_events: list[FallbackEvent] = []
        self.timeouts: list[tuple[int, int, int, float]] = []
        self.round_entries: list[tuple[int, int, float]] = []
        self.proposals = 0
        # Reliable-channel overhead (populated via on_channel_event when a
        # lossy transport is in play; all zero in the paper's model).
        self.retransmissions = 0
        self.retransmit_bytes = 0
        self.acks = 0
        self.ack_bytes = 0
        self.duplicates_suppressed = 0
        self.packets_abandoned = 0
        self._committed_positions: dict[int, int] = {}
        #: Callables invoked once per distinct committed transaction.
        self.commit_listeners: list = []
        #: Callables invoked on every round entry, ``(replica, round, now)``.
        #: Used by the cluster's leader-oracle cache for invalidation.
        self.round_entry_listeners: list = []
        self._notified_txs: set[str] = set()
        #: Cluster-wide verified-certificate cache, if one is in play.
        self._cert_cache = None
        #: Cluster-wide verified-share pool, if one is in play.
        self._share_pool = None
        #: Live-mode TCP transports whose counters this collector surfaces.
        self._transports: list = []
        #: Per-request lifecycle tracker (submit/propose/commit/confirm),
        #: if a traffic pipeline attached one.
        self._request_tracker = None
        #: Admission controller whose shed counters this collector surfaces.
        self._admission = None

    def attach_cert_cache(self, cache) -> None:
        """Surface a :class:`~repro.crypto.certcache.VerifiedCertCache`'s
        hit/miss counters through this collector."""
        self._cert_cache = cache

    def attach_share_pool(self, pool) -> None:
        """Surface a :class:`~repro.crypto.sharepool.VerifiedSharePool`'s
        hit/miss counters through this collector."""
        self._share_pool = pool

    def attach_transport(self, transport) -> None:
        """Surface a :class:`~repro.net.tcp.TcpTransport`'s error-containment
        and per-peer reconnect/drop counters through this collector."""
        self._transports.append(transport)

    def attach_request_tracker(self, tracker) -> None:
        """Feed per-request propose/commit timestamps into a
        :class:`~repro.traffic.slo.RequestTracker` (first honest occurrence
        of each stage wins; the admission path supplies submit times)."""
        self._request_tracker = tracker

    def attach_admission(self, admission) -> None:
        """Surface an :class:`~repro.traffic.admission.AdmissionController`'s
        offered/admitted/rejected counters through this collector."""
        self._admission = admission

    # ------------------------------------------------------------------
    # Network hooks
    # ------------------------------------------------------------------
    def on_send(self, sender: int, receiver: int, message: object, time: float, delay: float) -> None:
        if sender not in self.honest_ids:
            return
        # Bytes are billed at the full frame (channel header included);
        # classification uses the protocol payload inside a DataPacket so
        # phase accounting stays comparable with the reliable-link model.
        try:
            size = message.wire_size()
        except AttributeError:
            size = 64
        payload = getattr(message, "payload", message)
        name = type(payload).__name__
        self.message_counts[name] += 1
        self.message_bytes[name] += size
        self.honest_messages += 1
        self.honest_bytes += size

    def on_wire_send(
        self, sender: int, receiver: int, message: object, time: float, size: int
    ) -> None:
        """Live-network hook: like :meth:`on_send` but billed at the *real*
        encoded frame size instead of the modeled ``wire_size()``."""
        if sender not in self.honest_ids:
            return
        name = type(message).__name__
        self.message_counts[name] += 1
        self.message_bytes[name] += size
        self.honest_messages += 1
        self.honest_bytes += size
        self.encoded_bytes += size

    def on_channel_event(
        self, kind: str, sender: int, receiver: int, packet: object, time: float
    ) -> None:
        """Channel hook: retransmit/ack/duplicate/abandon overhead events."""
        if sender not in self.honest_ids:
            return
        size = getattr(packet, "wire_size", lambda: 64)()
        if kind == "retransmit":
            self.retransmissions += 1
            self.retransmit_bytes += size
        elif kind == "ack":
            self.acks += 1
            self.ack_bytes += size
        elif kind == "duplicate":
            self.duplicates_suppressed += 1
        elif kind == "abandon":
            self.packets_abandoned += 1

    # ------------------------------------------------------------------
    # Replica observer hooks
    # ------------------------------------------------------------------
    def on_commit(self, replica: int, record: CommitRecord, now: float) -> None:
        block = record.block
        self.commits.append(
            CommitEvent(
                replica=replica,
                position=record.position,
                round=block.round,
                view=block.view,
                time=now,
                fallback_block=isinstance(block, FallbackBlock),
                batch_size=len(block.batch),
                tx_latencies=[now - tx.submitted_at for tx in block.batch],
            )
        )
        if replica in self.honest_ids:
            previous = self._committed_positions.get(replica, -1)
            self._committed_positions[replica] = max(previous, record.position)
            if self._request_tracker is not None:
                for transaction in block.batch:
                    self._request_tracker.note_commit(transaction.tx_id, now)
            if self.commit_listeners:
                for transaction in block.batch:
                    if transaction.tx_id in self._notified_txs:
                        continue
                    self._notified_txs.add(transaction.tx_id)
                    for listener in self.commit_listeners:
                        listener(transaction)

    def on_round_entered(self, replica: int, round_number: int, now: float) -> None:
        self.round_entries.append((replica, round_number, now))
        if self.round_entry_listeners:
            for listener in self.round_entry_listeners:
                listener(replica, round_number, now)

    def on_state_reset(self, replica: int, now: float) -> None:
        """A replica rebuilt volatile state (crash recovery): its ``r_cur``
        may have moved without a round entry, so flush round caches."""
        if self.round_entry_listeners:
            for listener in self.round_entry_listeners:
                listener(replica, 0, now)

    def on_timeout(self, replica: int, view: int, round_number: int, now: float) -> None:
        self.timeouts.append((replica, view, round_number, now))

    def on_fallback_entered(self, replica: int, view: int, now: float) -> None:
        self.fallback_events.append(
            FallbackEvent(replica=replica, view=view, time=now, kind="entered")
        )

    def on_fallback_exited(self, replica: int, view: int, leader: int, now: float) -> None:
        self.fallback_events.append(
            FallbackEvent(replica=replica, view=view, time=now, kind="exited", leader=leader)
        )

    def on_proposal(self, replica: int, block, now: float) -> None:
        self.proposals += 1
        if self._request_tracker is not None and replica in self.honest_ids:
            for transaction in block.batch:
                self._request_tracker.note_propose(transaction.tx_id, now)

    # ------------------------------------------------------------------
    # Derived statistics
    # ------------------------------------------------------------------
    def decisions(self) -> int:
        """Committed chain height: the max over honest replicas.

        Safety makes committed logs prefix-consistent, so the max height is
        the number of globally decided blocks.
        """
        if not self._committed_positions:
            return 0
        return max(self._committed_positions.values()) + 1

    def min_honest_height(self) -> int:
        """Height every honest replica has reached (lagging replicas count)."""
        if len(self._committed_positions) < len(self.honest_ids):
            return 0
        return min(self._committed_positions.values()) + 1

    def messages_per_decision(self) -> Optional[float]:
        decisions = self.decisions()
        if decisions == 0:
            return None
        return self.honest_messages / decisions

    def bytes_per_decision(self) -> Optional[float]:
        decisions = self.decisions()
        if decisions == 0:
            return None
        return self.honest_bytes / decisions

    def phase_messages(self) -> dict[str, int]:
        """Message counts grouped into steady / view-change / sync phases."""
        phases = {"steady": 0, "view_change": 0, "sync": 0, "other": 0}
        for name, count in self.message_counts.items():
            if name in STEADY_TYPES:
                phases["steady"] += count
            elif name in VIEWCHANGE_TYPES:
                phases["view_change"] += count
            elif name in SYNC_TYPES:
                phases["sync"] += count
            else:
                phases["other"] += count
        return phases

    def commit_latencies(self) -> list[float]:
        """End-to-end transaction latencies across all honest commits."""
        return [
            latency
            for event in self.commits
            if event.replica in self.honest_ids
            for latency in event.tx_latencies
        ]

    def fallback_count(self) -> int:
        """Distinct fallback views some honest replica entered."""
        return len(
            {event.view for event in self.fallback_events if event.kind == "entered"}
        )

    def commits_at(self, replica: int) -> list[CommitEvent]:
        return [event for event in self.commits if event.replica == replica]

    def cert_cache_counters(self) -> dict[str, int]:
        """Verified-certificate cache counters (all zero without a cache)."""
        if self._cert_cache is None:
            return {"hits": 0, "misses": 0, "entries": 0, "invalidations": 0}
        return self._cert_cache.counters()

    def share_pool_counters(self) -> dict[str, int]:
        """Verified-share pool counters (all zero without a pool)."""
        if self._share_pool is None:
            return {"hits": 0, "misses": 0, "entries": 0, "invalidations": 0}
        return self._share_pool.counters()

    def admission_counters(self) -> dict:
        """Admission offered/admitted/rejected (all zero without one)."""
        if self._admission is None:
            return {
                "offered": 0,
                "admitted": 0,
                "rejected": 0,
                "reject_rate": 0.0,
                "mempool_rejects": 0,
                "rejected_by_source": {},
            }
        return self._admission.counters()

    def request_slo(self) -> Optional[dict]:
        """Per-stage latency summaries, when a request tracker is attached."""
        if self._request_tracker is None:
            return None
        return self._request_tracker.summary_json()

    def transport_counters(self) -> dict:
        """Live transport summary: cluster totals plus per-peer breakdowns.

        ``totals`` sums the error-containment counters across every attached
        transport; ``per_peer`` maps each transport's node id to its
        per-peer reconnect/backpressure/volume counters (see
        :meth:`~repro.net.tcp.TcpTransport.per_peer_counters`).  Empty
        totals (all zero) under the simulator, where no transport exists.
        """
        totals = {
            "frames_sent": 0,
            "bytes_sent": 0,
            "frames_received": 0,
            "decode_errors": 0,
            "frame_errors": 0,
            "auth_failures": 0,
            "dropped_backpressure": 0,
            "reconnects": 0,
            "no_route": 0,
        }
        per_peer: dict[int, dict[int, dict[str, int]]] = {}
        for transport in self._transports:
            for key, value in transport.counters().items():
                totals[key] = totals.get(key, 0) + value
            per_peer[transport.node_id] = transport.per_peer_counters()
        return {"totals": totals, "per_peer": per_peer}

    def summary(self) -> str:
        lines = [
            f"decisions: {self.decisions()}",
            f"honest messages: {self.honest_messages}",
            f"honest bytes: {self.honest_bytes}",
            f"messages/decision: {self.messages_per_decision()}",
            f"fallbacks entered: {self.fallback_count()}",
            f"retransmissions: {self.retransmissions} ({self.retransmit_bytes} bytes)",
            f"duplicates suppressed: {self.duplicates_suppressed}",
            f"ack overhead: {self.acks} acks ({self.ack_bytes} bytes)",
        ]
        cache = self.cert_cache_counters()
        lines.append(
            f"cert cache: {cache['hits']} hits, {cache['misses']} misses, "
            f"{cache['invalidations']} invalidations"
        )
        pool = self.share_pool_counters()
        lines.append(
            f"share pool: {pool['hits']} hits, {pool['misses']} misses, "
            f"{pool['invalidations']} invalidations"
        )
        if self._transports:
            totals = self.transport_counters()["totals"]
            lines.append(
                f"transport: {totals['reconnects']} reconnects, "
                f"{totals['dropped_backpressure']} backpressure drops, "
                f"{totals['no_route']} unroutable sends"
            )
        phases = self.phase_messages()
        lines.append(
            "phases: "
            + ", ".join(f"{name}={count}" for name, count in sorted(phases.items()))
        )
        return "\n".join(lines)
