"""Live-cluster runtime: the protocol over real sockets and a real clock.

This module runs *unchanged* :class:`~repro.core.replica.Replica` (or
:class:`~repro.storage.durable.DurableReplica`) instances over localhost
TCP with wall-clock timers:

- :class:`WallClockScheduler` / :class:`WallClockTimer` implement the
  :mod:`repro.sim.timers` interface on top of ``loop.call_later`` —
  ``now`` is wall-clock seconds since cluster start, so protocol timeout
  arithmetic works identically under both clocks.
- :class:`LiveNetwork` implements the transport surface replicas use
  (``send`` / ``multicast``) by codec-encoding each message and handing
  the bytes to per-replica :class:`~repro.net.tcp.TcpTransport` endpoints.
  Byte accounting uses *real encoded sizes* (frame header + payload), not
  the modeled ``wire_size()`` estimates.
- :class:`LiveCluster` assembles n replicas in one process on one asyncio
  event loop.  Handler atomicity is preserved — the loop is single-threaded
  and every delivery/timer callback is synchronous — so replica logic needs
  no locks, exactly as in the simulator.

Chaos: :meth:`LiveCluster.run` with ``force_fallback=True`` installs a
drop-``Proposal`` filter for a bounded window mid-run.  Steady-state
progress stalls, round timers expire for real, the asynchronous fallback
runs over the sockets (fallback message types pass the filter), the coin
elects a leader, and the cluster commits through the fallback before
resuming the fast path — the paper's "network goes bad" story end to end.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Protocol

from repro.core.config import ProtocolConfig, ProtocolVariant
from repro.core.context import SharedSetup
from repro.core.replica import Replica
from repro.mempool.mempool import Mempool
from repro.net.tcp import TcpTransport
from repro.runtime.metrics import MetricsCollector
from repro.types.messages import Proposal
from repro.wire.codec import encode_message
from repro.wire.framing import FRAME_HEADER_SIZE
from repro.workloads.generator import Workload

#: Filter signature: (sender, receiver, message) -> True to DROP.
DropFilter = Callable[[int, int, object], bool]


class _DeliverableProcess(Protocol):
    """What :class:`LiveNetwork` needs from a registered process.

    Structurally satisfied by :class:`~repro.sim.process.Process` (and so
    by every replica variant) without importing the simulator base class.
    """

    process_id: int

    def deliver(self, sender: int, message: Any) -> None: ...


# ----------------------------------------------------------------------
# Wall-clock timers (the live TimerScheduler)
# ----------------------------------------------------------------------
class WallClockTimer:
    """A ``loop.call_later`` handle behind the :class:`TimerHandle` interface."""

    __slots__ = ("_handle", "_deadline", "_fired", "_cancelled")

    def __init__(self) -> None:
        self._handle: Optional[asyncio.TimerHandle] = None
        self._deadline = 0.0
        self._fired = False
        self._cancelled = False

    @property
    def deadline(self) -> float:
        return self._deadline

    @property
    def active(self) -> bool:
        return not self._fired and not self._cancelled

    def cancel(self) -> None:
        self._cancelled = True
        if self._handle is not None:
            self._handle.cancel()


class WallClockScheduler:
    """The live :class:`~repro.sim.timers.TimerScheduler`.

    ``now`` is wall-clock seconds since construction (same origin for the
    whole cluster), so timeout arithmetic and latency metrics read the same
    way as simulated time.
    """

    def __init__(self, loop: Optional[asyncio.AbstractEventLoop] = None) -> None:
        self._loop = loop if loop is not None else asyncio.get_running_loop()
        self._epoch = self._loop.time()

    @property
    def now(self) -> float:
        return self._loop.time() - self._epoch

    def set_timer(
        self, delay: float, action: Callable[[], None], label: str = "timer"
    ) -> WallClockTimer:
        timer = WallClockTimer()
        timer._deadline = self.now + max(delay, 0.0)

        def fire() -> None:
            timer._fired = True
            action()

        timer._handle = self._loop.call_later(max(delay, 0.0), fire)
        return timer


# ----------------------------------------------------------------------
# Live network
# ----------------------------------------------------------------------
class LiveNetwork:
    """The replicas' transport surface, backed by TCP endpoints.

    Mirrors the simulated network's contract: authenticated sender ids,
    deterministic multicast order, immediate (but not reentrant)
    self-delivery.  Every remote send is codec-encoded once and billed at
    its true framed size via :meth:`MetricsCollector.on_wire_send`.
    """

    def __init__(
        self,
        scheduler: WallClockScheduler,
        metrics: Optional[MetricsCollector] = None,
    ) -> None:
        self.scheduler = scheduler
        self.metrics = metrics
        self._loop = asyncio.get_running_loop()
        self._processes: dict[int, _DeliverableProcess] = {}
        self._transports: dict[int, TcpTransport] = {}
        self._group_sorted: tuple[int, ...] = ()
        #: Filters applied to remote sends; any True verdict drops the send.
        self._drop_filters: list[DropFilter] = []
        self.messages_sent = 0
        self.bytes_sent = 0
        self.messages_dropped = 0
        self.encode_failures = 0

    # -- topology ------------------------------------------------------
    def register(
        self, process: _DeliverableProcess, transport: TcpTransport
    ) -> None:
        process_id = process.process_id
        if process_id in self._processes:
            raise ValueError(f"process id {process_id} already registered")
        self._processes[process_id] = process
        self._transports[process_id] = transport
        self._group_sorted = tuple(sorted(self._processes))

    def process_ids(self) -> list[int]:
        return list(self._group_sorted)

    def process(self, process_id: int) -> _DeliverableProcess:
        return self._processes[process_id]

    # -- chaos ---------------------------------------------------------
    def add_drop_filter(self, drop: DropFilter) -> None:
        self._drop_filters.append(drop)

    def remove_drop_filter(self, drop: DropFilter) -> None:
        if drop in self._drop_filters:
            self._drop_filters.remove(drop)

    # -- sending -------------------------------------------------------
    def send(self, sender: int, receiver: int, message: object) -> None:
        if receiver == sender:
            # Same non-reentrancy as the simulator's self-delivery: the
            # current handler finishes before the message is processed.
            target = self._processes[receiver]
            self._loop.call_soon(target.deliver, sender, message)
            return
        for drop in self._drop_filters:
            if drop(sender, receiver, message):
                self.messages_dropped += 1
                return
        try:
            payload = encode_message(sender, message)
        except Exception:
            self.encode_failures += 1
            return
        self.messages_sent += 1
        size = FRAME_HEADER_SIZE + len(payload)
        self.bytes_sent += size
        if self.metrics is not None:
            self.metrics.on_wire_send(
                sender, receiver, message, self.scheduler.now, size
            )
        self._transports[sender].send(receiver, payload)

    def multicast(self, sender: int, message: object, include_self: bool = True) -> None:
        for receiver in self._group_sorted:
            if receiver == sender and not include_self:
                continue
            self.send(sender, receiver, message)

    # -- receiving (transport callbacks) -------------------------------
    def make_delivery_handler(self, owner_id: int) -> Callable[[int, object], None]:
        """Inbound handler for ``owner_id``'s transport."""

        def deliver(peer_id: int, message: object) -> None:
            process = self._processes.get(owner_id)
            if process is not None:
                process.deliver(peer_id, message)

        return deliver

    # -- reporting -----------------------------------------------------
    def transport_counters(self) -> dict[str, int]:
        totals: dict[str, int] = {}
        for transport in self._transports.values():
            for key, value in transport.counters().items():
                totals[key] = totals.get(key, 0) + value
        return totals


# ----------------------------------------------------------------------
# Live cluster
# ----------------------------------------------------------------------
@dataclass
class LiveRunReport:
    """Outcome of one :meth:`LiveCluster.run`."""

    decisions: int
    min_honest_height: int
    fallbacks: int
    wall_seconds: float
    encoded_bytes: int
    messages_sent: int
    messages_dropped: int
    ledgers_consistent: bool
    timed_out: bool
    transport: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.ledgers_consistent and not self.timed_out


class LiveCluster:
    """n unchanged replicas over localhost TCP on one asyncio loop.

    Synchronous facade: :meth:`run` owns the event loop (``asyncio.run``),
    so callers — the CLI, tests, CI — need no async plumbing.
    """

    def __init__(
        self,
        n: int = 4,
        seed: int = 0,
        variant: ProtocolVariant = ProtocolVariant.FALLBACK_3CHAIN,
        round_timeout: float = 1.0,
        batch_size: int = 10,
        preload: int = 1000,
        durable: bool = False,
        host: str = "127.0.0.1",
        config: Optional[ProtocolConfig] = None,
    ) -> None:
        if config is not None and config.n != n:
            raise ValueError(f"conflicting cluster sizes: n={n} vs config.n={config.n}")
        self.config = config if config is not None else ProtocolConfig(
            n=n,
            variant=variant,
            round_timeout=round_timeout,
            batch_size=batch_size,
        )
        self.seed = seed
        self.preload = preload
        self.durable = durable
        self.host = host
        # Populated during run() (valid while the loop is alive, inspectable
        # after it for counters/ledgers — sockets are closed by then).
        self.scheduler: Optional[WallClockScheduler] = None
        self.network: Optional[LiveNetwork] = None
        self.metrics: Optional[MetricsCollector] = None
        self.replicas: list[Replica] = []
        self.transports: list[TcpTransport] = []

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(
        self,
        target_commits: int = 20,
        timeout: float = 60.0,
        force_fallback: bool = False,
        fallback_after_commits: int = 5,
    ) -> LiveRunReport:
        """Run until every replica commits ``target_commits`` blocks.

        ``force_fallback`` stalls the fast path mid-run (Proposals dropped
        for ~2.5 round timeouts once ``fallback_after_commits`` blocks have
        committed), forcing a real timeout -> fallback -> coin-elected
        commit before steady state resumes.
        """
        return asyncio.run(
            self._run(target_commits, timeout, force_fallback, fallback_after_commits)
        )

    async def _close_transports(self) -> None:
        """Close every transport; the shield target for cancelled runs."""
        for transport in self.transports:
            await transport.close()

    async def _run(
        self,
        target_commits: int,
        timeout: float,
        force_fallback: bool,
        fallback_after_commits: int,
    ) -> LiveRunReport:
        wall_start = time.perf_counter()
        await self._build()
        assert self.metrics is not None and self.network is not None
        metrics, network = self.metrics, self.network
        timed_out = False
        drop_proposals: DropFilter = lambda s, r, m: isinstance(m, Proposal)
        fallback_pending = force_fallback
        fallback_clear_at: Optional[float] = None
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        try:
            for replica in self.replicas:
                replica.on_start()
            while True:
                done = metrics.min_honest_height() >= target_commits
                if done and not fallback_pending and fallback_clear_at is None:
                    break
                if loop.time() >= deadline:
                    timed_out = True
                    break
                if fallback_pending and metrics.decisions() >= fallback_after_commits:
                    fallback_pending = False
                    network.add_drop_filter(drop_proposals)
                    fallback_clear_at = (
                        loop.time() + 2.5 * self.config.round_timeout
                    )
                if fallback_clear_at is not None and loop.time() >= fallback_clear_at:
                    network.remove_drop_filter(drop_proposals)
                    fallback_clear_at = None
                await asyncio.sleep(0.02)
        finally:
            for replica in self.replicas:
                replica.cancel_all_timers()
            # Shielded: a cancelled run must still close every transport.
            await asyncio.shield(self._close_transports())
        return LiveRunReport(
            decisions=metrics.decisions(),
            min_honest_height=metrics.min_honest_height(),
            fallbacks=metrics.fallback_count(),
            wall_seconds=time.perf_counter() - wall_start,
            encoded_bytes=metrics.encoded_bytes,
            messages_sent=network.messages_sent,
            messages_dropped=network.messages_dropped,
            ledgers_consistent=self.ledger_prefixes_consistent(),
            timed_out=timed_out,
            transport=network.transport_counters(),
        )

    # ------------------------------------------------------------------
    # Open-loop traffic (wall clock)
    # ------------------------------------------------------------------
    def run_open_loop(
        self,
        rate: float,
        duration: float,
        drain: float = 10.0,
        mempool_capacity: Optional[int] = None,
        loadgen_seed: int = 0,
    ) -> dict[str, Any]:
        """Drive the live cluster open-loop at ``rate`` offers/sec.

        Poisson arrivals flow through a bounded-queue
        :class:`~repro.traffic.admission.AdmissionController` for
        ``duration`` wall-clock seconds, then admitted work gets ``drain``
        seconds to commit.  Returns a JSON-ready record with admission
        counters, goodput, and submit->commit SLO percentiles — the live
        counterpart of :func:`repro.traffic.saturation.measure_rate`.
        """
        return asyncio.run(
            self._run_open_loop(rate, duration, drain, mempool_capacity, loadgen_seed)
        )

    async def _run_open_loop(
        self,
        rate: float,
        duration: float,
        drain: float,
        mempool_capacity: Optional[int],
        loadgen_seed: int,
    ) -> dict[str, Any]:
        from repro.traffic.admission import AdmissionController
        from repro.traffic.envelope import TrafficEnvelope
        from repro.traffic.loadgen import OpenLoopGenerator, PoissonArrivals
        from repro.traffic.slo import RequestTracker, summarize

        wall_start = time.perf_counter()
        await self._build()
        assert self.metrics is not None and self.scheduler is not None
        scheduler = self.scheduler
        mempools = [replica.mempool for replica in self.replicas]
        if mempool_capacity is not None:
            for mempool in mempools:
                mempool.capacity = mempool_capacity
        envelope = TrafficEnvelope()
        tracker = RequestTracker()
        admission = AdmissionController(mempools, envelope=envelope, tracker=tracker)
        self.metrics.attach_request_tracker(tracker)
        self.metrics.attach_admission(admission)
        generator = OpenLoopGenerator(
            PoissonArrivals(rate, seed=loadgen_seed), admission.offer
        )
        loop = asyncio.get_running_loop()
        try:
            for replica in self.replicas:
                replica.on_start()
            await generator.run_wall_clock(duration, lambda: scheduler.now)
            deadline = loop.time() + drain
            while (
                loop.time() < deadline
                and tracker.committed_count() < admission.admitted
            ):
                await asyncio.sleep(0.05)
        finally:
            for replica in self.replicas:
                replica.cancel_all_timers()
            # Shielded: a cancelled run must still close every transport.
            await asyncio.shield(self._close_transports())
        committed = tracker.committed_count()
        return {
            "offered_rate": rate,
            "duration": duration,
            **admission.counters(),
            "committed": committed,
            "goodput": committed / duration,
            "goodput_ratio": committed / max(1, admission.offered),
            "latency": summarize(tracker.commit_latencies()).to_json(),
            "slo": tracker.summary_json(),
            "envelope": envelope.cluster.snapshot(),
            "fallbacks": self.metrics.fallback_count(),
            "ledgers_consistent": self.ledger_prefixes_consistent(),
            "wall_seconds": time.perf_counter() - wall_start,
        }

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------
    async def _build(self) -> None:
        config = self.config
        self.scheduler = WallClockScheduler()
        setup = SharedSetup.deal(config, coin_seed=self.seed)
        self.metrics = MetricsCollector(honest_ids=range(config.n))
        self.metrics.attach_cert_cache(setup.cert_cache)
        self.network = LiveNetwork(self.scheduler, metrics=self.metrics)

        # Bind every listener first (ephemeral ports), then mesh.
        self.transports = []
        addresses: list[tuple[str, int]] = []
        for replica_id in range(config.n):
            transport = TcpTransport(
                node_id=replica_id,
                on_message=self.network.make_delivery_handler(replica_id),
                host=self.host,
            )
            addresses.append(await transport.start())
            self.transports.append(transport)
            self.metrics.attach_transport(transport)
        for replica_id, transport in enumerate(self.transports):
            for peer_id, (host, port) in enumerate(addresses):
                if peer_id != replica_id:
                    transport.add_peer(peer_id, host, port)

        replica_cls: type[Replica] = Replica
        if self.durable:
            from repro.storage.durable import DurableReplica

            replica_cls = DurableReplica

        mempools = [Mempool(batch_size=config.batch_size) for _ in range(config.n)]
        self.replicas = []
        for replica_id in range(config.n):
            replica = replica_cls(
                replica_id,
                config,
                setup.context_for(replica_id),
                self.network,
                self.scheduler,
                mempool=mempools[replica_id],
                observer=self.metrics,
            )
            self.replicas.append(replica)
            self.network.register(replica, self.transports[replica_id])

        Workload(mempools, count=self.preload).start(self.scheduler)

    # ------------------------------------------------------------------
    # Safety check
    # ------------------------------------------------------------------
    def committed_ids(self, replica_id: int) -> list[str]:
        return [
            block.id for block in self.replicas[replica_id].ledger.committed_blocks()
        ]

    def ledger_prefixes_consistent(self) -> bool:
        """Every pair of committed logs is prefix-consistent (safety)."""
        logs = [self.committed_ids(i) for i in range(self.config.n)]
        for i in range(len(logs)):
            for j in range(i + 1, len(logs)):
                shorter = min(len(logs[i]), len(logs[j]))
                if logs[i][:shorter] != logs[j][:shorter]:
                    return False
        return True
