"""Cluster runtime: wiring replicas, networks, workloads and metrics."""

from repro.runtime.cluster import Cluster, ClusterBuilder, RunResult
from repro.runtime.metrics import MetricsCollector

__all__ = ["Cluster", "ClusterBuilder", "MetricsCollector", "RunResult"]
