"""Cross-region network topology delay model.

Deployments of permissioned BFT systems span datacenters; intra-region
latency is small, inter-region latency large.  :class:`CrossRegionDelay`
assigns each replica to a region and draws delays from per-pair latency
bands — still synchronous (bounded), but with the latency structure real
deployments show.  Useful for the leader-placement and batch-size ablations.
"""

from __future__ import annotations

import random
from typing import Mapping, Optional, Sequence

from repro.net.conditions import DelayModel


class CrossRegionDelay(DelayModel):
    """Region-structured synchronous delays.

    Args:
        region_of: replica id -> region name.
        intra: (min, max) delay within a region.
        inter: (min, max) delay across regions, or a per-pair mapping
            ``{(region_a, region_b): (min, max)}`` (symmetric; missing pairs
            fall back to the default band).
    """

    def __init__(
        self,
        region_of: Mapping[int, str],
        intra: tuple[float, float] = (0.02, 0.08),
        inter: tuple[float, float] = (0.5, 1.5),
        pair_bands: Optional[Mapping[tuple[str, str], tuple[float, float]]] = None,
    ) -> None:
        if not region_of:
            raise ValueError("region_of must assign at least one replica")
        for low, high in [intra, inter]:
            if not 0 < low <= high:
                raise ValueError("delay bands need 0 < min <= max")
        self.region_of = dict(region_of)
        self.intra = intra
        self.inter = inter
        self.pair_bands = {}
        for (a, b), band in (pair_bands or {}).items():
            self.pair_bands[(a, b)] = band
            self.pair_bands[(b, a)] = band

    def band_for(self, sender: int, receiver: int) -> tuple[float, float]:
        region_a = self.region_of.get(sender)
        region_b = self.region_of.get(receiver)
        if region_a is None or region_b is None:
            return self.inter
        if region_a == region_b:
            return self.intra
        return self.pair_bands.get((region_a, region_b), self.inter)

    def delay(self, sender, receiver, message, now, rng: random.Random) -> float:
        low, high = self.band_for(sender, receiver)
        return rng.uniform(low, high)

    def describe(self) -> str:
        regions = sorted(set(self.region_of.values()))
        return f"cross-region({','.join(regions)})"

    @property
    def delta(self) -> float:
        """The synchrony bound Δ implied by the slowest band."""
        candidates = [self.intra[1], self.inter[1]]
        candidates.extend(high for _, high in self.pair_bands.values())
        return max(candidates)


def evenly_spread_regions(n: int, regions: Sequence[str]) -> dict[int, str]:
    """Assign n replicas round-robin across the given regions."""
    if not regions:
        raise ValueError("need at least one region")
    return {replica: regions[replica % len(regions)] for replica in range(n)}
