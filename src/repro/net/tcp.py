"""Asyncio TCP transport: one listener per replica, reconnecting peers.

This is the live counterpart of the simulated :class:`~repro.net.network.
Network` wire: a :class:`TcpTransport` owns one node's listening socket and
one outbound channel per peer.  Outbound channels dial lazily, reconnect
with exponential backoff, and buffer sends in a bounded per-peer queue —
when the queue is full the *newest* message is dropped and counted
(protocol correctness never depends on delivery: timeouts and the
certificate-driven catch-up path recover, exactly as they do under the
simulator's loss models).

Authentication mirrors the simulated network's "the receiver learns the
true sender" guarantee: every outbound connection opens with a HELLO frame
(magic, wire version, dialer id), and each subsequent payload's envelope
sender must match the handshake identity or the message is discarded.
Localhost TCP stands in for the authenticated channels the paper assumes;
a real deployment would put TLS or a MAC in the envelope's auth slot.

Error containment follows the framing contract: a payload that fails
:func:`~repro.wire.codec.decode_message` poisons only that one message
(counted, connection kept); a framing violation loses stream sync, so the
connection is dropped and the dialer's reconnect loop rebuilds it.
"""

from __future__ import annotations

import asyncio
import struct
from typing import Callable, Optional

from repro.wire.codec import DecodeError, WIRE_VERSION, decode_message
from repro.wire.framing import FrameError, encode_frame, read_frame

#: HELLO payload: magic, wire version, dialer node id.
_HELLO = struct.Struct(">4sBq")
_MAGIC = b"RPRO"

#: Reconnect backoff bounds (seconds).
_BACKOFF_INITIAL = 0.05
_BACKOFF_MAX = 1.0

#: Delivery callback: (peer_id, message).
MessageHandler = Callable[[int, object], None]


class _PeerChannel:
    """Reconnecting outbound channel to one peer with a bounded send queue."""

    def __init__(
        self, transport: "TcpTransport", peer_id: int, host: str, port: int
    ) -> None:
        self.transport = transport
        self.peer_id = peer_id
        self.host = host
        self.port = port
        self.queue: asyncio.Queue[Optional[bytes]] = asyncio.Queue(
            maxsize=transport.queue_limit
        )
        self.task: Optional[asyncio.Task] = None
        self._closed = False

    def start(self) -> None:
        self.task = asyncio.get_running_loop().create_task(
            self._run(), name=f"tcp-send:{self.transport.node_id}->{self.peer_id}"
        )

    def send(self, payload: bytes) -> bool:
        """Enqueue one payload; drop-newest on backpressure."""
        if self._closed:
            return False
        try:
            self.queue.put_nowait(payload)
            return True
        except asyncio.QueueFull:
            self.transport.dropped_backpressure += 1
            return False

    async def _run(self) -> None:
        backoff = _BACKOFF_INITIAL
        while not self._closed:
            try:
                reader, writer = await asyncio.open_connection(self.host, self.port)
            except OSError:
                await asyncio.sleep(backoff)
                backoff = min(backoff * 2, _BACKOFF_MAX)
                continue
            backoff = _BACKOFF_INITIAL
            try:
                writer.write(
                    encode_frame(
                        _HELLO.pack(_MAGIC, WIRE_VERSION, self.transport.node_id)
                    )
                )
                await writer.drain()
                while True:
                    payload = await self.queue.get()
                    if payload is None:
                        return
                    writer.write(encode_frame(payload))
                    await writer.drain()
                    self.transport.frames_sent += 1
                    self.transport.bytes_sent += len(payload)
            except (ConnectionError, OSError):
                self.transport.reconnects += 1
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass

    async def close(self) -> None:
        self._closed = True
        if self.task is None:
            return
        # Unblock the sender loop; if it's mid-reconnect, cancel instead.
        try:
            self.queue.put_nowait(None)
        except asyncio.QueueFull:
            pass
        try:
            await asyncio.wait_for(asyncio.shield(self.task), timeout=0.5)
        except (asyncio.TimeoutError, asyncio.CancelledError):
            self.task.cancel()
            try:
                await self.task
            except (asyncio.CancelledError, ConnectionError, OSError):
                pass


class TcpTransport:
    """One node's TCP endpoint: a listener plus per-peer outbound channels.

    Usage::

        transport = TcpTransport(node_id=0, on_message=handler)
        host, port = await transport.start()      # bind (port 0 = ephemeral)
        transport.add_peer(1, "127.0.0.1", 9001)  # dials lazily
        transport.send(1, payload_bytes)          # queued, framed, shipped
        await transport.close()
    """

    def __init__(
        self,
        node_id: int,
        on_message: MessageHandler,
        host: str = "127.0.0.1",
        port: int = 0,
        queue_limit: int = 1024,
    ) -> None:
        self.node_id = node_id
        self.on_message = on_message
        self.host = host
        self.port = port
        self.queue_limit = queue_limit
        self._server: Optional[asyncio.base_events.Server] = None
        self._channels: dict[int, _PeerChannel] = {}
        self._inbound_tasks: set[asyncio.Task] = set()
        self._closed = False
        # Counters (read by LiveNetwork reports and the transport tests).
        self.frames_sent = 0
        self.bytes_sent = 0
        self.frames_received = 0
        self.bytes_received = 0
        self.decode_errors = 0
        self.frame_errors = 0
        self.auth_failures = 0
        self.dropped_backpressure = 0
        self.reconnects = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind the listener; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._handle_inbound, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.host, self.port

    def add_peer(self, peer_id: int, host: str, port: int) -> None:
        if peer_id in self._channels:
            raise ValueError(f"peer {peer_id} already added")
        channel = _PeerChannel(self, peer_id, host, port)
        self._channels[peer_id] = channel
        channel.start()

    async def close(self) -> None:
        """Stop the listener, drain channels, cancel inbound readers."""
        self._closed = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for channel in self._channels.values():
            await channel.close()
        for task in list(self._inbound_tasks):
            task.cancel()
        if self._inbound_tasks:
            await asyncio.gather(*self._inbound_tasks, return_exceptions=True)
        self._inbound_tasks.clear()

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, peer_id: int, payload: bytes) -> bool:
        """Queue ``payload`` (already codec-encoded) for ``peer_id``."""
        channel = self._channels.get(peer_id)
        if channel is None:
            raise KeyError(f"no channel to peer {peer_id}")
        return channel.send(payload)

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    async def _handle_inbound(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._inbound_tasks.add(task)
            task.add_done_callback(self._inbound_tasks.discard)
        try:
            peer_id = await self._handshake(reader)
            if peer_id is None:
                return
            while not self._closed:
                payload = await read_frame(reader)
                self.frames_received += 1
                self.bytes_received += len(payload)
                try:
                    sender, message = decode_message(payload)
                except DecodeError:
                    # One poisoned message; the stream is still in sync.
                    self.decode_errors += 1
                    continue
                if sender != peer_id:
                    self.auth_failures += 1
                    continue
                self.on_message(peer_id, message)
        except FrameError:
            self.frame_errors += 1
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            pass  # peer went away (or is reconnecting); server keeps running
        except asyncio.CancelledError:
            # Our own shutdown cancels readers; completing normally here
            # keeps asyncio.streams' done-callback from re-raising.  A
            # cancellation from anywhere else must still propagate.
            if not self._closed:
                raise
            if task is not None:
                task.uncancel()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handshake(self, reader: asyncio.StreamReader) -> Optional[int]:
        """Read and validate the HELLO frame; returns the peer id or None."""
        try:
            payload = await read_frame(reader)
            magic, version, peer_id = _HELLO.unpack(payload)
        except (FrameError, asyncio.IncompleteReadError, struct.error):
            self.auth_failures += 1
            return None
        if magic != _MAGIC or version != WIRE_VERSION:
            self.auth_failures += 1
            return None
        return peer_id
