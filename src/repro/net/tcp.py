"""Asyncio TCP transport: one listener per replica, reconnecting peers.

This is the live counterpart of the simulated :class:`~repro.net.network.
Network` wire: a :class:`TcpTransport` owns one node's listening socket and
one outbound channel per peer.  Outbound channels dial lazily, reconnect
with *jittered* exponential backoff (decorrelating the reconnect storm when
a killed replica comes back), and buffer sends in a bounded per-peer queue
— when the queue is full the *newest* message is dropped and counted
(protocol correctness never depends on delivery: timeouts and the
certificate-driven catch-up path recover, exactly as they do under the
simulator's loss models).

Channels are full-duplex: an outbound connection also *reads* frames, so a
request/reply exchange (a client's ``ClientRequest`` answered with a
``ClientReply``) rides one connection.  On the accepting side, a handshaked
connection from a peer with no static channel — a client, whose address the
replica cannot know in advance — is registered as a *reply channel*:
``send()`` to that peer id queues frames back over the accepted connection
(bounded, drop-newest) until the peer disconnects.  Sends to a peer with
neither a static channel nor a live reply channel are counted (``no_route``)
and refused instead of raising, so a replica answering a long-gone client
never poisons its own handler.

Authentication mirrors the simulated network's "the receiver learns the
true sender" guarantee: every outbound connection opens with a HELLO frame
(magic, wire version, dialer id), and each subsequent payload's envelope
sender must match the handshake identity or the message is discarded.
Localhost TCP stands in for the authenticated channels the paper assumes;
a real deployment would put TLS or a MAC in the envelope's auth slot.

Error containment follows the framing contract: a payload that fails
:func:`~repro.wire.codec.decode_message` poisons only that one message
(counted, connection kept); a framing violation loses stream sync, so the
connection is dropped and the dialer's reconnect loop rebuilds it.

Every counter is kept per peer as well as in transport-wide totals;
:meth:`TcpTransport.per_peer_counters` feeds the
:meth:`~repro.runtime.metrics.MetricsCollector.transport_counters`
summaries.
"""

from __future__ import annotations

import asyncio
import random
import struct
from typing import Callable, Optional, cast

from repro.wire.codec import DecodeError, WIRE_VERSION, decode_message
from repro.wire.framing import FrameError, encode_frame, read_frame

#: HELLO payload: magic, wire version, dialer node id.
_HELLO = struct.Struct(">4sBq")
_MAGIC = b"RPRO"

#: Reconnect backoff bounds (seconds).  The delay for attempt ``k`` is
#: ``min(initial * 2**k, max) * uniform(0.5, 1.0)`` — exponential with a
#: cap, jittered so peers dialing one restarted listener spread out.
_BACKOFF_INITIAL = 0.05
_BACKOFF_MAX = 2.0

#: Delivery callback: (peer_id, message).
MessageHandler = Callable[[int, object], None]

#: Grace period (seconds) for a channel's sender task to drain its queue
#: after the close sentinel before it is cancelled outright.
_CLOSE_GRACE = 0.5


async def _finish_sender(
    task: "asyncio.Task[None]", queue: "asyncio.Queue[Optional[bytes]]"
) -> None:
    """Stop a channel's sender task without swallowing cancellation.

    Posts the ``None`` sentinel (best effort), gives the sender a grace
    period to drain, then cancels it.  Cancellation aimed at the *caller*
    always propagates: a ``close()`` must never convert its own
    cancellation into silent success, or the canceller's ``await task``
    hangs believing teardown is still running.
    """
    try:
        queue.put_nowait(None)
    except asyncio.QueueFull:
        pass
    try:
        await asyncio.wait_for(asyncio.shield(task), timeout=_CLOSE_GRACE)
        return
    except asyncio.TimeoutError:
        pass
    except asyncio.CancelledError:
        task.cancel()
        raise
    task.cancel()
    try:
        await task
    except asyncio.CancelledError:
        current = asyncio.current_task()
        if current is not None and current.cancelling():
            raise  # the cancellation was aimed at us, not just the sender
    except (ConnectionError, OSError):
        pass


async def _reap_connection(
    reply_reader: "Optional[asyncio.Task[None]]", writer: asyncio.StreamWriter
) -> None:
    """Join the reply reader and wait out the closing socket.

    Runs under ``asyncio.shield`` from ``finally`` blocks: cancelling the
    owner must not abandon a half-closed socket mid-teardown, and the
    owner's cancellation still propagates once the reap is done.
    """
    if reply_reader is not None:
        await asyncio.gather(reply_reader, return_exceptions=True)
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass


class _PeerChannel:
    """Reconnecting full-duplex outbound channel to one statically known peer."""

    def __init__(
        self, transport: "TcpTransport", peer_id: int, host: str, port: int
    ) -> None:
        self.transport = transport
        self.peer_id = peer_id
        self.host = host
        self.port = port
        self.queue: asyncio.Queue[Optional[bytes]] = asyncio.Queue(
            maxsize=transport.queue_limit
        )
        self.task: Optional["asyncio.Task[None]"] = None
        self._closed = False
        # Per-peer counters (aggregated by TcpTransport.per_peer_counters).
        self.frames_sent = 0
        self.bytes_sent = 0
        self.reconnects = 0
        self.dropped_backpressure = 0
        self.connect_attempts = 0

    def start(self) -> None:
        self.task = asyncio.get_running_loop().create_task(
            self._run(), name=f"tcp-send:{self.transport.node_id}->{self.peer_id}"
        )

    def send(self, payload: bytes) -> bool:
        """Enqueue one payload; drop-newest on backpressure."""
        if self._closed:
            return False
        try:
            self.queue.put_nowait(payload)
            return True
        except asyncio.QueueFull:
            self.dropped_backpressure += 1
            self.transport.dropped_backpressure += 1
            return False

    def _backoff_delay(self, attempt: int) -> float:
        base = min(
            self.transport.backoff_initial * (2.0**attempt),
            self.transport.backoff_max,
        )
        return base * (0.5 + 0.5 * self.transport.rng.random())

    async def _run(self) -> None:
        attempt = 0
        loop = asyncio.get_running_loop()
        while not self._closed:
            try:
                self.connect_attempts += 1
                reader, writer = await asyncio.open_connection(self.host, self.port)
            except OSError:
                await asyncio.sleep(self._backoff_delay(attempt))
                attempt += 1
                continue
            attempt = 0
            reply_reader: Optional["asyncio.Task[None]"] = None
            try:
                writer.write(
                    encode_frame(
                        _HELLO.pack(_MAGIC, WIRE_VERSION, self.transport.node_id)
                    )
                )
                await writer.drain()
                # Full-duplex: the peer may answer on this same connection
                # (the reply path clients depend on).  The reader aborts the
                # connection on EOF/violation, which surfaces here as a
                # write failure on the next send -> reconnect.
                reply_reader = loop.create_task(
                    self.transport._read_stream(reader, writer, self.peer_id),
                    name=f"tcp-reply:{self.transport.node_id}<-{self.peer_id}",
                )
                while True:
                    payload = await self.queue.get()
                    if payload is None:
                        return
                    writer.write(encode_frame(payload))
                    await writer.drain()
                    self.frames_sent += 1
                    self.bytes_sent += len(payload)
                    self.transport.frames_sent += 1
                    self.transport.bytes_sent += len(payload)
            except (ConnectionError, OSError):
                self.reconnects += 1
                self.transport.reconnects += 1
            finally:
                if reply_reader is not None:
                    reply_reader.cancel()
                writer.close()
                # Shielded so cancelling the sender mid-teardown cannot
                # abandon the reader task or the half-closed socket.
                await asyncio.shield(_reap_connection(reply_reader, writer))

    async def close(self) -> None:
        self._closed = True
        if self.task is None:
            return
        # Sentinel first, grace period, then cancel; caller cancellation
        # always propagates (see _finish_sender).
        await _finish_sender(self.task, self.queue)


class _ReplyChannel:
    """Bounded sender over an *accepted* connection (dynamic peers).

    Created when a handshaked inbound connection arrives from a peer the
    transport has no static channel to — a client.  No reconnect loop: if
    the connection dies the channel is discarded and the peer re-dials.
    """

    def __init__(
        self, transport: "TcpTransport", peer_id: int, writer: asyncio.StreamWriter
    ) -> None:
        self.transport = transport
        self.peer_id = peer_id
        self.writer = writer
        self.queue: asyncio.Queue[Optional[bytes]] = asyncio.Queue(
            maxsize=transport.queue_limit
        )
        self.frames_sent = 0
        self.bytes_sent = 0
        self.dropped_backpressure = 0
        self._closed = False
        self.task = asyncio.get_running_loop().create_task(
            self._run(), name=f"tcp-reply-send:{transport.node_id}->{peer_id}"
        )

    def send(self, payload: bytes) -> bool:
        if self._closed:
            return False
        try:
            self.queue.put_nowait(payload)
            return True
        except asyncio.QueueFull:
            self.dropped_backpressure += 1
            self.transport.dropped_backpressure += 1
            return False

    async def _run(self) -> None:
        try:
            while True:
                payload = await self.queue.get()
                if payload is None:
                    return
                self.writer.write(encode_frame(payload))
                await self.writer.drain()
                self.frames_sent += 1
                self.bytes_sent += len(payload)
                self.transport.frames_sent += 1
                self.transport.bytes_sent += len(payload)
        except (ConnectionError, OSError):
            pass

    async def close(self) -> None:
        self._closed = True
        await _finish_sender(self.task, self.queue)


class TcpTransport:
    """One node's TCP endpoint: a listener plus per-peer outbound channels.

    Usage::

        transport = TcpTransport(node_id=0, on_message=handler)
        host, port = await transport.start()      # bind (port 0 = ephemeral)
        transport.add_peer(1, "127.0.0.1", 9001)  # dials lazily
        transport.send(1, payload_bytes)          # queued, framed, shipped
        await transport.close()

    Clients skip :meth:`start` (no listener) and only :meth:`add_peer`;
    replies arrive over the outbound connections (full-duplex channels).
    """

    def __init__(
        self,
        node_id: int,
        on_message: MessageHandler,
        host: str = "127.0.0.1",
        port: int = 0,
        queue_limit: int = 1024,
        backoff_initial: float = _BACKOFF_INITIAL,
        backoff_max: float = _BACKOFF_MAX,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.node_id = node_id
        self.on_message = on_message
        self.host = host
        self.port = port
        self.queue_limit = queue_limit
        if backoff_initial <= 0 or backoff_max < backoff_initial:
            raise ValueError("need 0 < backoff_initial <= backoff_max")
        self.backoff_initial = backoff_initial
        self.backoff_max = backoff_max
        #: Jitter source (live-side module: wall-clock nondeterminism is the
        #: point; inject a seeded Random for reproducible backoff in tests).
        self.rng = rng if rng is not None else random.Random()
        self._server: Optional[asyncio.AbstractServer] = None
        self._channels: dict[int, _PeerChannel] = {}
        self._accepted: dict[int, _ReplyChannel] = {}
        self._inbound_tasks: set["asyncio.Task[None]"] = set()
        self._closed = False
        # Counters (read by LiveNetwork reports and the transport tests).
        self.frames_sent = 0
        self.bytes_sent = 0
        self.frames_received = 0
        self.bytes_received = 0
        self.decode_errors = 0
        self.frame_errors = 0
        self.auth_failures = 0
        self.dropped_backpressure = 0
        self.reconnects = 0
        self.no_route = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind the listener; returns the bound (host, port)."""
        server = await asyncio.start_server(
            self._handle_inbound, host=self.host, port=self.port
        )
        self._server = server
        # One-shot bind: recording the kernel-assigned ephemeral port is a
        # benign read-then-write (nothing else runs until start() returns).
        self.port = int(server.sockets[0].getsockname()[1])  # repro-lint: ignore[await-atomicity]
        return self.host, self.port

    def add_peer(self, peer_id: int, host: str, port: int) -> None:
        if peer_id in self._channels:
            raise ValueError(f"peer {peer_id} already added")
        channel = _PeerChannel(self, peer_id, host, port)
        self._channels[peer_id] = channel
        channel.start()

    async def close(self) -> None:
        """Stop the listener, drain channels, cancel inbound readers."""
        self._closed = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for channel in self._channels.values():
            await channel.close()
        for reply in list(self._accepted.values()):
            await reply.close()
        self._accepted.clear()
        for task in list(self._inbound_tasks):
            task.cancel()
        if self._inbound_tasks:
            await asyncio.gather(*self._inbound_tasks, return_exceptions=True)
        self._inbound_tasks.clear()

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, peer_id: int, payload: bytes) -> bool:
        """Queue ``payload`` (already codec-encoded) for ``peer_id``.

        Routes over the static channel when one exists, else over a live
        accepted connection from that peer (the client reply path).  With
        neither, the send is counted (``no_route``) and refused.
        """
        channel = self._channels.get(peer_id)
        if channel is not None:
            return channel.send(payload)
        reply = self._accepted.get(peer_id)
        if reply is not None:
            return reply.send(payload)
        self.no_route += 1
        return False

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    async def _read_stream(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        peer_id: int,
    ) -> None:
        """Shared frame pump: decode, authenticate, deliver.

        Runs until EOF or a framing violation; both abort the underlying
        transport so the owning side (dialer write loop or inbound handler)
        notices promptly.
        """
        try:
            while True:
                payload = await read_frame(reader)
                self.frames_received += 1
                self.bytes_received += len(payload)
                try:
                    sender, message = decode_message(payload)
                except DecodeError:
                    # One poisoned message; the stream is still in sync.
                    self.decode_errors += 1
                    continue
                if sender != peer_id:
                    self.auth_failures += 1
                    continue
                self.on_message(peer_id, message)
        except FrameError:
            self.frame_errors += 1
            cast(asyncio.WriteTransport, writer.transport).abort()
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            cast(asyncio.WriteTransport, writer.transport).abort()

    async def _handle_inbound(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._inbound_tasks.add(task)
            task.add_done_callback(self._inbound_tasks.discard)
        reply: Optional[_ReplyChannel] = None
        peer_id: Optional[int] = None
        try:
            peer_id = await self._handshake(reader)
            if peer_id is None:
                return
            if peer_id not in self._channels and not self._closed:
                # Dynamic peer (client): replies flow back over this
                # connection.  A fresh connection from the same id replaces
                # the stale channel (the client reconnected).
                # Register the replacement *before* the suspension in
                # stale.close(): a send() racing the handoff must see the
                # fresh channel, never a gap (and never the closed one).
                stale = self._accepted.pop(peer_id, None)
                reply = _ReplyChannel(self, peer_id, writer)
                self._accepted[peer_id] = reply
                if stale is not None:
                    await stale.close()
            while not self._closed:
                payload = await read_frame(reader)
                self.frames_received += 1
                self.bytes_received += len(payload)
                try:
                    sender, message = decode_message(payload)
                except DecodeError:
                    # One poisoned message; the stream is still in sync.
                    self.decode_errors += 1
                    continue
                if sender != peer_id:
                    self.auth_failures += 1
                    continue
                self.on_message(peer_id, message)
        except FrameError:
            self.frame_errors += 1
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            pass  # peer went away (or is reconnecting); server keeps running
        except asyncio.CancelledError:
            # Our own shutdown cancels readers; completing normally here
            # keeps asyncio.streams' done-callback from re-raising.  A
            # cancellation from anywhere else must still propagate.
            if not self._closed:
                raise
            if task is not None:
                task.uncancel()
        finally:
            # Shielded so a cancellation landing mid-finally cannot skip
            # the channel deregistration or leave the socket half-closed.
            await asyncio.shield(self._finish_inbound(reply, peer_id, writer))

    async def _finish_inbound(
        self,
        reply: Optional[_ReplyChannel],
        peer_id: Optional[int],
        writer: asyncio.StreamWriter,
    ) -> None:
        """Teardown for one accepted connection (runs under shield)."""
        if reply is not None and peer_id is not None:
            if self._accepted.get(peer_id) is reply:
                del self._accepted[peer_id]
            await reply.close()
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def _handshake(self, reader: asyncio.StreamReader) -> Optional[int]:
        """Read and validate the HELLO frame; returns the peer id or None."""
        try:
            payload = await read_frame(reader)
            magic, version, peer_id = _HELLO.unpack(payload)
        except (FrameError, asyncio.IncompleteReadError, struct.error):
            self.auth_failures += 1
            return None
        if magic != _MAGIC or version != WIRE_VERSION:
            self.auth_failures += 1
            return None
        return int(peer_id)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def per_peer_counters(self) -> dict[int, dict[str, int]]:
        """Per-peer reconnect/backpressure/volume counters.

        Static channels and live accepted (reply) channels both appear;
        a peer reachable both ways has its counters merged.
        """
        out: dict[int, dict[str, int]] = {}
        for peer_id, channel in self._channels.items():
            entry = out.setdefault(peer_id, _zero_peer_counters())
            entry["frames_sent"] += channel.frames_sent
            entry["bytes_sent"] += channel.bytes_sent
            entry["reconnects"] += channel.reconnects
            entry["dropped_backpressure"] += channel.dropped_backpressure
            entry["connect_attempts"] += channel.connect_attempts
        for peer_id, reply in self._accepted.items():
            entry = out.setdefault(peer_id, _zero_peer_counters())
            entry["frames_sent"] += reply.frames_sent
            entry["bytes_sent"] += reply.bytes_sent
            entry["dropped_backpressure"] += reply.dropped_backpressure
        return out

    def counters(self) -> dict[str, int]:
        """Transport-wide totals (the error-containment story in numbers)."""
        return {
            "frames_sent": self.frames_sent,
            "bytes_sent": self.bytes_sent,
            "frames_received": self.frames_received,
            "decode_errors": self.decode_errors,
            "frame_errors": self.frame_errors,
            "auth_failures": self.auth_failures,
            "dropped_backpressure": self.dropped_backpressure,
            "reconnects": self.reconnects,
            "no_route": self.no_route,
        }


def _zero_peer_counters() -> dict[str, int]:
    return {
        "frames_sent": 0,
        "bytes_sent": 0,
        "reconnects": 0,
        "dropped_backpressure": 0,
        "connect_attempts": 0,
    }
