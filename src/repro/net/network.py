"""The simulated network: authenticated, adversarially delayed, optionally lossy.

Guarantees (matching the paper's model, with the default ``NoLoss``):

- **Reliability**: every message sent between registered processes is
  delivered exactly once (delay models must return finite delays).
- **Authentication**: the receiver learns the true sender id.
- **Adversarial scheduling**: per-message delays come from the configured
  :class:`~repro.net.conditions.DelayModel`.

With a :class:`~repro.net.loss.LossModel` installed, the reliability half of
the contract is *withdrawn*: messages may be dropped or duplicated, and it
becomes the job of :class:`~repro.net.reliable.ReliableNetwork` to restore
exactly-once delivery on top.  Loss composes with every delay model: the
loss model decides how many copies reach the wire, the delay model delays
each copy independently.

Self-delivery (a replica processing its own multicast) is immediate, not
counted as network traffic, and never lossy.
"""

from __future__ import annotations

from functools import partial
from typing import Callable, Optional

from repro.net.conditions import DelayModel, SynchronousDelay
from repro.net.loss import LossModel, NoLoss
from repro.sim.process import Process
from repro.sim.scheduler import Scheduler

#: Hook signature: (sender, receiver, message, send_time, delay).
SendHook = Callable[[int, int, object, float, float], None]


class Network:
    """Connects :class:`Process` instances through delay and loss models."""

    def __init__(
        self,
        scheduler: Scheduler,
        delay_model: Optional[DelayModel] = None,
        loss_model: Optional[LossModel] = None,
        self_delivery_delay: float = 0.0,
    ) -> None:
        self.scheduler = scheduler
        self.delay_model = delay_model or SynchronousDelay()
        self.loss_model = loss_model or NoLoss()
        self.self_delivery_delay = self_delivery_delay
        self._processes: dict[int, Process] = {}
        self._multicast_group: set[int] = set()
        #: Sorted snapshot of the multicast group, rebuilt on register so the
        #: multicast hot path never re-sorts.
        self._group_sorted: tuple[int, ...] = ()
        self._hooks: list[SendHook] = []
        #: (sender, receiver, message class) -> delivery label; topologies
        #: and message vocabularies are small, so this stays bounded.
        self._label_cache: dict[tuple[int, int, type], str] = {}
        self._rng = scheduler.child_rng("network")
        self._loss_rng = scheduler.child_rng("network-loss")
        self.messages_sent = 0
        self.bytes_sent = 0
        #: Messages the loss model removed from the wire entirely.
        self.messages_dropped = 0
        #: Extra copies the loss model injected beyond the first.
        self.duplicates_injected = 0
        #: Messages billed the 64-byte default because they lack wire_size().
        self.untyped_messages = 0

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def register(self, process: Process, in_multicast_group: bool = True) -> None:
        """Attach a process.  Replicas join the multicast group; auxiliary
        processes (clients) receive only directed sends."""
        if process.process_id in self._processes:
            raise ValueError(f"process id {process.process_id} already registered")
        self._processes[process.process_id] = process
        if in_multicast_group:
            self._multicast_group.add(process.process_id)
            self._group_sorted = tuple(sorted(self._multicast_group))

    def process_ids(self) -> list[int]:
        """Multicast-group member ids (replicas), sorted."""
        return list(self._group_sorted)

    def all_process_ids(self) -> list[int]:
        return sorted(self._processes)

    def process(self, process_id: int) -> Process:
        return self._processes[process_id]

    def add_send_hook(self, hook: SendHook) -> None:
        """Register a metrics/trace hook invoked on every network send."""
        self._hooks.append(hook)

    def set_delay_model(self, model: DelayModel) -> None:
        """Swap the delay model mid-run (used for scripted degradation)."""
        self.delay_model = model

    def set_loss_model(self, model: LossModel) -> None:
        """Swap the loss model mid-run (used by the chaos schedule)."""
        self.loss_model = model

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, sender: int, receiver: int, message: object) -> None:
        """Send one message; schedules 0..k deliveries per the loss model."""
        target = self._processes.get(receiver)
        if target is None:
            raise KeyError(f"unknown receiver {receiver}")
        if receiver == sender:
            self.scheduler.call_after(
                self.self_delivery_delay,
                partial(target.deliver, sender, message),
                label=f"self:{sender}",
            )
            return
        self._transmit(sender, receiver, message, notify=True)

    def _transmit(
        self, sender: int, receiver: int, message: object, notify: bool
    ) -> None:
        """Shared wire path: bill the send, apply loss, schedule deliveries.

        ``notify=False`` suppresses send hooks (channel-internal traffic —
        retransmissions and acks — is reported through channel hooks so the
        metrics layer can separate goodput from overhead).
        """
        now = self.scheduler.now
        delay = self.delay_model.delay(sender, receiver, message, now, self._rng)
        self._check_delay(delay)
        self.messages_sent += 1
        size = self._wire_size_of(message)
        self.bytes_sent += size
        if notify:
            for hook in self._hooks:
                hook(sender, receiver, message, now, delay)
        copies = self.loss_model.copies(sender, receiver, message, now, self._loss_rng)
        if copies <= 0:
            self.messages_dropped += 1
            return
        label_key = (sender, receiver, type(message))
        label = self._label_cache.get(label_key)
        if label is None:
            label = f"msg:{sender}->{receiver}:{type(message).__name__}"
            self._label_cache[label_key] = label
        self._schedule_delivery(sender, receiver, message, delay, label)
        for _ in range(copies - 1):
            extra_delay = self.delay_model.delay(
                sender, receiver, message, now, self._rng
            )
            self._check_delay(extra_delay)
            self.duplicates_injected += 1
            self._schedule_delivery(sender, receiver, message, extra_delay, label)

    def _check_delay(self, delay: float) -> None:
        if delay < 0:
            raise ValueError(
                f"delay model {self.delay_model.describe()} returned negative delay"
            )

    def _schedule_delivery(
        self, sender: int, receiver: int, message: object, delay: float, label: str
    ) -> None:
        # partial() beats a closure here: no cell allocation per delivery,
        # and the scheduler calls it with zero arguments either way.
        self.scheduler.call_after(
            delay,
            partial(self._deliver, sender, receiver, message),
            label=label,
        )

    def _deliver(self, sender: int, receiver: int, message: object) -> None:
        """Hand an arriving message to its process.  The reliable-channel
        subclass intercepts here for dedup/ack processing."""
        self._processes[receiver].deliver(sender, message)

    def multicast(self, sender: int, message: object, include_self: bool = True) -> None:
        """Send ``message`` to every registered process (deterministic order)."""
        send = self.send
        for receiver in self._group_sorted:
            if receiver == sender and not include_self:
                continue
            send(sender, receiver, message)

    def _wire_size_of(self, message: object) -> int:
        try:
            return int(message.wire_size())
        except AttributeError:
            size = _codec_size(message)
            if size is not None:
                return size
            self.untyped_messages += 1
            return 64  # conservative default for untyped test messages


def _codec_size(message: object) -> Optional[int]:
    """Real encoded size for messages registered with the wire codec.

    Imported lazily: the codec pulls in the client message types, whose
    module imports this one.  Only consulted for messages without a
    modeled ``wire_size()`` — the common protocol types never reach it.
    """
    try:
        from repro.wire.codec import try_encoded_size
    except ImportError:
        return None
    return try_encoded_size(message)


def _wire_size(message: object) -> int:
    """Wire size of a message: modeled if typed, codec-derived if the codec
    knows the type, else the 64-byte default."""
    wire_size = getattr(message, "wire_size", None)
    if callable(wire_size):
        return int(wire_size())
    size = _codec_size(message)
    return size if size is not None else 64
