"""The simulated network: reliable, authenticated, adversarially delayed.

Guarantees (matching the paper's model):

- **Reliability**: every message sent between registered processes is
  delivered exactly once (delay models must return finite delays).
- **Authentication**: the receiver learns the true sender id.
- **Adversarial scheduling**: per-message delays come from the configured
  :class:`~repro.net.conditions.DelayModel`.

Self-delivery (a replica processing its own multicast) is immediate and not
counted as network traffic.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.conditions import DelayModel, SynchronousDelay
from repro.sim.process import Process
from repro.sim.scheduler import Scheduler

#: Hook signature: (sender, receiver, message, send_time, delay).
SendHook = Callable[[int, int, object, float, float], None]


class Network:
    """Connects :class:`Process` instances through a delay model."""

    def __init__(
        self,
        scheduler: Scheduler,
        delay_model: Optional[DelayModel] = None,
        self_delivery_delay: float = 0.0,
    ) -> None:
        self.scheduler = scheduler
        self.delay_model = delay_model or SynchronousDelay()
        self.self_delivery_delay = self_delivery_delay
        self._processes: dict[int, Process] = {}
        self._multicast_group: set[int] = set()
        self._hooks: list[SendHook] = []
        self._rng = scheduler.child_rng("network")
        self.messages_sent = 0
        self.bytes_sent = 0

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def register(self, process: Process, in_multicast_group: bool = True) -> None:
        """Attach a process.  Replicas join the multicast group; auxiliary
        processes (clients) receive only directed sends."""
        if process.process_id in self._processes:
            raise ValueError(f"process id {process.process_id} already registered")
        self._processes[process.process_id] = process
        if in_multicast_group:
            self._multicast_group.add(process.process_id)

    def process_ids(self) -> list[int]:
        """Multicast-group member ids (replicas), sorted."""
        return sorted(self._multicast_group)

    def all_process_ids(self) -> list[int]:
        return sorted(self._processes)

    def add_send_hook(self, hook: SendHook) -> None:
        """Register a metrics/trace hook invoked on every network send."""
        self._hooks.append(hook)

    def set_delay_model(self, model: DelayModel) -> None:
        """Swap the delay model mid-run (used for scripted degradation)."""
        self.delay_model = model

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, sender: int, receiver: int, message: object) -> None:
        """Send one message; schedules its delivery after a modeled delay."""
        target = self._processes.get(receiver)
        if target is None:
            raise KeyError(f"unknown receiver {receiver}")
        now = self.scheduler.now
        if receiver == sender:
            self.scheduler.call_after(
                self.self_delivery_delay,
                lambda: target.deliver(sender, message),
                label=f"self:{sender}",
            )
            return
        delay = self.delay_model.delay(sender, receiver, message, now, self._rng)
        if delay < 0:
            raise ValueError(
                f"delay model {self.delay_model.describe()} returned negative delay"
            )
        self.messages_sent += 1
        size = _wire_size(message)
        self.bytes_sent += size
        for hook in self._hooks:
            hook(sender, receiver, message, now, delay)
        self.scheduler.call_after(
            delay,
            lambda: target.deliver(sender, message),
            label=f"msg:{sender}->{receiver}:{type(message).__name__}",
        )

    def multicast(self, sender: int, message: object, include_self: bool = True) -> None:
        """Send ``message`` to every registered process (deterministic order)."""
        for receiver in self.process_ids():
            if receiver == sender and not include_self:
                continue
            self.send(sender, receiver, message)


def _wire_size(message: object) -> int:
    wire_size = getattr(message, "wire_size", None)
    if callable(wire_size):
        return int(wire_size())
    return 64  # conservative default for untyped test messages
